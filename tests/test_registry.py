"""Unit tests for the shared plugin registry (repro.registry).

All three plugin surfaces — test back ends, simulators, solver back
ends — are instances of one :class:`Registry`; these tests pin the
shared behavior (validated registration, duplicate protection,
did-you-mean lookup errors, dict compatibility) plus the deprecation
shims the old per-module functions became.
"""

import pytest

from repro.registry import (
    DuplicateNameError,
    Registry,
    RegistryError,
    UnknownNameError,
)


def _factory():
    return "made"


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

def test_register_and_lookup_round_trip():
    reg = Registry("widget")
    reg.register("alpha", _factory)
    assert reg.get("alpha") is _factory
    assert reg.create("alpha") == "made"
    assert reg.names() == ["alpha"]


def test_duplicate_registration_rejected_without_replace():
    reg = Registry("widget")
    reg.register("alpha", _factory)
    with pytest.raises(DuplicateNameError, match="already registered"):
        reg.register("alpha", _factory)
    reg.register("alpha", lambda: "new", replace=True)
    assert reg.create("alpha") == "new"


def test_duplicate_error_is_a_value_error():
    # Legacy callers wrapped registration in ``except ValueError``.
    reg = Registry("widget")
    reg.register("alpha", _factory)
    with pytest.raises(ValueError):
        reg.register("alpha", _factory)


def test_empty_or_non_string_names_rejected():
    reg = Registry("widget")
    with pytest.raises(ValueError, match="non-empty string"):
        reg.register("", _factory)
    with pytest.raises(ValueError, match="non-empty string"):
        reg.register(None, _factory)


def test_validator_rejects_before_insertion():
    def validator(name, factory):
        if not callable(factory):
            raise TypeError(f"{name!r} needs a callable")

    reg = Registry("widget", validator=validator)
    with pytest.raises(TypeError, match="needs a callable"):
        reg.register("bad", 42)
    assert "bad" not in reg


# ---------------------------------------------------------------------------
# Unknown-name errors
# ---------------------------------------------------------------------------

def test_unknown_name_lists_available_and_suggests():
    reg = Registry("widget")
    reg.register("native", _factory)
    reg.register("kissat", _factory)
    with pytest.raises(UnknownNameError) as exc:
        reg.get("natiev")
    message = str(exc.value)
    assert "native" in message and "kissat" in message
    assert "did you mean 'native'" in message


def test_unknown_name_is_a_key_error():
    reg = Registry("widget")
    with pytest.raises(KeyError):
        reg.get("nothing")
    with pytest.raises(RegistryError):
        reg["nothing"]


def test_get_with_default_does_not_raise():
    reg = Registry("widget")
    assert reg.get("nothing", None) is None
    sentinel = object()
    assert reg.get("nothing", sentinel) is sentinel


# ---------------------------------------------------------------------------
# Mapping compatibility (legacy dict-style use)
# ---------------------------------------------------------------------------

def test_mapping_protocol_matches_dict_usage():
    reg = Registry("widget")
    reg.register("b", _factory)
    reg.register("a", _factory)
    assert sorted(reg) == ["a", "b"]
    assert "a" in reg and "zzz" not in reg
    assert len(reg) == 2
    reg["c"] = _factory          # __setitem__ replaces silently
    reg["c"] = _factory
    del reg["c"]
    assert reg.pop("zzz", None) is None
    with pytest.raises(KeyError):
        del reg["zzz"]


# ---------------------------------------------------------------------------
# The three real registries share the implementation
# ---------------------------------------------------------------------------

def test_all_three_plugin_registries_are_registry_instances():
    from repro.smt.backends import SOLVERS
    from repro.testback import BACKENDS
    from repro.testback.runner import SIMULATORS

    for reg in (BACKENDS, SIMULATORS, SOLVERS):
        assert isinstance(reg, Registry)


def test_legacy_register_functions_warn_and_delegate():
    from repro.testback import BACKENDS, register_backend
    from repro.testback.runner import SIMULATORS, register_simulator

    class _Backend:
        name = "shimmed"

        def render_test(self, test):
            return ""

        def render_suite(self, tests):
            return ""

    with pytest.warns(DeprecationWarning, match="BACKENDS.register"):
        register_backend("shimmed", _Backend)
    try:
        assert BACKENDS["shimmed"] is _Backend
    finally:
        del BACKENDS["shimmed"]

    with pytest.warns(DeprecationWarning, match="SIMULATORS.register"):
        register_simulator("shimmed-sim", lambda program, seed: None)
    try:
        assert "shimmed-sim" in SIMULATORS
    finally:
        del SIMULATORS["shimmed-sim"]
