"""The paper's §7 correctness loop: every test the oracle generates
must pass end-to-end on the matching (unmutated) software model."""

import pytest

from repro import TestGen, load_program
from repro.targets import EbpfModel, T2na, Tna, V1Model
from repro.testback.runner import run_suite

CASES = [
    ("fig1a", V1Model),
    ("fig1b", V1Model),
    ("ebpf_filter", EbpfModel),
    ("tna_forward", Tna),
    ("tna_forward", T2na),
    ("mpls_stack", V1Model),
    ("tiny_hdr", V1Model),
    ("value_set_demo", V1Model),
    ("register_demo", V1Model),
    ("match_kinds", V1Model),
    ("recirc_demo", V1Model),
    ("taint_key", V1Model),
    ("lookahead_demo", V1Model),
    ("clone_demo", V1Model),
    ("tna_stateful", Tna),
    ("t2na_ghost", T2na),
]


@pytest.mark.parametrize("prog_name,target_cls", CASES)
def test_generated_tests_pass_on_software_model(prog_name, target_cls):
    program = load_program(prog_name)
    result = TestGen(program, target=target_cls(), seed=1).run(max_tests=25)
    assert result.tests, "oracle must produce at least one test"
    passed, results = run_suite(result.tests, program)
    failures = [r for r in results if not r.passed]
    assert not failures, "; ".join(
        f"test {r.test_id}: {r.kind} ({r.detail})" for r in failures
    )


@pytest.mark.parametrize("prog_name,target_cls", CASES)
def test_different_seeds_still_pass(prog_name, target_cls):
    program = load_program(prog_name)
    result = TestGen(program, target=target_cls(), seed=99, strategy="random").run(
        max_tests=10
    )
    passed, results = run_suite(result.tests, program)
    assert passed == len(result.tests)
