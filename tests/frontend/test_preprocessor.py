"""Preprocessor behaviour: includes, defines, conditionals."""

from repro.frontend.lexer import tokenize


def values(text):
    toks, _inc = tokenize(text)
    return [t.value for t in toks if t.kind == "INT"]


def test_multiple_includes_recorded_in_order():
    _toks, includes = tokenize(
        '#include <core.p4>\n#include <v1model.p4>\nconst bit<8> X = 1;'
    )
    assert includes == ["core.p4", "v1model.p4"]


def test_define_multiple_macros():
    text = "#define A 10\n#define B 20\nconst bit<8> X = A; const bit<8> Y = B;"
    assert 10 in values(text) and 20 in values(text)


def test_define_does_not_touch_substrings():
    text = "#define AB 5\nconst bit<8> ABC = 1;"
    toks, _ = tokenize(text)
    names = [t.text for t in toks if t.kind == "ID"]
    assert "ABC" in names  # AB must not expand inside ABC


def test_ifdef_of_undefined_skips_block():
    text = (
        "#ifdef FEATURE\nconst bit<8> X = 99;\n#endif\n"
        "const bit<8> Y = 1;"
    )
    assert values(text) == [8, 1]


def test_ifdef_of_defined_keeps_block():
    text = (
        "#define FEATURE 1\n"
        "#ifdef FEATURE\nconst bit<8> X = 99;\n#endif\n"
    )
    assert 99 in values(text)


def test_ifndef_inclusion_guard_pattern():
    text = (
        "#ifndef GUARD\n#define GUARD 1\n"
        "const bit<8> X = 7;\n#endif\n"
    )
    assert 7 in values(text)


def test_if_zero_skips():
    text = "#if 0\nconst bit<8> X = 99;\n#endif\nconst bit<8> Y = 3;"
    vals = values(text)
    assert 99 not in vals and 3 in vals


def test_if_one_keeps():
    text = "#if 1\nconst bit<8> X = 99;\n#endif"
    assert 99 in values(text)


def test_line_numbers_preserved_across_directives():
    toks, _ = tokenize("#define A 1\n#include <core.p4>\nheader h {}")
    header_tok = [t for t in toks if t.text == "header"][0]
    assert header_tok.location.line == 3
