"""Parser unit tests over the P4-16 subset grammar."""

import pytest

from repro.frontend import ast as A, parse_program
from repro.frontend.errors import ParseError


def test_header_decl():
    prog = parse_program(
        """
        header ethernet_t {
            bit<48> dst;
            bit<48> src;
            bit<16> type;
        }
        """
    )
    hdr = prog.find(A.HeaderDecl, "ethernet_t")
    assert hdr is not None
    assert [f.name for f in hdr.fields] == ["dst", "src", "type"]
    assert isinstance(hdr.fields[0].field_type, A.BitTypeAst)


def test_struct_and_typedef():
    prog = parse_program(
        """
        typedef bit<9> port_t;
        struct metadata_t {
            port_t output_port;
            bool checksum_err;
        }
        """
    )
    td = prog.find(A.TypedefDecl, "port_t")
    assert td is not None
    st = prog.find(A.StructDecl, "metadata_t")
    assert [f.name for f in st.fields] == ["output_port", "checksum_err"]
    # typedef name usable as a type
    assert isinstance(st.fields[0].field_type, A.TypeName)


def test_const_decl():
    prog = parse_program("const bit<16> TYPE_IPV4 = 0x800;")
    const = prog.find(A.ConstDecl, "TYPE_IPV4")
    assert const.value.value == 0x800


def test_enum():
    prog = parse_program("enum Suits { Clubs, Diamonds, Hearts, Spades }")
    e = prog.find(A.EnumDecl, "Suits")
    assert e.members == ["Clubs", "Diamonds", "Hearts", "Spades"]


def test_serializable_enum():
    prog = parse_program("enum bit<8> Proto { TCP = 6, UDP = 17 }")
    e = prog.find(A.EnumDecl, "Proto")
    assert e.member_values == {"TCP": 6, "UDP": 17}


def test_error_and_match_kind():
    prog = parse_program(
        """
        error { NoError, PacketTooShort }
        match_kind { exact, ternary, lpm }
        """
    )
    err = prog.all(A.ErrorDecl)[0]
    assert "PacketTooShort" in err.members
    mk = prog.all(A.MatchKindDecl)[0]
    assert mk.members == ["exact", "ternary", "lpm"]


PARSER_SRC = """
header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<9> port; }

parser MyParser(packet_in pkt, out headers_t hdr, inout meta_t meta) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            0x800: parse_ipv4;
            0x86DD &&& 0xFFFF: parse_v6;
            16w5 .. 16w10: range_state;
            default: accept;
        }
    }
    state parse_ipv4 { transition accept; }
    state parse_v6 { transition reject; }
    state range_state { transition accept; }
}
"""


def test_parser_decl_and_select():
    prog = parse_program(PARSER_SRC)
    p = prog.find(A.ParserDecl, "MyParser")
    assert p is not None
    assert [s.name for s in p.states] == ["start", "parse_ipv4", "parse_v6", "range_state"]
    start = p.states[0]
    assert len(start.statements) == 1
    tr = start.transition
    assert tr.direct is None
    assert len(tr.cases) == 4
    assert isinstance(tr.cases[0].keyset, A.ExprKeyset)
    assert isinstance(tr.cases[1].keyset, A.MaskKeyset)
    assert isinstance(tr.cases[2].keyset, A.RangeKeyset)
    assert isinstance(tr.cases[3].keyset, A.DefaultKeyset)
    assert tr.cases[3].state == "accept"


CONTROL_SRC = """
header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<9> output_port; }

control Ingress(inout headers_t h, inout meta_t meta) {
    action noop() { }
    action set_out(bit<9> port) {
        meta.output_port = port;
    }
    table forward_table {
        key = { h.eth.type: exact @name("type"); }
        actions = { noop; set_out; }
        default_action = noop();
        size = 1024;
    }
    apply {
        h.eth.type = 0xBEEF;
        forward_table.apply();
    }
}
"""


def test_control_with_table():
    prog = parse_program(CONTROL_SRC)
    c = prog.find(A.ControlDecl, "Ingress")
    actions = [l for l in c.locals if isinstance(l, A.ActionDecl)]
    assert [a.name for a in actions] == ["noop", "set_out"]
    tables = [l for l in c.locals if isinstance(l, A.TableDecl)]
    table = tables[0]
    assert table.name == "forward_table"
    assert table.keys[0].match_kind == "exact"
    assert table.keys[0].control_plane_name == "type"
    assert [a.name for a in table.actions] == ["noop", "set_out"]
    assert table.default_action.name == "noop"
    assert table.size == 1024
    assert len(c.apply_body.statements) == 2


def test_table_const_entries():
    prog = parse_program(
        """
        header h_t { bit<8> f; }
        struct hs { h_t h; }
        control C(inout hs h) {
            action a() {}
            action b() {}
            table t {
                key = { h.h.f: ternary; }
                actions = { a; b; }
                const entries = {
                    0x01 &&& 0xFF : a();
                    @priority(5) 0x02 : b();
                    _ : a();
                }
            }
            apply { t.apply(); }
        }
        """
    )
    c = prog.find(A.ControlDecl, "C")
    table = [l for l in c.locals if isinstance(l, A.TableDecl)][0]
    assert len(table.entries) == 3
    assert isinstance(table.entries[0].keyset, A.MaskKeyset)
    assert table.entries[1].priority == 5
    assert isinstance(table.entries[2].keyset, A.DontCareKeyset)


def test_if_else_and_calls():
    prog = parse_program(
        """
        struct m_t { bit<8> x; }
        control C(inout m_t m) {
            apply {
                if (m.x == 1) {
                    m.x = 2;
                } else if (m.x == 2) {
                    m.x = 3;
                } else {
                    m.x = m.x + 1;
                }
            }
        }
        """
    )
    c = prog.find(A.ControlDecl, "C")
    if_stmt = c.apply_body.statements[0]
    assert isinstance(if_stmt, A.IfStmt)
    assert isinstance(if_stmt.else_branch, A.IfStmt)


def test_switch_on_action_run():
    prog = parse_program(
        """
        struct m_t { bit<8> x; }
        control C(inout m_t m) {
            action a() {}
            table t {
                key = { m.x: exact; }
                actions = { a; }
            }
            apply {
                switch (t.apply().action_run) {
                    a: { m.x = 1; }
                    default: { m.x = 2; }
                }
            }
        }
        """
    )
    c = prog.find(A.ControlDecl, "C")
    sw = c.apply_body.statements[0]
    assert isinstance(sw, A.SwitchStmt)
    assert len(sw.cases) == 2
    assert sw.cases[1].label == "default"


def test_expressions_precedence():
    prog = parse_program("const bit<8> X = 1 + 2 * 3;")
    expr = prog.find(A.ConstDecl, "X").value
    assert isinstance(expr, A.Binop) and expr.op == "+"
    assert isinstance(expr.right, A.Binop) and expr.right.op == "*"


def test_concat_and_slice():
    prog = parse_program(
        """
        struct m_t { bit<8> a; bit<8> b; bit<16> c; }
        control C(inout m_t m) {
            apply {
                m.c = m.a ++ m.b;
                m.a = m.c[15:8];
            }
        }
        """
    )
    c = prog.find(A.ControlDecl, "C")
    assign1, assign2 = c.apply_body.statements
    assert isinstance(assign1.value, A.Binop) and assign1.value.op == "++"
    assert isinstance(assign2.value, A.Slice)


def test_cast_expression():
    prog = parse_program(
        """
        struct m_t { bit<8> a; bit<16> c; }
        control C(inout m_t m) {
            apply { m.c = (bit<16>) m.a; }
        }
        """
    )
    c = prog.find(A.ControlDecl, "C")
    assert isinstance(c.apply_body.statements[0].value, A.Cast)


def test_ternary_expr():
    prog = parse_program("const bit<8> X = true ? 1 : 2;")
    assert isinstance(prog.find(A.ConstDecl, "X").value, A.Ternary)


def test_header_stack_and_index():
    prog = parse_program(
        """
        header label_t { bit<20> label; bit<1> bos; }
        struct hs { label_t[4] labels; }
        control C(inout hs h) {
            apply { h.labels[0].bos = 1; }
        }
        """
    )
    st = prog.find(A.StructDecl, "hs")
    assert isinstance(st.fields[0].field_type, A.StackTypeAst)
    c = prog.find(A.ControlDecl, "C")
    target = c.apply_body.statements[0].target
    assert isinstance(target, A.Member)
    assert isinstance(target.expr, A.Index)


def test_package_and_main():
    prog = parse_program(
        """
        parser P(packet_in pkt);
        control C();
        package Pipe(P p, C c);
        P() the_parser;
        """
    )
    pkg = prog.find(A.PackageDecl, "Pipe")
    assert [p.name for p in pkg.params] == ["p", "c"]
    inst = prog.all(A.Instantiation)
    assert inst[0].name == "the_parser"


def test_extern_function_and_object():
    prog = parse_program(
        """
        extern void mark_to_drop();
        extern register<T> {
            register(bit<32> size);
            void read(out T result, in bit<32> index);
            void write(in bit<32> index, in T value);
        }
        """
    )
    fn = prog.find(A.FunctionDecl, "mark_to_drop")
    assert fn is not None
    ext = prog.find(A.ExternDecl, "register")
    assert [m.name for m in ext.methods] == ["read", "write"]
    assert len(ext.constructor_params) == 1


def test_value_set():
    prog = parse_program(
        """
        header e_t { bit<16> t; }
        struct hs { e_t e; }
        parser P(packet_in pkt, out hs h) {
            value_set<bit<16>>(4) my_vs;
            state start {
                pkt.extract(h.e);
                transition select(h.e.t) {
                    my_vs: accept;
                    default: reject;
                }
            }
        }
        """
    )
    p = prog.find(A.ParserDecl, "P")
    vs = [l for l in p.locals if isinstance(l, A.ValueSetDecl)]
    assert vs[0].name == "my_vs" and vs[0].size == 4


def test_annotations_on_declarations():
    prog = parse_program(
        """
        @auto_init_metadata
        header h_t { bit<8> f; }
        """
    )
    hdr = prog.find(A.HeaderDecl, "h_t")
    assert hdr.annotations[0].name == "auto_init_metadata"


def test_parse_error_reports_location():
    with pytest.raises(ParseError) as exc:
        parse_program("header h {")
    assert "h" in str(exc.value) or "expected" in str(exc.value)


def test_compound_assignment_desugars():
    prog = parse_program(
        """
        struct m_t { bit<8> x; }
        control C(inout m_t m) {
            apply { m.x += 2; }
        }
        """
    )
    c = prog.find(A.ControlDecl, "C")
    stmt = c.apply_body.statements[0]
    assert isinstance(stmt, A.AssignStmt)
    assert isinstance(stmt.value, A.Binop) and stmt.value.op == "+"


def test_exit_and_return():
    prog = parse_program(
        """
        struct m_t { bit<8> x; }
        control C(inout m_t m) {
            action a() { return; }
            apply { exit; }
        }
        """
    )
    c = prog.find(A.ControlDecl, "C")
    assert isinstance(c.apply_body.statements[0], A.ExitStmt)
