"""Lexer unit tests."""

import pytest

from repro.frontend.errors import LexError
from repro.frontend.lexer import tokenize


def kinds(text):
    toks, _inc = tokenize(text)
    return [(t.kind, t.text) for t in toks[:-1]]


def test_empty_input():
    toks, _ = tokenize("")
    assert toks[-1].kind == "EOF"
    assert len(toks) == 1


def test_identifiers_and_keywords():
    out = kinds("header foo_bar apply x1")
    assert out == [
        ("KEYWORD", "header"),
        ("ID", "foo_bar"),
        ("ID", "apply"),  # "apply" is contextual, not reserved
        ("ID", "x1"),
    ]


def test_plain_integers():
    toks, _ = tokenize("123 0x1F 0b101 0o17")
    values = [t.value for t in toks[:-1]]
    assert values == [123, 31, 5, 15]
    assert all(t.width is None for t in toks[:-1])


def test_width_annotated_integers():
    toks, _ = tokenize("8w255 4w0xF 16w0xBEEF")
    assert [(t.value, t.width, t.signed) for t in toks[:-1]] == [
        (255, 8, False),
        (15, 4, False),
        (0xBEEF, 16, False),
    ]


def test_signed_literal():
    toks, _ = tokenize("8s3")
    assert toks[0].signed is True
    assert toks[0].width == 8


def test_underscores_in_literals():
    toks, _ = tokenize("0xDE_AD 1_000")
    assert toks[0].value == 0xDEAD
    assert toks[1].value == 1000


def test_operators_longest_match():
    out = [t for k, t in kinds("a &&& b ++ c << 2 <= d")]
    assert "&&&" in out
    assert "++" in out
    assert "<<" in out
    assert "<=" in out


def test_comments_stripped():
    out = kinds("a // comment\nb /* multi\nline */ c")
    assert [t for _k, t in out] == ["a", "b", "c"]


def test_comment_preserves_line_numbers():
    toks, _ = tokenize("a /* x\ny */ b")
    assert toks[0].location.line == 1
    assert toks[1].location.line == 2


def test_string_literal():
    toks, _ = tokenize('@name("foo.bar")')
    strings = [t for t in toks if t.kind == "STRING"]
    assert strings[0].value == "foo.bar"


def test_include_recorded():
    _toks, includes = tokenize('#include <core.p4>\n#include "v1model.p4"\nheader h {}')
    assert includes == ["core.p4", "v1model.p4"]


def test_define_substitution():
    toks, _ = tokenize("#define WIDTH 16\nbit<WIDTH> x;")
    ints = [t for t in toks if t.kind == "INT"]
    assert ints[0].value == 16


def test_unterminated_comment_raises():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_locations_track_columns():
    toks, _ = tokenize("ab cd")
    assert toks[0].location.column == 1
    assert toks[1].location.column == 4


def test_unexpected_character():
    with pytest.raises(LexError):
        tokenize("a ` b")
