"""Resolved-type unit tests."""

import pytest

from repro.frontend.errors import TypeError_
from repro.frontend.types import (
    BitsType,
    BoolType,
    EnumType,
    ErrorType,
    HeaderType,
    StackType,
    StructType,
    VarbitType,
)


def test_bits_type_interned():
    assert BitsType(8) is BitsType(8)
    assert BitsType(8) is not BitsType(9)
    assert BitsType(8, signed=True) is not BitsType(8)


def test_bits_repr():
    assert repr(BitsType(8)) == "bit<8>"
    assert repr(BitsType(8, signed=True)) == "int<8>"


def test_bool_singleton():
    assert BoolType() is BoolType()
    assert BoolType().bit_width() == 1


def test_error_type_width():
    assert ErrorType().bit_width() == 32
    assert ErrorType() is ErrorType()


def test_enum_synthetic_values():
    e = EnumType("Suits", ["C", "D", "H", "S"])
    assert e.value_of("C") == 0
    assert e.value_of("S") == 3
    assert e.bit_width() == 2  # 4 members fit in 2 bits


def test_enum_explicit_values():
    e = EnumType("Proto", ["TCP", "UDP"], underlying_width=8,
                 member_values={"TCP": 6, "UDP": 17})
    assert e.value_of("UDP") == 17
    assert e.bit_width() == 8
    with pytest.raises(TypeError_):
        e.value_of("SCTP")


def test_header_layout():
    eth = HeaderType("eth", [("dst", BitsType(48)), ("src", BitsType(48)),
                             ("etype", BitsType(16))])
    assert eth.bit_width() == 112
    assert eth.field_offset("dst") == 0
    assert eth.field_offset("etype") == 96
    with pytest.raises(TypeError_):
        eth.field_offset("nope")


def test_header_rejects_composite_fields():
    inner = StructType("s", [("x", BitsType(8))])
    with pytest.raises(TypeError_):
        HeaderType("bad", [("inner", inner)])


def test_struct_width_sums():
    s = StructType("m", [("a", BitsType(9)), ("b", BoolType())])
    assert s.bit_width() == 10
    assert s.field_types["a"] == BitsType(9)


def test_stack_type():
    eth = HeaderType("h", [("f", BitsType(8))])
    st = StackType(eth, 4)
    assert st.bit_width() == 32
    with pytest.raises(TypeError_):
        StackType(eth, 0)


def test_varbit_type():
    v = VarbitType(320)
    assert v.bit_width() == 320
    assert "varbit" in repr(v)
