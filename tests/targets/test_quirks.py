"""The App. A.1 quirk catalogue, as executable tests.

Each test pins one documented target-implementation detail the paper
lists as requiring whole-program semantics.
"""

import pytest

from repro import TestGen, load_program
from repro.targets import EbpfModel, T2na, Tna, V1Model
from repro.testback.runner import run_suite


# ---------------------------------------------------------------------------
# v1model quirks
# ---------------------------------------------------------------------------

def test_bmv2_default_output_port_is_zero():
    """'BMv2's default output port is 0.'"""
    result = TestGen(load_program("fig1a"), target=V1Model(), seed=1).run()
    no_entry = [t for t in result.tests if not t.entries and not t.dropped]
    assert no_entry and all(t.expected[0].port == 0 for t in no_entry)


def test_bmv2_drop_port_511():
    """'BMv2 drops packets when the egress port is 511.'"""
    result = TestGen(load_program("fig1a"), target=V1Model(), seed=1).run()
    dropped = [t for t in result.tests if t.dropped and t.entries]
    assert dropped
    for t in dropped:
        port_arg = dict(t.entries[0].action_args).get("port")
        assert port_arg == 511


def test_bmv2_parser_error_does_not_drop():
    """'A parser error in BMv2 does not drop the packet; the header is
    invalid and execution skips to ingress.'"""
    result = TestGen(load_program("fig1a"), target=V1Model(), seed=1).run()
    short = [t for t in result.tests if t.input_packet.width < 112]
    assert short and all(not t.dropped for t in short)


def test_bmv2_uninitialized_variables_read_zero():
    """'All uninitialized variables are implicitly initialized to 0.'"""
    program_src = """
    #include <core.p4>
    #include <v1model.p4>
    header h_t { bit<8> f; }
    struct hs { h_t h; }
    struct m_t { bit<8> uninit; }
    parser P(packet_in pkt, out hs h, inout m_t m,
             inout standard_metadata_t sm) {
        state start { pkt.extract(h.h); transition accept; }
    }
    control V(inout hs h, inout m_t m) { apply { } }
    control I(inout hs h, inout m_t m, inout standard_metadata_t sm) {
        bit<8> local_var;
        apply {
            if (local_var == 0) { sm.egress_spec = 3; }
            else { sm.egress_spec = 4; }
        }
    }
    control E(inout hs h, inout m_t m, inout standard_metadata_t sm) { apply { } }
    control CK(inout hs h, inout m_t m) { apply { } }
    control D(packet_out pkt, in hs h) { apply { pkt.emit(h.h); } }
    V1Switch(P(), V(), I(), E(), CK(), D()) main;
    """
    from repro import load_program as lp

    program = lp(program_src)
    result = TestGen(program, target=V1Model(), seed=1).run()
    forwarded = [t for t in result.tests if not t.dropped]
    # Zero-init means the branch is constant: everyone goes to port 3.
    assert forwarded and all(t.expected[0].port == 3 for t in forwarded)
    passed, _ = run_suite(result.tests, program)
    assert passed == len(result.tests)


def test_bmv2_const_entry_priority_annotation():
    """'The table implementation in BMv2 supports the priority
    annotation, which changes the order of evaluation of constant
    entries.'"""
    from repro.ir.nodes import IrTableEntry

    program = load_program("match_kinds")
    table = program.find_table("mk_ingress.ternary_table")
    ordered = V1Model().order_const_entries(table)
    assert [e.priority for e in ordered] == [1, 2]


def test_bmv2_recirculate_bounded_and_replayable():
    program = load_program("recirc_demo")
    result = TestGen(program, target=V1Model(), seed=1).run()
    # hops==1 path recirculates: its trace must show it.
    recirc = [t for t in result.tests
              if any("recirculate" in line for line in t.trace)]
    assert recirc
    passed, _ = run_suite(result.tests, program)
    assert passed == len(result.tests)


# ---------------------------------------------------------------------------
# tna/t2na quirks
# ---------------------------------------------------------------------------

def test_tofino_minimum_packet_size():
    """'Packets must have a minimum size of 64 bytes.'"""
    result = TestGen(load_program("tna_forward"), target=Tna(), seed=1).run()
    assert result.tests
    for t in result.tests:
        assert t.input_packet.width >= 64 * 8


def test_tofino_unwritten_egress_port_drops():
    """'If the egress port variable is not written ... the packet is
    automatically considered dropped.'"""
    result = TestGen(load_program("tna_forward"), target=Tna(), seed=1).run()
    # The miss path runs default drop(); the noop-ish miss cannot
    # forward either because the port was never written.
    no_entry = [t for t in result.tests if not t.entries]
    assert no_entry and all(t.dropped for t in no_entry)


def test_tofino_metadata_prepend_not_in_input():
    """'Tofino prepends metadata to the packet ... parseable but not
    part of the input.'  The program extracts 64+64 bits of metadata
    before Ethernet, yet the input packet contains only Ethernet."""
    result = TestGen(load_program("tna_forward"), target=Tna(), seed=1).run()
    forwarded = [t for t in result.tests if not t.dropped]
    assert forwarded
    for t in forwarded:
        # Output is the ethernet header (112 bits) plus padding payload.
        assert t.expected[0].width >= 112


def test_t2na_short_packet_skips_extract():
    """Tofino 2 'will not execute the extract call' on short packets:
    the header stays invalid instead of unspecified."""
    t1 = Tna()
    t2 = T2na()
    assert t2.PORT_METADATA_BITS > t1.PORT_METADATA_BITS
    program = load_program("tna_forward")
    result = TestGen(program, target=t2, seed=1).run()
    passed, _ = run_suite(result.tests, program)
    assert passed == len(result.tests)


def test_tna_taint_mitigation_auto_init_metadata():
    """'auto_init_metadata initializes all otherwise random metadata
    with 0' (taint mitigation 3)."""
    from repro.ir import load_ir
    from repro.programs import get_program_source

    src = "@auto_init_metadata\n" + get_program_source("tna_forward")
    # The annotation is attached at top level; the lowering stores
    # program-level annotations.
    program = load_ir(src)
    target = Tna()
    state = target.build_initial_state(program)
    assert state.props["meta_mode"] in ("zero", "taint")


# ---------------------------------------------------------------------------
# ebpf quirks
# ---------------------------------------------------------------------------

def test_ebpf_failing_extract_drops():
    """'A failing extract or advance in the eBPF kernel automatically
    drops the packet.'"""
    result = TestGen(load_program("ebpf_filter"), target=EbpfModel(), seed=1).run()
    short = [t for t in result.tests if t.input_packet.width < 112]
    assert short and all(t.dropped for t in short)


def test_ebpf_implicit_deparser_reemits_headers():
    """'The eBPF target does not have a deparser ... iterate over all
    headers and emit based on validity.'"""
    program = load_program("ebpf_filter")
    result = TestGen(program, target=EbpfModel(), seed=1).run()
    accepted = [t for t in result.tests if not t.dropped]
    assert accepted
    for t in accepted:
        # eth (112) + ipv4 (160) re-emitted.
        assert t.expected[0].width == t.input_packet.width
    passed, _ = run_suite(result.tests, program)
    assert passed == len(result.tests)


def test_ebpf_has_no_recirculation():
    """'ebpf_model does not support recirculation' — the extension
    registers no recirculate extern."""
    target = EbpfModel()
    assert target.extern_impl("recirculate_preserving_field_list") is None


def test_bmv2_clone_duplicates_packet():
    """'BMv2's clone extern behaves differently depending on the
    location it was called' — the I2E clone adds a second expected
    output on the mirror session's port."""
    program = load_program("clone_demo")
    result = TestGen(program, target=V1Model(), seed=1).run()
    cloned = [t for t in result.tests if len(t.expected) == 2]
    assert cloned, "a cloned path must produce two expected packets"
    t = cloned[0]
    # flags == 1 triggers the clone.
    flags = (t.input_packet.bits >> (t.input_packet.width - 8)) & 0xFF
    assert flags == 1
    passed, _ = run_suite(result.tests, program)
    assert passed == len(result.tests)
