"""Test-framework capability limits (paper §6).

"The richer the API of the test framework, the more P4Testgen can
exercise the control plane ... BMv2 STF does not yet support adding
range entries ... P4Testgen will cover fewer paths than is otherwise
possible."
"""

import pytest

from repro import TestGen, load_program
from repro.targets import Tna, V1Model
from repro.testback.runner import run_suite


def test_stf_cannot_install_range_entries():
    """The range table in match_kinds.p4 only misses under STF."""
    program = load_program("match_kinds")
    ptf = TestGen(program, target=V1Model(test_framework="ptf"), seed=1).run()
    stf = TestGen(program, target=V1Model(test_framework="stf"), seed=1).run()

    def range_hits(tests):
        return sum(
            1
            for t in tests
            for e in t.entries
            if e.table.endswith("range_table")
        )

    assert range_hits(ptf.tests) > 0
    assert range_hits(stf.tests) == 0
    assert len(stf.tests) < len(ptf.tests), "STF must cover fewer paths"


def test_stf_cannot_initialize_registers():
    """register_demo's DEADBEEF gate is only reachable via PTF."""
    program = load_program("register_demo")
    ptf = TestGen(program, target=V1Model(test_framework="ptf"), seed=1).run()
    stf = TestGen(program, target=V1Model(test_framework="stf"), seed=1).run()
    assert any(t.registers for t in ptf.tests)
    assert not any(t.registers for t in stf.tests)
    # The opcode==2 / value==DEADBEEF forward path needs register init.
    ptf_ports = {t.expected[0].port for t in ptf.tests if not t.dropped}
    stf_ports = {t.expected[0].port for t in stf.tests if not t.dropped}
    assert 2 in ptf_ports
    assert 2 not in stf_ports


def test_capability_limited_tests_still_sound():
    for framework in ("stf", "ptf"):
        program = load_program("match_kinds")
        result = TestGen(
            program, target=V1Model(test_framework=framework), seed=1
        ).run(max_tests=30)
        passed, _ = run_suite(result.tests, program)
        assert passed == len(result.tests)


def test_unknown_framework_rejected():
    with pytest.raises(ValueError):
        V1Model(test_framework="carrier-pigeon")


def test_default_framework_is_unrestricted():
    target = Tna()
    assert target.backend_caps.range_entries
    assert target.backend_caps.registers
