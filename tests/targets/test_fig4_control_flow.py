"""Paper Fig. 4/5: target-defined pipeline control flow.

The green dashed segments of Fig. 5 — drop_ctl dropping in the traffic
manager, resubmit re-entering ingress — are target extension code, not
core code.  These tests pin the modeled control flow on the tna
analogue of the paper's snippet.
"""

import pytest

from repro import TestGen, load_program
from repro.targets import Tna
from repro.testback.runner import run_suite


@pytest.fixture(scope="module")
def fig4():
    program = load_program("tna_fig4")
    result = TestGen(program, target=Tna(), seed=1).run()
    return program, result


def _ttl_of(test):
    # First 8 bits of the 64-bit ipish header.
    return (test.input_packet.bits >> (test.input_packet.width - 8)) & 0xFF


def test_ttl_zero_drops_in_tm(fig4):
    _program, result = fig4
    dropped = [t for t in result.tests if t.dropped]
    assert dropped
    assert any(_ttl_of(t) == 0 for t in dropped)
    # The drop happens in the TM, visible in the trace.
    assert any(
        any("drop_ctl" in line for line in t.trace)
        for t in dropped
    )


def test_ttl_one_resubmits_then_drops(fig4):
    """TTL 1: first pass resubmits with TTL rewritten to 0; the second
    ingress pass drops — the packet never leaves."""
    _program, result = fig4
    resubmitted = [
        t for t in result.tests
        if any("resubmit" in line for line in t.trace)
    ]
    assert resubmitted
    t = resubmitted[0]
    assert _ttl_of(t) == 1
    assert t.dropped


def test_ttl_other_forwards(fig4):
    _program, result = fig4
    forwarded = [t for t in result.tests if not t.dropped]
    assert forwarded
    for t in forwarded:
        assert _ttl_of(t) not in (0, 1)
        assert t.expected[0].port == 1


def test_all_fig4_tests_replay(fig4):
    program, result = fig4
    passed, results = run_suite(result.tests, program)
    assert passed == len(result.tests), [
        (r.kind, r.detail) for r in results if not r.passed
    ]


def test_parser_err_path_unreachable_under_min_size(fig4):
    """Reading parser_err flips the short-packet policy, but Tofino's
    64-byte minimum means this program's parse graph can never fail:
    the diagnostics branch stays uncovered — faithfully."""
    _program, result = fig4
    assert result.statement_coverage < 100.0
    uncovered = result.coverage.uncovered()
    assert len(uncovered) == 1
