"""Repo hygiene guard: build artifacts must never be tracked.

Tier-1 fails if ``git ls-files`` shows compiled bytecode, pycache
directories, or setuptools egg-info metadata — the classes of artifact
this repo has historically leaked into commits.  Skips cleanly when
git is unavailable (e.g. an exported source tarball).
"""

import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

FORBIDDEN_SUFFIXES = (".pyc", ".pyo")
FORBIDDEN_DIRS = ("__pycache__",)


def _is_artifact(path: str) -> bool:
    parts = path.split("/")
    return (path.endswith(FORBIDDEN_SUFFIXES)
            or any(part in FORBIDDEN_DIRS or part.endswith(".egg-info")
                   for part in parts))


def _tracked_files():
    try:
        out = subprocess.run(
            ["git", "ls-files"], cwd=REPO_ROOT, capture_output=True,
            text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        pytest.skip("git not available")
    if out.returncode != 0:
        pytest.skip("not a git checkout")
    return out.stdout.splitlines()


def test_no_build_artifacts_tracked():
    offenders = [path for path in _tracked_files() if _is_artifact(path)]
    assert offenders == [], (
        "build artifacts are tracked in git (git rm --cached them and "
        f"extend .gitignore): {offenders}"
    )


def test_gitignore_covers_artifact_classes():
    gitignore = REPO_ROOT / ".gitignore"
    assert gitignore.is_file(), "root .gitignore is missing"
    text = gitignore.read_text()
    for pattern in ("__pycache__/", "*.pyc", "*.egg-info/"):
        assert pattern in text, f".gitignore lost the {pattern!r} rule"
