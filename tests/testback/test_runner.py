"""Runner unit tests: comparison semantics and simulator dispatch."""

import pytest

from repro import load_program
from repro.testback.runner import make_simulator, run_test
from repro.testback.spec import AbstractTestCase, ExpectedPacket, PacketData


@pytest.fixture(scope="module")
def fig1a():
    return load_program("fig1a")


def make_test(**kwargs):
    defaults = dict(
        test_id=1,
        target="v1model",
        input_packet=PacketData(bits=0, width=112, port=0),
        expected=[ExpectedPacket(bits=0xBEEF, width=112, port=0)],
    )
    defaults.update(kwargs)
    return AbstractTestCase(**defaults)


def test_simulator_dispatch(fig1a):
    for name in ("v1model", "spec-only"):
        sim = make_simulator(name, fig1a)
        assert sim.__class__.__name__ == "Bmv2Simulator"
    tna_prog = load_program("tna_forward")
    assert make_simulator("tna", tna_prog).version == 1
    assert make_simulator("t2na", tna_prog).version == 2
    with pytest.raises(KeyError):
        make_simulator("asic9000", fig1a)


def test_passing_test(fig1a):
    result = run_test(make_test(), fig1a)
    assert result.passed and result.kind == "pass"


def test_wrong_payload_detected(fig1a):
    bad = make_test(
        expected=[ExpectedPacket(bits=0xDEAD, width=112, port=0)]
    )
    result = run_test(bad, fig1a)
    assert not result.passed
    assert result.kind == "mask_violation"
    assert "payload mismatch" in result.detail


def test_wrong_port_detected(fig1a):
    bad = make_test(expected=[ExpectedPacket(bits=0xBEEF, width=112, port=7)])
    result = run_test(bad, fig1a)
    assert not result.passed
    assert result.kind == "wrong_port" and "port" in result.detail


def test_wrong_width_detected(fig1a):
    bad = make_test(expected=[ExpectedPacket(bits=0xBEEF, width=104, port=0)])
    result = run_test(bad, fig1a)
    assert not result.passed
    assert result.kind == "wrong_output" and "width" in result.detail


def test_registry_lists_known_targets_on_miss(fig1a):
    with pytest.raises(KeyError, match="v1model"):
        make_simulator("asic9000", fig1a)


def test_register_simulator_round_trip(fig1a):
    from repro.testback.runner import SIMULATORS, register_simulator

    calls = []

    def factory(program, seed):
        calls.append((program, seed))
        return make_simulator("v1model", program, seed)

    register_simulator("custom-sim", factory)
    try:
        sim = make_simulator("custom-sim", fig1a, seed=3)
        assert sim.__class__.__name__ == "Bmv2Simulator"
        assert calls == [(fig1a, 3)]
        with pytest.raises(TypeError):
            register_simulator("bad", "not-a-callable")
    finally:
        SIMULATORS.pop("custom-sim", None)


def test_dont_care_mask_suppresses_mismatch(fig1a):
    # Expect a wrong EtherType but mark those bits don't-care.
    test = make_test(
        expected=[
            ExpectedPacket(bits=0x1234, width=112, port=0, dont_care=0xFFFF)
        ]
    )
    result = run_test(test, fig1a)
    assert result.passed


def test_expected_drop_but_forwarded(fig1a):
    test = make_test(expected=[], dropped=True)
    result = run_test(test, fig1a)
    assert not result.passed
    assert result.kind == "wrong_output"
    assert "expected drop" in result.detail


def test_missing_output_detected(fig1a):
    test = make_test(
        entries=[],
        expected=[
            ExpectedPacket(bits=0xBEEF, width=112, port=0),
            ExpectedPacket(bits=0xBEEF, width=112, port=1),
        ],
    )
    result = run_test(test, fig1a)
    assert not result.passed
    assert result.kind == "missing_output"
