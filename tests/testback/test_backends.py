"""Test back-end renderer unit tests (STF, PTF, Protobuf)."""

import pytest

from repro.testback import BACKENDS, get_backend
from repro.testback.spec import (
    AbstractTestCase,
    ExpectedPacket,
    PacketData,
    RegisterSpec,
    TableEntrySpec,
    ValueSetSpec,
)


@pytest.fixture
def sample_test():
    return AbstractTestCase(
        test_id=7,
        target="v1model",
        program="sample.p4",
        input_packet=PacketData(bits=0xDEADBEEF, width=32, port=3),
        entries=[
            TableEntrySpec(
                table="Ingress.t1",
                action="Ingress.set_out",
                keys=[
                    ("type", "exact", {"value": 0xBEEF}),
                    ("mask_key", "ternary", {"value": 0x10, "mask": 0xF0}),
                    ("prefix", "lpm", {"value": 0x0A000000, "prefix_len": 8}),
                    ("span", "range", {"lo": 5, "hi": 10}),
                ],
                action_args=[("port", 4)],
                priority=2,
            )
        ],
        value_sets=[ValueSetSpec(value_set="P.vs", member=0x800)],
        registers=[RegisterSpec(instance="C.reg", index=0, value=42)],
        expected=[
            ExpectedPacket(bits=0xDEADBEEF, width=32, port=4, dont_care=0xFF)
        ],
    )


def test_packet_data_bytes():
    pkt = PacketData(bits=0xABCD, width=16, port=0)
    assert pkt.to_bytes() == b"\xab\xcd"
    assert pkt.hex() == "ABCD"


def test_packet_data_unaligned_pads_right():
    pkt = PacketData(bits=0b1011, width=4, port=0)
    assert pkt.to_bytes() == bytes([0b10110000])


def test_expected_packet_mask():
    exp = ExpectedPacket(bits=0xFF00, width=16, dont_care=0x00FF)
    assert exp.mask_bytes() == b"\xff\x00"


def test_zero_width_packet():
    pkt = PacketData(bits=0, width=0, port=1)
    assert pkt.to_bytes() == b""


def test_stf_renders_all_sections(sample_test):
    text = get_backend("stf").render_test(sample_test)
    assert "add Ingress.t1 prio 2" in text
    assert "type:0xbeef" in text
    assert "mask_key:0x10&&&0xf0" in text
    assert "prefix:0xa000000/8" in text
    assert "packet 3 DEADBEEF" in text
    assert "expect 4" in text
    assert "add_value_set P.vs 0x800" in text


def test_stf_wildcards_for_dont_care(sample_test):
    text = get_backend("stf").render_test(sample_test)
    # Low byte is don't-care -> two '*' nibbles at the end.
    assert text.rstrip().endswith("DEADBE**")


def test_stf_drop_expectation():
    test = AbstractTestCase(
        test_id=1,
        target="v1model",
        input_packet=PacketData(bits=0, width=8, port=0),
        dropped=True,
    )
    text = get_backend("stf").render_test(test)
    assert "expect no packet" in text


def test_ptf_renders_runtest(sample_test):
    text = get_backend("ptf").render_test(sample_test)
    assert "class Test7" in text
    assert "insert_table_entry" in text
    assert "send_packet" in text
    assert "verify_packet_masked" in text
    assert "write_register" in text
    assert "priority=2" in text


def test_ptf_range_support(sample_test):
    text = get_backend("ptf").render_test(sample_test)
    assert "range_(0x5, 0xa)" in text


def test_protobuf_text_format(sample_test):
    text = get_backend("protobuf").render_test(sample_test)
    assert "test_case {" in text
    assert 'table: "Ingress.t1"' in text
    assert 'field: "type"' in text
    assert "input_packet {" in text
    assert "expected_packet {" in text
    assert 'register { name: "C.reg"' in text


def test_backend_registry():
    assert set(BACKENDS) == {"stf", "ptf", "protobuf"}
    with pytest.raises(KeyError):
        get_backend("nope")


def test_render_suite_joins(sample_test):
    for name in BACKENDS:
        suite = get_backend(name).render_suite([sample_test, sample_test])
        assert suite.count("DEADBEEF".lower()) >= 1 or "DEADBEEF" in suite
