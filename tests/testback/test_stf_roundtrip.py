"""STF round trip: emit -> parse -> replay on the simulator."""

import pytest

from repro import TestGen, load_program
from repro.targets import V1Model
from repro.testback import get_backend
from repro.testback.runner import run_suite
from repro.testback.stf_parser import StfParseError, parse_stf


@pytest.fixture(scope="module")
def fig1a_suite():
    program = load_program("fig1a")
    result = TestGen(program, target=V1Model(), seed=1).run()
    text = get_backend("stf").render_suite(result.tests)
    return program, result.tests, text


def test_parse_recovers_test_count(fig1a_suite):
    _program, tests, text = fig1a_suite
    parsed = parse_stf(text)
    assert len(parsed) == len(tests)


def test_parse_recovers_packets(fig1a_suite):
    _program, tests, text = fig1a_suite
    parsed = parse_stf(text)
    for original, recovered in zip(tests, parsed):
        assert recovered.input_packet.width == original.input_packet.width
        assert recovered.input_packet.bits == original.input_packet.bits
        assert recovered.input_packet.port == original.input_packet.port
        assert recovered.dropped == (original.dropped or not original.expected)


def test_parse_recovers_entries(fig1a_suite):
    _program, tests, text = fig1a_suite
    parsed = parse_stf(text)
    for original, recovered in zip(tests, parsed):
        assert len(recovered.entries) == len(original.entries)
        for oe, re_ in zip(original.entries, recovered.entries):
            assert re_.table == oe.table
            assert re_.action == oe.action
            assert dict(re_.action_args) == dict(oe.action_args)


def test_parsed_tests_replay_green(fig1a_suite):
    program, _tests, text = fig1a_suite
    parsed = parse_stf(text)
    passed, results = run_suite(parsed, program)
    assert passed == len(parsed), [
        (r.kind, r.detail) for r in results if not r.passed
    ]


def test_wildcards_round_trip():
    program = load_program("taint_key")
    result = TestGen(program, target=V1Model(), seed=1).run()
    text = get_backend("stf").render_suite(result.tests)
    parsed = parse_stf(text)
    # taint_key's nonce-derived wildcards survive the round trip.
    passed, _ = run_suite(parsed, program)
    assert passed == len(parsed)


def test_value_set_round_trip():
    program = load_program("value_set_demo")
    result = TestGen(program, target=V1Model(), seed=1).run()
    text = get_backend("stf").render_suite(result.tests)
    parsed = parse_stf(text)
    assert any(t.value_sets for t in parsed)
    passed, _ = run_suite(parsed, program)
    assert passed == len(parsed)


def test_bad_line_raises():
    with pytest.raises(StfParseError):
        parse_stf("# test 1 (v1model, x.p4)\nfrobnicate everything\n")
