"""Back-end registry extensibility and streaming suite writing."""

import io

import pytest

from repro import TestGen, TestGenConfig, load_program
from repro.targets import V1Model
from repro.testback import (
    BACKENDS,
    SuiteWriter,
    get_backend,
    register_backend,
)


def _some_tests(n=3):
    gen = TestGen(load_program("fig1a"), target=V1Model(),
                  config=TestGenConfig(seed=1, max_tests=n))
    return list(gen.iter_tests())


# ---------------------------------------------------------------------------
# register_backend
# ---------------------------------------------------------------------------

class _CountBackend:
    name = "count"
    SUITE_SEPARATOR = "\n"
    SUITE_SUFFIX = "\n"

    def render_test(self, test):
        return f"test {test.test_id}"

    def render_suite(self, tests):
        return "\n".join(self.render_test(t) for t in tests) + "\n"


def test_register_backend_round_trip():
    register_backend("count", _CountBackend)
    try:
        backend = get_backend("count")
        assert backend.render_suite(_some_tests(2)) == "test 1\ntest 2\n"
    finally:
        del BACKENDS["count"]


def test_unknown_backend_error_lists_registered_names():
    with pytest.raises(KeyError) as exc:
        get_backend("nonesuch")
    message = str(exc.value)
    for name in ("stf", "ptf", "protobuf"):
        assert name in message


def test_register_backend_validates():
    with pytest.raises(ValueError):
        register_backend("", _CountBackend)

    class Incomplete:
        def render_suite(self, tests):
            return ""

    with pytest.raises(TypeError, match="render_test"):
        register_backend("broken", Incomplete)
    assert "broken" not in BACKENDS


def test_registered_backend_reaches_result_emit():
    register_backend("count", _CountBackend)
    try:
        gen = TestGen(load_program("fig1a"), target=V1Model(),
                      config=TestGenConfig(seed=1, max_tests=2))
        assert gen.run().emit("count") == "test 1\ntest 2\n"
    finally:
        del BACKENDS["count"]


# ---------------------------------------------------------------------------
# SuiteWriter streaming == render_suite buffering
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["stf", "ptf", "protobuf"])
def test_streaming_matches_render_suite(name):
    tests = _some_tests(3)
    backend = get_backend(name)
    buf = io.StringIO()
    writer = SuiteWriter(backend, buf)
    for test in tests:
        writer.write(test)
    writer.close()
    assert buf.getvalue() == backend.render_suite(tests)
    assert writer.count == len(tests)


@pytest.mark.parametrize("name", ["stf", "ptf", "protobuf"])
def test_streaming_matches_render_suite_empty(name):
    backend = get_backend(name)
    buf = io.StringIO()
    SuiteWriter(backend, buf).close()
    assert buf.getvalue() == backend.render_suite([])
