"""Regression lock on the engine's determinism guarantee.

PR 1's headline property: with a fixed seed, ``generate_suite`` output
is *byte-identical* for any worker count — the DFS-merge shard
recombination plus canonical (now alpha-invariant) cached solving
together guarantee it.  This file pins the guarantee across the jobs
axis so later cache or sharding changes cannot silently weaken it.
"""

import os
import sys

import pytest

from repro import TestGenConfig, generate_suite
from repro.testback import get_backend

PAIRS = [("fig1a", "v1model"), ("match_kinds", "v1model")]
JOBS = (1, 2, 4)

# The fake external solver rides in through the generic "dimacs"
# back end via REPRO_SOLVER_PATH — an environment variable, so worker
# processes inherit it and jobs>1 portfolio runs exercise real
# subprocess racing in every shard.
FAKE_SOLVER = os.path.join(os.path.dirname(__file__), "..", "smt",
                           "fake_dimacs_solver.py")


def _suite_bytes(jobs: int, **overrides) -> bytes:
    config = TestGenConfig(seed=5, max_tests=8, **overrides)
    results = generate_suite(PAIRS, jobs=jobs, config=config)
    backend = get_backend("stf")
    return "\n===\n".join(
        backend.render_suite(r.tests) for r in results
    ).encode()


@pytest.fixture(scope="module")
def reference():
    return _suite_bytes(1)


@pytest.mark.parametrize("jobs", [j for j in JOBS if j != 1])
def test_generate_suite_byte_identical_across_jobs(reference, jobs):
    assert _suite_bytes(jobs) == reference


def test_reference_run_is_nonempty(reference):
    # Guards against the identity holding vacuously.
    assert reference.count(b"packet") >= 2


@pytest.mark.parametrize("jobs", JOBS)
def test_elision_on_and_off_emit_identical_suites(reference, jobs):
    """Query elision may change how answers are found, never which
    tests come out: the elide-off suite must be byte-identical to the
    (elide-on by default) reference, at every worker count."""
    assert _suite_bytes(jobs, elide=False) == reference


@pytest.mark.parametrize("jobs", JOBS)
def test_interning_on_and_off_emit_identical_suites(reference, jobs):
    """Hash-consing changes how fast terms compare and how much CNF is
    rebuilt, never which tests come out: the intern-off suite must be
    byte-identical to the (intern-on by default) reference, at every
    worker count."""
    assert _suite_bytes(jobs, intern=False) == reference


@pytest.mark.parametrize("jobs", JOBS)
def test_incremental_on_and_off_emit_identical_suites(reference, jobs):
    """The incremental status plane only changes how feasibility
    *verdicts* are computed (assumption-scoped solves over a retained
    clause database); every emitted model still comes from the
    canonical one-shot solve path — so the incremental-off suite must
    be byte-identical to the (incremental-on by default) reference, at
    every worker count."""
    assert _suite_bytes(jobs, incremental=False) == reference


@pytest.mark.parametrize("jobs", JOBS)
def test_portfolio_on_and_off_emit_identical_suites(reference, jobs,
                                                    monkeypatch):
    """The solver portfolio races an external back end on hard queries,
    but verdicts are objective and models always come from the primary
    back end — so the portfolio-on suite must be byte-identical to the
    (portfolio-off) reference, at every worker count."""
    monkeypatch.setenv("REPRO_SOLVER_PATH",
                       f"{sys.executable} {os.path.abspath(FAKE_SOLVER)}")
    raced = _suite_bytes(jobs, portfolio=("dimacs",), portfolio_budget=1)
    assert raced == reference


def test_per_program_results_align(reference):
    config = TestGenConfig(seed=5, max_tests=8)
    seq = generate_suite(PAIRS, jobs=1, config=config)
    par = generate_suite(PAIRS, jobs=4, config=config)
    assert [r.program for r in seq] == [r.program for r in par]
    for s, p in zip(seq, par):
        assert len(s.tests) == len(p.tests)
        assert s.statement_coverage == p.statement_coverage


# ---------------------------------------------------------------------------
# Coverage feedback loop (PR 7): the greedy strategy, the coverage-goal
# stop limit, and steered fuzz campaigns must all stay deterministic
# across the jobs axis.
# ---------------------------------------------------------------------------

def test_greedy_batch_byte_identical_across_jobs():
    """Coverage-greedy exploration is not intra-program shardable, but
    a multi-program batch runs each program sequentially inside its
    worker — so greedy suites must still be byte-identical at any
    worker count."""
    ref = _suite_bytes(1, strategy="greedy")
    assert ref.count(b"packet") >= 2
    for jobs in (2, 4):
        assert _suite_bytes(jobs, strategy="greedy") == ref


@pytest.mark.parametrize("jobs", JOBS)
def test_coverage_goal_truncates_identically_across_jobs(jobs):
    """``coverage_goal`` is checked at test boundaries and replayed in
    the shard merge, so a goal-truncated run stops on exactly the same
    test whether the exploration was sharded or not."""
    config = TestGenConfig(seed=5, max_tests=32, coverage_goal=60.0)
    [result] = generate_suite([("match_kinds", "v1model")], jobs=jobs,
                              config=config)
    [ref] = generate_suite([("match_kinds", "v1model")], jobs=1,
                           config=config)
    backend = get_backend("stf")
    assert backend.render_suite(result.tests) == \
        backend.render_suite(ref.tests)
    assert result.statement_coverage >= 60.0
    # The goal (not the cap) did the truncating.
    assert len(ref.tests) < 32


@pytest.mark.parametrize("jobs", JOBS)
def test_steered_campaign_report_identical_across_jobs(jobs, tmp_path):
    """A steered fuzz campaign's run report — case outcomes, construct
    coverage, steering schedule — is byte-identical at any worker
    count once wall-time/cache-warmth fields are stripped."""
    import json

    from repro.fuzz import FuzzCampaignConfig, run_fuzz_campaign
    from repro.report import Recorder, normalized

    def report_bytes(j, corpus):
        recorder = Recorder("fuzz", seed=3)
        run_fuzz_campaign(FuzzCampaignConfig(
            seed=3, count=6, targets=("v1model",), corpus_dir=str(corpus),
            jobs=j, max_tests=4, shrink=False, steer=True, steer_batch=3,
        ), recorder=recorder)
        return json.dumps(normalized(recorder.report()),
                          sort_keys=True).encode()

    assert report_bytes(jobs, tmp_path / f"c{jobs}") == \
        report_bytes(1, tmp_path / "c1")
