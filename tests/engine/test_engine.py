"""Parallel engine: determinism, merge order, batch orchestration."""

import pytest

from repro import Engine, TestGen, TestGenConfig, generate_suite, load_program
from repro.engine import dfs_order_key
from repro.engine.orchestrator import ProgramRun
from repro.targets import get_target


_PROGRAMS = {}


def _program(name):
    # One IrProgram per corpus name: stmt_ids come from a process-global
    # counter at lowering time, so coverage sets are only comparable
    # between runs that share the same program object.
    if name not in _PROGRAMS:
        _PROGRAMS[name] = load_program(name)
    return _PROGRAMS[name]


def _suite_text(program, target, config, backend="stf"):
    gen = TestGen(_program(program), target=get_target(target),
                  config=config)
    result = gen.run()
    return result.emit(backend), result


# ---------------------------------------------------------------------------
# The headline guarantee: jobs=4 output is byte-identical to jobs=1
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("program,target,max_tests", [
    ("fig1a", "v1model", None),
    ("middleblock", "v1model", 20),
    ("mpls_stack", "v1model", 15),
])
def test_jobs_byte_identical(program, target, max_tests):
    config = TestGenConfig(seed=1, max_tests=max_tests)
    seq_text, seq = _suite_text(program, target, config)
    par_text, par = _suite_text(program, target, config.replace(jobs=4))
    assert par_text == seq_text
    assert [t.test_id for t in par.tests] == [t.test_id for t in seq.tests]
    assert par.coverage.covered == seq.coverage.covered
    assert par.coverage.report() == seq.coverage.report()


def test_jobs_identical_across_backends():
    config = TestGenConfig(seed=3, max_tests=8)
    for backend in ("stf", "ptf", "protobuf"):
        seq_text, _ = _suite_text("fig1a", "v1model", config, backend)
        par_text, _ = _suite_text("fig1a", "v1model",
                                  config.replace(jobs=3), backend)
        assert par_text == seq_text, backend


def test_jobs_identical_with_randomize_values():
    config = TestGenConfig(seed=7, max_tests=10, randomize_values=True)
    seq_text, _ = _suite_text("middleblock", "v1model", config)
    par_text, _ = _suite_text("middleblock", "v1model",
                              config.replace(jobs=4))
    assert par_text == seq_text


def test_truncation_lands_on_same_test():
    # max_tests cutting mid-suite must truncate at the identical point.
    full, _ = _suite_text("middleblock", "v1model",
                          TestGenConfig(seed=1, max_tests=9))
    par, _ = _suite_text("middleblock", "v1model",
                         TestGenConfig(seed=1, max_tests=9, jobs=2))
    assert par == full


def test_parallel_stats_expose_cache_counters():
    gen = TestGen(load_program("middleblock"), target=get_target("v1model"),
                  config=TestGenConfig(seed=1, max_tests=10, jobs=2))
    tests = list(gen.iter_tests())
    assert tests
    stats = gen.last_run.stats.as_dict()
    for key in ("cache_hits", "cache_misses", "cache_time_saved_s",
                "solver_checks"):
        assert key in stats
    assert stats["cache_misses"] > 0


# ---------------------------------------------------------------------------
# ProgramRun validation
# ---------------------------------------------------------------------------

def test_parallel_rejects_non_dfs_strategy():
    with pytest.raises(ValueError, match="strategy"):
        ProgramRun(load_program("fig1a"), get_target("v1model"),
                   TestGenConfig(strategy="random", jobs=2))


def test_parallel_requires_solve_cache():
    with pytest.raises(ValueError, match="solve_cache"):
        ProgramRun(load_program("fig1a"), get_target("v1model"),
                   TestGenConfig(solve_cache=False, jobs=2))


# ---------------------------------------------------------------------------
# Batch orchestration (cross-program)
# ---------------------------------------------------------------------------

def test_generate_suite_matches_sequential():
    pairs = [(_program("fig1a"), "v1model"), (_program("fig1b"), "v1model")]
    config = TestGenConfig(seed=1, max_tests=5)
    parallel = generate_suite(pairs, jobs=2, config=config)
    sequential = generate_suite(pairs, jobs=1, config=config)
    assert [r.program for r in parallel] == [r.program for r in sequential]
    for par, seq in zip(parallel, sequential):
        assert par.emit("stf") == seq.emit("stf")
        assert par.coverage.covered == seq.coverage.covered
        assert par.stats.tests_emitted == seq.stats.tests_emitted


def test_engine_submit_accepts_names_and_reports_in_order():
    engine = Engine(jobs=2, config=TestGenConfig(seed=1, max_tests=3))
    assert engine.submit("fig1b", "v1model") == 0
    assert engine.submit("fig1a", "v1model") == 1
    results = engine.run()
    assert [r.index for r in results] == [0, 1]
    assert results[0].program == "fig1b.p4"
    assert results[1].program == "fig1a.p4"
    for r in results:
        assert r.tests
        assert r.statement_coverage > 0
        assert r.elapsed >= 0


def test_engine_rejects_bad_config():
    # Cross-program batches run each program sequentially inside a
    # worker, so any strategy is fine there — the Engine itself accepts
    # greedy at jobs > 1.  Splitting a *single* program's exploration
    # across workers still requires the canonical DFS + solve-cache
    # combination, enforced when the submission turns into a ProgramRun.
    engine = Engine(jobs=2, config=TestGenConfig(strategy="greedy",
                                                 seed=1, max_tests=2))
    engine.submit("fig1a", "v1model")
    with pytest.raises(ValueError):
        engine.run()
    # With two programs the batch path takes over and greedy works.
    engine = Engine(jobs=2, config=TestGenConfig(strategy="greedy",
                                                 seed=1, max_tests=2))
    engine.submit("fig1a", "v1model")
    engine.submit("fig1b", "v1model")
    results = engine.run()
    assert all(r.tests for r in results)


# ---------------------------------------------------------------------------
# Merge-order comparator
# ---------------------------------------------------------------------------

def test_dfs_order_key_immediate_before_subtrees():
    # At one branch: immediate finishers ascending, then subtrees
    # descending — the sequential stack discipline.
    items = [
        ((0,), True), ((1,), True),          # immediates, ascending
        ((2,), False), ((1,), False),        # subtrees, descending
    ]
    ordered = sorted(items, key=lambda it: dfs_order_key(*it))
    assert ordered == [((0,), True), ((1,), True), ((2,), False), ((1,), False)]


def test_dfs_order_key_nested():
    # Everything under subtree (2,...) precedes everything under (1,...).
    deep = dfs_order_key((2, 0), True)
    shallow = dfs_order_key((1,), False)
    assert deep < shallow
