"""Shared test fixtures and marker policy.

``@pytest.mark.external`` marks tests that exercise a *real* external
solver binary (kissat/cadical/minisat/z3).  The suite must stay green
on machines without any of them, so those tests are skipped — not
failed — unless at least one registered non-native back end reports
itself available.  Everything subprocess-shaped that matters is still
covered without binaries through ``tests/smt/fake_dimacs_solver.py``.
"""

import pytest


def pytest_collection_modifyitems(config, items):
    external = [item for item in items if item.get_closest_marker("external")]
    if not external:
        return
    from repro.smt.backends import available_solver_names

    available = set(available_solver_names()) - {"native", "dimacs"}
    if available:
        return
    skip = pytest.mark.skip(
        reason="no external solver binary (kissat/cadical/minisat/z3) on PATH")
    for item in external:
        item.add_marker(skip)
