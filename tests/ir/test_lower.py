"""Lowering tests: AST -> typed IR."""

import pytest

from repro.frontend.errors import TypeError_
from repro.frontend.types import BitsType, BoolType, HeaderType, StructType
from repro.ir import load_ir, lower_source
from repro.ir import nodes as N

FIG1A = """
#include <core.p4>
#include <v1model.p4>

header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<9> output_port; }

parser MyParser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.eth);
        transition accept;
    }
}

control MyVerify(inout headers_t hdr, inout meta_t meta) { apply { } }

control MyIngress(inout headers_t h, inout meta_t meta,
                  inout standard_metadata_t sm) {
    action noop() { }
    action set_out(bit<9> port) {
        meta.output_port = port;
        sm.egress_spec = port;
    }
    table forward_table {
        key = { h.eth.type: exact @name("type"); }
        actions = { noop; set_out; }
        default_action = noop();
    }
    apply {
        h.eth.type = 0xBEEF;
        forward_table.apply();
    }
}

control MyEgress(inout headers_t h, inout meta_t meta,
                 inout standard_metadata_t sm) { apply { } }

control MyCompute(inout headers_t hdr, inout meta_t meta) { apply { } }

control MyDeparser(packet_out pkt, in headers_t hdr) {
    apply { pkt.emit(hdr.eth); }
}

V1Switch(MyParser(), MyVerify(), MyIngress(), MyEgress(),
         MyCompute(), MyDeparser()) main;
"""


@pytest.fixture(scope="module")
def fig1a():
    return lower_source(FIG1A, "fig1a.p4")


def test_headers_resolved(fig1a):
    eth = fig1a.headers["ethernet_t"]
    assert isinstance(eth, HeaderType)
    assert eth.bit_width() == 112
    assert eth.field_offset("type") == 96


def test_structs_resolved(fig1a):
    hs = fig1a.structs["headers_t"]
    assert isinstance(hs, StructType)
    assert hs.field_types["eth"] is fig1a.headers["ethernet_t"]
    sm = fig1a.structs["standard_metadata_t"]
    assert sm.field_types["egress_spec"] == BitsType(9)


def test_errors_from_core(fig1a):
    assert "PacketTooShort" in fig1a.errors
    assert fig1a.error_code("NoError") == 0


def test_parser_lowered(fig1a):
    p = fig1a.parsers["MyParser"]
    assert set(p.states) == {"start"}
    start = p.states["start"]
    assert len(start.statements) == 1
    call = start.statements[0].call
    assert call.func == "extract"
    assert call.obj == "pkt"
    assert start.transition.direct == "accept"


def test_control_and_table_lowered(fig1a):
    ig = fig1a.controls["MyIngress"]
    table = ig.tables["MyIngress.forward_table"]
    assert table.keys[0].match_kind == "exact"
    assert table.keys[0].name == "type"
    assert [r.action for r in table.action_refs] == [
        "MyIngress.noop",
        "MyIngress.set_out",
    ]
    assert table.default_action.action == "MyIngress.noop"
    set_out = ig.actions["MyIngress.set_out"]
    assert [p.name for p in set_out.control_plane_params] == ["port"]


def test_apply_statements(fig1a):
    ig = fig1a.controls["MyIngress"]
    assign, apply_stmt = ig.apply_stmts
    assert isinstance(assign, N.IrAssign)
    assert assign.target.path() == "h.eth.type"
    assert isinstance(assign.value, N.IrConst)
    assert assign.value.value == 0xBEEF
    assert assign.value.p4_type == BitsType(16)
    assert isinstance(apply_stmt, N.IrApplyTable)
    assert apply_stmt.table == "MyIngress.forward_table"


def test_bindings(fig1a):
    kinds = [(b.kind, b.decl_name) for b in fig1a.bindings]
    assert kinds == [
        ("parser", "MyParser"),
        ("control", "MyVerify"),
        ("control", "MyIngress"),
        ("control", "MyEgress"),
        ("control", "MyCompute"),
        ("control", "MyDeparser"),
    ]
    assert fig1a.package_name == "V1Switch"


def test_stmt_ids_unique(fig1a):
    ids = [s.stmt_id for s in fig1a.all_statements()]
    assert len(ids) == len(set(ids))


def test_const_folding_of_global_consts():
    ir = lower_source(
        """
        #include <core.p4>
        const bit<16> ETHERTYPE = 0x800;
        const bit<16> DOUBLED = ETHERTYPE * 2;
        struct m_t { bit<16> x; }
        control C(inout m_t m) {
            apply { m.x = DOUBLED; }
        }
        """
    )
    c = ir.controls["C"]
    assert c.apply_stmts[0].value.value == 0x1000


def test_enum_member_lowered():
    ir = lower_source(
        """
        #include <core.p4>
        enum bit<8> Proto { TCP = 6, UDP = 17 }
        struct m_t { bit<8> x; }
        control C(inout m_t m) {
            apply {
                if (m.x == Proto.UDP) { m.x = 0; }
            }
        }
        """
    )
    cond = ir.controls["C"].apply_stmts[0].cond
    assert cond.right.value == 17


def test_error_member_lowered():
    ir = lower_source(
        """
        #include <core.p4>
        struct m_t { error e; bit<8> x; }
        control C(inout m_t m) {
            apply {
                if (m.e == error.PacketTooShort) { m.x = 1; }
            }
        }
        """
    )
    cond = ir.controls["C"].apply_stmts[0].cond
    assert cond.right.value == ir.error_code("PacketTooShort")


def test_isvalid_lowered():
    ir = lower_source(
        """
        #include <core.p4>
        header h_t { bit<8> f; }
        struct hs { h_t h; }
        struct m_t { bit<8> x; }
        control C(inout hs h, inout m_t m) {
            apply {
                if (h.h.isValid()) { m.x = 1; }
            }
        }
        """
    )
    cond = ir.controls["C"].apply_stmts[0].cond
    assert isinstance(cond, N.IrValidExpr)
    assert cond.header.path() == "h.h"


def test_width_mismatch_rejected():
    with pytest.raises(TypeError_):
        lower_source(
            """
            #include <core.p4>
            struct m_t { bit<8> a; bit<16> b; }
            control C(inout m_t m) {
                apply { m.a = m.a + m.b; }
            }
            """
        )


def test_unknown_action_rejected():
    with pytest.raises(TypeError_):
        lower_source(
            """
            #include <core.p4>
            struct m_t { bit<8> a; }
            control C(inout m_t m) {
                table t {
                    key = { m.a: exact; }
                    actions = { missing_action; }
                }
                apply { t.apply(); }
            }
            """
        )


def test_switch_lowered():
    ir = lower_source(
        """
        #include <core.p4>
        struct m_t { bit<8> x; }
        control C(inout m_t m) {
            action a() {}
            action b() {}
            table t {
                key = { m.x: exact; }
                actions = { a; b; }
            }
            apply {
                switch (t.apply().action_run) {
                    a: { m.x = 1; }
                    b: { m.x = 2; }
                    default: { m.x = 3; }
                }
            }
        }
        """
    )
    sw = ir.controls["C"].apply_stmts[0]
    assert isinstance(sw, N.IrSwitch)
    assert sw.table == "C.t"
    labels = [labels for labels, _body in sw.cases]
    assert labels == [["C.a"], ["C.b"], ["default"]]


def test_apply_hit_lowered():
    ir = lower_source(
        """
        #include <core.p4>
        struct m_t { bit<8> x; }
        control C(inout m_t m) {
            action a() {}
            table t {
                key = { m.x: exact; }
                actions = { a; }
            }
            apply {
                if (t.apply().hit) { m.x = 1; }
            }
        }
        """
    )
    cond = ir.controls["C"].apply_stmts[0].cond
    assert isinstance(cond, N.IrApplyExpr)
    assert cond.member == "hit"


def test_extern_instance_lowered():
    ir = lower_source(
        """
        #include <core.p4>
        #include <v1model.p4>
        struct m_t { bit<32> x; }
        control C(inout m_t m) {
            register<bit<32>>(1024) my_reg;
            apply {
                my_reg.read(m.x, 0);
                my_reg.write(0, m.x);
            }
        }
        """
    )
    c = ir.controls["C"]
    inst = c.instances["my_reg"]
    assert inst.extern_type == "register"
    assert inst.type_args[0] == BitsType(32)
    assert inst.ctor_args[0].value == 1024
    call = c.apply_stmts[0].call
    assert call.func == "register.read"
    assert call.obj == "C.my_reg"
