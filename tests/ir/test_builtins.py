"""Architecture prelude tests: every shipped prelude must parse and
lower on its own, like P4C's standard-library headers."""

import pytest

from repro.frontend import parse_program
from repro.frontend import ast as A
from repro.ir import lower
from repro.ir.builtins import PRELUDES, prelude_for_includes


@pytest.mark.parametrize("name", sorted(PRELUDES))
def test_prelude_parses(name):
    program = parse_program(PRELUDES[name], name)
    assert program.declarations


@pytest.mark.parametrize("name", sorted(PRELUDES))
def test_prelude_lowers(name):
    program = parse_program(PRELUDES[name], name)
    ir = lower(program)
    assert "NoError" in ir.errors
    assert "exact" in ir.match_kinds


def test_core_declares_packet_externs():
    program = parse_program(PRELUDES["core.p4"])
    packet_in = program.find(A.ExternDecl, "packet_in")
    methods = {m.name for m in packet_in.methods}
    assert {"extract", "lookahead", "advance", "length"} <= methods


def test_v1model_declares_standard_metadata():
    program = parse_program(PRELUDES["v1model.p4"])
    ir = lower(program)
    sm = ir.structs["standard_metadata_t"]
    assert sm.field_types["egress_spec"].bit_width() == 9
    assert "ingress_global_timestamp" in sm.field_types


def test_tna_intrinsic_metadata_widths():
    program = parse_program(PRELUDES["tna.p4"])
    ir = lower(program)
    ig = ir.structs["ingress_intrinsic_metadata_t"]
    assert ig.bit_width() == 64  # the documented tna prepend
    eg = ir.structs["egress_intrinsic_metadata_t"]
    assert eg.bit_width() == 144


def test_t2na_adds_ghost():
    program = parse_program(PRELUDES["t2na.p4"])
    ir = lower(program)
    assert "ghost_intrinsic_metadata_t" in ir.structs


def test_prelude_selection_by_include():
    assert "V1Switch" in prelude_for_includes(["v1model.p4"])
    assert "ebpfFilter" in prelude_for_includes(["ebpf_model.p4"])
    assert "GhostPipeline" in prelude_for_includes(["t2na.p4"])
    # Paths are tolerated.
    assert "V1Switch" in prelude_for_includes(["lib/v1model.p4"])
    # Core-only fallback.
    text = prelude_for_includes(["something_else.h"])
    assert "packet_in" in text and "V1Switch" not in text


def test_most_specific_include_wins():
    text = prelude_for_includes(["core.p4", "tna.p4"])
    assert "Pipeline" in text
