"""Mid-end transform tests: folding, DCE, stack-index expansion,
parser-loop unrolling."""

from repro.frontend.types import BitsType, BoolType
from repro.ir import load_ir, lower_source
from repro.ir import nodes as N
from repro.ir.transforms import (
    eliminate_dead_code,
    expand_dynamic_stack_indices,
    fold_constants,
    fold_expr,
    unroll_parsers,
)


def c(v, w=8):
    return N.IrConst(p4_type=BitsType(w), value=v)


def lv(name, w=8):
    return N.IrLValExpr(p4_type=BitsType(w), lval=N.VarLV(p4_type=BitsType(w), name=name))


def test_fold_binop_constants():
    e = N.IrBinop(p4_type=BitsType(8), op="+", left=c(200), right=c(100))
    out = fold_expr(e)
    assert isinstance(out, N.IrConst) and out.value == 44


def test_fold_comparison():
    e = N.IrBinop(p4_type=BoolType(), op="<", left=c(1), right=c(2))
    assert fold_expr(e).value is True


def test_fold_nested():
    inner = N.IrBinop(p4_type=BitsType(8), op="*", left=c(3), right=c(4))
    e = N.IrBinop(p4_type=BitsType(8), op="+", left=inner, right=lv("x"))
    out = fold_expr(e)
    assert isinstance(out, N.IrBinop)
    assert isinstance(out.left, N.IrConst) and out.left.value == 12


def test_fold_short_circuit_and():
    e = N.IrBinop(
        p4_type=BoolType(), op="&&",
        left=N.IrConst(p4_type=BoolType(), value=False),
        right=N.IrBinop(p4_type=BoolType(), op="==", left=lv("x"), right=c(1)),
    )
    assert fold_expr(e).value is False


def test_fold_ternary_constant_condition():
    e = N.IrTernary(
        p4_type=BitsType(8),
        cond=N.IrConst(p4_type=BoolType(), value=True),
        then=c(1), other=c(2),
    )
    assert fold_expr(e).value == 1


def test_fold_concat_of_constants():
    e = N.IrConcat(p4_type=BitsType(16), parts=(c(0xAB), c(0xCD)))
    assert fold_expr(e).value == 0xABCD


def test_dce_removes_constant_if():
    ir = lower_source(
        """
        #include <core.p4>
        struct m_t { bit<8> x; }
        control C(inout m_t m) {
            apply {
                if (1 == 1) { m.x = 1; } else { m.x = 2; }
            }
        }
        """
    )
    fold_constants(ir)
    eliminate_dead_code(ir)
    stmts = ir.controls["C"].apply_stmts
    assert len(stmts) == 1
    assert isinstance(stmts[0], N.IrAssign)
    assert stmts[0].value.value == 1


def test_dce_removes_unreachable_after_exit():
    ir = lower_source(
        """
        #include <core.p4>
        struct m_t { bit<8> x; }
        control C(inout m_t m) {
            apply {
                exit;
                m.x = 1;
            }
        }
        """
    )
    eliminate_dead_code(ir)
    stmts = ir.controls["C"].apply_stmts
    assert len(stmts) == 1
    assert isinstance(stmts[0], N.IrExit)


def test_dce_removes_unreachable_parser_states():
    ir = lower_source(
        """
        #include <core.p4>
        header h_t { bit<8> f; }
        struct hs { h_t h; }
        parser P(packet_in pkt, out hs h) {
            state start {
                pkt.extract(h.h);
                transition accept;
            }
            state never_used {
                transition reject;
            }
        }
        """
    )
    eliminate_dead_code(ir)
    assert "never_used" not in ir.parsers["P"].states
    assert "start" in ir.parsers["P"].states


def test_stack_index_expansion_for_writes():
    ir = lower_source(
        """
        #include <core.p4>
        header lbl_t { bit<8> v; }
        struct hs { lbl_t[3] stack; }
        struct m_t { bit<32> i; }
        control C(inout hs h, inout m_t m) {
            apply {
                h.stack[m.i].v = 7;
            }
        }
        """
    )
    expand_dynamic_stack_indices(ir)
    stmt = ir.controls["C"].apply_stmts[0]
    assert isinstance(stmt, N.IrIf), "dynamic index must become an if-chain"
    # All leaves must be constant-index assignments.
    seen = []

    def walk(s):
        if isinstance(s, N.IrIf):
            for inner in s.then_stmts + s.else_stmts:
                walk(inner)
        elif isinstance(s, N.IrAssign):
            seen.append(s.target.path())

    walk(stmt)
    assert sorted(seen) == ["h.stack[0].v", "h.stack[1].v", "h.stack[2].v"]


def test_stack_index_expansion_for_reads():
    ir = lower_source(
        """
        #include <core.p4>
        header lbl_t { bit<8> v; }
        struct hs { lbl_t[2] stack; }
        struct m_t { bit<32> i; bit<8> out_v; }
        control C(inout hs h, inout m_t m) {
            apply {
                m.out_v = h.stack[m.i].v;
            }
        }
        """
    )
    expand_dynamic_stack_indices(ir)
    stmt = ir.controls["C"].apply_stmts[0]
    assert isinstance(stmt.value, N.IrTernary), "dynamic read becomes ternary chain"


def test_parser_unrolling_bounds_cycles():
    ir = lower_source(
        """
        #include <core.p4>
        header lbl_t { bit<7> v; bit<1> bos; }
        struct hs { lbl_t[4] stack; }
        parser P(packet_in pkt, out hs h) {
            state start {
                transition loop;
            }
            state loop {
                pkt.extract(h.stack.next);
                transition select(h.stack.last.bos) {
                    1: accept;
                    default: loop;
                }
            }
        }
        """
    )
    unroll_parsers(ir, bound=3)
    parser = ir.parsers["P"]
    names = set(parser.states)
    assert "loop#0" in names and "loop#2" in names
    assert "loop#3" not in names
    # The last copy's back edge goes to reject.
    last = parser.states["loop#2"]
    targets = {case.state for case in last.transition.cases}
    assert "reject" in targets


def test_unrolled_clones_have_fresh_stmt_ids():
    ir = load_ir(
        """
        #include <core.p4>
        header lbl_t { bit<7> v; bit<1> bos; }
        struct hs { lbl_t[4] stack; }
        parser P(packet_in pkt, out hs h) {
            state start {
                pkt.extract(h.stack.next);
                transition select(h.stack.last.bos) {
                    1: accept;
                    default: start;
                }
            }
        }
        """
    )
    ids = [s.stmt_id for s in ir.all_statements()]
    assert len(ids) == len(set(ids))
    # With the default bound of 4, four copies of the extract exist.
    parser = ir.parsers["P"]
    extract_states = [n for n in parser.states if n.startswith("start#")]
    assert len(extract_states) == 4
