"""Bounded ``repro bench`` smoke run + the coverage-greedy floor.

Rides the perfsmoke guard (CI-safe, seconds not minutes) and carries
the ``bench`` marker so the full benchmark tooling can be selected on
its own.  Two locks:

- the quick bench produces a schema-valid trajectory file and appends
  (never rewrites) points across invocations;
- the coverage-greedy strategy reaches 90% statement coverage on the
  tbl4a middleblock row with no more tests than DFS needs — the
  feedback loop must actually buy test-budget efficiency, not just
  produce curves.
"""

import json

import pytest

from repro import TestGen, TestGenConfig, load_program
from repro.report import load_schema, validate
from repro.report.bench import run_bench, trajectory_path
from repro.targets import get_target

pytestmark = [pytest.mark.bench, pytest.mark.perfsmoke]


def test_quick_bench_appends_valid_trajectory(tmp_path):
    point = run_bench("smoke", tmp_path, quick=True, fuzz_count=2,
                      fuzz_corpus=tmp_path / "corpus")
    path = trajectory_path(tmp_path, "smoke")
    doc = json.loads(path.read_text())
    validate(doc, load_schema())
    assert doc["kind"] == "bench_trajectory"
    assert len(doc["points"]) == 1
    assert [r["program"] for r in point["rows"]] == ["middleblock", "up4"]
    for row in point["rows"]:
        assert row["num_tests"] > 0
        assert row["coverage_curve"][-1][2] == row["statement_coverage"]
    assert point["fuzz"]["num_cases"] == 2
    assert "oracle" in point["phase_times_s"]

    # A second run appends — the trajectory accumulates history.
    run_bench("smoke", tmp_path, quick=True, fuzz_count=0)
    doc = json.loads(path.read_text())
    validate(doc, load_schema())
    assert len(doc["points"]) == 2
    assert doc["points"][1]["fuzz"] is None


def test_bench_refuses_to_corrupt_foreign_file(tmp_path):
    path = trajectory_path(tmp_path, "clash")
    path.write_text(json.dumps({"kind": "something_else"}))
    with pytest.raises(ValueError, match="not a bench trajectory"):
        run_bench("clash", tmp_path, quick=True, fuzz_count=0)


def test_greedy_reaches_90pct_within_dfs_test_count():
    program = load_program("middleblock")
    target = get_target("v1model")

    dfs = TestGen(program, target=target, config=TestGenConfig(seed=1))
    dfs.run()
    dfs_curve = dfs.last_run.coverage.curve()
    dfs_to_90 = next(n for n, _c, pct in dfs_curve if pct >= 90.0)

    greedy = TestGen(program, target=target, config=TestGenConfig(
        seed=1, strategy="greedy", coverage_goal=90.0))
    result = greedy.run()

    assert result.statement_coverage >= 90.0
    assert len(result.tests) <= dfs_to_90, (
        f"greedy needed {len(result.tests)} tests to reach 90%, "
        f"DFS needed {dfs_to_90}"
    )
