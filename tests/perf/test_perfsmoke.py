"""Perf-regression smoke test for the solver hot path.

Pins the query-elision pipeline's effectiveness on a fixed mid-size
program so later PRs cannot silently regress it: on ``middleblock``
with a fixed seed and test cap, the fraction of incremental
feasibility checks answered without a SAT solve must stay above a
floor, and the total number of real SAT solves below a recorded
ceiling.

The thresholds are deliberately slack against the measured values
(~87% elided, 60 SAT solves at recording time) — the test exists to
catch the pipeline being disconnected or defeated, not to flake on
noise.  Counters, not wall-clock, so CI speed never matters.

Run just this guard with ``pytest -m perfsmoke``.
"""

import pytest

from repro import TestGen, TestGenConfig, load_program
from repro.targets import get_target

PROGRAM = "middleblock"
SEED = 1
MAX_TESTS = 60

# Recorded on the fixed workload above at PR-3 time: 84/96 feasibility
# checks elided, 60 real SAT solves (276 solver checks in total).
ELIDED_FRACTION_FLOOR = 0.50
SAT_SOLVE_CEILING = 90

# Recorded at PR-5 time on the same workload: 290/528 blast-cache hits
# (55%), 1252/1795 intern-pool hits (70%), 87 state clones with zero
# path-condition copies.  Floors are slack for the same reason as above.
BLAST_HIT_FRACTION_FLOOR = 0.25
INTERN_HIT_FRACTION_FLOOR = 0.40


@pytest.fixture(scope="module")
def stats():
    config = TestGenConfig(seed=SEED, max_tests=MAX_TESTS)
    gen = TestGen(load_program(PROGRAM), target=get_target("v1model"),
                  config=config)
    result = gen.run()
    assert len(result.tests) == MAX_TESTS
    return result.stats


@pytest.mark.perfsmoke
def test_feasibility_elision_fraction_above_floor(stats):
    assert stats.feasibility_checks > 0
    fraction = stats.feasibility_elided / stats.feasibility_checks
    assert fraction >= ELIDED_FRACTION_FLOOR, (
        f"only {stats.feasibility_elided}/{stats.feasibility_checks} "
        f"({100 * fraction:.1f}%) of feasibility checks were elided; "
        f"floor is {100 * ELIDED_FRACTION_FLOOR:.0f}%"
    )


@pytest.mark.perfsmoke
def test_total_sat_solves_below_ceiling(stats):
    assert stats.sat_solves <= SAT_SOLVE_CEILING, (
        f"{stats.sat_solves} SAT solves on the fixed workload; "
        f"recorded ceiling is {SAT_SOLVE_CEILING} — the solver hot "
        f"path has regressed"
    )


@pytest.mark.perfsmoke
def test_elision_bookkeeping_is_consistent(stats):
    # Every check is answered by exactly one of: cache hit, elision
    # layer, or a real solve.
    elided = (stats.elide_hits_model + stats.elide_hits_rewrite
              + stats.elide_hits_subsume)
    assert stats.solver_checks == stats.cache_hits + elided + stats.sat_solves
    assert stats.feasibility_elided <= stats.feasibility_checks


@pytest.mark.perfsmoke
def test_state_clone_is_constant_time(stats):
    # clone() must share, not copy: forking a state at a branch conses
    # onto persistent path conditions and stamps frames copy-on-write,
    # so no path-condition list is ever duplicated (symex/state.py).
    assert stats.state_clones > 0
    assert stats.path_cond_copies == 0, (
        f"{stats.path_cond_copies} path-condition copies across "
        f"{stats.state_clones} state clones — clone() is copying again"
    )


@pytest.mark.perfsmoke
def test_blast_cache_hit_fraction_above_floor(stats):
    total = stats.blast_cache_hits + stats.blast_cache_misses
    assert total > 0
    fraction = stats.blast_cache_hits / total
    assert fraction >= BLAST_HIT_FRACTION_FLOOR, (
        f"only {stats.blast_cache_hits}/{total} ({100 * fraction:.1f}%) "
        f"of canonical-solve blasts were replayed from the shared "
        f"cache; floor is {100 * BLAST_HIT_FRACTION_FLOOR:.0f}%"
    )
    assert stats.blast_clauses_replayed > 0


@pytest.mark.perfsmoke
def test_intern_pool_hit_fraction_above_floor(stats):
    total = stats.intern_hits + stats.intern_misses
    assert total > 0
    fraction = stats.intern_hits / total
    assert fraction >= INTERN_HIT_FRACTION_FLOOR, (
        f"only {stats.intern_hits}/{total} ({100 * fraction:.1f}%) of "
        f"term constructions hit the intern pool; floor is "
        f"{100 * INTERN_HIT_FRACTION_FLOOR:.0f}%"
    )


@pytest.mark.perfsmoke
def test_native_only_runs_pay_nothing_for_the_portfolio(stats):
    # With no portfolio configured (the default), build_portfolio
    # returns None and every check takes the direct sat.solve path: no
    # races, no per-backend bookkeeping, no subprocess machinery.
    # Counter-based stand-in for the "<5% overhead when only the native
    # backend is registered" budget — zero dispatches is zero overhead.
    from repro.smt.backends import build_portfolio

    assert build_portfolio(TestGenConfig(seed=SEED)) is None
    assert stats.portfolio_races == 0
    assert stats.backend_queries == {}
    assert stats.backend_timeouts == {} and stats.backend_errors == {}


# ---------------------------------------------------------------------------
# Incremental feasibility plane (PR 10): sibling checks in the DFS tree
# ride a retained clause database and trail instead of solving from
# scratch.  Floors recorded on the fixed workload above: 83/111
# assumption levels re-established from the reused trail (75%), and
# with elision disabled the incremental plane does 50k unit
# propagations where one-shot does 110k (2.19x).  Counters, not
# wall-clock, so the ratio floor cannot flake on CI speed.
# ---------------------------------------------------------------------------

INCREMENTAL_REUSE_RATE_FLOOR = 0.50
INCREMENTAL_PROPAGATION_GAIN_FLOOR = 1.5


@pytest.mark.perfsmoke
def test_incremental_trail_reuse_rate_above_floor(stats):
    assert stats.inc_solves > 0, "incremental plane never engaged"
    assert stats.inc_levels_assumed > 0
    rate = stats.inc_levels_reused / stats.inc_levels_assumed
    assert rate >= INCREMENTAL_REUSE_RATE_FLOOR, (
        f"only {stats.inc_levels_reused}/{stats.inc_levels_assumed} "
        f"({100 * rate:.1f}%) of assumption levels arrived "
        f"pre-established on the reused trail; floor is "
        f"{100 * INCREMENTAL_REUSE_RATE_FLOOR:.0f}%"
    )


@pytest.mark.perfsmoke
def test_incremental_plane_halves_feasibility_propagations():
    # Elision off isolates the two SAT planes: every feasibility check
    # that reaches a solver does real propagation work in both modes.
    def propagations(incremental):
        config = TestGenConfig(seed=SEED, max_tests=MAX_TESTS, elide=False,
                               incremental=incremental)
        gen = TestGen(load_program(PROGRAM), target=get_target("v1model"),
                      config=config)
        explorer = gen.explorer()
        tests = list(explorer.run())
        assert len(tests) == MAX_TESTS
        return explorer.solver._sat.stats["propagations"]

    with_inc = propagations(True)
    without = propagations(False)
    assert with_inc > 0
    gain = without / with_inc
    assert gain >= INCREMENTAL_PROPAGATION_GAIN_FLOOR, (
        f"incremental feasibility plane did {with_inc} propagations vs "
        f"{without} one-shot ({gain:.2f}x); floor is "
        f"{INCREMENTAL_PROPAGATION_GAIN_FLOOR}x — trail/clause reuse "
        f"has regressed"
    )


@pytest.mark.perfsmoke
def test_selector_gc_bounds_clause_db_on_deep_backtrack():
    # A DFS run that pushes deep and backtracks to the root over and
    # over retires hundreds of selectors; GC must keep the clause
    # database proportional to the *live* stack, not to history.
    from repro.smt import Solver
    from repro.smt import terms as T

    # Re-pushing the *same* branch constraints after a backtrack is the
    # DFS re-exploration shape: the terms re-blast to cached gate
    # clauses, so the only per-round DB growth is the guarded root
    # clause each push adds — exactly what selector GC reclaims.
    def deep_backtrack(gc: bool):
        s = Solver(incremental=True)
        if not gc:
            s._sat.gc_dead_threshold = 10 ** 9
        a = T.bv_var("gc_smoke_a", 16)
        s.add(T.ult(a, T.bv_const(60000, 16)))
        sizes = []
        for _round in range(8):
            for i in range(16):
                s.push()
                s.add(T.ne(a, T.bv_const(i, 16)))
            assert s.check().status == "sat"
            s.pop(16)
            assert s.check().status == "sat"
            sizes.append(len(s._sat.clauses))
        return s, sizes[-1] - sizes[0]

    collected, gc_growth = deep_backtrack(gc=True)
    hoarder, hoard_growth = deep_backtrack(gc=False)
    assert collected._sat.stats["clauses_gced"] > 0
    assert hoard_growth >= 7 * 16  # the control really does hoard
    assert gc_growth <= collected._sat.gc_dead_threshold, (
        f"clause DB grew by {gc_growth} clauses across 7 fully "
        f"backtracked re-exploration rounds (no-GC control grew by "
        f"{hoard_growth}) — selector GC is not reclaiming retired "
        f"levels"
    )


# ---------------------------------------------------------------------------
# Batch replay fast path (PR 8): on the compiled smoke corpus, every
# replayed packet must ride the lane engine — no compile fallbacks, no
# runtime ejections.  Measured at recording time: fill rate 1.0 on all
# four rows.  Counters again, never wall-clock.
# ---------------------------------------------------------------------------

REPLAY_ROWS = (("fig1a", "v1model"), ("match_kinds", "v1model"),
               ("tna_forward", "tna"), ("ebpf_filter", "ebpf_model"))
REPLAY_FILL_RATE_FLOOR = 0.95


@pytest.fixture(scope="module")
def replay_stats():
    from repro.interp import ReplayStats
    from repro.testback.runner import run_suite

    acc = ReplayStats()
    for name, target in REPLAY_ROWS:
        program = load_program(name)
        gen = TestGen(program, target=get_target(target),
                      config=TestGenConfig(seed=SEED, max_tests=16))
        tests = gen.run().tests
        assert tests
        run_suite(tests, program, batch=True, replay_stats=acc)
    return acc


@pytest.mark.perfsmoke
def test_batch_replay_fill_rate_above_floor(replay_stats):
    assert replay_stats.replay_packets > 0
    assert replay_stats.fill_rate() >= REPLAY_FILL_RATE_FLOOR, (
        f"lane fill rate {replay_stats.fill_rate():.3f} on the smoke "
        f"corpus; floor is {REPLAY_FILL_RATE_FLOOR} — lanes are being "
        f"ejected to the scalar path"
    )


@pytest.mark.perfsmoke
def test_batch_replay_smoke_corpus_stays_compiled(replay_stats):
    # These four programs are one-per-family representatives chosen
    # because they compile; a fallback here means the compiler lost a
    # construct it used to support.
    assert replay_stats.replay_fallback_programs == 0
    assert replay_stats.replay_scalar_packets == 0
    assert replay_stats.replay_compiled_programs == len(REPLAY_ROWS)
