"""Perf-regression smoke test for the solver hot path.

Pins the query-elision pipeline's effectiveness on a fixed mid-size
program so later PRs cannot silently regress it: on ``middleblock``
with a fixed seed and test cap, the fraction of incremental
feasibility checks answered without a SAT solve must stay above a
floor, and the total number of real SAT solves below a recorded
ceiling.

The thresholds are deliberately slack against the measured values
(~87% elided, 60 SAT solves at recording time) — the test exists to
catch the pipeline being disconnected or defeated, not to flake on
noise.  Counters, not wall-clock, so CI speed never matters.

Run just this guard with ``pytest -m perfsmoke``.
"""

import pytest

from repro import TestGen, TestGenConfig, load_program
from repro.targets import get_target

PROGRAM = "middleblock"
SEED = 1
MAX_TESTS = 60

# Recorded on the fixed workload above at PR-3 time: 84/96 feasibility
# checks elided, 60 real SAT solves (276 solver checks in total).
ELIDED_FRACTION_FLOOR = 0.50
SAT_SOLVE_CEILING = 90


@pytest.fixture(scope="module")
def stats():
    config = TestGenConfig(seed=SEED, max_tests=MAX_TESTS)
    gen = TestGen(load_program(PROGRAM), target=get_target("v1model"),
                  config=config)
    result = gen.run()
    assert len(result.tests) == MAX_TESTS
    return result.stats


@pytest.mark.perfsmoke
def test_feasibility_elision_fraction_above_floor(stats):
    assert stats.feasibility_checks > 0
    fraction = stats.feasibility_elided / stats.feasibility_checks
    assert fraction >= ELIDED_FRACTION_FLOOR, (
        f"only {stats.feasibility_elided}/{stats.feasibility_checks} "
        f"({100 * fraction:.1f}%) of feasibility checks were elided; "
        f"floor is {100 * ELIDED_FRACTION_FLOOR:.0f}%"
    )


@pytest.mark.perfsmoke
def test_total_sat_solves_below_ceiling(stats):
    assert stats.sat_solves <= SAT_SOLVE_CEILING, (
        f"{stats.sat_solves} SAT solves on the fixed workload; "
        f"recorded ceiling is {SAT_SOLVE_CEILING} — the solver hot "
        f"path has regressed"
    )


@pytest.mark.perfsmoke
def test_elision_bookkeeping_is_consistent(stats):
    # Every check is answered by exactly one of: cache hit, elision
    # layer, or a real solve.
    elided = (stats.elide_hits_model + stats.elide_hits_rewrite
              + stats.elide_hits_subsume)
    assert stats.solver_checks == stats.cache_hits + elided + stats.sat_solves
    assert stats.feasibility_elided <= stats.feasibility_checks
