"""Unit tests for taint propagation (paper §5.3)."""

from repro.smt import terms as T
from repro.symex import taint as TT
from repro.symex.value import SymVal, fresh_tainted, fresh_var, sym_const


def v(value, width=8, taint=0):
    return SymVal(T.bv_const(value, width), taint)


def var(name, width=8, taint=0):
    return SymVal(T.bv_var(name, width), taint)


def test_untainted_ops_stay_clean():
    a, b = var("a"), var("b")
    term = T.bv_add(a.term, b.term)
    assert TT.binop_taint("+", a, b, term) == 0


def test_bitwise_taint_is_positional():
    a = var("a", taint=0b0000_1111)
    b = var("b", taint=0b1100_0000)
    term = T.bv_xor(a.term, b.term)
    assert TT.binop_taint("^", a, b, term) == 0b1100_1111


def test_and_with_clean_zero_masks_taint():
    """Mitigation 1: 0 & tainted == 0 (clean)."""
    a = v(0x0F)  # constant, untainted
    b = var("b", taint=0xFF)
    term = T.bv_and(a.term, b.term)
    assert TT.binop_taint("&", a, b, term) == 0x0F


def test_or_with_clean_ones_masks_taint():
    a = v(0xF0)
    b = var("b", taint=0xFF)
    term = T.bv_or(a.term, b.term)
    assert TT.binop_taint("|", a, b, term) == 0x0F


def test_mul_by_zero_clears_taint():
    """The paper's flagship mitigation: tainted * 0 == 0."""
    a = var("a", taint=0xFF)
    zero = v(0)
    term = T.bv_mul(a.term, zero.term)  # simplifies to const 0
    assert term.is_const
    assert TT.binop_taint("*", a, zero, term) == 0


def test_addition_spreads_upward_only():
    a = var("a", taint=0b0001_0000)
    b = var("b")
    term = T.bv_add(a.term, b.term)
    out = TT.binop_taint("+", a, b, term)
    assert out == 0b1111_0000  # bits below the lowest tainted bit stay clean


def test_comparison_of_tainted_is_tainted():
    a = var("a", taint=1)
    b = var("b")
    term = T.ult(a.term, b.term)
    assert TT.binop_taint("<", a, b, term) == 1


def test_shift_by_constant_shifts_mask():
    a = var("a", taint=0b0000_0110)
    sh = v(2)
    term = T.bv_shl(a.term, sh.term)
    assert TT.binop_taint("<<", a, sh, term) == 0b0001_1000


def test_shift_by_tainted_amount_taints_all():
    a = var("a")
    sh = var("n", taint=0xFF)
    term = T.bv_shl(a.term, sh.term)
    assert TT.binop_taint("<<", a, sh, term) == 0xFF


def test_concat_taint():
    a = var("a", taint=0x0F)
    b = var("b", taint=0xF0)
    assert TT.concat_taint([a, b]) == 0x0FF0


def test_slice_taint():
    a = var("a", 16, taint=0xFF00)
    assert TT.slice_taint(a, 15, 8) == 0xFF
    assert TT.slice_taint(a, 7, 0) == 0


def test_ite_tainted_condition():
    c = SymVal(T.bool_var("c"), 1)
    a, b = var("a"), var("b")
    term = T.ite_bv(c.term, a.term, b.term)
    assert TT.ite_taint(c, a, b, term) == 0xFF


def test_ite_clean_condition_unions_branches():
    c = SymVal(T.bool_var("c"), 0)
    a = var("a", taint=0x0F)
    b = var("b", taint=0xF0)
    term = T.ite_bv(c.term, a.term, b.term)
    assert TT.ite_taint(c, a, b, term) == 0xFF


def test_cast_narrows_taint():
    a = var("a", 16, taint=0xFF00)
    assert TT.cast_taint(a, 8) == 0


def test_fresh_tainted_is_fully_tainted():
    x = fresh_tainted("x", 8)
    assert x.fully_tainted
    y = fresh_var("y", 8)
    assert not y.is_tainted
