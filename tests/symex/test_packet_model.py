"""Unit tests for the I/L/E packet-sizing model (paper §5.2.1)."""

from repro.smt import Solver, evaluate, terms as T
from repro.symex.packet import PacketModel
from repro.symex.value import SymVal


def test_initially_empty():
    pkt = PacketModel()
    assert pkt.live_bits() == 0
    assert pkt.input_bits == 0
    assert pkt.emit_bits() == 0
    assert pkt.input_term() is None
    assert pkt.live_value() is None


def test_consume_grows_input():
    pkt = PacketModel()
    value = pkt.consume(112)
    assert value.width == 112
    assert pkt.input_bits == 112
    assert pkt.live_bits() == 0


def test_consume_partial_segment():
    pkt = PacketModel()
    pkt.consume(48)      # grows I by 48
    assert pkt.input_bits == 48
    v = pkt.consume(16)  # grows I by another 16
    assert v.width == 16
    assert pkt.input_bits == 64


def test_prepend_live_consumed_before_input():
    """Target metadata prepended to L is parsed before input content
    and must not grow I (Tofino semantics, §5.2.1)."""
    pkt = PacketModel()
    meta = SymVal(T.bv_const(0xAB, 8), 0)
    pkt.prepend_live(meta)
    v = pkt.consume(8)
    assert pkt.input_bits == 0
    assert v.term.is_const and v.term.value == 0xAB


def test_prepend_then_overflow_grows_input():
    pkt = PacketModel()
    pkt.prepend_live(SymVal(T.bv_const(0xAB, 8), 0))
    v = pkt.consume(16)
    assert v.width == 16
    assert pkt.input_bits == 8  # only the extra byte came from I


def test_peek_does_not_consume():
    pkt = PacketModel()
    v1 = pkt.peek(8)
    assert pkt.live_bits() == 8  # pushed back
    v2 = pkt.consume(8)
    assert v1.term is v2.term


def test_taint_flows_through_consume():
    pkt = PacketModel()
    pkt.prepend_live(SymVal(T.bv_const(0, 8), 0b1111_0000))
    v = pkt.consume(4)
    assert v.taint == 0b1111
    v2 = pkt.consume(4)
    assert v2.taint == 0


def test_emit_and_commit():
    pkt = PacketModel()
    pkt.consume(8)                      # leaves L empty, I = 8
    pkt.emit(SymVal(T.bv_const(0xAA, 8), 0))
    pkt.emit(SymVal(T.bv_const(0xBB, 8), 0))
    assert pkt.emit_bits() == 16
    pkt.commit_emit()
    assert pkt.emit_bits() == 0
    live = pkt.live_value()
    assert live.term.value == 0xAABB


def test_commit_prepends_before_remaining_live():
    pkt = PacketModel()
    pkt.prepend_live(SymVal(T.bv_const(0xCC, 8), 0))  # unparsed remainder
    pkt.emit(SymVal(T.bv_const(0xAA, 8), 0))
    pkt.commit_emit()
    assert pkt.live_value().term.value == 0xAACC


def test_truncate_live():
    pkt = PacketModel()
    pkt.prepend_live(SymVal(T.bv_const(0xAABBCC, 24), 0))
    pkt.truncate_live(8)
    assert pkt.live_value().term.value == 0xAA
    assert pkt.live_bits() == 8


def test_len_constraints_are_consistent():
    pkt = PacketModel()
    pkt.consume(112)
    s = Solver()
    s.add(pkt.len_ok_constraint())
    assert s.check() == "sat"
    # too-short for a further 32-bit pull: 112 <= len < 144
    s.add(pkt.too_short_constraint(32))
    assert s.check() == "sat"
    m = s.model()
    val = m[pkt.pkt_len]
    assert 112 <= val < 144


def test_clone_independent():
    pkt = PacketModel()
    pkt.consume(8)
    c = pkt.clone()
    c.consume(8)
    assert pkt.input_bits == 8
    assert c.input_bits == 16
    assert c.pkt_len is pkt.pkt_len  # same symbolic length variable


def test_input_term_concatenation():
    pkt = PacketModel()
    pkt.consume(8)
    pkt.consume(8)
    term = pkt.input_term()
    assert term.width == 16
