"""Unit tests for the copy-on-write execution state (symex/state.py).

``ExecutionState.clone`` is the hot operation of path forking: the
tentpole claim is that it is O(1) in the path-condition length and the
frame-stack contents.  These tests pin both the isolation semantics
(mutating either side of a fork never leaks into the other) and the
cost model, via the ``STATE_STATS`` counters rather than timing.
"""

from repro.smt import terms as T
from repro.symex.state import (
    FrameStack,
    PathConds,
    STATE_STATS,
    reset_state_stats,
    state_stats_snapshot,
)


def _conds(*names):
    pc = PathConds()
    for n in names:
        pc.append(T.bool_var(n))
    return pc


# ---------------------------------------------------------------------------
# PathConds: persistent cons list
# ---------------------------------------------------------------------------


def test_path_conds_preserve_insertion_order():
    pc = _conds("p", "q", "r")
    assert [t.payload for t in pc] == ["p", "q", "r"]
    assert len(pc) == 3 and bool(pc)
    assert not PathConds()


def test_path_conds_clone_shares_then_diverges():
    base = _conds("p", "q")
    left = base.clone()
    right = base.clone()
    left.append(T.bool_var("l"))
    right.append(T.bool_var("r"))
    assert [t.payload for t in base] == ["p", "q"]
    assert [t.payload for t in left] == ["p", "q", "l"]
    assert [t.payload for t in right] == ["p", "q", "r"]


def test_path_conds_clone_never_copies():
    reset_state_stats()
    base = _conds(*[f"c{i}" for i in range(100)])
    for _ in range(50):
        base.clone().append(T.bool_var("x"))
    snap = state_stats_snapshot()
    assert snap["path_cond_copies"] == 0
    # 100 base appends + 50 post-clone appends; no hidden rebuilds.
    assert snap["path_cond_appends"] == 150


# ---------------------------------------------------------------------------
# FrameStack: stamped copy-on-write
# ---------------------------------------------------------------------------


def test_frame_stack_clone_isolates_bindings():
    a = FrameStack()
    a.bind("x", "root.x")
    b = a.clone()
    b.bind("x", "other.x")
    b.bind("y", "other.y")
    assert a[-1].aliases == {"x": "root.x"}
    assert b[-1].aliases == {"x": "other.x", "y": "other.y"}


def test_frame_stack_source_mutation_does_not_leak_into_clone():
    a = FrameStack()
    a.bind("x", "root.x")
    b = a.clone()
    # clone() revokes the *source's* write rights too: a's next bind
    # must copy, not write through the shared frame.
    a.bind("x", "changed.x")
    assert b[-1].aliases == {"x": "root.x"}


def test_frame_stack_push_pop_after_clone():
    a = FrameStack()
    a.bind("x", "root.x")
    b = a.clone()
    b.push({"y": "inner.y"})
    assert len(b) == 2 and len(a) == 1
    popped = b.pop()
    assert popped.aliases == {"y": "inner.y"}
    assert len(b) == 1
    assert a[-1].aliases == {"x": "root.x"}


def test_frame_stack_cow_copies_only_touched_frame():
    a = FrameStack()
    a.push({"f1": "p1"})
    a.push({"f2": "p2"})
    bottom = a[0]
    middle = a[1]
    b = a.clone()
    reset_state_stats()
    b.bind("new", "path")
    snap = state_stats_snapshot()
    # One list copy, one frame copy — the untouched frames' dicts are
    # the very same objects in both stacks.
    assert snap["frame_stack_copies"] == 1
    assert snap["frame_cow_copies"] == 1
    assert b[0] is bottom and b[1] is middle
    assert a[2].aliases == {"f2": "p2"}


def test_frame_stack_unclone_binds_stay_in_place():
    a = FrameStack()
    reset_state_stats()
    a.bind("x", "1")
    a.bind("y", "2")
    a.push({})
    a.bind("z", "3")
    snap = state_stats_snapshot()
    # No clone happened, so no copy-on-write should trigger.
    assert snap["frame_cow_copies"] == 0
    assert snap["frame_stack_copies"] == 0
