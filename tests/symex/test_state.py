"""ExecutionState unit tests: env, frames, cloning, structured copies."""

import pytest

from repro import load_program
from repro.frontend.types import BitsType, BoolType, HeaderType, StackType, StructType
from repro.symex.state import ExecutionState, Frame
from repro.symex.value import SymVal, sym_bool, sym_const
from repro.targets import V1Model


@pytest.fixture
def state():
    program = load_program("fig1a")
    return ExecutionState(program, V1Model())


ETH = HeaderType("eth_t", [("dst", BitsType(48)), ("src", BitsType(48)),
                           ("etype", BitsType(16))])
HDRS = StructType("hdrs", [("eth", ETH)])
STACK = StackType(ETH, 3)


def test_read_write_roundtrip(state):
    state.write("x", sym_const(5, 8))
    assert state.read("x", 8).term.value == 5


def test_uninitialized_read_uses_target_policy(state):
    # V1Model: BMv2 zero-initializes.
    v = state.read("never_written", 16)
    assert v.term.is_const and v.term.value == 0


def test_init_type_header_invalid(state):
    state.init_type("h", ETH, "invalid")
    assert state.read_valid("h").term.payload is False


def test_init_type_struct_zero(state):
    state.init_type("s", HDRS, "zero")
    assert state.read("s.eth.dst", 48).term.value == 0


def test_init_type_stack(state):
    state.init_type("st", STACK, "invalid")
    assert state.next_index["st"] == 0
    for i in range(3):
        assert state.read_valid(f"st[{i}]").term.payload is False


def test_copy_value_header(state):
    state.init_type("a", ETH, "zero")
    state.write_valid("a", sym_bool(True))
    state.write("a.etype", sym_const(0xBEEF, 16))
    state.init_type("b", ETH, "invalid")
    state.copy_value("a", "b", ETH)
    assert state.read_valid("b").term.payload is True
    assert state.read("b.etype", 16).term.value == 0xBEEF


def test_alias_resolution_nested_frames(state):
    state.push_frame({"hdr": "*hdr"})
    state.push_frame({"h": "*hdr.eth"})
    assert state.resolve_root("h") == "*hdr.eth"
    assert state.resolve_root("hdr") == "*hdr"
    assert state.resolve_root("unbound") == "unbound"


def test_clone_isolates_env(state):
    state.write("x", sym_const(1, 8))
    clone = state.clone()
    clone.write("x", sym_const(2, 8))
    assert state.read("x", 8).term.value == 1
    assert clone.read("x", 8).term.value == 2


def test_clone_isolates_path_cond(state):
    from repro.smt import terms as T

    state.add_constraint(T.bool_var("p"))
    clone = state.clone()
    clone.add_constraint(T.bool_var("q"))
    assert len(state.path_cond) == 1
    assert len(clone.path_cond) == 2


def test_clone_isolates_work_stack(state):
    state.push_work("item-a")
    clone = state.clone()
    clone.pop_work()
    assert state.has_work
    assert not clone.has_work


def test_add_constraint_rejects_constant_false(state):
    from repro.smt import terms as T

    assert state.add_constraint(T.false()) is False
    assert state.add_constraint(T.true()) is True
    assert not state.path_cond  # constants never enter the condition


def test_cover_and_trace(state):
    class FakeStmt:
        stmt_id = 42

    state.cover(FakeStmt())
    state.log("hello")
    assert 42 in state.coverage
    assert state.trace == ["hello"]


def test_state_ids_unique(state):
    other = state.clone()
    assert other.state_id != state.state_id
