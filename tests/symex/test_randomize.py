"""Value randomization (§3: ports 'chosen at random'), opt-in."""

from repro import TestGen, load_program
from repro.targets import V1Model
from repro.testback.runner import run_suite


def _set_out_ports(tests):
    out = []
    for t in tests:
        for e in t.entries:
            args = dict(e.action_args)
            if "port" in args:
                out.append(args["port"])
    return out


def test_randomized_tests_stay_sound():
    program = load_program("fig1a")
    gen = TestGen(program, target=V1Model(), seed=42)
    explorer = gen.explorer(randomize_values=True)
    tests = list(explorer.run())
    passed, results = run_suite(tests, program)
    assert passed == len(tests), [
        (r.kind, r.detail) for r in results if not r.passed
    ]


def test_randomization_diversifies_ports():
    program = load_program("fig1a")
    baseline = TestGen(program, target=V1Model(), seed=42).run()
    base_ports = set(_set_out_ports(baseline.tests))

    collected = set()
    for seed in (1, 2, 3):
        gen = TestGen(program, target=V1Model(), seed=seed)
        explorer = gen.explorer(randomize_values=True)
        collected |= set(_set_out_ports(list(explorer.run())))
    # Randomized runs across seeds must produce more port diversity
    # than the deterministic default-model runs.
    assert len(collected) >= max(len(base_ports), 2)


def test_randomization_is_seeded():
    program = load_program("fig1a")

    def run(seed):
        explorer = TestGen(program, target=V1Model(), seed=seed).explorer(
            randomize_values=True
        )
        return _set_out_ports(list(explorer.run()))

    assert run(9) == run(9)
