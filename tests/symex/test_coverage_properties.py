"""Property tests for :class:`repro.symex.coverage.CoverageTracker`.

The tracker is the measurement backbone of the coverage feedback loop
(greedy exploration scores candidates with ``newly_covered``, stop
limits read ``statement_percent``, run reports serialize ``curve()``),
so its invariants get hypothesis coverage rather than examples:

- coverage is monotone: recording a test never lowers the percentage;
- ``statement_percent`` stays in [0, 100] for any record sequence,
  including ids outside the universe and an empty universe;
- ``newly_covered`` never double-reports: the sum of ``record``
  returns equals the final covered count, and a recorded id is never
  reported as new again.
"""

from hypothesis import given, strategies as st

from repro.symex.coverage import CoverageTracker


class _Stmt:
    def __init__(self, stmt_id):
        self.stmt_id = stmt_id
        self.location = None


class _Program:
    """The minimal surface CoverageTracker needs."""

    def __init__(self, n_statements):
        self._stmts = [_Stmt(i) for i in range(n_statements)]

    def all_statements(self):
        return list(self._stmts)


# Each draw: a universe size and a sequence of per-test id sets, where
# ids may fall outside the universe (the tracker must ignore those).
_RUNS = st.integers(min_value=0, max_value=24).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.frozensets(st.integers(min_value=-4, max_value=n + 8),
                          max_size=12),
            max_size=20,
        ),
    )
)


@given(_RUNS)
def test_percent_bounded_and_monotone(run):
    n, tests = run
    tracker = CoverageTracker(_Program(n))
    last = tracker.statement_percent
    assert 0.0 <= last <= 100.0
    for ids in tests:
        tracker.record(ids)
        now = tracker.statement_percent
        assert 0.0 <= now <= 100.0
        assert now >= last
        last = now


@given(_RUNS)
def test_newly_covered_never_double_reports(run):
    n, tests = run
    tracker = CoverageTracker(_Program(n))
    total_new = 0
    for ids in tests:
        fresh = tracker.newly_covered(ids)
        # Pure query: asking twice reports the same set.
        assert tracker.newly_covered(ids) == fresh
        assert fresh.isdisjoint(tracker.covered)
        assert tracker.record(ids) == len(fresh)
        # Once recorded, nothing in this test is ever "new" again.
        assert tracker.newly_covered(ids) == frozenset()
        total_new += len(fresh)
    assert total_new == len(tracker.covered)


@given(_RUNS)
def test_curve_matches_record_history(run):
    n, tests = run
    tracker = CoverageTracker(_Program(n))
    for ids in tests:
        tracker.record(ids)
    curve = tracker.curve()
    assert len(curve) == len(tests)
    covered_counts = [c for _n, c, _p in curve]
    assert covered_counts == sorted(covered_counts)
    for i, (count, covered, percent) in enumerate(curve, start=1):
        assert count == i
        assert 0.0 <= percent <= 100.0
    if curve:
        assert curve[-1][1] == len(tracker.covered)
        assert abs(curve[-1][2] - round(tracker.statement_percent, 4)) < 1e-9


@given(_RUNS)
def test_covered_never_exceeds_universe(run):
    n, tests = run
    tracker = CoverageTracker(_Program(n))
    for ids in tests:
        tracker.record(ids)
    assert len(tracker.covered) <= tracker.universe_size
    assert tracker.fully_covered == (len(tracker.covered) == n)
