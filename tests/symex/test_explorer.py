"""Explorer unit tests: strategies, limits, pruning, coverage tracker."""

import pytest

from repro import TestGen, load_program
from repro.symex.coverage import CoverageTracker
from repro.symex.explorer import Explorer
from repro.targets import V1Model


@pytest.fixture(scope="module")
def program():
    return load_program("middleblock")


def test_max_tests_limit(program):
    explorer = Explorer(program, V1Model(), seed=1, max_tests=5)
    tests = list(explorer.run())
    assert len(tests) == 5


def test_max_paths_limit(program):
    explorer = Explorer(program, V1Model(), seed=1, max_paths=10)
    list(explorer.run())
    assert explorer.stats.paths_finished <= 10


def test_stop_at_full_coverage():
    prog = load_program("fig1a")
    explorer = Explorer(prog, V1Model(), seed=1, stop_at_full_coverage=True)
    tests = list(explorer.run())
    assert explorer.coverage.fully_covered
    # Stopping early: fewer tests than the exhaustive 5.
    assert 1 <= len(tests) <= 5


@pytest.mark.parametrize("strategy", ["dfs", "random", "greedy"])
def test_strategies_all_sound(strategy, program):
    from repro.testback.runner import run_suite

    explorer = Explorer(program, V1Model(), seed=3, strategy=strategy,
                        max_tests=15)
    tests = list(explorer.run())
    assert tests
    passed, _ = run_suite(tests, program)
    assert passed == len(tests)


def test_unknown_strategy_rejected(program):
    explorer = Explorer(program, V1Model(), strategy="zigzag", max_tests=1)
    with pytest.raises(ValueError):
        list(explorer.run())


def test_generate_convenience(program):
    explorer = Explorer(program, V1Model(), seed=1)
    tests = explorer.generate(3)
    assert len(tests) == 3


def test_stats_accumulate(program):
    explorer = Explorer(program, V1Model(), seed=1, max_tests=5)
    list(explorer.run())
    stats = explorer.stats.as_dict()
    assert stats["steps"] > 0
    assert stats["tests_emitted"] == 5
    assert stats["step_time"] >= 0


def test_coverage_tracker_records():
    prog = load_program("fig1a")
    tracker = CoverageTracker(prog)
    assert tracker.universe_size > 0
    all_ids = [s.stmt_id for s in prog.all_statements()]
    new = tracker.record(all_ids[:2])
    assert new == 2
    assert tracker.record(all_ids[:2]) == 0  # nothing new
    assert 0 < tracker.statement_percent <= 100.0


def test_coverage_report_lists_uncovered():
    prog = load_program("fig1a")
    tracker = CoverageTracker(prog)
    report = tracker.report()
    assert "statement coverage: 0.0%" in report
    assert "uncovered statements:" in report


def test_coverage_ignores_foreign_ids():
    prog = load_program("fig1a")
    tracker = CoverageTracker(prog)
    assert tracker.record({10**9}) == 0


def test_test_ids_sequential(program):
    explorer = Explorer(program, V1Model(), seed=1, max_tests=4)
    tests = list(explorer.run())
    assert [t.test_id for t in tests] == [1, 2, 3, 4]
