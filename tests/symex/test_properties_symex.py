"""Property-based tests on the symbolic-execution substrate."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt import terms as T
from repro.symex.packet import PacketModel
from repro.symex.value import SymVal


@given(widths=st.lists(st.integers(1, 64), min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_consume_accounts_all_bits(widths):
    """Total consumed width == growth of I when L starts empty."""
    pkt = PacketModel()
    total = 0
    for w in widths:
        v = pkt.consume(w)
        assert v.width == w
        total += w
    assert pkt.input_bits == total
    assert pkt.live_bits() == 0


@given(
    prepend_width=st.integers(1, 64),
    consume_widths=st.lists(st.integers(1, 32), min_size=1, max_size=6),
)
@settings(max_examples=50, deadline=None)
def test_prepends_consumed_before_input_grows(prepend_width, consume_widths):
    """I grows only once the prepended live content is exhausted."""
    pkt = PacketModel()
    pkt.prepend_live(SymVal(T.bv_const(0, prepend_width), 0))
    for w in consume_widths:
        pkt.consume(w)
    consumed = sum(consume_widths)
    expected_growth = max(0, consumed - prepend_width)
    assert pkt.input_bits == expected_growth


@given(
    values=st.lists(
        st.tuples(st.integers(0, 255), st.integers(0, 255)),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=50, deadline=None)
def test_emit_commit_preserves_order_and_taint(values):
    pkt = PacketModel()
    for value, taint in values:
        pkt.emit(SymVal(T.bv_const(value, 8), taint))
    pkt.commit_emit()
    live = pkt.live_value()
    assert live.term.width == 8 * len(values)
    expected_bits = 0
    expected_taint = 0
    for value, taint in values:
        expected_bits = (expected_bits << 8) | value
        expected_taint = (expected_taint << 8) | taint
    assert live.term.value == expected_bits
    assert live.taint == expected_taint


@given(
    data=st.integers(0, (1 << 64) - 1),
    consume1=st.integers(1, 32),
    consume2=st.integers(1, 32),
)
@settings(max_examples=50, deadline=None)
def test_consume_slices_in_wire_order(data, consume1, consume2):
    """Consuming w1 then w2 bits equals the top w1+w2 bits in order."""
    pkt = PacketModel()
    pkt.prepend_live(SymVal(T.bv_const(data, 64), 0))
    a = pkt.consume(consume1)
    b = pkt.consume(consume2)
    combined = T.concat(a.term, b.term)
    expected = (data >> (64 - consume1 - consume2)) & (
        (1 << (consume1 + consume2)) - 1
    )
    assert combined.value == expected


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_oracle_roundtrip_property(seed):
    """The paper's core soundness property as a hypothesis test: for
    any seed, every emitted fig1a test replays green on BMv2."""
    from repro import TestGen, load_program
    from repro.targets import V1Model
    from repro.testback.runner import run_suite

    program = load_program("fig1a")
    result = TestGen(program, target=V1Model(), seed=seed,
                     strategy="random").run(max_tests=6)
    passed, results = run_suite(result.tests, program)
    assert passed == len(result.tests), [
        (r.kind, r.detail) for r in results if not r.passed
    ]
