"""Stepper unit tests: expression evaluation, assignment, branching,
table application — driven through small crafted programs."""

import pytest

from repro import TestGen, load_program
from repro.targets import V1Model

V1_TEMPLATE = """
#include <core.p4>
#include <v1model.p4>
header h_t {{ bit<8> a; bit<8> b; bit<16> c; }}
struct hs {{ h_t h; }}
struct m_t {{ bit<16> x; bit<8> y; bool flag; }}
parser P(packet_in pkt, out hs h, inout m_t m,
         inout standard_metadata_t sm) {{
    state start {{ pkt.extract(h.h); transition accept; }}
}}
control V(inout hs h, inout m_t m) {{ apply {{ }} }}
control I(inout hs h, inout m_t m, inout standard_metadata_t sm) {{
    apply {{
{ingress}
    }}
}}
control E(inout hs h, inout m_t m, inout standard_metadata_t sm) {{ apply {{ }} }}
control CK(inout hs h, inout m_t m) {{ apply {{ }} }}
control D(packet_out pkt, in hs h) {{ apply {{ pkt.emit(h.h); }} }}
V1Switch(P(), V(), I(), E(), CK(), D()) main;
"""


def run_ingress(body, max_tests=20, seed=1):
    program = load_program(V1_TEMPLATE.format(ingress=body), "stepper_test.p4")
    result = TestGen(program, target=V1Model(), seed=seed).run(max_tests=max_tests)
    return result


def output_of(test):
    assert test.expected
    return test.expected[0]


def test_arithmetic_on_header_fields():
    result = run_ingress("h.h.a = h.h.a + h.h.b;")
    full = [t for t in result.tests if t.input_packet.width == 32]
    assert full
    t = full[0]
    in_a = (t.input_packet.bits >> 24) & 0xFF
    in_b = (t.input_packet.bits >> 16) & 0xFF
    out_a = (output_of(t).bits >> 24) & 0xFF
    assert out_a == (in_a + in_b) & 0xFF


def test_slice_assignment():
    result = run_ingress("h.h.c[7:0] = 8w0xAB;")
    full = [t for t in result.tests if t.input_packet.width == 32]
    t = full[0]
    assert output_of(t).bits & 0xFF == 0xAB
    # Upper slice untouched.
    assert (output_of(t).bits >> 8) & 0xFF == (t.input_packet.bits >> 8) & 0xFF


def test_concat_expression():
    result = run_ingress("h.h.c = h.h.a ++ h.h.b;")
    full = [t for t in result.tests if t.input_packet.width == 32]
    t = full[0]
    in_a = (t.input_packet.bits >> 24) & 0xFF
    in_b = (t.input_packet.bits >> 16) & 0xFF
    assert output_of(t).bits & 0xFFFF == (in_a << 8) | in_b


def test_symbolic_branch_generates_both_sides():
    result = run_ingress(
        "if (h.h.a == 7) { m.y = 1; sm.egress_spec = 1; } "
        "else { m.y = 2; sm.egress_spec = 2; }"
    )
    ports = {output_of(t).port for t in result.tests if not t.dropped}
    assert {1, 2} <= ports
    # The inputs must actually satisfy the branch conditions.
    for t in result.tests:
        if t.dropped or t.input_packet.width < 32:
            continue
        a = (t.input_packet.bits >> 24) & 0xFF
        if output_of(t).port == 1:
            assert a == 7
        elif output_of(t).port == 2:
            assert a != 7


def test_ternary_expression():
    result = run_ingress("m.x = (h.h.a > 10) ? 16w100 : 16w200;"
                         "h.h.c = m.x;")
    full = [t for t in result.tests if t.input_packet.width == 32]
    for t in full:
        a = (t.input_packet.bits >> 24) & 0xFF
        expected = 100 if a > 10 else 200
        assert output_of(t).bits & 0xFFFF == expected


def test_cast_bool_to_bit():
    result = run_ingress("m.flag = h.h.a == 0; "
                         "h.h.b = (bit<8>)(m.flag ? 8w1 : 8w0);")
    full = [t for t in result.tests if t.input_packet.width == 32]
    for t in full:
        a = (t.input_packet.bits >> 24) & 0xFF
        b_out = (output_of(t).bits >> 16) & 0xFF
        assert b_out == (1 if a == 0 else 0)


def test_setinvalid_removes_header_from_output():
    result = run_ingress("h.h.setInvalid();")
    full = [t for t in result.tests if t.input_packet.width == 32]
    for t in full:
        assert output_of(t).width == 0  # nothing emitted


def test_exit_skips_rest_of_control():
    result = run_ingress("sm.egress_spec = 5; exit; sm.egress_spec = 6;")
    forwarded = [t for t in result.tests if not t.dropped]
    assert forwarded
    assert all(output_of(t).port == 5 for t in forwarded)


def test_shift_by_symbolic_amount():
    result = run_ingress("h.h.c = h.h.c << (bit<16>) h.h.a;")
    full = [t for t in result.tests if t.input_packet.width == 32]
    for t in full:
        a = (t.input_packet.bits >> 24) & 0xFF
        c_in = t.input_packet.bits & 0xFFFF
        expected = (c_in << a) & 0xFFFF if a < 16 else 0
        assert output_of(t).bits & 0xFFFF == expected


def test_tests_replay_on_simulator():
    from repro.testback.runner import run_suite

    program = load_program(
        V1_TEMPLATE.format(
            ingress="if (h.h.a > h.h.b) { h.h.c = 16w1; } else { h.h.c = 16w2; }"
        ),
        "stepper_replay.p4",
    )
    result = TestGen(program, target=V1Model(), seed=1).run()
    passed, results = run_suite(result.tests, program)
    assert passed == len(result.tests)
