"""Unit tests for the P4-constraints language (paper §6.1.1)."""

import pytest

from repro.control_plane.p4constraints import (
    ConstraintError,
    constraint_terms,
    parse_constraint,
)
from repro.smt import Solver, terms as T


def kv(widths: dict[str, int]):
    return {name: T.bv_var(f"key::{name}", w) for name, w in widths.items()}


def check(constraint, key_vars, assignments):
    """Solve constraint && (key == value for each pinned key)."""
    s = Solver()
    for term in constraint_terms(constraint, key_vars):
        s.add(term)
    pins = [
        T.eq(key_vars[name], T.bv_const(value, key_vars[name].width))
        for name, value in assignments.items()
    ]
    return s.check(*pins)


def test_parse_simple():
    tree = parse_constraint("type == 0xBEEF")
    assert tree[0] == "cmp"


def test_equality_constraint():
    keys = kv({"type": 16})
    assert check("type == 0xBEEF", keys, {"type": 0xBEEF}) == "sat"
    assert check("type == 0xBEEF", keys, {"type": 0x0800}) == "unsat"


def test_disjunction():
    keys = kv({"type": 16})
    c = "type == 1 || type == 2"
    assert check(c, keys, {"type": 1}) == "sat"
    assert check(c, keys, {"type": 2}) == "sat"
    assert check(c, keys, {"type": 3}) == "unsat"


def test_conjunction_and_negation():
    keys = kv({"a": 8, "b": 8})
    c = "a != 0 && !(b == 5)"
    assert check(c, keys, {"a": 1, "b": 4}) == "sat"
    assert check(c, keys, {"a": 0, "b": 4}) == "unsat"
    assert check(c, keys, {"a": 1, "b": 5}) == "unsat"


def test_ordering_operators():
    keys = kv({"port": 9})
    c = "port >= 10 && port < 100"
    assert check(c, keys, {"port": 10}) == "sat"
    assert check(c, keys, {"port": 99}) == "sat"
    assert check(c, keys, {"port": 9}) == "unsat"
    assert check(c, keys, {"port": 100}) == "unsat"


def test_qualified_names_match_last_component():
    keys = kv({"hdr.ethernet.ether_type": 16})
    c = "ether_type == 0x0800"
    assert check(c, keys, {"hdr.ethernet.ether_type": 0x0800}) == "sat"


def test_parentheses():
    keys = kv({"a": 8})
    c = "(a == 1 || a == 2) && a != 2"
    assert check(c, keys, {"a": 1}) == "sat"
    assert check(c, keys, {"a": 2}) == "unsat"


def test_true_false_literals():
    keys = kv({"a": 8})
    s = Solver()
    for term in constraint_terms("true", keys):
        s.add(term)
    assert s.check() == "sat"


def test_unknown_key_rejected():
    keys = kv({"a": 8})
    with pytest.raises(ConstraintError):
        constraint_terms("missing == 1", keys)


def test_syntax_error_rejected():
    with pytest.raises(ConstraintError):
        parse_constraint("a === 1")
    with pytest.raises(ConstraintError):
        parse_constraint("(a == 1")


def test_oracle_honours_entry_restriction():
    """End-to-end: with P4-constraints enabled, no generated entry may
    violate the middleblock ACL restriction."""
    from repro import TestGen, load_program
    from repro.targets import Preconditions, V1Model

    result = TestGen(
        load_program("middleblock"),
        target=V1Model(preconditions=Preconditions(p4constraints=True)),
        seed=3,
    ).run(max_tests=60)
    for test in result.tests:
        for entry in test.entries:
            if entry.table.endswith("acl_ingress_table"):
                key_values = {name: roles.get("value") for name, _k, roles in entry.keys}
                assert key_values["ether_type"] not in (0x0800, 0x86DD)
