"""Lane-engine vs. scalar parity (the batch replay correctness lock).

The batch interpreter (``repro.interp.batch`` over compiled op lists
from ``repro.interp.compile``) must be observationally identical to the
scalar simulators on every case it claims: same outputs, same drops,
same errors.  Where it cannot be exact it must *refuse* — compile-time
fallback for unsupported constructs, per-lane ejection for divergent
runtime behavior — and the refusals themselves are pinned here so the
fast path never silently widens.
"""

import random

import pytest

from repro.interp import BatchSimulator, Config, ReplayStats
from repro.interp.compile import CompileUnsupported, compile_program
from repro.oracle import load_program
from repro.testback.runner import SIMULATORS, make_simulator
from repro.testback.spec import TableEntrySpec

# (program, target): one compiled representative per family plus the
# table/match-kind heavy rows.
COMPILED_ROWS = (
    ("fig1a", "v1model"),
    ("match_kinds", "v1model"),
    ("value_set_demo", "v1model"),
    ("lookahead_demo", "v1model"),
    ("tna_fig4", "tna"),
    ("t2na_ghost", "t2na"),
    ("ebpf_filter", "ebpf_model"),
)

# Programs the compiler must refuse (stateful / extern-heavy / out of
# lane range) so they replay scalar with exact semantics.
FALLBACK_ROWS = (
    ("register_demo", "v1model"),
    ("mpls_stack", "v1model"),
    ("middleblock", "v1model"),
    ("tna_stateful", "tna"),
)


def _random_cases(seed, n=10, widths=(64, 112, 320, 600)):
    rng = random.Random(seed)
    return [
        (rng.randrange(0, 64), rng.getrandbits(w), w, Config())
        for w in (rng.choice(widths) for _ in range(n))
    ]


def _scalar_results(target, program, cases):
    out = []
    for port, bits, width, config in cases:
        sim = make_simulator(target, program, seed=0)
        out.append(sim.process(port, bits, width, config))
    return out


def _assert_parity(target, program, cases, stats=None):
    batch = BatchSimulator(target, program, seed=0, stats=stats)
    bres = batch.run_cases(cases)
    for case, br, sr in zip(cases, bres, _scalar_results(target, program, cases)):
        assert (br.outputs, br.dropped, br.error) \
            == (sr.outputs, sr.dropped, sr.error), \
            f"{program.source_name}/{target} diverged on width {case[2]}"
    return batch


@pytest.mark.parametrize("name,target", COMPILED_ROWS)
def test_compiled_program_parity(name, target):
    program = load_program(name)
    compile_program(program, target)  # must not fall back
    stats = ReplayStats()
    _assert_parity(target, program, _random_cases(hash(name) & 0xFFFF), stats)
    assert stats.replay_compiled_programs == 1
    assert stats.replay_fallback_programs == 0


@pytest.mark.parametrize("name,target", FALLBACK_ROWS)
def test_fallback_program_scalar_replay(name, target):
    program = load_program(name)
    with pytest.raises(CompileUnsupported):
        compile_program(program, target)
    stats = ReplayStats()
    cases = _random_cases(hash(name) & 0xFFFF, n=4)
    _assert_parity(target, program, cases, stats)
    assert stats.replay_fallback_programs == 1
    assert stats.replay_scalar_packets == len(cases)


def test_runtime_entries_parity():
    # Installed entries are matched per lane against packed key values;
    # every match kind must agree with the scalar matcher.
    program = load_program("match_kinds")
    rng = random.Random(11)
    cases = []
    for i in range(12):
        entries = [
            TableEntrySpec(
                table="mk_ingress.exact_table", action="mk_ingress.tag",
                keys=[("k", "exact", {"value": rng.getrandbits(16)})],
                action_args=[("value", rng.getrandbits(4))],
            ),
            TableEntrySpec(
                table="mk_ingress.lpm_table", action="mk_ingress.tag",
                keys=[("k", "lpm",
                       {"value": rng.getrandbits(32), "prefix_len": i % 33})],
                action_args=[("value", rng.getrandbits(4))],
            ),
            TableEntrySpec(
                table="mk_ingress.ternary_table", action="mk_ingress.tag",
                keys=[("k", "ternary",
                       {"value": rng.getrandbits(16),
                        "mask": rng.getrandbits(16)})],
                action_args=[("value", rng.getrandbits(4))],
            ),
            TableEntrySpec(
                table="mk_ingress.range_table", action="mk_ingress.tag",
                keys=[("k", "range",
                       {"lo": (lo := rng.getrandbits(12)),
                        "hi": lo + rng.getrandbits(12)})],
                action_args=[("value", rng.getrandbits(4))],
            ),
        ]
        w = rng.choice((64, 112, 200))
        cases.append((1, rng.getrandbits(w), w, Config(entries=entries)))
    _assert_parity("v1model", program, cases)


def test_out_of_width_entry_arg_ejects_to_scalar():
    # The scalar env stores runtime action args unmasked; the lane
    # engine can't, so such lanes must replay scalar (and still agree).
    program = load_program("fig1a")
    bad = TableEntrySpec(
        table="MyIngress.forward_table", action="MyIngress.set_out",
        keys=[("etype", "exact", {"value": 0xBEEF})],
        action_args=[("port", 1 << 40)],  # far wider than the 9-bit param
    )
    cases = [(0, 0xBEEF, 112, Config(entries=[bad])),
             (0, 0x0800, 112, Config())]
    stats = ReplayStats()
    _assert_parity("v1model", program, cases, stats)
    assert stats.replay_ejected_lanes == 1
    assert stats.replay_scalar_packets == 1


def test_custom_simulator_disables_fast_path():
    # Fault injection and user extensions replace the registry entry;
    # the lane engine must route every packet through the override.
    program = load_program("fig1a")
    original = SIMULATORS["v1model"]

    class _Tagged:
        def __init__(self, inner):
            self._inner = inner

        def process(self, port, bits, width, config):
            result = self._inner.process(port, bits, width, config)
            result.error = "injected"
            return result

    SIMULATORS.register(
        "v1model", lambda p, seed=0: _Tagged(original(p, seed)),
        replace=True)
    try:
        stats = ReplayStats()
        sim = BatchSimulator("v1model", program, seed=0, stats=stats)
        results = sim.run_cases([(0, 0xBEEF, 112, Config())])
    finally:
        SIMULATORS.register("v1model", original, replace=True)
    assert results[0].error == "injected"
    assert stats.replay_fallback_programs == 1
    assert stats.replay_scalar_packets == 1


def test_tofino_resubmit_lane_ejects():
    # tna_fig4 with ttl=1 raises resubmit_type; the scalar model reruns
    # ingress, so those lanes must leave the batch — and still match.
    program = load_program("tna_fig4")
    cases = [(1, (ttl << 56) << (512 - 64), 512, Config())
             for ttl in (0, 1, 2, 1)]
    stats = ReplayStats()
    _assert_parity("tna", program, cases, stats)
    assert stats.replay_ejected_lanes >= 2  # both ttl=1 lanes


def test_partial_and_multi_batch_chunking():
    # Suites longer than max_lanes split into chunks; order and results
    # must be stable across chunk boundaries.
    program = load_program("fig1a")
    cases = _random_cases(99, n=11, widths=(112, 160))
    small = BatchSimulator("v1model", program, seed=0, max_lanes=4)
    big = BatchSimulator("v1model", program, seed=0, max_lanes=32)
    sres = small.run_cases(cases)
    bres = big.run_cases(cases)
    for a, b in zip(sres, bres):
        assert (a.outputs, a.dropped, a.error) == (b.outputs, b.dropped, b.error)
    assert small.stats.replay_batches == 3
    assert big.stats.replay_batches == 1
    _assert_parity("v1model", program, cases)
