"""Cross-simulator parity on the recirculate / clone / drop paths.

The differential fuzz harness treats the concrete simulators as the
reference semantics, so each of them needs the same depth of direct
coverage that ``test_bmv2_sim.py`` gives BMv2's table paths.  This file
pins the packet-path behaviors the paper calls out (§5.1.2 recirculate,
§6.1.1 clone, Fig. 4-5 Tofino TM semantics) on all three simulators:

- BMv2: ``recirculate_preserving_field_list`` and ``clone`` via the
  shipped demo programs;
- Tofino: ``resubmit_type`` / ``drop_ctl`` (tna_fig4) and
  ``Mirror.emit`` (inline program below);
- eBPF: drop-vs-accept decided by a table-driven action, plus the
  implicit drops (parser reject, unparsed packets).
"""

import pytest

from repro.interp import Bmv2Simulator, Config, EbpfSimulator, TofinoSimulator
from repro.oracle import load_program
from repro.testback.spec import TableEntrySpec


# ---------------------------------------------------------------------------
# BMv2: recirculate and clone
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def recirc_program():
    return load_program("recirc_demo")


@pytest.fixture(scope="module")
def clone_program():
    return load_program("clone_demo")


def _hop_pkt(hops, tag=0x10):
    return (hops << 8) | tag


def test_bmv2_recirc_hops0_drops(recirc_program):
    result = Bmv2Simulator(recirc_program).process(
        0, _hop_pkt(0), 16, Config())
    assert result.dropped and not result.outputs


def test_bmv2_recirc_hops1_recirculates_then_drops(recirc_program):
    # hops=1 decrements to 0 and recirculates; the second pass hits the
    # hops==0 drop branch, so the packet dies after one loop.
    result = Bmv2Simulator(recirc_program).process(
        0, _hop_pkt(1), 16, Config())
    assert "recirculate" in result.trace
    assert result.dropped


def test_bmv2_recirc_hops2_forwards_without_recirc(recirc_program):
    result = Bmv2Simulator(recirc_program).process(
        0, _hop_pkt(2, tag=0x10), 16, Config())
    assert not result.dropped
    assert "recirculate" not in result.trace
    port, bits, width = result.outputs[0]
    assert port == 7 and width == 16
    assert bits == _hop_pkt(2, tag=0x10)  # untouched on the fast path


def test_bmv2_clone_produces_mirror_copy(clone_program):
    sim = Bmv2Simulator(clone_program)
    tagged = (1 << 32) | 0xAABBCCDD
    result = sim.process(0, tagged, 40, Config())
    assert not result.dropped
    assert len(result.outputs) == 2
    assert result.outputs[0][0] == 2   # original, forwarded
    assert result.outputs[1][0] == 0   # clone session copy


def test_bmv2_clone_untagged_single_output(clone_program):
    result = Bmv2Simulator(clone_program).process(
        0, 0xAABBCCDD, 40, Config())
    assert len(result.outputs) == 1
    assert result.outputs[0] == (2, 0xAABBCCDD, 40)


# ---------------------------------------------------------------------------
# Tofino: drop_ctl, resubmit, Mirror
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig4_program():
    return load_program("tna_fig4")


def _fig4_pkt(ttl, width=512):
    # 64-bit ipish header (ttl in the top byte) followed by padding up
    # to Tofino's 64-byte minimum frame.
    return (ttl << 56) << (width - 64), width


def test_tofino_drop_ctl(fig4_program):
    bits, width = _fig4_pkt(ttl=0)
    result = TofinoSimulator(fig4_program).process(1, bits, width, Config())
    assert result.dropped
    assert any("drop_ctl" in step for step in result.trace)


def test_tofino_resubmit_then_drop(fig4_program):
    # ttl=1 zeroes the ttl and resubmits; the resubmitted pass sees
    # ttl=0 and raises drop_ctl — mirroring the recirc_demo loop shape.
    bits, width = _fig4_pkt(ttl=1)
    result = TofinoSimulator(fig4_program).process(1, bits, width, Config())
    assert "TM: resubmit" in result.trace
    assert result.dropped


def test_tofino_forward_without_resubmit(fig4_program):
    bits, width = _fig4_pkt(ttl=2)
    result = TofinoSimulator(fig4_program).process(1, bits, width, Config())
    assert not result.dropped
    assert "TM: resubmit" not in result.trace
    port, out_bits, out_width = result.outputs[0]
    assert port == 1 and out_width == width
    assert (out_bits >> (out_width - 8)) == 2  # ttl untouched


_MIRROR_SRC = """
#include <core.p4>
#include <tna.p4>

header pkt_t { bit<8> kind; bit<56> body; }
struct headers_t { pkt_t p; }
struct ig_md_t { bit<8> x; }
struct eg_md_t { bit<8> x; }

parser MIngressParser(packet_in pkt, out headers_t h, out ig_md_t m,
        out ingress_intrinsic_metadata_t ig_intr_md) {
    state start {
        pkt.extract(ig_intr_md);
        pkt.advance(64);
        transition parse_p;
    }
    state parse_p { pkt.extract(h.p); transition accept; }
}

control MIngress(inout headers_t h, inout ig_md_t m,
        in ingress_intrinsic_metadata_t ig_intr_md,
        in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
        inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
        inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
    apply {
        ig_tm_md.ucast_egress_port = 3;
        if (h.p.kind == 1) {
            ig_dprsr_md.mirror_type = 1;
        }
    }
}

control MIngressDeparser(packet_out pkt, inout headers_t h, in ig_md_t m,
        in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
    Mirror() mirror;
    apply {
        if (ig_dprsr_md.mirror_type == 1) {
            mirror.emit(10w5);
        }
        pkt.emit(h.p);
    }
}

parser MEgressParser(packet_in pkt, out headers_t h, out eg_md_t m,
        out egress_intrinsic_metadata_t eg_intr_md) {
    state start { pkt.extract(eg_intr_md); transition accept; }
}

control MEgress(inout headers_t h, inout eg_md_t m,
        in egress_intrinsic_metadata_t eg_intr_md,
        in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
        inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
        inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
    apply { }
}

control MEgressDeparser(packet_out pkt, inout headers_t h, in eg_md_t m,
        in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
    apply { pkt.emit(h.p); }
}

Pipeline(MIngressParser(), MIngress(), MIngressDeparser(),
         MEgressParser(), MEgress(), MEgressDeparser()) pipe;
Switch(pipe) main;
"""


@pytest.fixture(scope="module")
def mirror_program():
    return load_program(_MIRROR_SRC, source_name="tna_mirror")


def test_tofino_mirror_emits_copy(mirror_program):
    bits = 1 << (512 - 8)  # kind=1 in the top byte
    result = TofinoSimulator(mirror_program).process(1, bits, 512, Config())
    assert not result.dropped
    assert len(result.outputs) == 2
    assert result.outputs[0][0] == 3   # original, forwarded
    assert result.outputs[1][0] == 0   # mirror session copy


def test_tofino_no_mirror_single_output(mirror_program):
    result = TofinoSimulator(mirror_program).process(1, 0, 512, Config())
    assert not result.dropped
    assert len(result.outputs) == 1
    assert result.outputs[0][0] == 3


# ---------------------------------------------------------------------------
# eBPF: table-driven drop parity
# ---------------------------------------------------------------------------

_ACL_SRC = """
#include <core.p4>
#include <ebpf_model.p4>

header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { ethernet_t eth; }

parser prs(packet_in pkt, out headers_t hdr) {
    state start { pkt.extract(hdr.eth); transition accept; }
}

control flt(inout headers_t hdr, out bool accept) {
    action allow() { }
    action deny() { accept = false; }
    table acl {
        key = { hdr.eth.etype: exact @name("etype"); }
        actions = { allow; deny; }
        default_action = allow();
    }
    apply {
        accept = hdr.eth.isValid();
        acl.apply();
    }
}

ebpfFilter(prs(), flt()) main;
"""


@pytest.fixture(scope="module")
def acl_program():
    return load_program(_ACL_SRC, source_name="ebpf_acl")


def _deny_entry(etype):
    return TableEntrySpec(
        table="flt.acl", action="flt.deny",
        keys=[("etype", "exact", {"value": etype})], action_args=[],
    )


def test_ebpf_table_entry_drops(acl_program):
    result = EbpfSimulator(acl_program).process(
        0, 0x0800, 112, Config(entries=[_deny_entry(0x0800)]))
    assert result.dropped and not result.outputs


def test_ebpf_table_miss_accepts_unmodified(acl_program):
    result = EbpfSimulator(acl_program).process(
        0, 0x86DD, 112, Config(entries=[_deny_entry(0x0800)]))
    assert not result.dropped
    assert result.outputs[0] == (0, 0x86DD, 112)


def test_ebpf_default_allow_without_entries(acl_program):
    result = EbpfSimulator(acl_program).process(0, 0x0800, 112, Config())
    assert not result.dropped


def test_ebpf_parser_reject_drops(acl_program):
    # Too short for the 112-bit ethernet header: parser reject -> drop,
    # matching the short-packet drop tests BMv2/Tofino already have.
    result = EbpfSimulator(acl_program).process(0, 0xAB, 8, Config())
    assert result.dropped


# ---------------------------------------------------------------------------
# Suite replay: scalar and lane-packed modes must classify identically
# ---------------------------------------------------------------------------

from repro import TestGen, TestGenConfig
from repro.targets import get_target
from repro.testback.runner import run_suite

# One row per family plus a compile-fallback program, so both the lane
# fast path and the scalar-fallback path are pinned against mode skew.
_REPLAY_MODE_ROWS = (
    ("fig1a", "v1model"),
    ("match_kinds", "v1model"),
    ("value_set_demo", "v1model"),
    ("tna_fig4", "tna"),
    ("ebpf_filter", "ebpf_model"),
    ("register_demo", "v1model"),  # CompileUnsupported -> scalar replay
)


@pytest.mark.parametrize("name,target", _REPLAY_MODE_ROWS)
def test_suite_replay_modes_agree(name, target):
    program = load_program(name)
    result = TestGen(program, target=get_target(target),
                     config=TestGenConfig(seed=1, max_tests=8)).run()
    passed_scalar, scalar = run_suite(result.tests, program)
    passed_batch, batched = run_suite(result.tests, program, batch=True)
    assert passed_scalar == passed_batch
    assert [(r.test_id, r.passed, r.kind, r.detail) for r in scalar] \
        == [(r.test_id, r.passed, r.kind, r.detail) for r in batched]
