"""Direct unit tests for the BMv2 simulator (independent of the oracle)."""

import pytest

from repro.interp import Bmv2Simulator, Config
from repro.interp.core import ConcretePacket, ParserReject
from repro.oracle import load_program
from repro.testback.spec import TableEntrySpec


@pytest.fixture(scope="module")
def fig1a():
    return load_program("fig1a")


def make_eth(dst=0, src=0, etype=0):
    return (dst << 64) | (src << 16) | etype


def test_concrete_packet_extract_order():
    pkt = ConcretePacket(0xAABBCC, 24)
    assert pkt.extract(8) == 0xAA
    assert pkt.extract(8) == 0xBB
    assert pkt.remaining == 8


def test_concrete_packet_too_short():
    pkt = ConcretePacket(0xAA, 8)
    with pytest.raises(ParserReject):
        pkt.extract(16)


def test_concrete_packet_lookahead_nondestructive():
    pkt = ConcretePacket(0xAABB, 16)
    assert pkt.lookahead(8) == 0xAA
    assert pkt.extract(8) == 0xAA


def test_concrete_packet_prepend():
    pkt = ConcretePacket(0xBB, 8)
    pkt.prepend(0xAA, 8)
    assert pkt.extract(16) == 0xAABB


def test_miss_forwards_with_rewritten_type(fig1a):
    sim = Bmv2Simulator(fig1a)
    result = sim.process(0, make_eth(), 112, Config())
    assert not result.dropped
    port, bits, width = result.outputs[0]
    assert port == 0
    assert width == 112
    assert bits & 0xFFFF == 0xBEEF


def test_entry_hit_sets_port(fig1a):
    entry = TableEntrySpec(
        table="MyIngress.forward_table",
        action="MyIngress.set_out",
        keys=[("type", "exact", {"value": 0xBEEF})],
        action_args=[("port", 9)],
    )
    sim = Bmv2Simulator(fig1a)
    result = sim.process(0, make_eth(etype=0x1234), 112, Config(entries=[entry]))
    # The program rewrites type to 0xBEEF before the lookup, so the
    # entry matches regardless of the input EtherType.
    assert result.outputs[0][0] == 9


def test_entry_that_cannot_match(fig1a):
    entry = TableEntrySpec(
        table="MyIngress.forward_table",
        action="MyIngress.set_out",
        keys=[("type", "exact", {"value": 0x1111})],  # never matches 0xBEEF
        action_args=[("port", 9)],
    )
    sim = Bmv2Simulator(fig1a)
    result = sim.process(0, make_eth(), 112, Config(entries=[entry]))
    assert result.outputs[0][0] == 0  # miss -> default noop


def test_drop_port_511(fig1a):
    entry = TableEntrySpec(
        table="MyIngress.forward_table",
        action="MyIngress.set_out",
        keys=[("type", "exact", {"value": 0xBEEF})],
        action_args=[("port", 511)],
    )
    sim = Bmv2Simulator(fig1a)
    result = sim.process(0, make_eth(), 112, Config(entries=[entry]))
    assert result.dropped


def test_short_packet_continues_to_ingress(fig1a):
    sim = Bmv2Simulator(fig1a)
    result = sim.process(0, 0xAABB, 16, Config())
    # Parser error: header invalid; deparser emits nothing; the 16
    # unparsed bits pass through.
    assert not result.dropped
    assert result.outputs[0][2] == 16


def test_checksum_program_drop_and_forward():
    program = load_program("fig1b")
    sim = Bmv2Simulator(program)
    from repro.externs.checksum import ones_complement16

    dst, src = 0x1122334455, 0x99AABBCCDD
    good = ones_complement16([(48, dst), (48, src)])
    result = sim.process(0, make_eth(dst, src, good), 112, Config())
    assert not result.dropped

    bad = good ^ 0xFFFF
    result = sim.process(0, make_eth(dst, src, bad), 112, Config())
    assert result.dropped


def test_register_program_roundtrip():
    program = load_program("register_demo")
    sim = Bmv2Simulator(program)
    from repro.testback.spec import RegisterSpec

    # opcode 2 gates on a register value configured by the CP.
    cfg = Config(registers=[RegisterSpec("reg_ingress.state_reg", 0, 0xDEADBEEF)])
    pkt = (2 << 32) | 0  # opcode=2, operand=0
    result = sim.process(0, pkt, 40, cfg)
    assert result.outputs and result.outputs[0][0] == 2

    cfg = Config(registers=[RegisterSpec("reg_ingress.state_reg", 0, 0)])
    result = sim.process(0, pkt, 40, cfg)
    assert result.dropped


def test_mpls_stack_overflow_rejects():
    program = load_program("mpls_stack")
    sim = Bmv2Simulator(program)
    # Four MPLS labels with bos=0 overflow the 3-deep stack: the parser
    # signals StackOutOfBounds and BMv2 continues with headers invalid.
    eth = make_eth(etype=0x8847)
    labels = 0
    for _ in range(4):
        labels = (labels << 32) | 0x00000040  # bos=0, ttl=0x40
    bits = (eth << 128) | labels
    result = sim.process(0, bits, 112 + 128, Config())
    assert result.error is None
