"""Property tests for lane packing and lane-vs-scalar parity.

Two layers: the SWAR primitives (pack/unpack round-trips, comparison
masks) are checked exhaustively-ish over random geometries, and whole
random programs from the fuzz grammar are replayed batch-vs-scalar —
arithmetic, masks, slices, and control-flow divergence included —
asserting the observables never differ.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.fuzz.generator import generate_spec
from repro.interp import BatchSimulator, Config
from repro.interp.batch import (
    Lanes, lane_eq, lane_lt, lane_ne, lane_select, lane_splat,
    iter_lanes, pack_lanes, unpack_lanes,
)
from repro.oracle import load_program
from repro.testback.runner import make_simulator

widths = st.integers(min_value=1, max_value=64)


@given(st.data(), widths)
@settings(max_examples=60, deadline=None)
def test_pack_unpack_roundtrip(data, width):
    k = data.draw(st.integers(min_value=1, max_value=48))
    vals = data.draw(st.lists(
        st.integers(min_value=0, max_value=(1 << 70) - 1),
        min_size=k, max_size=k))
    g = Lanes(k)
    packed = pack_lanes(vals, width, g)
    mask = (1 << width) - 1
    assert unpack_lanes(packed, width, g) == [v & mask for v in vals]
    # Packed registers stay clean: nothing outside each lane's field.
    assert packed & ~g.fm(width) == 0


@given(st.data(), widths)
@settings(max_examples=60, deadline=None)
def test_lane_comparisons_match_scalar(data, width):
    k = data.draw(st.integers(min_value=1, max_value=32))
    lane_vals = st.integers(min_value=0, max_value=(1 << width) - 1)
    a = data.draw(st.lists(lane_vals, min_size=k, max_size=k))
    b = data.draw(st.lists(lane_vals, min_size=k, max_size=k))
    g = Lanes(k)
    pa, pb = pack_lanes(a, width, g), pack_lanes(b, width, g)
    eq, ne, lt = (lane_eq(pa, pb, width, g), lane_ne(pa, pb, width, g),
                  lane_lt(pa, pb, width, g))
    for i in range(k):
        bit = 1 << (i * g.stride)
        assert bool(eq & bit) == (a[i] == b[i])
        assert bool(ne & bit) == (a[i] != b[i])
        assert bool(lt & bit) == (a[i] < b[i])


@given(st.data(), widths)
@settings(max_examples=40, deadline=None)
def test_lane_select_picks_per_lane(data, width):
    k = data.draw(st.integers(min_value=1, max_value=32))
    lane_vals = st.integers(min_value=0, max_value=(1 << width) - 1)
    t = data.draw(st.lists(lane_vals, min_size=k, max_size=k))
    e = data.draw(st.lists(lane_vals, min_size=k, max_size=k))
    cond_bits = data.draw(st.integers(min_value=0, max_value=(1 << k) - 1))
    g = Lanes(k)
    cond = sum(1 << (i * g.stride) for i in range(k) if cond_bits >> i & 1)
    out = lane_select(cond, pack_lanes(t, width, g),
                      pack_lanes(e, width, g), width, g)
    expect = [t[i] if cond_bits >> i & 1 else e[i] for i in range(k)]
    assert unpack_lanes(out, width, g) == expect


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=1, max_value=48))
@settings(max_examples=60, deadline=None)
def test_iter_lanes_enumerates_set_lanes(lane_bits, k):
    g = Lanes(k)
    mask = sum(1 << (i * g.stride) for i in range(k) if lane_bits >> i & 1)
    got = iter_lanes(mask, g.stride)
    assert got == [(i, i * g.stride) for i in range(k) if lane_bits >> i & 1]


@given(st.integers(min_value=0, max_value=(1 << 64) - 1), widths,
       st.integers(min_value=1, max_value=32))
@settings(max_examples=40, deadline=None)
def test_lane_splat_broadcasts(value, width, k):
    g = Lanes(k)
    assert unpack_lanes(lane_splat(value, width, g), width, g) \
        == [value & ((1 << width) - 1)] * k


# -- whole-program parity on random fuzz-grammar programs ----------------

_TARGETS = ("v1model", "tna", "ebpf_model")


@given(st.integers(min_value=0, max_value=400),
       st.sampled_from(_TARGETS))
@settings(max_examples=15, deadline=None)
def test_random_program_batch_scalar_parity(seed, target):
    spec = generate_spec(seed, target)
    program = load_program(spec.render(), source_name=spec.name)
    rng = random.Random(seed ^ 0x5EED)
    cases = []
    for _ in range(6):
        w = rng.choice((64, 112, 320, 600))
        cases.append((rng.randrange(0, 64), rng.getrandbits(w), w, Config()))
    batch = BatchSimulator(target, program, seed=0)
    bres = batch.run_cases(cases)
    for (port, bits, width, config), br in zip(cases, bres):
        sr = make_simulator(target, program, seed=0).process(
            port, bits, width, config)
        assert (br.outputs, br.dropped, br.error) \
            == (sr.outputs, sr.dropped, sr.error), \
            f"{spec.name}@{target} diverged on width {width}"
