"""Direct unit tests for the Tofino-model and eBPF simulators."""

import pytest

from repro.interp import Config, EbpfSimulator, TofinoSimulator
from repro.oracle import load_program
from repro.testback.spec import TableEntrySpec


@pytest.fixture(scope="module")
def tna_program():
    return load_program("tna_forward")


@pytest.fixture(scope="module")
def ebpf_program():
    return load_program("ebpf_filter")


def make_eth(dst=0, src=0, etype=0, pad_to_bits=512):
    bits = (dst << 64) | (src << 16) | etype
    if pad_to_bits > 112:
        bits <<= pad_to_bits - 112
    return bits, pad_to_bits


def test_tofino_short_packet_dropped(tna_program):
    sim = TofinoSimulator(tna_program)
    result = sim.process(1, 0, 120, Config())  # < 64 bytes
    assert result.dropped


def test_tofino_unwritten_port_drops(tna_program):
    sim = TofinoSimulator(tna_program)
    bits, width = make_eth(dst=0x42)
    # No entries: default action is drop(); even without it, the port
    # is never written.
    result = sim.process(1, bits, width, Config())
    assert result.dropped


def test_tofino_forwarding_entry(tna_program):
    entry = TableEntrySpec(
        table="SwitchIngress.l2_forward",
        action="SwitchIngress.set_port",
        keys=[("dmac", "exact", {"value": 0x42})],
        action_args=[("port", 5)],
    )
    sim = TofinoSimulator(tna_program)
    bits, width = make_eth(dst=0x42)
    result = sim.process(1, bits, width, Config(entries=[entry]))
    assert not result.dropped
    port, out_bits, out_width = result.outputs[0]
    assert port == 5
    # Ethernet re-emitted + payload padding forwarded.
    assert out_width == width
    assert (out_bits >> (out_width - 48)) == 0x42  # dmac preserved


def test_tofino_drop_action(tna_program):
    entry = TableEntrySpec(
        table="SwitchIngress.l2_forward",
        action="SwitchIngress.drop",
        keys=[("dmac", "exact", {"value": 0x42})],
        action_args=[],
    )
    sim = TofinoSimulator(tna_program)
    bits, width = make_eth(dst=0x42)
    result = sim.process(1, bits, width, Config(entries=[entry]))
    assert result.dropped


def test_tofino_v2_port_metadata_width(tna_program):
    sim1 = TofinoSimulator(tna_program, version=1)
    sim2 = TofinoSimulator(tna_program, version=2)
    assert sim1.port_metadata_bits == 64
    assert sim2.port_metadata_bits == 192


# ipv4_t field offsets from the LSB of the 160-bit header:
# ttl sits 64 bits below the MSB -> shift = 160 - 64 - 8 = 88.
_TTL_SHIFT = 88


def test_ebpf_accepts_ipv4_with_ttl(ebpf_program):
    sim = EbpfSimulator(ebpf_program)
    ipv4 = (4 << 156) | (5 << 152) | (5 << _TTL_SHIFT)  # version, ihl, ttl=5
    bits = ((0x0800) << 160) | ipv4
    width = 112 + 160
    result = sim.process(0, bits, width, Config())
    assert not result.dropped
    assert result.outputs[0][2] == width


def test_ebpf_rejects_ttl_one(ebpf_program):
    sim = EbpfSimulator(ebpf_program)
    ipv4 = (4 << 156) | (5 << 152) | (1 << _TTL_SHIFT)  # ttl = 1
    bits = ((0x0800) << 160) | ipv4
    result = sim.process(0, bits, 272, Config())
    assert result.dropped


def test_ebpf_rejects_non_ip(ebpf_program):
    sim = EbpfSimulator(ebpf_program)
    bits = 0x86DD  # EtherType IPv6, not parsed
    result = sim.process(0, bits, 112, Config())
    assert result.dropped


def test_ebpf_short_packet_dropped(ebpf_program):
    sim = EbpfSimulator(ebpf_program)
    result = sim.process(0, 0xAB, 8, Config())
    assert result.dropped
