"""Property tests for the alpha-invariant solve cache.

Hypothesis generates random constraint sets, permutes them, and
consistently renames their variables; the cache key must be invariant
under both, and a cache hit must return exactly the model a fresh
canonical solve would have produced (rebound to the querying set's own
variables).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import SolveCache, Solver, terms as T
from repro.smt.cache import alpha_template, canonical_string

VAR_NAMES = ("a", "b", "c", "d")
WIDTH = 8


def _var(i):
    return T.bv_var(VAR_NAMES[i], WIDTH)


@st.composite
def atoms(draw):
    """One boolean constraint over up to four 8-bit variables."""
    kind = draw(st.sampled_from(["eq_const", "ult_const", "eq_var",
                                 "ult_var", "eq_add"]))
    x = _var(draw(st.integers(0, len(VAR_NAMES) - 1)))
    y = _var(draw(st.integers(0, len(VAR_NAMES) - 1)))
    c = T.bv_const(draw(st.integers(0, 255)), WIDTH)
    if kind == "eq_const":
        return T.eq(x, c)
    if kind == "ult_const":
        return T.ult(x, c)
    if kind == "eq_var":
        return T.eq(x, y)
    if kind == "ult_var":
        return T.ult(x, y)
    return T.eq(T.bv_add(x, y), c)


constraint_sets = st.lists(atoms(), min_size=1, max_size=5)

# a -> renamed_a, b -> renamed_b, ... (order-preserving, so each term's
# canonical_string tie-break order inside the key survives the rename).
RENAMING = {
    _var(i): T.bv_var(f"renamed_{name}", WIDTH)
    for i, name in enumerate(VAR_NAMES)
}


def _rename(term):
    return T.substitute(term, RENAMING)


# ---------------------------------------------------------------------------
# Key invariance
# ---------------------------------------------------------------------------

@given(constraint_sets, st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_key_invariant_under_permutation(constraints, rng):
    cache = SolveCache()
    shuffled = list(constraints)
    rng.shuffle(shuffled)
    assert cache.key_for(constraints) == cache.key_for(shuffled)
    assert hash(cache.key_for(constraints)) == hash(cache.key_for(shuffled))
    # The ordered term tuple itself is set-pure, not just the hash.
    assert cache.key_for(constraints).terms == cache.key_for(shuffled).terms


@given(constraint_sets)
@settings(max_examples=60, deadline=None)
def test_key_invariant_under_consistent_renaming(constraints):
    cache = SolveCache()
    renamed = [_rename(t) for t in constraints]
    key, renamed_key = cache.key_for(constraints), cache.key_for(renamed)
    assert key == renamed_key
    assert hash(key) == hash(renamed_key)
    # ...and corresponding var_order slots hold renamed counterparts,
    # which is what makes cross-set model rebinding sound.
    for orig, twin in zip(key.var_order, renamed_key.var_order):
        assert RENAMING[orig] is twin


@given(constraint_sets)
@settings(max_examples=40, deadline=None)
def test_alpha_template_erases_names_canonical_string_keeps_them(constraints):
    for term in constraints:
        renamed = _rename(term)
        assert alpha_template(term)[0] == alpha_template(renamed)[0]
        if term is renamed:
            continue  # simplifier folded the atom to a constant
        assert canonical_string(term) != canonical_string(renamed)


# ---------------------------------------------------------------------------
# Hit models == fresh canonical solve
# ---------------------------------------------------------------------------

@given(constraint_sets, st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_hit_model_equals_fresh_canonical_solve(constraints, rng):
    fresh = Solver(cache=SolveCache())
    fresh_status = fresh.check(*constraints)

    cache = SolveCache()
    warm = Solver(cache=cache)
    warm.check(*constraints)
    shuffled = list(constraints)
    rng.shuffle(shuffled)
    assert warm.check(*shuffled) == fresh_status
    assert cache.hits == 1
    if fresh_status == "sat":
        assert warm.model().as_dict() == fresh.model().as_dict()


@given(constraint_sets)
@settings(max_examples=40, deadline=None)
def test_renamed_hit_rebinds_model_to_new_variables(constraints):
    renamed = [_rename(t) for t in constraints]

    cache = SolveCache()
    solver = Solver(cache=cache)
    status = solver.check(*constraints)
    assert solver.check(*renamed) == status
    assert cache.hits == 1, "renamed twin set must hit the same entry"
    if status != "sat":
        return
    # The hit's model speaks about the *renamed* variables, carrying
    # the values of their originals...
    fresh = Solver(cache=SolveCache())
    fresh.check(*constraints)
    original = fresh.model().as_dict()
    hit_model = solver.model().as_dict()
    for var, value in original.items():
        assert hit_model[RENAMING[var]] == value
    # ...and satisfies the renamed constraints (replayed on a plain
    # incremental solver with the model pinned).
    replay = Solver()
    for t in renamed:
        replay.add(t)
    for var, value in hit_model.items():
        replay.add(T.eq(var, T.bv_const(value, var.width)))
    assert replay.check() == "sat"


# ---------------------------------------------------------------------------
# LRU eviction order under alpha-renamed keys
# ---------------------------------------------------------------------------

def _distinct_sets(n):
    """n constraint sets with pairwise-distinct canonical keys."""
    a = _var(0)
    return [[T.eq(a, T.bv_const(i, WIDTH))] for i in range(n)]


@given(
    capacity=st.integers(1, 4),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 5), st.booleans()),
        min_size=1, max_size=30,
    ),
)
@settings(max_examples=60, deadline=None)
def test_lru_eviction_order_is_alpha_invariant(capacity, ops):
    """Randomized store/lookup sequences against a capacity-bounded
    cache, mirrored by a reference OrderedDict LRU.  Lookups go through
    *alpha-renamed twins* of the stored sets, so the test fails if
    recency bookkeeping (or eviction) ever keys on variable names
    instead of the canonical template.

    ``ops`` entries are ``(is_store, set_index, use_renamed)``.
    """
    from collections import OrderedDict

    sets = _distinct_sets(6)
    cache = SolveCache(capacity=capacity)
    reference = OrderedDict()  # canon -> None, most recent last
    evictions = 0
    for is_store, idx, use_renamed in ops:
        terms = sets[idx]
        if use_renamed:
            terms = [_rename(t) for t in terms]
        key = cache.key_for(terms)
        if is_store:
            if key.canon not in reference and len(reference) == capacity:
                reference.popitem(last=False)
                evictions += 1
            reference[key.canon] = None
            reference.move_to_end(key.canon)
            cache.store(key, cache.solve(key))
        else:
            hit = cache.lookup(key)
            assert (hit is not None) == (key.canon in reference), (
                f"cache and reference disagree on {idx} "
                f"(renamed={use_renamed})"
            )
            if hit is not None:
                reference.move_to_end(key.canon)
    # Same survivors, same LRU order, same eviction count.  Entries are
    # keyed ``(CacheKey, backend tag)`` since the portfolio work; the
    # tag never varies within one cache, so order is still per-key.
    assert [k.canon for k, _tag in cache._entries] == list(reference)
    assert cache.evictions == evictions


@given(constraint_sets)
@settings(max_examples=30, deadline=None)
def test_model_values_keyed_by_index_not_name(constraints):
    # Store via the original set, look up via the renamed twin; the
    # entry is shared, so values must travel by canonical index.
    cache = SolveCache()
    key = cache.key_for(constraints)
    entry = cache.solve(key)
    cache.store(key, entry)

    twin_key = cache.key_for([_rename(t) for t in constraints])
    hit = cache.lookup(twin_key)
    assert hit is entry
    if entry.status == "sat":
        rebound = hit.model_values(twin_key)
        for i, var in enumerate(twin_key.var_order):
            assert rebound[var] == entry.values[i]
