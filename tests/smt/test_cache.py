"""Solve-cache behaviour: canonical keys, hits/misses, eviction, and
the cache-backed Solver mode."""

import pytest

from repro.smt import SolveCache, Solver, terms as T
from repro.smt.cache import canonical_string


def _vars():
    a = T.bv_var("a", 8)
    b = T.bv_var("b", 8)
    return a, b


def _constraints():
    a, b = _vars()
    c1 = T.eq(a, T.bv_const(3, 8))
    c2 = T.ult(b, T.bv_const(7, 8))
    return c1, c2


# ---------------------------------------------------------------------------
# Canonical keys
# ---------------------------------------------------------------------------

def test_canonical_string_is_structural():
    a, b = _vars()
    t1 = T.and_(T.eq(a, T.bv_const(1, 8)), T.eq(b, T.bv_const(2, 8)))
    t2 = T.and_(T.eq(a, T.bv_const(1, 8)), T.eq(b, T.bv_const(2, 8)))
    assert t1 is t2  # hash-consing
    assert canonical_string(t1) == canonical_string(t2)
    assert canonical_string(t1) != canonical_string(T.eq(a, b))


def test_key_is_order_insensitive_and_deduped():
    cache = SolveCache()
    c1, c2 = _constraints()
    assert cache.key_for([c1, c2]) == cache.key_for([c2, c1])
    assert cache.key_for([c1, c2, c1]) == cache.key_for([c1, c2])
    assert cache.key_for([c1]) != cache.key_for([c1, c2])


# ---------------------------------------------------------------------------
# Hit/miss accounting and invalidation by key
# ---------------------------------------------------------------------------

def test_cache_hit_on_repeat_and_miss_on_new_constraints():
    cache = SolveCache()
    solver = Solver(cache=cache)
    c1, c2 = _constraints()
    assert solver.check(c1, c2) == "sat"
    assert (cache.hits, cache.misses) == (0, 1)
    # Same set, different order: a hit.
    assert solver.check(c2, c1) == "sat"
    assert (cache.hits, cache.misses) == (1, 1)
    # A different constraint set never reuses the old entry.
    a, _b = _vars()
    c3 = T.eq(a, T.bv_const(9, 8))
    assert solver.check(c2, c3) == "sat"
    assert (cache.hits, cache.misses) == (1, 2)
    stats = cache.stats_dict()
    assert stats["hits"] == 1 and stats["misses"] == 2
    assert stats["entries"] == 2


def test_hit_and_miss_produce_identical_models():
    c1, c2 = _constraints()
    cold = Solver(cache=SolveCache())
    assert cold.check(c1, c2) == "sat"
    cold_model = cold.model().as_dict()

    warm_cache = SolveCache()
    warm = Solver(cache=warm_cache)
    warm.check(c1, c2)
    assert warm.check(c1, c2) == "sat"  # second query: a hit
    assert warm_cache.hits == 1
    assert warm.model().as_dict() == cold_model


def test_cached_unsat_answers():
    a, _b = _vars()
    cache = SolveCache()
    solver = Solver(cache=cache)
    contradiction = [T.eq(a, T.bv_const(1, 8)), T.eq(a, T.bv_const(2, 8))]
    assert solver.check(*contradiction) == "unsat"
    assert solver.check(*contradiction) == "unsat"
    assert cache.hits == 1
    with pytest.raises(RuntimeError):
        solver.model()


def test_time_saved_accumulates_on_hits():
    cache = SolveCache()
    solver = Solver(cache=cache)
    c1, c2 = _constraints()
    solver.check(c1, c2)
    assert cache.time_saved == 0.0
    solver.check(c1, c2)
    assert cache.time_saved > 0.0
    assert solver.stats.cache_time_saved == cache.time_saved
    assert solver.stats.as_dict()["cache_time_saved_s"] == cache.time_saved


# ---------------------------------------------------------------------------
# Capacity / eviction
# ---------------------------------------------------------------------------

def test_lru_eviction_invalidates_oldest():
    cache = SolveCache(capacity=1)
    solver = Solver(cache=cache)
    c1, c2 = _constraints()
    solver.check(c1)
    solver.check(c2)          # evicts the c1 entry
    assert cache.evictions == 1
    assert len(cache) == 1
    solver.check(c1)          # miss again: entry was invalidated
    assert cache.misses == 3 and cache.hits == 0


def test_capacity_zero_disables_storage_not_canonical_solving():
    cache = SolveCache(capacity=0)
    solver = Solver(cache=cache)
    c1, c2 = _constraints()
    assert solver.check(c1, c2) == "sat"
    first = solver.model().as_dict()
    assert solver.check(c1, c2) == "sat"
    assert cache.hits == 0 and cache.misses == 2
    assert len(cache) == 0
    # Pure canonical solves: the repeat answer is still identical.
    assert solver.model().as_dict() == first


def test_clear_empties_entries():
    cache = SolveCache()
    solver = Solver(cache=cache)
    c1, _c2 = _constraints()
    solver.check(c1)
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0


# ---------------------------------------------------------------------------
# Cache-mode Solver keeps the incremental interface
# ---------------------------------------------------------------------------

def test_cache_mode_push_pop_scopes_assertions():
    cache = SolveCache()
    solver = Solver(cache=cache)
    a, _b = _vars()
    solver.add(T.ult(a, T.bv_const(10, 8)))
    solver.push()
    solver.add(T.eq(a, T.bv_const(4, 8)))
    assert solver.check() == "sat"
    assert solver.model()[a] == 4
    solver.pop()
    assert solver.assertions() == [T.ult(a, T.bv_const(10, 8))]
    assert solver.check() == "sat"


def test_solver_stats_expose_cache_counters():
    stats = Solver(cache=SolveCache()).stats.as_dict()
    for key in ("cache_hits", "cache_misses", "cache_time_saved_s"):
        assert key in stats
