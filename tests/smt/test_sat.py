"""Unit tests for the CDCL SAT core."""

import itertools

import pytest

from repro.smt.sat import SAT, UNSAT, SatSolver


def brute_force(clauses, num_vars):
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any((bits[abs(l) - 1]) == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


def test_empty_formula_is_sat():
    s = SatSolver()
    assert s.solve() == SAT


def test_single_unit_clause():
    s = SatSolver()
    s.add_clause([1])
    assert s.solve() == SAT
    assert s.model()[1] is True


def test_contradictory_units():
    s = SatSolver()
    s.add_clause([1])
    assert s.add_clause([-1]) is False
    assert s.solve() == UNSAT


def test_simple_sat_instance():
    s = SatSolver()
    s.add_clause([1, 2])
    s.add_clause([-1, 2])
    s.add_clause([1, -2])
    assert s.solve() == SAT
    m = s.model()
    assert m[1] and m[2]


def test_simple_unsat_instance():
    s = SatSolver()
    s.add_clause([1, 2])
    s.add_clause([-1, 2])
    s.add_clause([1, -2])
    s.add_clause([-1, -2])
    assert s.solve() == UNSAT


def test_pigeonhole_3_into_2_unsat():
    # p(i,j): pigeon i in hole j. vars: 1..6
    def v(i, j):
        return i * 2 + j + 1

    s = SatSolver()
    for i in range(3):
        s.add_clause([v(i, 0), v(i, 1)])
    for j in range(2):
        for i1 in range(3):
            for i2 in range(i1 + 1, 3):
                s.add_clause([-v(i1, j), -v(i2, j)])
    assert s.solve() == UNSAT


def test_assumptions_sat_and_unsat():
    s = SatSolver()
    s.add_clause([1, 2])
    assert s.solve([-1]) == SAT
    assert s.model()[2] is True
    assert s.solve([-1, -2]) == UNSAT
    # Solver is reusable after an assumption-unsat answer.
    assert s.solve([1]) == SAT


def test_model_respects_clauses():
    s = SatSolver()
    clauses = [[1, -3], [2, 3, -1], [-2, -3]]
    for c in clauses:
        s.add_clause(c)
    assert s.solve() == SAT
    m = s.model()
    for c in clauses:
        assert any(m[abs(l)] == (l > 0) for l in c)


def test_tautological_clause_is_ignored():
    s = SatSolver()
    s.add_clause([1, -1])
    s.add_clause([-2])
    assert s.solve() == SAT
    assert s.model()[2] is False


def test_duplicate_literals_handled():
    s = SatSolver()
    s.add_clause([1, 1, 1])
    assert s.solve() == SAT
    assert s.model()[1] is True


@pytest.mark.parametrize("seed", range(8))
def test_random_3sat_matches_brute_force(seed):
    import random

    rng = random.Random(seed)
    num_vars = 8
    clauses = []
    for _ in range(30):
        lits = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([l if rng.random() < 0.5 else -l for l in lits])
    s = SatSolver()
    for c in clauses:
        s.add_clause(c)
    expected = brute_force(clauses, num_vars)
    got = s.solve() == SAT
    assert got == expected
    if expected:
        m = s.model()
        for c in clauses:
            assert any(m[abs(l)] == (l > 0) for l in c)


def test_incremental_add_after_sat():
    s = SatSolver()
    s.add_clause([1, 2])
    assert s.solve() == SAT
    s.add_clause([-1])
    s.add_clause([-2])
    assert s.solve() == UNSAT


def test_stats_are_tracked():
    s = SatSolver()
    for i in range(1, 6):
        s.add_clause([i, i % 5 + 1])
    s.solve()
    assert s.stats["decisions"] >= 0
    assert s.stats["propagations"] >= 0
