"""A tiny DIMACS CNF solver used as a stand-in external back end.

Exercises the subprocess plumbing in ``repro.smt.backends`` — launch,
stdout parsing, timeout/kill, failure backoff, model verification —
without requiring a real SAT solver binary.  Point the generic
``dimacs`` back end at it::

    REPRO_SOLVER_PATH="<python> /path/to/fake_dimacs_solver.py [--mode=M]"

The solver is a plain recursive DPLL with unit propagation; the test
queries it sees are small.  Output follows the conventional format
(``s SATISFIABLE`` / ``s UNSATISFIABLE`` plus ``v`` model lines, exit
code 10/20).

Modes (``--mode=``, default ``solve``):

- ``solve``   — answer correctly.
- ``slow``    — answer correctly after a 0.2s nap (native usually wins).
- ``hang``    — never answer (forces the deadline kill path).
- ``garbage`` — print unparseable output and exit 3.
- ``flip``    — answer with the *wrong* verdict (what the crosscheck
  and model-verification layers must catch).
- ``bogus-model`` — claim SAT (correctly or not) with an all-false
  assignment, which generally fails clause verification.
"""

from __future__ import annotations

import sys
import time


def parse_dimacs(text: str):
    num_vars = 0
    clauses: list[list[int]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            num_vars = int(parts[2])
            continue
        lits = [int(tok) for tok in line.split() if tok != "0"]
        if lits:
            clauses.append(lits)
    return num_vars, clauses


def dpll(clauses, assignment):
    while True:
        unit = None
        simplified = []
        for clause in clauses:
            live = []
            satisfied = False
            for lit in clause:
                val = assignment.get(abs(lit))
                if val is None:
                    live.append(lit)
                elif (lit > 0) == val:
                    satisfied = True
                    break
            if satisfied:
                continue
            if not live:
                return None
            if len(live) == 1 and unit is None:
                unit = live[0]
            simplified.append(live)
        if unit is None:
            clauses = simplified
            break
        assignment[abs(unit)] = unit > 0
    if not clauses:
        return assignment
    branch = clauses[0][0]
    for value in ((branch > 0), not (branch > 0)):
        trial = dict(assignment)
        trial[abs(branch)] = value
        result = dpll(clauses, trial)
        if result is not None:
            return result
    return None


def main(argv) -> int:
    mode = "solve"
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--mode="):
            mode = arg.split("=", 1)[1]
        else:
            paths.append(arg)
    if mode == "hang":
        time.sleep(3600)
        return 1
    if mode == "garbage":
        print("!!! not a solver answer !!!")
        return 3
    if mode == "slow":
        time.sleep(0.2)
    with open(paths[0]) as handle:
        num_vars, clauses = parse_dimacs(handle.read())
    sys.setrecursionlimit(10000 + 4 * num_vars)
    model = dpll(clauses, {})
    sat = model is not None
    if mode == "flip":
        sat = not sat
        model = {}
    if mode == "bogus-model":
        sat = True
        model = {}
    if sat:
        print("s SATISFIABLE")
        lits = [v if model.get(v, False) else -v
                for v in range(1, num_vars + 1)]
        print("v " + " ".join(map(str, lits)) + " 0")
        return 10
    print("s UNSATISFIABLE")
    return 20


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
