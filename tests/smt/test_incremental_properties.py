"""Property: the incremental status plane and a from-scratch solver
agree on every sat/unsat verdict.

Two drivers, mirroring the two ways the engine reaches the incremental
plane:

- ``push``/``add``/``pop``/``check`` in random stack orders (the
  generic facade API), and
- ``check_path`` over randomly evolving conjunct lists (the explorer's
  feasibility calls, where consecutive lists share DFS prefixes).

The reference is always a fresh one-shot :class:`Solver` built from
nothing for each query — no retained trail, no learned clauses, no
selectors — so any divergence pins the incremental machinery itself.
Models are deliberately *not* compared: incremental models are
history-dependent by design, which is exactly why emitted tests only
ever take models from the canonical plane (see DESIGN.md).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt import Solver, terms as T

WIDTH = 8
NUM_VARS = 3


def _vars():
    return [T.bv_var(f"ip_{i}", WIDTH) for i in range(NUM_VARS)]


def _constraint(variables, code):
    kind, vi, value = code
    var = variables[vi]
    const = T.bv_const(value, WIDTH)
    if kind == 0:
        return T.eq(var, const)
    if kind == 1:
        return T.ne(var, const)
    if kind == 2:
        return T.ult(var, const)
    return T.uge(var, const)


constraint_codes = st.tuples(st.integers(0, 3),
                             st.integers(0, NUM_VARS - 1),
                             st.integers(0, 2 ** WIDTH - 1))

# An op is push-with-constraint, pop, or check.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), constraint_codes),
        st.tuples(st.just("pop"), st.none()),
        st.tuples(st.just("check"), st.none()),
    ),
    min_size=1, max_size=24,
)


def _fresh_verdict(active):
    ref = Solver()
    for term in active:
        ref.add(term)
    return ref.check().status


@given(sequence=ops)
@settings(max_examples=60, deadline=None)
def test_incremental_stack_agrees_with_fresh_solver(sequence):
    variables = _vars()
    inc = Solver(incremental=True)
    stack: list = []
    for op, payload in sequence:
        if op == "push":
            term = _constraint(variables, payload)
            inc.push()
            inc.add(term)
            stack.append(term)
        elif op == "pop":
            if not stack:
                continue
            inc.pop()
            stack.pop()
        else:
            assert inc.check().status == _fresh_verdict(stack)
    # Final state must also agree, whatever the op tail was.
    assert inc.check().status == _fresh_verdict(stack)


# Conjunct-list evolution: extend, truncate to a random prefix (the
# DFS backtrack shape), or replace the tail (sibling branch shape).
path_ops = st.lists(
    st.one_of(
        st.tuples(st.just("extend"), constraint_codes),
        st.tuples(st.just("truncate"), st.integers(0, 23)),
        st.tuples(st.just("sibling"), constraint_codes),
    ),
    min_size=1, max_size=20,
)


@given(sequence=path_ops)
@settings(max_examples=60, deadline=None)
def test_check_path_agrees_with_fresh_solver(sequence):
    variables = _vars()
    inc = Solver(incremental=True)
    conjuncts: list = []
    for op, payload in sequence:
        if op == "extend":
            conjuncts.append(_constraint(variables, payload))
        elif op == "truncate":
            conjuncts = conjuncts[:payload % (len(conjuncts) + 1)]
        else:
            term = _constraint(variables, payload)
            conjuncts = conjuncts[:-1] + [term] if conjuncts else [term]
        got = inc.check_path(list(conjuncts)).status
        assert got == _fresh_verdict(conjuncts), (
            f"diverged on {[str(c) for c in conjuncts]}"
        )


def test_check_path_requires_incremental_mode():
    import pytest

    with pytest.raises(RuntimeError):
        Solver().check_path([])
