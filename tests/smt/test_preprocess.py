"""Unit + property tests for the word-level preprocessing layer.

The contract under test (see ``repro.smt.preprocess``): ``"unsat"``
verdicts rest on precise word-level arguments, ``"sat"`` verdicts carry
a verified witness, and *every* decided verdict agrees with a real
solver on the same conjunct set.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt import Solver, preprocess_conjuncts, terms as T
from repro.smt.evaluate import all_hold

WIDTH = 8


def _v(name):
    return T.bv_var(f"pp_{name}", WIDTH)


def _c(value, width=WIDTH):
    return T.bv_const(value, width)


# ---------------------------------------------------------------------------
# Constant folding / equality substitution
# ---------------------------------------------------------------------------

def test_empty_set_is_sat():
    res = preprocess_conjuncts([])
    assert res.status == "sat"
    assert res.witness == {}


def test_const_false_conjunct_is_unsat():
    a = _v("cf")
    res = preprocess_conjuncts([T.eq(a, _c(1)), T.false()])
    assert res.status == "unsat"


def test_binding_propagates_and_folds():
    a, b = _v("bp_a"), _v("bp_b")
    # a == 5 makes ult(a, b) fold into a single-var atom on b.
    res = preprocess_conjuncts([T.eq(a, _c(5)), T.ult(a, b)])
    assert res.status == "sat"
    assert res.witness[a] == 5
    assert res.witness[b] > 5


def test_conflicting_bindings_are_unsat():
    a = _v("cb")
    res = preprocess_conjuncts([T.eq(a, _c(3)), T.eq(a, _c(4))])
    assert res.status == "unsat"


def test_binding_contradicting_later_conjunct_is_unsat():
    a = _v("bc")
    res = preprocess_conjuncts([T.eq(a, _c(3)), T.ult(a, _c(2))])
    assert res.status == "unsat"


def test_bool_var_bindings():
    p, q = T.bool_var("pp_p"), T.bool_var("pp_q")
    res = preprocess_conjuncts([p, T.not_(q)])
    assert res.status == "sat"
    assert res.witness[p] is True and res.witness[q] is False
    res = preprocess_conjuncts([p, T.not_(p)])
    assert res.status == "unsat"


# ---------------------------------------------------------------------------
# Interval / bit-mask domains
# ---------------------------------------------------------------------------

def test_interval_conflict_is_unsat():
    a = _v("iv")
    res = preprocess_conjuncts([T.ult(a, _c(5)), T.uge(a, _c(10))])
    assert res.status == "unsat"


def test_interval_witness_respects_bounds():
    a = _v("iw")
    res = preprocess_conjuncts([T.uge(a, _c(10)), T.ult(a, _c(12))])
    assert res.status == "sat"
    assert 10 <= res.witness[a] < 12


def test_exhausted_disequalities_are_unsat():
    a = T.bv_var("pp_ex", 2)
    conjuncts = [T.ne(a, T.bv_const(i, 2)) for i in range(4)]
    res = preprocess_conjuncts(conjuncts)
    assert res.status == "unsat"


def test_disequalities_leave_a_witness():
    a = T.bv_var("pp_dq", 2)
    conjuncts = [T.ne(a, T.bv_const(i, 2)) for i in range(3)]
    res = preprocess_conjuncts(conjuncts)
    assert res.status == "sat"
    assert res.witness[a] == 3


def test_mask_facts_combine():
    a = _v("mk")
    res = preprocess_conjuncts([
        T.eq(T.bv_and(a, _c(0xF0)), _c(0x30)),
        T.eq(T.bv_and(a, _c(0x0F)), _c(0x05)),
    ])
    assert res.status == "sat"
    assert res.witness[a] & 0xF0 == 0x30
    assert res.witness[a] & 0x0F == 0x05


def test_mask_conflict_is_unsat():
    a = _v("mc")
    res = preprocess_conjuncts([
        T.eq(T.bv_and(a, _c(0xF0)), _c(0x30)),
        T.eq(T.bv_and(a, _c(0x30)), _c(0x00)),
    ])
    assert res.status == "unsat"


def test_mask_value_outside_mask_is_unsat():
    a = _v("mo")
    res = preprocess_conjuncts([T.eq(T.bv_and(a, _c(0x0F)), _c(0x10))])
    assert res.status == "unsat"


def test_unparsed_conjuncts_block_sat_but_not_unsat():
    a, b = _v("up_a"), _v("up_b")
    hard = T.eq(T.bv_add(a, b), _c(7))  # not a single-var atom
    assert preprocess_conjuncts([hard]).status is None
    # ...but a single-variable contradiction still decides the set.
    res = preprocess_conjuncts([hard, T.ult(a, _c(1)), T.uge(a, _c(2))])
    assert res.status == "unsat"


def test_sat_witness_is_verified_against_originals():
    res = preprocess_conjuncts([T.uge(_v("vw"), _c(100))])
    assert res.status == "sat"
    assert all_hold([T.uge(_v("vw"), _c(100))], res.witness)


# ---------------------------------------------------------------------------
# Agreement with the real solver
# ---------------------------------------------------------------------------

@st.composite
def _atoms(draw):
    kind = draw(st.sampled_from(
        ["eq_const", "ne_const", "ult_const", "uge_const", "mask",
         "eq_var", "ult_var", "eq_add"]))
    names = ("a", "b", "c")
    x = _v(names[draw(st.integers(0, 2))])
    y = _v(names[draw(st.integers(0, 2))])
    c = _c(draw(st.integers(0, 255)))
    if kind == "eq_const":
        return T.eq(x, c)
    if kind == "ne_const":
        return T.ne(x, c)
    if kind == "ult_const":
        return T.ult(x, c)
    if kind == "uge_const":
        return T.uge(x, c)
    if kind == "mask":
        m = _c(draw(st.integers(0, 255)))
        return T.eq(T.bv_and(x, m), c)
    if kind == "eq_var":
        return T.eq(x, y)
    if kind == "ult_var":
        return T.ult(x, y)
    return T.eq(T.bv_add(x, y), c)


@given(st.lists(_atoms(), min_size=1, max_size=6))
@settings(max_examples=120, deadline=None)
def test_decided_verdicts_agree_with_solver(conjuncts):
    res = preprocess_conjuncts(conjuncts)
    if res.status is None:
        return  # undecided is always safe
    solver = Solver()
    for t in conjuncts:
        solver.add(t)
    assert solver.check() == res.status
    if res.status == "sat":
        # The witness really satisfies every original conjunct.
        assert all_hold(conjuncts, res.witness)
