"""Incremental-solving behaviour: the property the paper leans on
("Z3 configured with incremental solving", §6)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt import Solver, terms as T


def test_blast_cache_shared_across_checks():
    """Repeated checks over shared subterms must not re-blast: variable
    count stays fixed after the first check."""
    a = T.bv_var("inc_a", 32)
    b = T.bv_var("inc_b", 32)
    base = T.eq(T.bv_add(a, b), T.bv_const(100, 32))
    s = Solver()
    s.add(base)
    assert s.check() == "sat"
    vars_after_first = s._sat.num_vars
    for i in range(5):
        assert s.check(T.ne(a, T.bv_const(i, 32))) == "sat"
    # Only the disequality gates were added (roughly one gate per bit
    # per check); the adder and variable bits were not re-blasted.
    assert s._sat.num_vars <= vars_after_first + 5 * 34


def test_learned_clauses_survive_assumption_checks():
    a = T.bv_var("inc_c", 16)
    s = Solver()
    s.add(T.ult(a, T.bv_const(100, 16)))
    for v in (150, 200, 300):
        assert s.check(T.eq(a, T.bv_const(v, 16))) == "unsat"
    assert s.check(T.eq(a, T.bv_const(50, 16))) == "sat"
    assert s.model()[a] == 50


@given(
    values=st.lists(st.integers(0, 255), min_size=1, max_size=6, unique=True)
)
@settings(max_examples=25, deadline=None)
def test_push_pop_is_stack_like(values):
    """Pushed constraints vanish on pop, at any depth."""
    a = T.bv_var("pp_a", 8)
    s = Solver()
    # Sequential push/pop: each pinned value holds only while pushed.
    for v in values:
        s.push()
        s.add(T.eq(a, T.bv_const(v, 8)))
        assert s.check() == "sat"
        assert s.model()[a] == v
        s.pop()
    assert s.depth == 0
    # Nested contradictory pins: unsat while both levels live, sat
    # again after popping the inner one.
    if len(values) >= 2:
        s.push()
        s.add(T.eq(a, T.bv_const(values[0], 8)))
        s.push()
        s.add(T.eq(a, T.bv_const(values[1], 8)))
        assert s.check() == "unsat"
        s.pop()
        assert s.check() == "sat"
        assert s.model()[a] == values[0]
        s.pop()
    assert s.check() == "sat"


@given(seed_vals=st.lists(st.integers(0, 65535), min_size=2, max_size=5))
@settings(max_examples=25, deadline=None)
def test_one_shot_assumptions_never_persist(seed_vals):
    a = T.bv_var("osa_a", 16)
    s = Solver()
    for v in seed_vals:
        status = s.check(T.eq(a, T.bv_const(v, 16)))
        assert status == "sat"
        assert s.model()[a] == v
    # No assumptions linger: contradictory pins in sequence all succeed.
    assert s.check() == "sat"
