"""Property-based tests: bit-blaster vs concrete evaluation of random terms."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt import Solver, evaluate, terms as T

WIDTH = 8


def _vars():
    return [T.bv_var("x", WIDTH), T.bv_var("y", WIDTH), T.bv_var("z", WIDTH)]


_BINOPS = [
    T.bv_add,
    T.bv_sub,
    T.bv_mul,
    T.bv_and,
    T.bv_or,
    T.bv_xor,
    T.bv_udiv,
    T.bv_urem,
    T.bv_shl,
    T.bv_lshr,
    T.bv_ashr,
]


@st.composite
def bv_terms(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return draw(st.sampled_from(_vars()))
        return T.bv_const(draw(st.integers(0, (1 << WIDTH) - 1)), WIDTH)
    op = draw(st.sampled_from(_BINOPS))
    a = draw(bv_terms(depth=depth - 1))
    b = draw(bv_terms(depth=depth - 1))
    return op(a, b)


@given(
    t=bv_terms(),
    xv=st.integers(0, 255),
    yv=st.integers(0, 255),
    zv=st.integers(0, 255),
)
@settings(max_examples=60, deadline=None)
def test_blaster_agrees_with_evaluator(t, xv, yv, zv):
    """For random terms t and concrete inputs, the formula
    (x=xv & y=yv & z=zv & out=t) must be satisfiable exactly with
    out == evaluate(t)."""
    x, y, z = _vars()
    env = {x: xv, y: yv, z: zv}
    expected = evaluate(t, env)
    out = T.bv_var("out", WIDTH)
    s = Solver()
    s.add(T.eq(x, T.bv_const(xv, WIDTH)))
    s.add(T.eq(y, T.bv_const(yv, WIDTH)))
    s.add(T.eq(z, T.bv_const(zv, WIDTH)))
    s.add(T.eq(out, t))
    assert s.check() == "sat"
    assert s.model()[out] == expected
    # And forcing a different output must be unsat.
    assert s.check(T.ne(out, T.bv_const(expected, WIDTH))) == "unsat"


@given(
    t=bv_terms(depth=2),
    xv=st.integers(0, 255),
    yv=st.integers(0, 255),
    zv=st.integers(0, 255),
)
@settings(max_examples=40, deadline=None)
def test_simplifier_is_semantics_preserving(t, xv, yv, zv):
    """Simplified and unsimplified construction evaluate identically."""
    x, y, z = _vars()
    env = {x: xv, y: yv, z: zv}
    simplified = evaluate(t, env)
    # Rebuild the same term shape with simplification off.
    T.set_simplify(False)
    try:
        rebuilt = T.substitute(t, {})
        unsimplified = evaluate(rebuilt, env)
    finally:
        T.set_simplify(True)
    assert simplified == unsimplified


@given(
    a=st.integers(0, 255),
    b=st.integers(0, 255),
)
@settings(max_examples=40, deadline=None)
def test_comparisons_match_python(a, b):
    ca, cb = T.bv_const(a, 8), T.bv_const(b, 8)
    assert evaluate(T.ult(ca, cb)) == (a < b)
    assert evaluate(T.ule(ca, cb)) == (a <= b)

    def sgn(v):
        return v - 256 if v >= 128 else v

    assert evaluate(T.slt(ca, cb)) == (sgn(a) < sgn(b))
    assert evaluate(T.sle(ca, cb)) == (sgn(a) <= sgn(b))


@given(v=st.integers(0, (1 << 16) - 1), hi=st.integers(0, 15), lo=st.integers(0, 15))
@settings(max_examples=40, deadline=None)
def test_extract_matches_python(v, hi, lo):
    if lo > hi:
        hi, lo = lo, hi
    t = T.extract(T.bv_const(v, 16), hi, lo)
    assert t.value == (v >> lo) & ((1 << (hi - lo + 1)) - 1)


@given(parts=st.lists(st.integers(0, 255), min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_concat_matches_python(parts):
    t = T.concat(*[T.bv_const(p, 8) for p in parts])
    expected = 0
    for p in parts:
        expected = (expected << 8) | p
    assert t.value == expected
    assert t.width == 8 * len(parts)
