"""Unit tests for concrete term evaluation."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.smt import EvaluationError, all_hold, evaluate, holds, terms as T


def test_constants():
    assert evaluate(T.bv_const(42, 8)) == 42
    assert evaluate(T.true()) is True
    assert evaluate(T.false()) is False


def test_variables_from_assignment():
    a = T.bv_var("ev_a", 8)
    assert evaluate(a, {a: 300}) == 300 & 0xFF  # masked to width
    p = T.bool_var("ev_p")
    assert evaluate(p, {p: 1}) is True


def test_unbound_variable_raises():
    with pytest.raises(EvaluationError):
        evaluate(T.bv_var("ev_unbound", 8))


def test_arith_semantics():
    a = T.bv_var("ev_x", 8)
    env = {a: 200}
    assert evaluate(T.bv_add(a, T.bv_const(100, 8)), env) == 44
    assert evaluate(T.bv_neg(a), env) == 56
    assert evaluate(T.bv_mul(a, T.bv_const(2, 8)), env) == 144


def test_division_by_zero_smtlib():
    a = T.bv_var("ev_d", 8)
    z = T.bv_var("ev_z", 8)
    env = {a: 7, z: 0}
    assert evaluate(T.bv_udiv(a, z), env) == 0xFF
    assert evaluate(T.bv_urem(a, z), env) == 7


def test_signed_comparisons():
    a = T.bv_var("ev_s", 8)
    env = {a: 0xFF}  # -1 signed
    assert evaluate(T.slt(a, T.bv_const(0, 8)), env) is True
    assert evaluate(T.ult(a, T.bv_const(0, 8)), env) is False


def test_shifts_and_extends():
    a = T.bv_var("ev_sh", 8)
    env = {a: 0x81}
    assert evaluate(T.bv_shl(a, T.bv_const(1, 8)), env) == 0x02
    assert evaluate(T.bv_ashr(a, T.bv_const(1, 8)), env) == 0xC0
    assert evaluate(T.sign_extend(a, 8), env) == 0xFF81
    assert evaluate(T.zero_extend(a, 8), env) == 0x0081


def test_deep_dag_no_recursion_error():
    """The evaluator must handle deep chains iteratively."""
    term = T.bv_var("ev_deep", 8)
    env = {term: 1}
    t = term
    for _ in range(5000):
        t = T.bv_add(t, T.bv_const(1, 8))
    # With simplification, consts fold; force depth via variable adds.
    t = term
    other = T.bv_var("ev_other", 8)
    env[other] = 1
    for _ in range(3000):
        t = T.bv_add(t, other)
    assert evaluate(t, env) == (1 + 3000) % 256


def test_ite_and_concat():
    p = T.bool_var("ev_c")
    a = T.bv_const(0xAB, 8)
    b = T.bv_const(0xCD, 8)
    assert evaluate(T.ite_bv(p, a, b), {p: True}) == 0xAB
    assert evaluate(T.concat(a, b)) == 0xABCD
    assert evaluate(T.extract(T.concat(a, b), 15, 8)) == 0xAB


# ---------------------------------------------------------------------------
# holds / all_hold (the elision hot path)
# ---------------------------------------------------------------------------

def test_holds_defaults_unbound_to_zero():
    a = T.bv_var("ev_h", 8)
    p = T.bool_var("ev_hp")
    assert holds(T.eq(a, T.bv_const(0, 8))) is True
    assert holds(T.eq(a, T.bv_const(1, 8))) is False
    assert holds(p) is False
    assert holds(T.not_(p)) is True


def test_holds_short_circuits_deep_chains():
    # Alternating and/or nesting 4000 deep: a recursive evaluator
    # would blow the stack; the iterative one must not.
    a = T.bv_var("ev_hd", 8)
    truthy = T.eq(a, T.bv_const(1, 8))
    t = truthy
    for _ in range(2000):
        t = T.and_(T.or_(t, T.not_(truthy)), truthy)
    assert holds(t, {a: 1}) is True
    assert holds(t, {a: 2}) is False


def test_all_hold_matches_individual_holds():
    a, b = T.bv_var("ev_aa", 8), T.bv_var("ev_ab", 8)
    conjuncts = [
        T.ult(a, T.bv_const(10, 8)),
        T.eq(b, T.bv_const(3, 8)),
        T.eq(T.bv_add(a, b), T.bv_const(8, 8)),
    ]
    env = {a: 5, b: 3}
    assert all_hold(conjuncts, env) is True
    assert all_hold(conjuncts, {a: 5, b: 4}) is False


_HVARS = [T.bv_var(n, 8) for n in ("hx", "hy", "hz")]


@st.composite
def _bool_terms(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.sampled_from(["eq", "ult", "eq_add"]))
        x = draw(st.sampled_from(_HVARS))
        y = draw(st.sampled_from(_HVARS))
        c = T.bv_const(draw(st.integers(0, 255)), 8)
        if kind == "eq":
            return T.eq(x, c)
        if kind == "ult":
            return T.ult(x, y)
        return T.eq(T.bv_add(x, y), c)
    op = draw(st.sampled_from(["and", "or", "not"]))
    a = draw(_bool_terms(depth=depth - 1))
    if op == "not":
        return T.not_(a)
    b = draw(_bool_terms(depth=depth - 1))
    return T.and_(a, b) if op == "and" else T.or_(a, b)


@given(
    t=_bool_terms(),
    xv=st.integers(0, 255),
    yv=st.integers(0, 255),
    zv=st.integers(0, 255),
)
@settings(max_examples=120, deadline=None)
def test_holds_agrees_with_evaluate_on_property_corpus(t, xv, yv, zv):
    """On fully bound assignments, the short-circuit path must return
    exactly what full-DAG evaluation returns."""
    env = dict(zip(_HVARS, (xv, yv, zv)))
    assert holds(t, env) == evaluate(t, env)
    assert all_hold([t], env) == evaluate(t, env)
