"""Tests for the query-elision pipeline (model reuse, subsumption,
rewrite) and its wiring into both solver modes.

The load-bearing properties: every elided answer agrees with what a
real solve would have returned, elided SAT answers are confined to
solvers whose models never reach test output, and the stats counters
tell the truth about which layer answered.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt import QueryElider, SolveCache, Solver, SolverStats, terms as T

WIDTH = 8


def _v(name):
    return T.bv_var(f"el_{name}", WIDTH)


def _c(value):
    return T.bv_const(value, WIDTH)


def _hard_atom(x, y, value):
    """A conjunct the word-level rewrite cannot decide."""
    return T.eq(T.bv_add(x, y), _c(value))


# ---------------------------------------------------------------------------
# QueryElider in isolation
# ---------------------------------------------------------------------------

def test_model_reuse_answers_sat():
    stats = SolverStats()
    elider = QueryElider(stats)
    x, y = _v("mr_x"), _v("mr_y")
    elider.note_model({x: 3, y: 4})
    status, witness = elider.try_answer([_hard_atom(x, y, 7)])
    assert status == "sat"
    assert witness == {x: 3, y: 4}
    assert stats.elide_hits_model == 1


def test_model_reuse_rejects_nonmatching_models():
    stats = SolverStats()
    elider = QueryElider(stats)
    x, y = _v("mm_x"), _v("mm_y")
    elider.note_model({x: 3, y: 5})
    status, _ = elider.try_answer([_hard_atom(x, y, 7)])
    assert status != "sat"
    assert stats.elide_hits_model == 0


def test_subsumption_answers_unsat_for_supersets():
    stats = SolverStats()
    elider = QueryElider(stats)
    x, y = _v("sub_x"), _v("sub_y")
    core = [_hard_atom(x, y, 1), T.not_(_hard_atom(x, y, 1))]
    elider.note_unsat(core)
    status, _ = elider.try_answer(core + [T.ult(x, _c(100))])
    assert status == "unsat"
    assert stats.elide_hits_subsume == 1
    # A subset of the core is NOT implied unsat.
    status, _ = elider.try_answer([core[0]])
    assert status != "unsat"


def test_rewrite_layer_decides_and_seeds_caches():
    stats = SolverStats()
    elider = QueryElider(stats)
    x = _v("rw_x")
    status, witness = elider.try_answer([T.uge(x, _c(200))])
    assert status == "sat" and witness[x] >= 200
    assert stats.elide_hits_rewrite == 1
    # The rewrite witness entered the model cache: an immediately
    # compatible query now hits layer 1, not layer 3.
    status, _ = elider.try_answer([T.uge(x, _c(150))])
    assert status == "sat"
    assert stats.elide_hits_model == 1
    # Rewrite UNSAT seeds the subsumption cache.
    contradiction = [T.ult(x, _c(5)), T.uge(x, _c(10))]
    assert elider.try_answer(contradiction)[0] == "unsat"
    assert stats.elide_hits_rewrite == 2
    hard = _hard_atom(x, _v("rw_y"), 9)
    assert elider.try_answer(contradiction + [hard])[0] == "unsat"
    assert stats.elide_hits_subsume == 1


def test_sat_ok_false_blocks_sat_answers_only():
    stats = SolverStats()
    elider = QueryElider(stats, sat_ok=False)
    x = _v("so_x")
    elider.note_model({x: 200})
    assert elider.try_answer([T.uge(x, _c(100))])[0] is None
    assert elider.try_answer([T.ult(x, _c(5)), T.uge(x, _c(10))])[0] == "unsat"


def test_eviction_counters():
    stats = SolverStats()
    elider = QueryElider(stats, max_models=2, max_unsat=2)
    x = _v("ev_x")
    for i in range(3):
        elider.note_model({x: i})
        elider.note_unsat([T.eq(x, _c(i)), T.ne(x, _c(i))])
    assert stats.elide_model_evictions == 1
    assert stats.elide_unsat_evictions == 1


# ---------------------------------------------------------------------------
# Incremental solver wiring (full elision)
# ---------------------------------------------------------------------------

def test_incremental_solver_elides_sibling_queries():
    solver = Solver(elide=True)
    x, y = _v("inc_x"), _v("inc_y")
    hard = _hard_atom(x, y, 7)
    assert solver.check(hard) == "sat"
    assert solver.stats.sat_solves == 1
    # The solve's model answers the compatible sibling query for free.
    model = solver.model()
    sibling = T.eq(T.bv_add(x, y), _c((model[x] + model[y]) % 256))
    assert solver.check(hard, sibling) == "sat"
    assert solver.stats.sat_solves == 1
    assert solver.stats.elide_hits_model == 1
    # model() after an elided check returns the witnessing assignment.
    m = solver.model()
    assert (m[x] + m[y]) % 256 == 7


def test_incremental_solver_elides_word_level_unsat():
    solver = Solver(elide=True)
    x = _v("wl_x")
    assert solver.check(T.ult(x, _c(5)), T.uge(x, _c(10))) == "unsat"
    assert solver.stats.sat_solves == 0
    assert solver.stats.elide_hits_rewrite == 1


def test_incremental_elision_statuses_match_plain_solver():
    x, y = _v("st_x"), _v("st_y")
    queries = [
        [_hard_atom(x, y, 7)],
        [_hard_atom(x, y, 7), T.ult(x, _c(50))],
        [T.ult(x, _c(5)), T.uge(x, _c(10))],
        [_hard_atom(x, y, 3), T.eq(x, _c(1))],
        [T.eq(x, _c(1)), T.eq(y, _c(1)), _hard_atom(x, y, 9)],
    ]
    elided = Solver(elide=True)
    for q in queries:
        plain = Solver()
        assert elided.check(*q) == plain.check(*q)


# ---------------------------------------------------------------------------
# Canonical solver wiring (UNSAT-only elision)
# ---------------------------------------------------------------------------

def test_canonical_solver_elides_unsat_only():
    cache = SolveCache()
    solver = Solver(cache=cache, elide=True)
    x = _v("can_x")
    assert solver.check(T.ult(x, _c(5)), T.uge(x, _c(10))) == "unsat"
    assert solver.stats.sat_solves == 0
    assert cache.elided_stores == 1
    # SAT queries always reach a real canonical solve...
    assert solver.check(T.uge(x, _c(100))) == "sat"
    assert solver.stats.sat_solves == 1
    # ...so the model is exactly what a fresh canonical solver binds.
    fresh = Solver(cache=SolveCache())
    fresh.check(T.uge(x, _c(100)))
    assert solver.model().as_dict() == fresh.model().as_dict()


def test_canonical_elided_unsat_is_a_cache_entry():
    cache = SolveCache()
    solver = Solver(cache=cache, elide=True)
    x = _v("ce_x")
    contradiction = (T.ult(x, _c(5)), T.uge(x, _c(10)))
    solver.check(*contradiction)
    # The second ask is a plain cache hit; the elider is not consulted.
    before = solver.stats.elide_hits_rewrite
    assert solver.check(*contradiction) == "unsat"
    assert cache.hits == 1
    assert solver.stats.elide_hits_rewrite == before


# ---------------------------------------------------------------------------
# Property: elision never changes an answer
# ---------------------------------------------------------------------------

@st.composite
def _atoms(draw):
    kind = draw(st.sampled_from(
        ["eq_const", "ult_const", "uge_const", "eq_var", "eq_add"]))
    names = ("a", "b", "c")
    x = _v(names[draw(st.integers(0, 2))])
    y = _v(names[draw(st.integers(0, 2))])
    c = _c(draw(st.integers(0, 255)))
    if kind == "eq_const":
        return T.eq(x, c)
    if kind == "ult_const":
        return T.ult(x, c)
    if kind == "uge_const":
        return T.uge(x, c)
    if kind == "eq_var":
        return T.eq(x, y)
    return T.eq(T.bv_add(x, y), c)


@given(st.lists(st.lists(_atoms(), min_size=1, max_size=4),
                min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_warm_elider_statuses_match_fresh_solvers(query_sequence):
    # One long-lived eliding solver sees the whole query sequence (so
    # its caches warm up); every answer must match a fresh plain solver.
    elided = Solver(elide=True)
    canonical = Solver(cache=SolveCache(), elide=True)
    for query in query_sequence:
        expected = Solver().check(*query)
        assert elided.check(*query) == expected
        assert canonical.check(*query) == expected
        if expected == "sat":
            # Elided or not, the incremental solver's model satisfies
            # the query; the canonical solver's equals a fresh solve.
            from repro.smt.evaluate import all_hold
            assert all_hold(query, elided.model().as_dict())
            fresh = Solver(cache=SolveCache())
            fresh.check(*query)
            assert canonical.model().as_dict() == fresh.model().as_dict()
