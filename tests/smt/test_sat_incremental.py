"""Unit tests for the CDCL core's incremental machinery.

The status-only feasibility plane (``repro.smt.solver`` in incremental
mode) leans on four SAT-level mechanisms that the one-shot path never
exercises: mid-trail clause attachment (``keep_trail_on_add``),
selector retirement plus clause garbage collection, activity-based
learned-clause reduction, and the VSIDS heap rebuild that keeps the
priority queue from accumulating stale duplicate entries.  Each gets a
direct guard here, against a brute-force or fresh-solver reference
where a verdict is involved.
"""

import itertools
import random

from repro.smt.sat import SAT, UNSAT, SatSolver


def brute_force(clauses, num_vars, fixed=()):
    fixed_map = {abs(l): l > 0 for l in fixed}
    for bits in itertools.product([False, True], repeat=num_vars):
        if any(bits[v - 1] != want for v, want in fixed_map.items()):
            continue
        if all(any(bits[abs(l) - 1] == (l > 0) for l in clause)
               for clause in clauses):
            return True
    return False


def _random_3sat(rng, num_vars, num_clauses):
    out = []
    for _ in range(num_clauses):
        lits = rng.sample(range(1, num_vars + 1), 3)
        out.append([l if rng.random() < 0.5 else -l for l in lits])
    return out


# ---------------------------------------------------------------------------
# VSIDS heap hygiene: ``_bump`` pushes a fresh (priority, var) entry
# without removing the stale one, so before the rebuild guard the heap
# grew without bound across long incremental sessions.
# ---------------------------------------------------------------------------

def test_vsids_heap_stays_bounded_across_repeated_solves():
    rng = random.Random(7)
    s = SatSolver()
    num_vars = 20
    # Ratio ~4.2 keeps the instance near the phase transition: every
    # solve does real conflict-driven search, so variables get bumped
    # (and re-pushed) thousands of times.
    for clause in _random_3sat(rng, num_vars, 84):
        s.add_clause(clause)
    for i in range(60):
        v = rng.randint(1, num_vars)
        s.solve([v if i % 2 else -v])
        # _heap_push rebuilds past 2*num_vars + 64; one in-flight push
        # may land on top of a heap sitting exactly at the bound.
        assert len(s._order) <= 2 * s.num_vars + 65, (
            f"heap at {len(s._order)} entries for {s.num_vars} vars "
            f"after solve {i} — duplicate entries are accumulating again"
        )
    assert s.stats["conflicts"] > 0
    assert s.stats["heap_rebuilds"] > 0


def test_heap_rebuild_preserves_verdicts():
    rng = random.Random(11)
    num_vars = 8
    clauses = _random_3sat(rng, num_vars, 30)
    s = SatSolver()
    for clause in clauses:
        s.add_clause(clause)
    for i in range(1, num_vars + 1):
        for lit in (i, -i):
            assert (s.solve([lit]) == SAT) == \
                brute_force(clauses, num_vars, fixed=[lit])


# ---------------------------------------------------------------------------
# Mid-trail attachment: with ``keep_trail_on_add`` the solver attaches
# new clauses without resetting to level 0, repairing the trail only as
# far as the clause actually requires.
# ---------------------------------------------------------------------------

def test_mid_trail_attach_matches_fresh_solver():
    rng = random.Random(3)
    num_vars = 10
    inc = SatSolver()
    inc.keep_trail_on_add = True
    clauses = []
    for round_no in range(25):
        clause = _random_3sat(rng, num_vars, 1)[0]
        clauses.append(clause)
        inc.add_clause(clause)
        assumption = [rng.choice([1, -1]) * rng.randint(1, num_vars)]
        got = inc.solve(assumption, reuse_trail=True)
        want = SAT if brute_force(clauses, num_vars, fixed=assumption) \
            else UNSAT
        # An assumption-UNSAT answer never poisons the database: the
        # global formula here stays satisfiable throughout.
        assert got == want, f"diverged at round {round_no}"
        if got == SAT:
            m = inc.model()
            assert all(any(m[abs(l)] == (l > 0) for l in c)
                       for c in clauses)
    assert inc.stats["levels_reused"] >= 0  # counter exists and is sane


def test_mid_trail_unit_clause_forces_its_literal():
    s = SatSolver()
    s.keep_trail_on_add = True
    s.add_clause([1, 2])
    s.add_clause([2, 3])
    assert s.solve([], reuse_trail=True) == SAT
    # Attach a unit that contradicts whatever the trail settled on.
    s.add_clause([-2])
    assert s.solve([], reuse_trail=True) == SAT
    m = s.model()
    assert m[2] is False and m[1] is True and m[3] is True


# ---------------------------------------------------------------------------
# Selector retirement + garbage collection: a popped level's guard
# variable goes dead (never decided, phase-saved False) and its guarded
# clauses are physically dropped at the next GC.
# ---------------------------------------------------------------------------

def test_retired_selector_deactivates_guarded_clauses():
    s = SatSolver()
    s.keep_trail_on_add = True
    sel = s.new_var()
    x = s.new_var()
    s.add_clause([-sel, x])       # sel -> x
    assert s.solve([sel], reuse_trail=True) == SAT
    assert s.model()[x] is True
    s.retire_selector(sel)
    # x is unconstrained again: both polarities satisfiable.
    assert s.solve([x], reuse_trail=True) == SAT
    assert s.solve([-x], reuse_trail=True) == SAT
    assert s.stats["selectors_retired"] == 1


def test_collect_garbage_drops_only_dead_guarded_clauses():
    s = SatSolver()
    s.keep_trail_on_add = True
    keep_sel, dead_sel = s.new_var(), s.new_var()
    a, b = s.new_var(), s.new_var()
    s.add_clause([-keep_sel, a])
    s.add_clause([-dead_sel, b])
    s.add_clause([a, b])          # unguarded: must survive any GC
    before = len(s.clauses)
    s.retire_selector(dead_sel)
    dropped = s.collect_garbage()
    assert dropped == 1
    assert len(s.clauses) == before - 1
    assert s.stats["clauses_gced"] == 1
    # Live guard still active, unguarded clause still enforced.
    assert s.solve([keep_sel, -a], reuse_trail=True) == UNSAT
    assert s.solve([-a], reuse_trail=True) == SAT
    assert s.model()[b] is True


def test_gc_triggers_automatically_past_dead_threshold():
    s = SatSolver()
    s.keep_trail_on_add = True
    s.gc_dead_threshold = 8
    payload = s.new_var()
    for _ in range(10):
        sel = s.new_var()
        s.add_clause([-sel, payload])
        s.retire_selector(sel)
        s.solve([], reuse_trail=True)
    assert s.stats["clauses_gced"] >= 8


# ---------------------------------------------------------------------------
# Learned-clause reduction: on conflict-heavy incremental sessions the
# learned DB is halved by activity once it outgrows ``max_learned``,
# without changing any verdict.
# ---------------------------------------------------------------------------

def _relaxed_pigeonhole(solver, pigeons, holes):
    """PHP(pigeons, holes) where every clause is disabled by a relax
    literal; assuming ``-relax`` asserts the (unsat) pigeonhole core.
    Returns the relax variable."""
    p = [[solver.new_var() for _ in range(holes)] for _ in range(pigeons)]
    relax = solver.new_var()
    for i in range(pigeons):
        solver.add_clause([relax] + [p[i][j] for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                solver.add_clause([relax, -p[i1][j], -p[i2][j]])
    return relax


def test_learned_reduction_bounds_db_and_preserves_verdicts():
    s = SatSolver()
    s.keep_trail_on_add = True
    s.max_learned = 20
    relax = _relaxed_pigeonhole(s, 5, 4)
    for _ in range(4):
        # Assumption-scoped UNSAT: conflicts happen above level 0, so
        # clauses are learned and retained across calls.
        assert s.solve([-relax], reuse_trail=True) == UNSAT
        assert s.solve([relax], reuse_trail=True) == SAT
    assert s.stats["learned"] > 20
    assert s.stats["db_reductions"] >= 1
    assert s.stats["learned_deleted"] > 0
    # Geometric growth means the cap moved, but the DB tracks it.
    assert len(s._learned) <= s.max_learned


def test_reduction_never_drops_reason_clauses():
    # Locked clauses (currently a propagation reason) must survive
    # reduction even at activity zero; forcing max_learned to 0 makes
    # every reduction as aggressive as possible.
    s = SatSolver()
    s.keep_trail_on_add = True
    s.max_learned = 0
    relax = _relaxed_pigeonhole(s, 5, 4)
    for _ in range(3):
        assert s.solve([-relax], reuse_trail=True) == UNSAT
        assert s.solve([relax], reuse_trail=True) == SAT
    assert s.stats["db_reductions"] >= 1
