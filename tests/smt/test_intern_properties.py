"""Property tests for the hash-consed intern pool (smt/terms.py).

The contract under test, in decreasing order of subtlety:

- with interning ON, building the same term twice yields the *same
  object* (structural equality collapses to identity);
- with interning OFF, independently built terms are still structurally
  equal with equal hashes — equality is structural in both modes, which
  is the invariant that makes the on/off suites byte-identical;
- terms that straddle a mode flip or a pool clear still compare
  correctly (the generation counter prevents stale identity
  assumptions);
- the pool is weak: it retains nothing once the program lets go, so
  back-to-back Engine runs do not accumulate terms;
- the repr and substitute walkers stay linear on shared/deep DAGs.
"""

import gc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import SolveCache, terms as T

WIDTH = 8

_leaf = st.one_of(
    st.tuples(st.just("var"), st.sampled_from("abcd")),
    st.tuples(st.just("const"), st.integers(0, 255)),
)
_recipe = st.recursive(
    _leaf,
    lambda r: st.one_of(
        st.tuples(st.just("add"), r, r),
        st.tuples(st.just("xor"), r, r),
        st.tuples(st.just("and"), r, r),
        st.tuples(st.just("ite"), r, r, r),
    ),
    max_leaves=12,
)


def _build(recipe):
    """Interpret a recipe tree into a bitvector term.

    Each call constructs every node afresh, so two interpretations of
    the same recipe are independent builds of one structural term.
    """
    tag = recipe[0]
    if tag == "var":
        return T.bv_var(recipe[1], WIDTH)
    if tag == "const":
        return T.bv_const(recipe[1], WIDTH)
    x = _build(recipe[1])
    y = _build(recipe[2])
    if tag == "add":
        return T.bv_add(x, y)
    if tag == "xor":
        return T.bv_xor(x, y)
    if tag == "and":
        return T.bv_and(x, y)
    return T.ite_bv(T.ult(x, y), x, _build(recipe[3]))


# Module-scoped (function-scoped fixtures trip hypothesis's health
# check under @given); tests that flip the switch restore it inline.
@pytest.fixture(scope="module", autouse=True)
def _interning_on():
    T.set_interning(True)
    yield
    T.set_interning(True)


# ---------------------------------------------------------------------------
# Structural equality <=> identity (interning on)
# ---------------------------------------------------------------------------


@given(_recipe)
@settings(max_examples=200)
def test_equal_structure_is_same_object_when_interning(recipe):
    a = _build(recipe)
    b = _build(recipe)
    assert a is b
    assert a == b and hash(a) == hash(b)
    assert a.tid == b.tid


@given(_recipe)
@settings(max_examples=100)
def test_interning_off_keeps_structural_equality(recipe):
    a = _build(recipe)  # interned
    T.set_interning(False)
    try:
        b = _build(recipe)
        c = _build(recipe)
    finally:
        T.set_interning(True)
    # Off-mode builds are plain objects, but equality and hashing are
    # structural in both modes — including across the mode boundary.
    assert b == c and hash(b) == hash(c)
    assert a == b and hash(a) == hash(b)


@given(_recipe, _recipe)
@settings(max_examples=100)
def test_distinct_structures_never_compare_equal(r1, r2):
    a = _build(r1)
    b = _build(r2)
    if a is not b:
        # Interning makes identity complete for structural equality:
        # distinct interned objects are structurally distinct.
        assert a != b
        T.set_interning(False)
        try:
            assert _build(r1) != b
        finally:
            T.set_interning(True)


@given(_recipe)
@settings(max_examples=50)
def test_pool_clear_preserves_equality(recipe):
    a = _build(recipe)
    T.clear_intern_pool()
    b = _build(recipe)
    # A cleared pool starts a new generation: b is a fresh intern, yet
    # the old term still compares structurally equal to it.
    assert a == b and hash(a) == hash(b)
    assert _build(recipe) is b


# ---------------------------------------------------------------------------
# Interning x alpha-invariant cache keys
# ---------------------------------------------------------------------------


def _rename(term, suffix):
    mapping = {v: T.bv_var(f"{v.payload}_{suffix}", v.width)
               for v in T.free_vars(term)}
    return T.substitute(term, mapping)


@given(st.lists(_recipe, min_size=1, max_size=4))
@settings(max_examples=50, deadline=None)
def test_alpha_renamed_keys_collide_and_hit(recipes):
    cons = [t for t in (_build(r) for r in recipes) if t.op != "const"]
    constraints = [T.ult(t, T.bv_const(200, WIDTH)) for t in cons]
    if not constraints:
        return
    cache = SolveCache()
    key1 = cache.key_for(constraints)
    key2 = cache.key_for([_rename(c, "r") for c in constraints])
    assert key1 == key2 and hash(key1) == hash(key2)
    cache.store(key1, cache.solve(key1))
    entry = cache.lookup(key2)
    assert entry is not None
    if entry.status == "sat":
        model = entry.model_values(key2)
        # The rebound model speaks about the *renamed* variables.
        assert set(model) == set(key2.var_order)


# ---------------------------------------------------------------------------
# The pool is weak
# ---------------------------------------------------------------------------


def test_pool_releases_unreachable_terms():
    T.clear_intern_pool()
    gc.collect()
    base = T.intern_pool_size()
    held = [T.bv_add(T.bv_var(f"ephemeral_{i}", WIDTH), T.bv_const(i, WIDTH))
            for i in range(64)]
    assert T.intern_pool_size() >= base + 64
    del held
    gc.collect()
    # Everything unique to the comprehension is collectable; allow a
    # little slack for interpreter-held residue.
    assert T.intern_pool_size() <= base + 8


def test_pool_does_not_grow_across_engine_runs():
    from repro import TestGen, TestGenConfig, load_program
    from repro.targets import get_target

    def run_once():
        gen = TestGen(load_program("fig1a"), target=get_target("v1model"),
                      config=TestGenConfig(seed=3, max_tests=4))
        gen.run()
        del gen
        gc.collect()
        return T.intern_pool_size()

    first = run_once()
    for _ in range(2):
        last = run_once()
    # Steady state: repeated identical runs must not accumulate terms
    # (the pool is weak and per-run scopes free their variables).
    assert last <= first + 16


# ---------------------------------------------------------------------------
# Walkers stay linear (satellites: repr, substitute)
# ---------------------------------------------------------------------------


def test_repr_of_exponentially_shared_dag_is_small():
    t = T.bv_var("x", WIDTH)
    for _ in range(40):
        t = T.bv_add(t, t)  # 2**40 paths, 41 nodes
    text = repr(t)
    assert len(text) < 20_000
    assert "%0" in text  # shared nodes rendered via let-labels


def test_repr_of_huge_dag_summarizes():
    t = T.bv_var("x", WIDTH)
    for i in range(600):
        t = T.bv_add(t, T.bv_var(f"x{i}", WIDTH))
    assert "nodes" in repr(t)  # summary form past the node budget


def test_substitute_handles_deep_chains():
    t = T.bv_var("x", WIDTH)
    for i in range(6000):
        t = T.bv_add(t, T.bv_const((i % 255) + 1, WIDTH))
    out = T.substitute(t, {T.bv_var("x", WIDTH): T.bv_const(7, WIDTH)})
    assert out is not t  # no RecursionError, substitution applied
    assert not T.free_vars(out)


def test_free_vars_handles_deep_chains():
    t = T.bool_var("p")
    for i in range(6000):
        t = T.ite_bool(T.bool_var(f"q{i}"), t, T.bool_var("z"))
    assert len(T.free_vars(t)) == 6002
