"""Solver back ends, the portfolio racer, and the crosschecker.

Everything subprocess-shaped is exercised against
``fake_dimacs_solver.py`` (a tiny DPLL solver run via the generic
``dimacs`` back end), so no real SAT solver binary is required; tests
that do want a real binary are marked ``external`` and auto-skip.
"""

import os
import sys

import pytest

from repro import TestGen, TestGenConfig, load_program
from repro.registry import UnknownNameError
from repro.smt import SolveCache, Solver, terms as T
from repro.smt.backends import (
    SOLVER_PATH_ENV,
    SOLVERS,
    BackendAnswer,
    CrossChecker,
    CrossCheckError,
    DimacsBackend,
    NativeBackend,
    PortfolioSolver,
    SolveRequest,
    SolverBackend,
    build_portfolio,
    make_solver,
    register_solver,
    request_from_sat,
    solver_names,
)
from repro.smt.cache import CacheEntry
from repro.smt.sat import SAT, UNKNOWN, UNSAT, SatSolver
from repro.smt.solver import SolveResult
from repro.targets import V1Model

FAKE = os.path.join(os.path.dirname(__file__), "fake_dimacs_solver.py")


def fake_cmd(mode=None):
    argv = [sys.executable, FAKE]
    if mode:
        argv.append(f"--mode={mode}")
    return argv


def sat_request():
    # (x1 | x2) & !x1  ->  sat with x2=True
    return SolveRequest(2, [(1, 2), (-1,)])


def unsat_request():
    return SolveRequest(2, [(1, 2), (-1, 2), (1, -2), (-1, -2)])


def _vars(n, width=8):
    return [T.bv_var(f"v{i}", width) for i in range(n)]


# ---------------------------------------------------------------------------
# Conflict-budgeted native solving (the racer's time slices)
# ---------------------------------------------------------------------------

def _hard_sat_instance():
    """A solver loaded with a formula that takes a few conflicts."""
    import random

    rng = random.Random(7)
    sat = SatSolver()
    for _ in range(220):
        clause = rng.sample(range(1, 41), 3)
        sat.add_clause([v if rng.random() < 0.5 else -v for v in clause])
    return sat


def test_conflict_budget_pauses_and_resumes():
    sat = _hard_sat_instance()
    reference = _hard_sat_instance().solve()
    slices = 0
    while True:
        status = sat.solve(conflict_budget=1)
        slices += 1
        if status != UNKNOWN:
            break
        assert not sat.trail_lim  # parked at decision level 0
    assert status == reference
    assert slices > 1  # the budget actually interrupted the search


# ---------------------------------------------------------------------------
# Back ends
# ---------------------------------------------------------------------------

def test_native_backend_answers_requests():
    backend = NativeBackend()
    assert backend.available()
    answer = backend.solve(sat_request())
    assert answer.status == SAT
    assert sat_request().verify_assignment(answer.assignment)
    assert backend.solve(unsat_request()).status == UNSAT


def test_dimacs_backend_solves_via_subprocess():
    backend = DimacsBackend(fake_cmd(), name="fake")
    assert backend.available()
    answer = backend.solve(sat_request(), timeout=30)
    assert answer.status == SAT
    assert sat_request().verify_assignment(answer.assignment)
    assert backend.solve(unsat_request(), timeout=30).status == UNSAT


def test_dimacs_backend_respects_assumptions():
    backend = DimacsBackend(fake_cmd(), name="fake")
    request = SolveRequest(2, [(1, 2)], assumptions=(-1, -2))
    assert backend.solve(request, timeout=30).status == UNSAT


def test_dimacs_backend_timeout_kills_the_process():
    backend = DimacsBackend(fake_cmd("hang"), name="fake-hang")
    handle = backend.start(sat_request(), timeout=0.2)
    assert handle is not None
    import time as _time

    deadline = _time.monotonic() + 10
    answer = None
    while answer is None and _time.monotonic() < deadline:
        answer = backend.poll(handle)
        _time.sleep(0.01)
    assert answer is not None and answer.status == "timeout"
    assert handle.proc.poll() is not None  # actually dead
    assert not os.path.exists(handle.path)  # temp file reaped


def test_dimacs_backend_garbage_output_is_an_error_not_a_crash():
    backend = DimacsBackend(fake_cmd("garbage"), name="fake-garbage")
    answer = backend.solve(sat_request(), timeout=30)
    assert answer.status == "error"


def test_missing_binary_reports_unavailable():
    backend = DimacsBackend(["definitely-not-a-solver-binary-12345"])
    assert not backend.available()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_builtin_solvers_are_registered():
    for name in ("native", "dimacs", "kissat", "cadical", "minisat", "z3"):
        assert name in solver_names()


def test_register_solver_round_trip():
    class MyBackend(NativeBackend):
        name = "mine"

    register_solver("mine", MyBackend)
    try:
        assert isinstance(make_solver("mine"), MyBackend)
        with pytest.raises(ValueError):  # DuplicateNameError
            register_solver("mine", MyBackend)
        register_solver("mine", MyBackend, replace=True)
    finally:
        del SOLVERS["mine"]


def test_make_solver_rejects_non_backend_factories():
    register_solver("broken-factory", lambda: object())
    try:
        with pytest.raises(TypeError, match="not a SolverBackend"):
            make_solver("broken-factory")
    finally:
        del SOLVERS["broken-factory"]


def test_unknown_solver_suggests_a_name():
    with pytest.raises(UnknownNameError, match="did you mean 'native'"):
        make_solver("natiev")


def test_build_portfolio_rejects_unknown_names():
    with pytest.raises(UnknownNameError):
        build_portfolio(TestGenConfig(solver="no-such-solver"))
    with pytest.raises(UnknownNameError):
        build_portfolio(TestGenConfig(portfolio=("no-such-solver",)))


def test_build_portfolio_is_none_for_pure_native():
    assert build_portfolio(TestGenConfig()) is None


# ---------------------------------------------------------------------------
# Portfolio
# ---------------------------------------------------------------------------

def test_portfolio_with_missing_binaries_degrades_to_native():
    portfolio = PortfolioSolver(externals=("kissat", "cadical", "minisat"))
    if portfolio.active:  # real binaries present on this machine
        pytest.skip("external solver binaries installed")
    sat = SatSolver()
    sat.add_clause([1, 2])
    status, assignment, backend = portfolio.solve_with(sat, [])
    assert status == SAT and backend == "native" and assignment is None


def test_portfolio_race_agrees_with_native(monkeypatch):
    monkeypatch.setenv(SOLVER_PATH_ENV,
                       f"{sys.executable} {FAKE}")
    for build in (_hard_sat_instance, None):
        portfolio = PortfolioSolver(externals=("dimacs",), conflict_budget=1)
        assert portfolio.active
        if build is None:
            sat = SatSolver()
            for clause in unsat_request().clauses:
                sat.add_clause(list(clause))
            reference = UNSAT
        else:
            sat = build()
            reference = build().solve()
        status, assignment, _backend = portfolio.solve_with(sat, [])
        assert status == reference
        if assignment is not None:
            assert request_from_sat(sat).verify_assignment(assignment)
        portfolio.close()


def test_portfolio_need_model_answers_come_from_native(monkeypatch):
    monkeypatch.setenv(SOLVER_PATH_ENV, f"{sys.executable} {FAKE}")
    portfolio = PortfolioSolver(externals=("dimacs",), conflict_budget=1)
    sat = _hard_sat_instance()
    status, assignment, backend = portfolio.solve_with(
        sat, [], need_model=True)
    assert status == _hard_sat_instance().solve()
    if status == SAT:
        # Whatever won the race, the model is the native trail's.
        assert backend == "native" and assignment is None
        assert sat.assign  # native search ran to completion
    portfolio.close()


def test_external_primary_binds_its_own_models(monkeypatch):
    monkeypatch.setenv(SOLVER_PATH_ENV, f"{sys.executable} {FAKE}")
    portfolio = PortfolioSolver(primary="dimacs")
    assert portfolio.active
    sat = SatSolver()
    sat.add_clause([1, 2])
    sat.add_clause([-1])
    status, assignment, backend = portfolio.solve_with(
        sat, [], need_model=True)
    assert status == SAT and backend == "dimacs"
    assert assignment[2] is True and assignment[1] is False
    portfolio.close()


def test_external_primary_failure_backoff(monkeypatch):
    monkeypatch.setenv(SOLVER_PATH_ENV,
                       f"{sys.executable} {FAKE} --mode=garbage")
    from repro.smt.solver import SolverStats

    stats = SolverStats()
    portfolio = PortfolioSolver(primary="dimacs", max_failures=2)
    sat = SatSolver()
    sat.add_clause([1])
    for _ in range(4):
        status, _assignment, backend = portfolio.solve_with(
            sat, [], stats=stats)
        assert status == SAT and backend == "native"
    # Two failures benched it; the last two queries never left native.
    assert stats.backend_errors["dimacs"] == 2
    assert stats.backend_queries["dimacs"] == 2
    portfolio.close()


def test_bogus_external_model_is_rejected(monkeypatch):
    monkeypatch.setenv(SOLVER_PATH_ENV,
                       f"{sys.executable} {FAKE} --mode=bogus-model")
    portfolio = PortfolioSolver(primary="dimacs")
    sat = SatSolver()
    sat.add_clause([1])  # all-False "model" violates this
    status, assignment, backend = portfolio.solve_with(
        sat, [], need_model=True)
    # Clause verification caught the lie; native extracted the model.
    assert status == SAT and backend == "native" and assignment is None
    portfolio.close()


# ---------------------------------------------------------------------------
# Solver facade integration
# ---------------------------------------------------------------------------

def _assert_chain(solver, n=3):
    vs = _vars(n)
    for i, v in enumerate(vs):
        solver.add(T.eq(v, T.bv_const(i + 1, 8)))
    return vs


def test_solver_with_portfolio_matches_plain_solver(monkeypatch):
    monkeypatch.setenv(SOLVER_PATH_ENV, f"{sys.executable} {FAKE}")
    portfolio = PortfolioSolver(externals=("dimacs",), conflict_budget=1)
    plain, raced = Solver(), Solver(portfolio=portfolio)
    vs_plain, vs_raced = _assert_chain(plain), _assert_chain(raced)
    res_plain, res_raced = plain.check(), raced.check()
    assert res_plain == res_raced == "sat"
    for vp, vr in zip(vs_plain, vs_raced):
        assert plain.model()[vp] == raced.model()[vr]
    x = vs_raced[0]
    assert raced.check(T.eq(x, T.bv_const(99, 8))) == "unsat"
    portfolio.close()


def test_status_only_sat_refuses_model_extraction():
    class StatusOnly(SolverBackend):
        name = "status-only"

        def solve(self, request, timeout=None):
            return BackendAnswer(SAT, None, self.name)

    register_solver("status-only", StatusOnly)
    try:
        portfolio = PortfolioSolver(primary="status-only")
        solver = Solver(portfolio=portfolio)
        solver.add(T.eq(_vars(1)[0], T.bv_const(5, 8)))
        assert solver.check() == "sat"
        assert solver.last_backend == "status-only"
        with pytest.raises(RuntimeError, match="status-only"):
            solver.model()
    finally:
        del SOLVERS["status-only"]


# ---------------------------------------------------------------------------
# SolveResult compatibility shims
# ---------------------------------------------------------------------------

def test_solve_result_is_its_status_string():
    solver = Solver()
    solver.add(T.eq(_vars(1)[0], T.bv_const(5, 8)))
    res = solver.check()
    assert isinstance(res, SolveResult) and isinstance(res, str)
    assert res == "sat" and res != "unsat"
    assert res.status == "sat"
    assert res.backend == "native"
    assert {res: 1}["sat"] == 1  # usable as a dict key


def test_solve_result_is_immutable():
    res = SolveResult("sat")
    with pytest.raises(AttributeError):
        res.backend = "other"


def test_check_and_model_attaches_model_and_keeps_tuple_shim():
    solver = Solver()
    v = _vars(1)[0]
    solver.add(T.eq(v, T.bv_const(5, 8)))
    res = solver.check_and_model()
    assert res == "sat" and res.model[v] == 5
    with pytest.warns(DeprecationWarning, match="unpacking"):
        status, model = solver.check_and_model()
    assert status == "sat" and model[v] == 5


def test_solve_result_pickles_without_stats():
    import pickle

    res = SolveResult("unsat", backend="elide", stats=object())
    clone = pickle.loads(pickle.dumps(res))
    assert clone == "unsat" and clone.backend == "elide"
    assert clone.stats is None


# ---------------------------------------------------------------------------
# Cache backend tagging
# ---------------------------------------------------------------------------

def test_cache_sat_entries_are_backend_scoped():
    cache = SolveCache()  # backend_name "native"
    v = T.bv_var("a", 8)
    key = cache.key_for([T.eq(v, T.bv_const(3, 8))])
    cache.store(key, CacheEntry("sat", (3,), 0.01, backend="kissat"))
    assert cache.lookup(key) is None  # another backend's model: miss
    cache.store(key, CacheEntry("sat", (3,), 0.01, backend="native"))
    assert cache.lookup(key) is not None


def test_cache_unsat_entries_are_shared_across_backends():
    cache = SolveCache()
    v = T.bv_var("a", 8)
    key = cache.key_for([T.eq(v, T.bv_const(1, 8)),
                         T.eq(v, T.bv_const(2, 8))])
    cache.store(key, CacheEntry("unsat", None, 0.01, backend="kissat"))
    entry = cache.lookup(key)
    assert entry is not None and entry.status == "unsat"


def test_cache_keys_stay_alpha_invariant_with_backend_tags():
    # Regression for the PR-2 contract: renamed twins share one entry,
    # and backend tagging must not leak variable names into the key.
    cache = SolveCache()
    key_a = cache.key_for([T.eq(T.bv_var("a", 8), T.bv_const(7, 8))])
    key_b = cache.key_for([T.eq(T.bv_var("b", 8), T.bv_const(7, 8))])
    assert key_a == key_b and hash(key_a) == hash(key_b)
    cache.store(key_a, cache.solve(key_a))
    hit = cache.lookup(key_b)
    assert hit is not None
    assert hit.model_values(key_b)[T.bv_var("b", 8)] == 7


# ---------------------------------------------------------------------------
# Crosschecking
# ---------------------------------------------------------------------------

def _sat_terms_and_model():
    v = T.bv_var("a", 8)
    terms = [T.eq(v, T.bv_const(9, 8))]
    return v, terms


def test_crosscheck_passes_on_honest_answers():
    checker = CrossChecker(secondary=NativeBackend(), sample=1)
    v, terms = _sat_terms_and_model()
    solver = Solver()
    for t in terms:
        solver.add(t)
    assert solver.check() == "sat"
    request = request_from_sat(solver._sat, terms=tuple(terms))
    checker.maybe_check(terms, solver.model().as_dict(), request)
    assert checker.checks == 1 and checker.failures == 0


def test_crosscheck_catches_a_wrong_model():
    checker = CrossChecker(sample=1)
    v, terms = _sat_terms_and_model()
    with pytest.raises(CrossCheckError, match="word-level"):
        checker.maybe_check(terms, {v: 8}, None)
    assert checker.failures == 1


def test_crosscheck_catches_a_lying_secondary(monkeypatch):
    secondary = DimacsBackend(fake_cmd("flip"), name="fake-flip")
    checker = CrossChecker(secondary=secondary, sample=1)
    v, terms = _sat_terms_and_model()
    solver = Solver()
    for t in terms:
        solver.add(t)
    assert solver.check() == "sat"
    request = request_from_sat(solver._sat, terms=tuple(terms))
    with pytest.raises(CrossCheckError, match="unsat where"):
        checker.maybe_check(terms, solver.model().as_dict(), request)


def test_crosscheck_sampling_is_deterministic():
    checker = CrossChecker(sample=3)
    v, terms = _sat_terms_and_model()
    for _ in range(9):
        checker.maybe_check(terms, {v: 9}, None)
    assert checker.checks == 3  # every 3rd answer, by counter


# ---------------------------------------------------------------------------
# End to end: generation with a portfolio / crosscheck
# ---------------------------------------------------------------------------

def _suite(config):
    gen = TestGen(load_program("fig1a"), target=V1Model(), config=config)
    return gen.run().emit("stf")


def test_generation_with_portfolio_is_byte_identical(monkeypatch):
    monkeypatch.setenv(SOLVER_PATH_ENV, f"{sys.executable} {FAKE}")
    base = TestGenConfig(seed=1, max_tests=5)
    plain = _suite(base)
    raced = _suite(base.replace(portfolio=("dimacs",), portfolio_budget=1))
    assert plain == raced


def test_generation_with_crosscheck_stays_clean():
    result = TestGen(
        load_program("fig1a"), target=V1Model(),
        config=TestGenConfig(seed=1, max_tests=5, solver_crosscheck=True),
    ).run()
    assert result.stats.crosschecks > 0
    assert result.stats.crosscheck_failures == 0


def test_portfolio_requires_solve_cache():
    from repro.symex.explorer import Explorer

    with pytest.raises(ValueError, match="solve_cache"):
        Explorer(load_program("fig1a"), V1Model(),
                 config=TestGenConfig(portfolio=("dimacs",),
                                      solve_cache=False))


def test_stats_json_reports_per_backend_counters(monkeypatch, tmp_path):
    monkeypatch.setenv(SOLVER_PATH_ENV, f"{sys.executable} {FAKE}")
    config = TestGenConfig(seed=1, max_tests=3,
                           portfolio=("dimacs",), portfolio_budget=1)
    result = TestGen(load_program("fig1a"), target=V1Model(),
                     config=config).run()
    stats = result.stats.as_dict()
    assert stats["backend_queries"].get("native", 0) > 0
    assert "portfolio_races" in stats


# ---------------------------------------------------------------------------
# Real binaries (auto-skipped when absent)
# ---------------------------------------------------------------------------

@pytest.mark.external
def test_real_external_solver_agrees_with_native():
    from repro.smt.backends import available_solver_names

    names = set(available_solver_names()) - {"native", "dimacs"}
    assert names, "marker guard should have skipped this"
    backend = make_solver(sorted(names)[0])
    assert backend.solve(sat_request(), timeout=30).status == SAT
    assert backend.solve(unsat_request(), timeout=30).status == UNSAT
