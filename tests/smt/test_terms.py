"""Unit tests for the term language and constructor-time simplifier."""

import pytest

from repro.smt import terms as T


def test_hash_consing_identity():
    a = T.bv_var("a", 8)
    b = T.bv_var("a", 8)
    assert a is b
    assert T.bv_const(5, 8) is T.bv_const(5, 8)
    assert T.bv_add(a, T.bv_const(1, 8)) is T.bv_add(b, T.bv_const(1, 8))


def test_const_masking():
    assert T.bv_const(256, 8).value == 0
    assert T.bv_const(-1, 8).value == 255


def test_width_mismatch_rejected():
    a = T.bv_var("a", 8)
    b = T.bv_var("b", 16)
    with pytest.raises(TypeError):
        T.bv_add(a, b)
    with pytest.raises(TypeError):
        T.eq(a, b)


def test_bool_bv_confusion_rejected():
    a = T.bv_var("a", 8)
    p = T.bool_var("p")
    with pytest.raises(TypeError):
        T.and_(a, p)
    with pytest.raises(TypeError):
        T.bv_and(p, p)


def test_constant_folding_arith():
    c = lambda v: T.bv_const(v, 8)
    assert T.bv_add(c(200), c(100)).value == 44
    assert T.bv_sub(c(1), c(2)).value == 255
    assert T.bv_mul(c(16), c(17)).value == (16 * 17) % 256
    assert T.bv_udiv(c(7), c(2)).value == 3
    assert T.bv_urem(c(7), c(2)).value == 1
    assert T.bv_udiv(c(7), c(0)).value == 255  # SMT-LIB semantics
    assert T.bv_urem(c(7), c(0)).value == 7


def test_identity_rules():
    a = T.bv_var("a", 8)
    z = T.bv_const(0, 8)
    ones = T.bv_const(0xFF, 8)
    assert T.bv_add(a, z) is a
    assert T.bv_and(a, z) is z
    assert T.bv_and(a, ones) is a
    assert T.bv_or(a, z) is a
    assert T.bv_xor(a, a).value == 0
    assert T.bv_mul(a, z).value == 0  # the taint-mitigation rewrite
    assert T.bv_mul(a, T.bv_const(1, 8)) is a
    assert T.bv_sub(a, a).value == 0


def test_boolean_simplifications():
    p = T.bool_var("p")
    assert T.and_(p, T.true()) is p
    assert T.and_(p, T.false()) is T.false()
    assert T.or_(p, T.true()) is T.true()
    assert T.and_(p, T.not_(p)) is T.false()
    assert T.or_(p, T.not_(p)) is T.true()
    assert T.not_(T.not_(p)) is p


def test_eq_simplifications():
    a = T.bv_var("a", 8)
    assert T.eq(a, a) is T.true()
    assert T.eq(T.bv_const(3, 8), T.bv_const(3, 8)) is T.true()
    assert T.eq(T.bv_const(3, 8), T.bv_const(4, 8)) is T.false()


def test_comparison_folding():
    c = lambda v, w=8: T.bv_const(v, w)
    assert T.ult(c(3), c(4)) is T.true()
    assert T.ult(c(4), c(3)) is T.false()
    assert T.slt(c(0xFF), c(0)) is T.true()  # -1 < 0 signed
    assert T.slt(c(0), c(0xFF)) is T.false()
    assert T.ule(c(3), c(3)) is T.true()


def test_concat_and_extract():
    a = T.bv_const(0xAB, 8)
    b = T.bv_const(0xCD, 8)
    ab = T.concat(a, b)
    assert ab.width == 16
    assert ab.value == 0xABCD
    v = T.bv_var("v", 16)
    hi = T.extract(v, 15, 8)
    assert hi.width == 8
    # extract of extract folds
    assert T.extract(hi, 3, 0) is T.extract(v, 11, 8)
    # extract over full width is identity
    assert T.extract(v, 15, 0) is v


def test_extract_through_concat():
    a = T.bv_var("a", 8)
    b = T.bv_var("b", 8)
    ab = T.concat(a, b)
    assert T.extract(ab, 7, 0) is b
    assert T.extract(ab, 15, 8) is a
    mid = T.extract(ab, 11, 4)
    assert mid.width == 8


def test_extend():
    a = T.bv_var("a", 8)
    assert T.zero_extend(a, 0) is a
    assert T.zero_extend(a, 8).width == 16
    assert T.zero_extend(T.bv_const(0xFF, 8), 8).value == 0xFF
    assert T.sign_extend(T.bv_const(0xFF, 8), 8).value == 0xFFFF
    assert T.sign_extend(T.bv_const(0x7F, 8), 8).value == 0x7F


def test_shift_folding():
    c = lambda v: T.bv_const(v, 8)
    a = T.bv_var("a", 8)
    assert T.bv_shl(c(1), c(3)).value == 8
    assert T.bv_shl(a, c(0)) is a
    assert T.bv_shl(a, c(8)).value == 0
    assert T.bv_lshr(c(0x80), c(7)).value == 1
    assert T.bv_ashr(c(0x80), c(7)).value == 0xFF


def test_ite_simplifications():
    a = T.bv_var("a", 8)
    b = T.bv_var("b", 8)
    p = T.bool_var("p")
    assert T.ite_bv(T.true(), a, b) is a
    assert T.ite_bv(T.false(), a, b) is b
    assert T.ite_bv(p, a, a) is a


def test_free_vars():
    a = T.bv_var("a", 8)
    b = T.bv_var("b", 8)
    p = T.bool_var("p")
    t = T.and_(p, T.eq(T.bv_add(a, b), T.bv_const(0, 8)))
    assert T.free_vars(t) == {a, b, p}


def test_substitute():
    a = T.bv_var("a", 8)
    t = T.bv_add(a, T.bv_const(1, 8))
    t2 = T.substitute(t, {a: T.bv_const(4, 8)})
    assert t2.value == 5


def test_simplify_switch():
    a = T.bv_var("a", 8)
    z = T.bv_const(0, 8)
    T.set_simplify(False)
    try:
        t = T.bv_add(a, z)
        assert t.op == "bvadd"  # not simplified away
    finally:
        T.set_simplify(True)
    assert T.bv_add(a, z) is a


def test_repr_smoke():
    a = T.bv_var("a", 8)
    t = T.bv_add(a, T.bv_const(1, 8))
    assert "bvadd" in repr(t)
