"""Integration tests for the Solver facade (bit-blast + CDCL)."""

import pytest

from repro.smt import Solver, terms as T


def solve_one(*assertions):
    s = Solver()
    for a in assertions:
        s.add(a)
    return s, s.check()


def test_trivial_sat():
    s, status = solve_one(T.true())
    assert status == "sat"


def test_trivial_unsat():
    s, status = solve_one(T.false())
    assert status == "unsat"


def test_bv_equation():
    a = T.bv_var("a", 8)
    s, status = solve_one(T.eq(T.bv_add(a, T.bv_const(1, 8)), T.bv_const(0, 8)))
    assert status == "sat"
    m = s.model()
    assert m[a] == 255


def test_bv_unsat_equation():
    a = T.bv_var("a", 8)
    s, status = solve_one(
        T.eq(a, T.bv_const(1, 8)),
        T.eq(a, T.bv_const(2, 8)),
    )
    assert status == "unsat"


def test_multiplication():
    a = T.bv_var("a", 8)
    b = T.bv_var("b", 8)
    s, status = solve_one(
        T.eq(T.bv_mul(a, b), T.bv_const(35, 8)),
        T.ult(T.bv_const(1, 8), a),
        T.ult(T.bv_const(1, 8), b),
        T.ult(a, T.bv_const(35, 8)),
        T.ult(b, T.bv_const(35, 8)),
    )
    assert status == "sat"
    m = s.model()
    assert (m[a] * m[b]) % 256 == 35
    assert m[a] > 1 and m[b] > 1


def test_division_circuit():
    a = T.bv_var("a", 8)
    s, status = solve_one(
        T.eq(T.bv_udiv(a, T.bv_const(3, 8)), T.bv_const(5, 8)),
        T.eq(T.bv_urem(a, T.bv_const(3, 8)), T.bv_const(2, 8)),
    )
    assert status == "sat"
    assert s.model()[a] == 17


def test_division_by_zero_semantics():
    a = T.bv_var("a", 8)
    zero = T.bv_const(0, 8)
    # x udiv 0 == 0xFF per SMT-LIB; variable divisor forced to 0.
    d = T.bv_var("d", 8)
    s, status = solve_one(
        T.eq(d, zero),
        T.eq(T.bv_udiv(a, d), T.bv_const(0xFF, 8)),
        T.eq(a, T.bv_const(7, 8)),
    )
    assert status == "sat"


def test_symbolic_shift():
    a = T.bv_var("a", 8)
    n = T.bv_var("n", 8)
    s, status = solve_one(
        T.eq(T.bv_shl(a, n), T.bv_const(0x80, 8)),
        T.eq(a, T.bv_const(1, 8)),
    )
    assert status == "sat"
    assert s.model()[n] == 7


def test_shift_out_of_range():
    a = T.bv_var("a", 8)
    n = T.bv_var("n", 8)
    s, status = solve_one(
        T.eq(n, T.bv_const(9, 8)),
        T.ne(T.bv_shl(a, n), T.bv_const(0, 8)),
    )
    assert status == "unsat"


def test_signed_comparison():
    a = T.bv_var("a", 8)
    s, status = solve_one(
        T.slt(a, T.bv_const(0, 8)),
        T.ult(T.bv_const(0x7F, 8), a),  # consistent: negative = high unsigned
    )
    assert status == "sat"
    assert s.model()[a] >= 0x80


def test_push_pop():
    a = T.bv_var("a", 8)
    s = Solver()
    s.add(T.ult(a, T.bv_const(10, 8)))
    assert s.check() == "sat"
    s.push()
    s.add(T.eq(a, T.bv_const(20, 8)))
    assert s.check() == "unsat"
    s.pop()
    assert s.check() == "sat"
    assert s.model()[a] < 10


def test_nested_push_pop():
    a = T.bv_var("a", 4)
    s = Solver()
    s.push()
    s.add(T.ult(a, T.bv_const(8, 4)))
    s.push()
    s.add(T.uge(a, T.bv_const(8, 4)))
    assert s.check() == "unsat"
    s.pop()
    assert s.check() == "sat"
    s.pop()
    assert s.depth == 0


def test_one_shot_assumptions():
    a = T.bv_var("a", 8)
    s = Solver()
    s.add(T.ult(a, T.bv_const(100, 8)))
    assert s.check(T.eq(a, T.bv_const(200, 8))) == "unsat"
    # The assumption does not persist.
    assert s.check() == "sat"


def test_concat_extract_roundtrip():
    a = T.bv_var("a", 8)
    b = T.bv_var("b", 8)
    ab = T.concat(a, b)
    s, status = solve_one(
        T.eq(ab, T.bv_const(0xBEEF, 16)),
    )
    assert status == "sat"
    m = s.model()
    assert m[a] == 0xBE and m[b] == 0xEF


def test_ite():
    p = T.bool_var("p")
    a = T.bv_var("a", 8)
    s, status = solve_one(
        T.eq(T.ite_bv(p, T.bv_const(1, 8), T.bv_const(2, 8)), a),
        T.eq(a, T.bv_const(2, 8)),
    )
    assert status == "sat"
    assert s.model()[p] is False


def test_stats_accumulate():
    a = T.bv_var("a", 8)
    s = Solver()
    s.add(T.eq(a, T.bv_const(1, 8)))
    s.check()
    assert s.stats.checks == 1
    assert s.stats.total_time >= 0.0
    d = s.stats.as_dict()
    assert d["sat"] == 1


def test_non_boolean_assertion_rejected():
    s = Solver()
    with pytest.raises(TypeError):
        s.add(T.bv_var("a", 8))


def test_wide_bitvectors():
    # Packet-sized bitvectors (112 bits = Ethernet header) must work.
    pkt = T.bv_var("pkt", 112)
    dst = T.extract(pkt, 111, 64)
    typ = T.extract(pkt, 15, 0)
    s, status = solve_one(
        T.eq(typ, T.bv_const(0xBEEF, 16)),
        T.eq(dst, T.bv_const(0xBADC0FFEE0DD, 48)),
    )
    assert status == "sat"
    m = s.model()
    assert (m[pkt] & 0xFFFF) == 0xBEEF
    assert (m[pkt] >> 64) == 0xBADC0FFEE0DD
