"""SMT-LIB2 serialization (the external SMT back ends' wire format)."""

import pytest

from repro.smt import terms as T
from repro.smt.smtlib import smtlib_symbol, to_smtlib2


def test_symbols_are_quoted_only_when_needed():
    assert smtlib_symbol("a") == "a"
    assert smtlib_symbol("pkt.len") == "|pkt.len|"
    assert "|" not in smtlib_symbol("we|ird")[1:-1]


def test_script_shape_and_declarations():
    a, b = T.bv_var("a", 8), T.bv_var("pkt.len", 8)
    flag = T.bool_var("flag")
    script = to_smtlib2([T.eq(a, b), flag], get_model=True)
    lines = script.splitlines()
    assert lines[0] == "(set-logic QF_BV)"
    assert "(declare-const a (_ BitVec 8))" in lines
    assert "(declare-const |pkt.len| (_ BitVec 8))" in lines
    assert "(declare-const flag Bool)" in lines
    assert lines[-2] == "(check-sat)" and lines[-1] == "(get-model)"
    # Declarations are sorted -> the script is deterministic.
    assert script == to_smtlib2([T.eq(a, b), flag], get_model=True)


def test_shared_subterms_are_let_bound_once():
    a, b = T.bv_var("a", 8), T.bv_var("b", 8)
    shared = T.bv_add(a, b)
    # ``shared`` occurs twice inside one assertion: the renderer must
    # let-bind it and reference the binder, not inline the bvadd twice.
    script = to_smtlib2([T.eq(T.concat(shared, shared), T.bv_const(5, 16))])
    assert script.count("(bvadd a b)") == 1
    assert "(let (" in script
    assert script.count("?t0") >= 3  # binder + two uses


def test_operator_coverage():
    a, b = T.bv_var("a", 8), T.bv_var("b", 8)
    terms = [
        T.eq(T.extract(a, 7, 4), T.bv_const(3, 4)),
        T.eq(T.zero_extend(a, 8), T.bv_const(300, 16)),
        T.eq(T.concat(a, b), T.bv_const(5, 16)),
        T.slt(T.bv_sub(a, b), T.bv_const(1, 8)),
    ]
    script = to_smtlib2(terms)
    for fragment in ("(_ extract", "(_ zero_extend 8)", "concat",
                     "bvslt", "bvsub", "(_ bv300 16)"):
        assert fragment in script, fragment


def test_unknown_op_is_a_clear_error():
    fake = T.bv_var("a", 8)
    weird = T._mk("frobnicate", (fake,), 8)
    with pytest.raises(ValueError, match="frobnicate"):
        to_smtlib2([T.eq(weird, T.bv_const(0, 8))])


def test_smtlib_backend_declines_cnf_only_requests():
    # A request with clauses but no word-level terms cannot be rendered
    # as SMT-LIB2; the back end answers "unknown" without launching a
    # process and the portfolio simply skips it for that query.
    from repro.smt.backends import SmtLib2Backend, SolveRequest

    backend = SmtLib2Backend(["definitely-not-a-solver"])
    request = SolveRequest(num_vars=2, clauses=((1, 2), (-1,)),
                           assumptions=(), terms=None)
    assert backend._render(request) is None
    answer = backend.solve(request)
    assert answer.status == "unknown"
    assert "not expressible" in answer.detail


def test_smtlib_backend_parses_status_lines():
    from repro.smt.backends import SmtLib2Backend

    backend = SmtLib2Backend(["z3"])
    assert backend._parse("sat\n", 0).status == "sat"
    assert backend._parse("unsat\n", 0).status == "unsat"
    assert backend._parse("unknown\n", 0).status == "unknown"
    garbage = backend._parse("segfault lol\n", 1)
    assert garbage.status == "error"
    # Status-only: a SAT answer never carries an assignment.
    assert backend._parse("sat\n", 0).assignment is None
