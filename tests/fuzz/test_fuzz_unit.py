"""Fast unit tests for the differential fuzz subsystem.

These run in tier-1 (no ``fuzz`` marker): generator determinism and
well-typedness, harness classification, shrinker behavior, corpus
round-trips, and the campaign invariant under an injected simulator
fault.  The bounded end-to-end campaign lives in
``test_smoke_campaign.py`` behind ``-m fuzz``.
"""

import pytest

from repro.fuzz import (CaseResult, FuzzCampaignConfig, generate_spec,
                        load_corpus, run_fuzz_campaign, shrink_spec,
                        write_corpus_entry)
from repro.fuzz.generator import FUZZ_TARGETS
from repro.fuzz.harness import classify_replay
from repro.fuzz.corpus import spec_from_dict
from repro.oracle import load_program
from repro.testback import runner
from repro.testback.runner import TestRunResult


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------

def test_generate_spec_is_deterministic():
    a = generate_spec(7, "v1model")
    b = generate_spec(7, "v1model")
    assert a.render() == b.render()
    assert a.name == b.name == "fuzz_v1model_s7"


def test_generate_spec_varies_with_seed_and_target():
    base = generate_spec(7, "v1model").render()
    assert generate_spec(8, "v1model").render() != base
    assert generate_spec(7, "tna").render() != base


def test_generate_spec_rejects_unknown_target():
    with pytest.raises(KeyError, match="v1model"):
        generate_spec(0, "psa")


@pytest.mark.parametrize("target", FUZZ_TARGETS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_generated_programs_are_well_typed(seed, target):
    spec = generate_spec(seed, target)
    program = load_program(spec.render(), source_name=spec.name)
    assert program is not None


def test_spec_dict_round_trip():
    spec = generate_spec(11, "v1model")
    rebuilt = spec_from_dict(spec.to_dict())
    assert rebuilt.render() == spec.render()


# ---------------------------------------------------------------------------
# Harness classification
# ---------------------------------------------------------------------------

def _case():
    return CaseResult(seed=0, target="v1model", name="t")


def test_classify_replay_all_passing():
    case = classify_replay(_case(), [TestRunResult(test_id=0, passed=True)])
    assert case.passed and case.classification == "pass"


@pytest.mark.parametrize("kind,expected", [
    ("wrong_output", "wrong_output"),
    ("missing_output", "wrong_output"),
    ("wrong_port", "wrong_port"),
    ("mask_violation", "mask_violation"),
    ("exception", "interp_exception"),
])
def test_classify_replay_kind_mapping(kind, expected):
    runs = [
        TestRunResult(test_id=0, passed=True),
        TestRunResult(test_id=1, passed=False, kind=kind, detail="boom"),
        TestRunResult(test_id=2, passed=False, kind="wrong_port"),
    ]
    case = classify_replay(_case(), runs)
    assert not case.passed
    assert case.classification == expected  # first failure wins
    assert case.failed_test_ids == [1, 2]   # ...but all are recorded


# ---------------------------------------------------------------------------
# Shrinker
# ---------------------------------------------------------------------------

def test_shrink_noop_when_nothing_reduces():
    spec = generate_spec(3, "v1model")
    result = shrink_spec(spec, lambda candidate: False, max_checks=50)
    assert result.steps == 0
    assert result.spec.render() == spec.render()


def test_shrink_reaches_structural_minimum():
    # An always-true predicate must drive the spec to the grammar's
    # floor — and every intermediate candidate must stay well-typed.
    spec = generate_spec(3, "v1model")

    def predicate(candidate):
        load_program(candidate.render(), source_name=candidate.name)
        return True

    result = shrink_spec(spec, predicate, max_checks=400)
    minimal = result.spec
    assert len(minimal.headers) == 1       # h0 survives
    assert not minimal.tables
    assert not minimal.apply_stmts
    assert not minimal.use_checksum and not minimal.use_lookahead
    load_program(minimal.render(), source_name=minimal.name)


def test_shrink_predicate_exception_is_not_a_reduction():
    spec = generate_spec(3, "v1model")

    def predicate(candidate):
        raise RuntimeError("predicate machinery died")

    result = shrink_spec(spec, predicate, max_checks=30)
    assert result.steps == 0
    assert result.spec.render() == spec.render()


# ---------------------------------------------------------------------------
# Corpus
# ---------------------------------------------------------------------------

def test_corpus_write_and_load_round_trip(tmp_path):
    spec = generate_spec(5, "ebpf_model")
    case = CaseResult(seed=5, target="ebpf_model", name=spec.name,
                      classification="wrong_output", detail="test 0: width",
                      num_tests=4, failed_test_ids=[0, 2])
    entry_dir = write_corpus_entry(tmp_path, case, spec, original_spec=spec)
    assert (entry_dir / "repro.p4").is_file()
    assert (entry_dir / "meta.json").is_file()

    entries = load_corpus(tmp_path)
    assert len(entries) == 1
    loaded = entries[0]
    assert loaded.seed == 5
    assert loaded.target == "ebpf_model"
    assert loaded.classification == "wrong_output"
    assert loaded.source == spec.render()
    assert loaded.spec.render() == spec.render()


def test_load_corpus_missing_dir_is_empty(tmp_path):
    assert load_corpus(tmp_path / "nope") == []


def test_checked_in_corpus_entry_loads():
    # The fixture entry under tests/fuzz/corpus/ pins the on-disk
    # format (see its README.md); it must always round-trip.
    import pathlib

    entries = load_corpus(pathlib.Path(__file__).parent / "corpus")
    assert entries, "expected at least the checked-in example entry"
    entry = entries[0]
    assert entry.classification in ("mask_violation", "wrong_output",
                                    "wrong_port", "interp_exception",
                                    "oracle_crash")
    assert entry.spec is not None
    assert entry.spec.render() == entry.source
    # It was produced against a faulted simulator, so it replays clean
    # on the real stack.
    program = load_program(entry.source, source_name=entry.name)
    assert program is not None


# ---------------------------------------------------------------------------
# Campaign
# ---------------------------------------------------------------------------

def test_campaign_config_validates_targets():
    with pytest.raises(KeyError, match="ebpf_model"):
        FuzzCampaignConfig(targets=("psa",))


def test_campaign_case_plan_round_robins():
    config = FuzzCampaignConfig(seed=10, count=4,
                                targets=("v1model", "ebpf_model"))
    assert config.case_plan() == [
        (10, "v1model"), (11, "ebpf_model"), (12, "v1model"),
        (13, "ebpf_model"),
    ]


class _Flipper:
    """Simulator wrapper that corrupts the low bit of every output."""

    def __init__(self, inner):
        self._inner = inner

    def process(self, *args, **kwargs):
        result = self._inner.process(*args, **kwargs)
        result.outputs = [
            (port, bits ^ 1, width) for port, bits, width in result.outputs
        ]
        return result


def test_campaign_finding_produces_reproducer(tmp_path):
    # Inject a payload-corrupting fault through the simulator registry:
    # the campaign must catch it, classify it, shrink it, and leave a
    # corpus entry for every failing case (the no-silent-drop invariant).
    original = runner.SIMULATORS["v1model"]
    runner.register_simulator(
        "v1model", lambda program, seed=0: _Flipper(original(program, seed))
    )
    try:
        config = FuzzCampaignConfig(
            seed=0, count=2, targets=("v1model",),
            corpus_dir=str(tmp_path), shrink=True, shrink_checks=25,
        )
        summary = run_fuzz_campaign(config)
    finally:
        runner.register_simulator("v1model", original)

    assert len(summary.cases) == 2
    assert summary.num_failed >= 1
    assert len(summary.corpus_entries) == summary.num_failed
    for case in summary.cases:
        if not case.passed:
            assert case.classification in ("mask_violation", "wrong_output")
    entries = load_corpus(tmp_path)
    assert len(entries) == summary.num_failed
    # Reproducers must replay cleanly on the *un-faulted* stack.
    assert "fuzz campaign: 2 programs" in summary.report()


def test_campaign_clean_run_all_pass(tmp_path):
    config = FuzzCampaignConfig(
        seed=0, count=2, targets=("v1model", "ebpf_model"),
        corpus_dir=str(tmp_path),
    )
    summary = run_fuzz_campaign(config)
    assert summary.num_passed == 2
    assert not summary.corpus_entries
    assert list(tmp_path.iterdir()) == []
