"""Batch-replay determinism lock: lane-packed and scalar suite replay
must classify campaigns identically at any worker count.

Suite *generation* is upstream of replay, so the existing
``tests/engine/test_determinism.py`` locks cannot see the replay mode;
the observable that batch replay could corrupt is the campaign's case
classification.  This pins it: every (batch_replay, jobs) combination
must produce the same case signatures — name, classification, detail,
failed test ids — as the scalar jobs=1 reference.

Replay *counters* (``replay_*`` in ``case.stats``) legitimately differ
between the two modes, so the signature deliberately excludes stats.
"""

import pytest

from repro.fuzz import FuzzCampaignConfig, run_fuzz_campaign


def _signatures(summary):
    return [(c.seed, c.target, c.name, c.passed, c.classification,
             c.detail, tuple(c.failed_test_ids), c.num_tests)
            for c in summary.cases]


def _campaign(tmp_path, *, batch, jobs):
    return run_fuzz_campaign(FuzzCampaignConfig(
        seed=3, count=10, targets=("v1model", "ebpf_model", "tna"),
        max_tests=8, shrink=False, batch_replay=batch, jobs=jobs,
        corpus_dir=str(tmp_path / f"corpus-b{int(batch)}-j{jobs}"),
    ))


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("batch-determinism-ref")
    return _signatures(_campaign(tmp, batch=False, jobs=1))


@pytest.mark.parametrize("jobs", (1, 2, 4))
@pytest.mark.parametrize("batch", (True, False))
def test_campaign_identical_across_replay_mode_and_jobs(
        reference, tmp_path, batch, jobs):
    if not batch and jobs == 1:
        pytest.skip("is the reference")
    summary = _campaign(tmp_path, batch=batch, jobs=jobs)
    assert _signatures(summary) == reference
    if batch:
        # The lock must not be vacuous: the lane engine actually ran.
        assert summary.replay.replay_packets > 0
        assert summary.replay.replay_batches > 0


def test_batched_campaign_reports_replay_counters(tmp_path):
    summary = _campaign(tmp_path, batch=True, jobs=2)
    replay = summary.replay
    assert replay.replay_packets > 0
    # The campaign-level merge equals the sum over the per-case stats.
    assert replay.replay_packets == sum(
        c.stats.get("replay_packets", 0) for c in summary.cases)
    assert 0.0 <= replay.fill_rate() <= 1.0
