"""Bounded differential fuzz smoke campaign.

Excluded from tier-1 (``addopts = -m 'not fuzz'``); run explicitly with
``pytest -m fuzz``.  Fixed seed, 25 programs over v1model + ebpf_model —
the same shape as the CLI acceptance run (``repro fuzz --seed 0``), kept
small enough to finish well inside two minutes.
"""

import pytest

from repro.fuzz import FuzzCampaignConfig, load_corpus, run_fuzz_campaign
from repro.report import normalized

pytestmark = pytest.mark.fuzz

_SEED = 0
_COUNT = 25
_TARGETS = ("v1model", "ebpf_model")


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    corpus = tmp_path_factory.mktemp("smoke-corpus")
    config = FuzzCampaignConfig(
        seed=_SEED, count=_COUNT, targets=_TARGETS, corpus_dir=str(corpus),
    )
    return run_fuzz_campaign(config), corpus


def test_campaign_runs_every_program(smoke):
    summary, _corpus = smoke
    assert len(summary.cases) == _COUNT
    assert [(c.seed, c.target) for c in summary.cases] == \
        summary.config.case_plan()


def test_every_case_passes_or_leaves_a_reproducer(smoke):
    # The campaign invariant: no finding is silently dropped.
    summary, corpus = smoke
    failing = [c for c in summary.cases if not c.passed]
    assert len(summary.corpus_entries) == len(failing)
    assert len(load_corpus(corpus)) == len(failing)
    # On the unmodified toolchain the oracle and the interpreters agree.
    assert not failing, summary.report()


def test_campaign_is_deterministic(smoke, tmp_path):
    # Compared through report.normalized: the intern pool and blast
    # cache are process-global, so their hit counters depend on what
    # already ran in this process — everything else must be identical.
    summary, _corpus = smoke
    again = run_fuzz_campaign(FuzzCampaignConfig(
        seed=_SEED, count=_COUNT, targets=_TARGETS,
        corpus_dir=str(tmp_path),
    ))
    assert [normalized(c.to_dict()) for c in again.cases] == \
        [normalized(c.to_dict()) for c in summary.cases]


def test_campaign_fits_smoke_budget(smoke):
    summary, _corpus = smoke
    assert summary.elapsed < 120.0
