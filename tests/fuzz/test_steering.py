"""Campaign steering: construct coverage, grammar bias, and the
steered-beats-unsteered acceptance property.

The tier-1 portion pins the pure machinery (construct extraction,
bias arithmetic, identity-stream preservation).  The fuzz-marked
portion runs real campaigns and asserts the feedback loop pays off:
at an equal case budget, steering reaches strictly higher construct
coverage than blind generation whenever blind generation left
anything uncovered.
"""

import pytest

from repro.fuzz import (ConstructCoverage, FuzzCampaignConfig, GrammarBias,
                        generate_spec, run_fuzz_campaign, spec_constructs)
from repro.fuzz.steer import ALL_CONSTRUCTS, IDENTITY_BIAS


# ---------------------------------------------------------------------------
# Tier-1: pure machinery
# ---------------------------------------------------------------------------

def test_construct_universe_is_stable():
    assert len(ALL_CONSTRUCTS) == 29
    assert len(set(ALL_CONSTRUCTS)) == 29


def test_spec_constructs_subset_of_universe():
    for seed in range(12):
        for target in ("v1model", "ebpf_model", "tna"):
            found = spec_constructs(generate_spec(seed, target))
            assert found <= set(ALL_CONSTRUCTS)
            assert "match:exact" in set(ALL_CONSTRUCTS)


def test_identity_bias_preserves_rng_stream():
    # The whole steering design rests on this: an empty bias consumes
    # exactly the draws the pre-steering generator did, so unbiased
    # campaigns replay historical seeds bit-for-bit.
    for seed in range(8):
        for target in ("v1model", "ebpf_model", "tna", "t2na"):
            plain = generate_spec(seed, target)
            assert generate_spec(seed, target, bias=GrammarBias()) == plain
            assert generate_spec(seed, target, bias=IDENTITY_BIAS) == plain


def test_bias_prob_clamps():
    bias = GrammarBias({"x": 100.0, "y": 0.001})
    assert bias.prob("x", 0.3) == 0.90
    assert bias.prob("y", 0.3) == 0.02
    assert bias.prob("unknown", 0.3) == 0.3
    assert bias.weight("x", 2.0) == 200.0
    assert bias.boosted("x") and not bias.boosted("unknown")
    assert not bias.identity and GrammarBias().identity


def test_construct_coverage_bookkeeping():
    cc = ConstructCoverage()
    spec = generate_spec(4, "v1model")
    present = spec_constructs(spec)
    assert cc.record_case(spec, exercised=True) == len(present)
    # Same spec again: nothing newly covered, curve still grows.
    assert cc.record_case(spec, exercised=True) == 0
    # Unexercised cases never cover anything.
    assert cc.record_case(generate_spec(5, "v1model"),
                          exercised=False) == 0
    assert cc.covered() == present
    assert cc.cases == 3
    assert len(cc.curve()) == 3
    assert cc.curve()[-1][0] == 3
    d = cc.as_dict()
    assert d["covered"] == len(present)
    assert d["universe"] == 29
    assert set(d["uncovered"]) == set(ALL_CONSTRUCTS) - present


def test_bias_boosts_uncovered_with_prerequisites():
    cc = ConstructCoverage()
    bias = cc.bias(strength=4.0)
    # Nothing covered: every construct boosted.
    assert set(bias.boost) == set(ALL_CONSTRUCTS)
    # Priority entries pull their prerequisites along even when those
    # are covered on their own.
    cc2 = ConstructCoverage(universe=("feature:priority_entries",
                                      "match:ternary"))
    cc2.counts["match:ternary"] = 1
    bias2 = cc2.bias()
    assert bias2.boosted("feature:priority_entries")
    assert bias2.boosted("match:ternary")
    assert bias2.boosted("feature:const_entries")


def test_steered_generation_is_deterministic():
    bias = GrammarBias({c: 4.0 for c in ALL_CONSTRUCTS})
    assert generate_spec(3, "v1model", bias=bias) == \
        generate_spec(3, "v1model", bias=bias)


# ---------------------------------------------------------------------------
# Campaign-level acceptance: steering must pay off at equal budget
# ---------------------------------------------------------------------------

def _constructs_covered(seed, steer, tmp_path, tag):
    config = FuzzCampaignConfig(
        seed=seed, count=10, targets=("v1model", "ebpf_model"),
        corpus_dir=str(tmp_path / f"corpus-{tag}"),
        max_tests=8, shrink=False, steer=steer, steer_batch=3,
    )
    summary = run_fuzz_campaign(config)
    return len(summary.construct_coverage.covered())


def test_steering_beats_blind_generation(tmp_path):
    blind = _constructs_covered(0, False, tmp_path, "blind")
    steered = _constructs_covered(0, True, tmp_path, "steered")
    assert blind < len(ALL_CONSTRUCTS), (
        "budget too generous: blind generation saturated, nothing to steer"
    )
    assert steered > blind, (
        f"steering must reach strictly more constructs: "
        f"{steered} vs {blind}"
    )


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", [7, 100])
def test_steering_beats_blind_generation_more_seeds(seed, tmp_path):
    blind = _constructs_covered(seed, False, tmp_path, "blind")
    steered = _constructs_covered(seed, True, tmp_path, "steered")
    if blind == len(ALL_CONSTRUCTS):
        assert steered == blind   # nothing left to win
    else:
        assert steered > blind
