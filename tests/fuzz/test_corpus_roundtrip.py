"""Corpus round-trip + mutation pipeline (satellite S3).

save → mutate → shrink → reload must preserve reproducer semantics:
the spec that comes back from ``meta.json`` is structurally identical
to the one written, renders to the same source, and still loads
through the frontend.  The checked-in fixtures under ``corpus/`` pin
the on-disk format across PRs and feed the campaign's corpus-guided
mutation path.
"""

import pathlib

from repro import load_program
from repro.fuzz import (FuzzCampaignConfig, generate_spec, load_corpus,
                        mutate_spec, run_fuzz_campaign, shrink_spec,
                        write_corpus_entry)
from repro.fuzz.corpus import spec_from_dict
from repro.fuzz.harness import CaseResult
from repro.report import normalized

FIXTURE_CORPUS = pathlib.Path(__file__).parent / "corpus"


def _case_for(spec, classification="mask_violation"):
    return CaseResult(seed=spec.seed, target=spec.target, name=spec.name,
                      classification=classification, num_tests=1)


def test_write_load_roundtrip_preserves_spec(tmp_path):
    spec = generate_spec(4, "v1model")
    write_corpus_entry(tmp_path, _case_for(spec), spec)
    [entry] = load_corpus(tmp_path)
    assert entry.spec == spec
    assert entry.source == spec.render()
    assert entry.classification == "mask_violation"
    # And the dict form is stable through a second round.
    assert spec_from_dict(entry.spec.to_dict()) == spec


def test_mutate_is_deterministic_and_roundtrips(tmp_path):
    spec = generate_spec(4, "v1model")
    mutated = mutate_spec(spec, 9)
    assert mutated == mutate_spec(spec, 9)
    assert mutated != spec
    assert mutated.name == f"{spec.name}_m9"
    # Different mutation seeds explore different neighbors.
    assert mutated != mutate_spec(spec, 10)
    write_corpus_entry(tmp_path, _case_for(mutated), mutated)
    [entry] = load_corpus(tmp_path)
    assert entry.spec == mutated
    assert entry.source == mutated.render()


def test_save_mutate_shrink_reload_pipeline(tmp_path):
    # The full corpus lifecycle on a checked-in reproducer: load the
    # fixture, perturb it, shrink the perturbed spec structurally, and
    # persist + reload the result — semantics survive every hop.
    entries = load_corpus(FIXTURE_CORPUS)
    assert entries, "checked-in fixture corpus is missing"
    # The fully-shrunken s0 fixture has no tables left; anchor the
    # shrink on a parent that still applies one.
    parent = next(e.spec for e in entries if e.spec.tables)
    mutated = mutate_spec(parent, 3)

    # A structural predicate keeps the shrink oracle-free and fast:
    # "still applies the first table".
    anchor = mutated.tables[0].name

    def still_interesting(candidate):
        return any(t.name == anchor for t in candidate.tables)

    shrunk = shrink_spec(mutated, still_interesting).spec
    assert still_interesting(shrunk)
    write_corpus_entry(tmp_path, _case_for(shrunk), shrunk,
                       original_spec=mutated)
    [entry] = load_corpus(tmp_path)
    assert entry.spec == shrunk
    # The reloaded reproducer still renders a loadable program.
    load_program(entry.source, source_name=entry.spec.name)


def test_checked_in_fixtures_load_and_render():
    entries = load_corpus(FIXTURE_CORPUS)
    assert len(entries) >= 2
    for entry in entries:
        assert entry.spec is not None
        assert entry.source == entry.spec.render()
        load_program(entry.source, source_name=entry.spec.name)
        # Every fixture must be mutable — the campaign's mutation path
        # draws parents from here.
        mutated = mutate_spec(entry.spec, 1)
        assert mutated.name.endswith("_m1")
        load_program(mutated.render(), source_name=mutated.name)


def test_campaign_mutation_path_draws_from_fixture(tmp_path):
    config = FuzzCampaignConfig(
        seed=0, count=2, targets=("v1model",),
        corpus_dir=str(tmp_path / "findings"),
        mutate_fraction=1.0, mutate_corpus=str(FIXTURE_CORPUS),
        max_tests=4, shrink=False,
    )
    summary = run_fuzz_campaign(config)
    assert len(summary.cases) == 2
    assert all(c.origin.startswith("mutated:") for c in summary.cases)
    assert summary.num_mutated == 2
    # Deterministic: the same config replays to the same cases.
    again = run_fuzz_campaign(FuzzCampaignConfig(
        seed=0, count=2, targets=("v1model",),
        corpus_dir=str(tmp_path / "findings2"),
        mutate_fraction=1.0, mutate_corpus=str(FIXTURE_CORPUS),
        max_tests=4, shrink=False,
    ))
    assert [normalized(c.to_dict()) for c in again.cases] == \
        [normalized(c.to_dict()) for c in summary.cases]
