"""Unit tests for the stdlib JSON-Schema subset validator."""

import pytest

from repro.report.schema import SchemaError, load_schema, validate


def test_type_checks():
    validate(3, {"type": "integer"})
    validate(3.5, {"type": "number"})
    validate(3, {"type": "number"})       # ints are numbers
    validate(None, {"type": ["integer", "null"]})
    with pytest.raises(SchemaError):
        validate("3", {"type": "integer"})
    with pytest.raises(SchemaError):
        validate(None, {"type": "integer"})


def test_bool_is_not_a_number():
    # JSON Schema semantics; also a real bug class in stats dicts.
    with pytest.raises(SchemaError):
        validate(True, {"type": "integer"})
    with pytest.raises(SchemaError):
        validate(False, {"type": "number"})
    validate(True, {"type": "boolean"})


def test_required_and_additional_properties():
    schema = {
        "type": "object",
        "required": ["a"],
        "properties": {"a": {"type": "integer"}},
        "additionalProperties": False,
    }
    validate({"a": 1}, schema)
    with pytest.raises(SchemaError, match="missing required"):
        validate({}, schema)
    with pytest.raises(SchemaError, match="unexpected key"):
        validate({"a": 1, "b": 2}, schema)
    # additionalProperties as a schema constrains unknown keys.
    schema["additionalProperties"] = {"type": "string"}
    validate({"a": 1, "b": "ok"}, schema)
    with pytest.raises(SchemaError):
        validate({"a": 1, "b": 2}, schema)


def test_enum_minimum_maximum_min_items():
    with pytest.raises(SchemaError, match="enum"):
        validate("x", {"enum": ["run_report"]})
    with pytest.raises(SchemaError, match="minimum"):
        validate(-1, {"type": "integer", "minimum": 0})
    with pytest.raises(SchemaError, match="maximum"):
        validate(101, {"type": "number", "maximum": 100})
    with pytest.raises(SchemaError, match="minItems"):
        validate([1], {"type": "array", "minItems": 2})


def test_items_and_nested_paths():
    schema = {"type": "array", "items": {"type": "object",
                                         "required": ["x"]}}
    validate([{"x": 1}, {"x": 2}], schema)
    with pytest.raises(SchemaError) as exc:
        validate([{"x": 1}, {}], schema)
    assert "[1]" in str(exc.value)


def test_one_of_exactly_one_branch():
    schema = {"oneOf": [{"type": "integer"}, {"type": "string"}]}
    validate(1, schema)
    validate("s", schema)
    with pytest.raises(SchemaError, match="oneOf"):
        validate(None, schema)
    # Matching more than one branch is also a violation.
    with pytest.raises(SchemaError, match="matched 2"):
        validate(1, {"oneOf": [{"type": "integer"}, {"type": "number"}]})


def test_checked_in_schema_loads_and_is_a_one_of():
    schema = load_schema()
    assert "oneOf" in schema
    kinds = set()
    for branch in schema["oneOf"]:
        kinds.update(branch["properties"]["kind"]["enum"])
    assert kinds == {"run_report", "bench_trajectory"}
