"""Recorder + run-report schema stability (satellite S4).

Pins the contract downstream tooling relies on: every report the CLI
and the campaign emit validates against the checked-in
``run_report.schema.json``, and :func:`repro.report.normalized` yields
a deterministic view (wall-time and cache-warmth fields stripped).
"""

import json

import pytest

from repro.__main__ import main
from repro.report import (Recorder, cache_rates, load_schema, normalized,
                          validate)
from repro.report.schema import SchemaError


def _basic_recorder():
    rec = Recorder("generate", seed=1, program="fig1a.p4",
                   target="v1model", config={"seed": 1})
    rec.add_phase_time("generate", 0.25)
    rec.add_phase_time("generate", 0.75)   # repeated phases accumulate
    rec.record_coverage_curve([[1, 3, 30.0], [2, 10, 100.0]])
    rec.record_stats({"cache_hits": 3, "cache_misses": 1,
                      "solver_checks": 10, "elide_hits_model": 2})
    rec.num_tests = 2
    return rec


def test_report_validates_and_has_stable_fields():
    doc = _basic_recorder().report()
    validate(doc, load_schema())
    assert doc["kind"] == "run_report"
    assert doc["num_tests"] == 2
    assert doc["statement_coverage"] == 100.0
    assert doc["phase_times_s"] == {"generate": 1.0}
    assert doc["cache_rates"]["solve_cache_hit_rate"] == 0.75
    assert doc["cache_rates"]["query_elision_rate"] == 0.2


def test_invalid_report_is_rejected_not_written(tmp_path):
    rec = _basic_recorder()
    rec.num_tests = -1               # violates minimum: 0
    out = tmp_path / "rep.json"
    with pytest.raises(SchemaError):
        rec.write(out)
    assert not out.exists()


def test_cache_rates_zero_denominators():
    rates = cache_rates({})
    assert set(rates) == {
        "solve_cache_hit_rate", "query_elision_rate",
        "feasibility_elision_rate", "blast_cache_hit_rate",
        "intern_hit_rate", "incremental_reuse_rate",
    }
    assert all(v == 0.0 for v in rates.values())


def test_normalized_strips_volatile_keys_recursively():
    doc = {
        "num_tests": 5,
        "elapsed_s": 1.25,
        "phase_times_s": {"solve": 0.5},
        "stats": {"step_time": 0.1, "sat_solves": 7,
                  "intern_hits": 3, "blast_cache_hits": 2},
        "rows": [{"wall_s": 0.9, "tests": 3,
                  "peak_rss_mb": 10.0, "timestamp_s": 1.0}],
    }
    clean = normalized(doc)
    assert clean == {"num_tests": 5, "stats": {"sat_solves": 7},
                     "rows": [{"tests": 3}]}
    # The original is untouched (deep copy semantics).
    assert "elapsed_s" in doc and "wall_s" in doc["rows"][0]


def test_generate_stats_json_validates(tmp_path, capsys):
    out = tmp_path / "report.json"
    assert main(["generate", "fig1a", "--max-tests", "3",
                 "--out", str(tmp_path / "t.stf"),
                 "--stats-json", str(out)]) == 0
    doc = json.loads(out.read_text())
    validate(doc, load_schema())
    assert doc["command"] == "generate"
    assert doc["program"] == "fig1a.p4"
    assert doc["num_tests"] == 3
    assert len(doc["coverage_curve"]) == 3
    assert doc["config"]["seed"] == 1
    assert "generate" in doc["phase_times_s"]


def test_fuzz_stats_json_validates(tmp_path):
    out = tmp_path / "report.json"
    assert main(["fuzz", "--seed", "0", "--count", "2",
                 "--targets", "v1model", "--max-tests", "4",
                 "--corpus", str(tmp_path / "corpus"),
                 "--stats-json", str(out)]) == 0
    doc = json.loads(out.read_text())
    validate(doc, load_schema())
    campaign = doc["campaign"]
    assert campaign["num_cases"] == 2
    assert campaign["num_passed"] + campaign["num_failed"] == 2
    cc = campaign["construct_coverage"]
    assert cc["universe"] == 29
    assert len(cc["curve"]) == 2
    assert len(campaign["cases"]) == 2


def test_coverage_goal_flag_truncates(tmp_path, capsys):
    out = tmp_path / "report.json"
    assert main(["generate", "middleblock", "--strategy", "greedy",
                 "--max-tests", "0", "--coverage-goal", "90",
                 "--out", str(tmp_path / "t.stf"),
                 "--stats-json", str(out)]) == 0
    doc = json.loads(out.read_text())
    validate(doc, load_schema())
    assert doc["statement_coverage"] >= 90.0
    # The goal actually truncated the run (exhaustive would be >100).
    assert doc["num_tests"] < 100
