"""Unit tests for the fault-injection layer (Tbl. 2/3 substrate)."""

import pytest

from repro import TestGen, load_program
from repro.faults import MUTATION_CATALOG, mutations_for, run_campaign
from repro.faults.mutations import (
    mut_constant_off_by_one,
    mut_drop_emit,
    mut_flip_binop,
    mut_swallow_table_apply,
    mut_swap_if_branches,
)
from repro.ir import nodes as N
from repro.targets import V1Model
from repro.testback.runner import make_simulator, run_test


def test_catalog_has_both_classes():
    kinds = {m.bug_type for m in MUTATION_CATALOG}
    assert kinds == {"exception", "wrong_code"}
    assert len(mutations_for("exception")) >= 5
    assert len(mutations_for("wrong_code")) >= 5


def test_swallow_table_apply_removes_stmt():
    program = load_program("fig1a")
    before = sum(
        isinstance(s, N.IrApplyTable) for s in program.all_statements()
    )
    assert mut_swallow_table_apply(program)
    after = sum(
        isinstance(s, N.IrApplyTable) for s in program.all_statements()
    )
    assert after == before - 1


def test_drop_emit_removes_emit():
    program = load_program("fig1a")
    assert mut_drop_emit(program)
    emits = [
        s for s in program.all_statements()
        if isinstance(s, N.IrMethodCall) and s.call.func == "emit"
    ]
    assert not emits


def test_flip_binop_changes_operator():
    program = load_program("recirc_demo")  # has hdr.hop.tag + 1
    assert mut_flip_binop(program)


def test_mutations_report_inapplicable():
    # fig1b has no table at all -> swallow-table-apply cannot apply.
    program = load_program("fig1b")
    assert mut_swallow_table_apply(program) is False


def test_seeded_fault_is_detected_by_generated_tests():
    """The core Tbl. 2 loop on one (program, fault) cell."""
    clean = load_program("fig1a")
    tests = TestGen(clean, target=V1Model(), seed=1).run().tests

    mutated = load_program("fig1a")
    assert mut_swallow_table_apply(mutated)
    sim = make_simulator("v1model", mutated)
    outcomes = [run_test(t, mutated, sim) for t in tests]
    failing = [r for r in outcomes if not r.passed]
    assert failing, "removing the table apply must break some test"
    assert all(
        r.kind in ("wrong_output", "wrong_port", "mask_violation",
                   "missing_output")
        for r in failing
    )


def test_unmutated_baseline_passes():
    clean = load_program("fig1a")
    tests = TestGen(clean, target=V1Model(), seed=1).run().tests
    sim = make_simulator("v1model", clean)
    assert all(run_test(t, clean, sim).passed for t in tests)


def test_campaign_classification():
    result = run_campaign([("fig1a", V1Model)], seed=1, max_tests=10)
    detected = result.detected()
    assert detected
    for finding in detected:
        assert finding.detected_as in (
            "exception", "wrong_output", "wrong_port", "mask_violation",
            "missing_output"
        )
        if finding.bug_type == "exception":
            assert finding.detected_as == "exception"


def test_campaign_table_shapes():
    result = run_campaign([("fig1a", V1Model)], seed=1, max_tests=10)
    table = result.table2()
    assert "total" in table
    rows = result.table3_rows()
    assert len(rows) == len(result.detected())
    for label, status, bug_type, _desc in rows:
        assert status == "Found"
        assert bug_type in ("exception", "wrong_code")
