"""TestGenConfig and the deprecated-keyword compatibility shim."""

import dataclasses

import pytest

from repro import TestGen, TestGenConfig, load_program
from repro.symex.explorer import Explorer
from repro.targets import V1Model


def test_config_is_frozen():
    cfg = TestGenConfig(seed=1)
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.seed = 2


def test_config_replace_and_dict_round_trip():
    cfg = TestGenConfig(seed=5, max_tests=7, jobs=3)
    assert cfg.replace(jobs=1) == TestGenConfig(seed=5, max_tests=7, jobs=1)
    assert cfg.replace(jobs=1) is not cfg
    assert TestGenConfig.from_dict(cfg.as_dict()) == cfg


def test_config_defaults():
    cfg = TestGenConfig()
    assert cfg.strategy == "dfs"
    assert cfg.prune_unsat is True
    assert cfg.jobs == 1
    assert cfg.solve_cache is True


def test_testgen_config_path_emits_no_warning(recwarn):
    gen = TestGen(load_program("fig1a"), target=V1Model(),
                  config=TestGenConfig(seed=1))
    assert gen.config.seed == 1
    assert not [w for w in recwarn.list
                if issubclass(w.category, DeprecationWarning)]


def test_testgen_legacy_kwargs_warn_but_work():
    with pytest.warns(DeprecationWarning, match="seed.*TestGen"):
        gen = TestGen(load_program("fig1a"), target=V1Model(),
                      seed=9, randomize_values=True)
    assert gen.config.seed == 9
    assert gen.config.randomize_values is True
    # Legacy attribute views still read through to the config.
    assert gen.seed == 9 and gen.randomize_values is True
    result = gen.run(max_tests=2)
    assert len(result.tests) == 2
    assert all(t.seed == 9 for t in result.tests)


def test_testgen_explorer_legacy_kwargs_warn():
    gen = TestGen(load_program("fig1a"), target=V1Model(),
                  config=TestGenConfig(seed=1))
    with pytest.warns(DeprecationWarning, match="max_tests"):
        explorer = gen.explorer(max_tests=3)
    assert explorer.max_tests == 3
    assert explorer.seed == 1  # base config carries through


def test_explorer_legacy_kwargs_warn():
    program = load_program("fig1a")
    with pytest.warns(DeprecationWarning, match="Explorer"):
        explorer = Explorer(program, V1Model(), seed=2, max_tests=1)
    assert explorer.seed == 2
    assert len(list(explorer.run())) == 1


def test_unknown_kwarg_raises_type_error():
    with pytest.raises(TypeError, match="max_depth"):
        TestGen(load_program("fig1a"), target=V1Model(), max_depth=5)


def test_run_overrides_do_not_mutate_config():
    gen = TestGen(load_program("fig1a"), target=V1Model(),
                  config=TestGenConfig(seed=1))
    result = gen.run(max_tests=1)
    assert len(result.tests) == 1
    assert gen.config.max_tests is None
