"""End-to-end oracle tests on the paper's Fig. 1 example programs.

These assert the behaviours of Fig. 1c: four qualitative test shapes
for fig1a (no entries/noop, synthesized entry + set_out, synthesized
entry + noop, too-short packet -> default action only) and three for
fig1b (checksum mismatch -> drop, checksum match -> forward, invalid
header -> forward).
"""

import pytest

from repro import TestGen, load_program
from repro.externs.checksum import ones_complement16
from repro.targets import V1Model


@pytest.fixture(scope="module")
def fig1a_tests():
    gen = TestGen(load_program("fig1a"), target=V1Model(), seed=1)
    return gen.run().tests


@pytest.fixture(scope="module")
def fig1b_tests():
    gen = TestGen(load_program("fig1b"), target=V1Model(), seed=1)
    return gen.run().tests


def test_fig1a_full_statement_coverage():
    gen = TestGen(load_program("fig1a"), target=V1Model(), seed=1)
    result = gen.run()
    assert result.statement_coverage == 100.0


def test_fig1a_count_and_shapes(fig1a_tests):
    # Paper Fig. 1c lines 4-7 plus the drop-port branch our TM models.
    assert 4 <= len(fig1a_tests) <= 6


def test_fig1a_default_noop_test(fig1a_tests):
    """First test: no table entries; output EtherType rewritten to
    0xBEEF; port unchanged (BMv2 default port 0)."""
    t = next(t for t in fig1a_tests if not t.entries and t.input_packet.width == 112)
    assert t.expected, "packet must be forwarded"
    out = t.expected[0]
    assert out.width == 112
    assert out.bits & 0xFFFF == 0xBEEF
    assert out.port == 0


def test_fig1a_synthesized_entry_matches_beef(fig1a_tests):
    """The symbolic executor must discover that the key is the
    program-written constant 0xBEEF (paper: 'Since the program
    previously set h.eth.type to 0xBEEF the match entry is 0xBEEF')."""
    entry_tests = [t for t in fig1a_tests if t.entries]
    assert entry_tests
    for t in entry_tests:
        entry = t.entries[0]
        assert entry.table == "MyIngress.forward_table"
        name, kind, roles = entry.keys[0]
        assert name == "type"
        assert kind == "exact"
        assert roles["value"] == 0xBEEF


def test_fig1a_set_out_changes_port(fig1a_tests):
    set_out = [
        t for t in fig1a_tests
        if t.entries and t.entries[0].action.endswith("set_out") and not t.dropped
    ]
    assert set_out
    t = set_out[0]
    port_arg = dict(t.entries[0].action_args)["port"]
    assert t.expected[0].port == port_arg


def test_fig1a_too_short_packet_uses_default_only(fig1a_tests):
    """Fig. 1c line 6: packet too short -> header invalid -> key tainted
    -> no entry can be guaranteed to match -> default action, and the
    original (partial) packet is forwarded unchanged."""
    short = [t for t in fig1a_tests if t.input_packet.width < 112]
    assert short, "a too-short-packet test must be generated"
    for t in short:
        assert not t.entries, "tainted key must prevent entry synthesis"
        assert not t.dropped
        out = t.expected[0]
        assert out.width == t.input_packet.width
        assert out.bits == t.input_packet.bits


def test_fig1b_three_behaviours(fig1b_tests):
    assert len(fig1b_tests) == 3


def test_fig1b_checksum_match_forwards(fig1b_tests):
    """The EtherType must equal csum16(dst ++ src) computed by concolic
    execution (paper §3 example 2, second test)."""
    forwarded = [
        t for t in fig1b_tests if t.input_packet.width == 112 and not t.dropped
    ]
    assert forwarded
    t = forwarded[0]
    bits = t.input_packet.bits
    dst = (bits >> 64) & ((1 << 48) - 1)
    src = (bits >> 16) & ((1 << 48) - 1)
    ethertype = bits & 0xFFFF
    assert ethertype == ones_complement16([(48, dst), (48, src)])
    # forwarded unchanged
    assert t.expected[0].bits == bits


def test_fig1b_checksum_mismatch_drops(fig1b_tests):
    dropped = [t for t in fig1b_tests if t.dropped]
    assert dropped
    t = dropped[0]
    bits = t.input_packet.bits
    dst = (bits >> 64) & ((1 << 48) - 1)
    src = (bits >> 16) & ((1 << 48) - 1)
    ethertype = bits & 0xFFFF
    assert ethertype != ones_complement16([(48, dst), (48, src)])


def test_fig1b_short_packet_skips_checksum(fig1b_tests):
    """Invalid header -> verify_checksum condition false -> forwarded."""
    short = [t for t in fig1b_tests if t.input_packet.width < 112]
    assert short
    t = short[0]
    assert not t.dropped
    assert t.expected[0].bits == t.input_packet.bits


def test_deterministic_across_runs():
    r1 = TestGen(load_program("fig1a"), target=V1Model(), seed=7).run()
    r2 = TestGen(load_program("fig1a"), target=V1Model(), seed=7).run()
    assert [t.input_packet.hex() for t in r1.tests] == [
        t.input_packet.hex() for t in r2.tests
    ]
    assert [len(t.entries) for t in r1.tests] == [len(t.entries) for t in r2.tests]


def test_stf_output_contains_wildcards_or_values(fig1a_tests):
    from repro.testback import get_backend

    text = get_backend("stf").render_suite(fig1a_tests)
    assert "packet 0" in text
    assert "BEEF" in text


def test_all_backends_render(fig1a_tests):
    from repro.testback import BACKENDS, get_backend

    for name in BACKENDS:
        text = get_backend(name).render_suite(fig1a_tests)
        assert text.strip()
