"""Public API tests: load_program, TestGen, TestGenResult, baselines."""

import pathlib

import pytest

from repro import TestGen, TestGenResult, load_program
from repro.ir.nodes import IrProgram
from repro.programs import get_program_source, list_programs, program_path
from repro.targets import V1Model, get_target


def test_load_program_by_corpus_name():
    program = load_program("fig1a")
    assert isinstance(program, IrProgram)
    assert program.source_name == "fig1a.p4"


def test_load_program_from_source_text():
    src = get_program_source("fig1a")
    program = load_program(src, source_name="inline.p4")
    assert program.source_name == "inline.p4"
    assert "MyIngress" in program.controls


def test_load_program_from_path(tmp_path):
    path = tmp_path / "prog.p4"
    path.write_text(get_program_source("fig1a"))
    program = load_program(str(path))
    assert program.source_name == "prog.p4"


def test_corpus_registry():
    names = list_programs()
    assert "fig1a" in names and "middleblock" in names
    assert program_path("fig1a").exists()
    with pytest.raises(KeyError):
        program_path("no_such_program")


def test_corpus_programs_all_load():
    """Every shipped .p4 file must lower without errors."""
    for name in list_programs():
        program = load_program(name)
        assert program.all_statements(), name


def test_target_registry():
    from repro.targets import TARGETS

    assert set(TARGETS) == {"v1model", "tna", "t2na", "ebpf_model"}
    target = get_target("v1model")
    assert target.name == "v1model"
    with pytest.raises(KeyError):
        get_target("fancy_asic")


def test_testgen_accepts_program_name():
    gen = TestGen("fig1a", target=V1Model(), seed=1)
    result = gen.run(max_tests=2)
    assert len(result.tests) == 2


def test_result_emit_all_backends():
    result = TestGen("fig1a", target=V1Model(), seed=1).run(max_tests=2)
    assert isinstance(result, TestGenResult)
    for backend in ("stf", "ptf", "protobuf"):
        assert result.emit(backend).strip()


def test_result_statistics_exposed():
    result = TestGen("fig1a", target=V1Model(), seed=1).run(max_tests=2)
    assert result.statement_coverage > 0
    assert result.stats.tests_emitted == 2
    assert result.target == "v1model"


def test_spec_only_baseline_runs():
    from repro.oracle.baselines import SpecOnlyV1Model

    result = TestGen("fig1a", target=SpecOnlyV1Model(), seed=1).run()
    assert result.tests
    # The spec-only tool never generates a drop test: it does not know
    # about BMv2's drop port.
    assert all(not t.dropped for t in result.tests)
