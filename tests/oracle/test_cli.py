"""CLI tests: python -m repro."""

import io
import sys

import pytest

from repro.__main__ import main


def run_cli(args, stdin_text=None, capsys=None):
    if stdin_text is not None:
        old = sys.stdin
        sys.stdin = io.StringIO(stdin_text)
        try:
            return main(args)
        finally:
            sys.stdin = old
    return main(args)


def test_list_programs(capsys):
    assert run_cli(["list-programs"]) == 0
    out = capsys.readouterr().out
    assert "fig1a" in out and "middleblock" in out


def test_list_targets(capsys):
    assert run_cli(["list-targets"]) == 0
    out = capsys.readouterr().out.split()
    assert out == ["ebpf_model", "t2na", "tna", "v1model"]


def test_generate_stf(capsys):
    assert run_cli(["generate", "fig1a", "--max-tests", "3"]) == 0
    captured = capsys.readouterr()
    assert "packet 0" in captured.out
    assert "statement coverage" in captured.err


def test_generate_ptf_backend(capsys):
    assert run_cli(
        ["generate", "fig1a", "--max-tests", "2", "--test-backend", "ptf"]
    ) == 0
    assert "P4RuntimeTest" in capsys.readouterr().out


def test_generate_to_file(tmp_path, capsys):
    out_file = tmp_path / "tests.stf"
    assert run_cli(
        ["generate", "fig1a", "--max-tests", "2", "--out", str(out_file)]
    ) == 0
    assert "packet" in out_file.read_text()


def test_generate_from_stdin(capsys):
    from repro.programs import get_program_source

    assert run_cli(
        ["generate", "-", "--max-tests", "2"],
        stdin_text=get_program_source("fig1a"),
    ) == 0
    assert "packet" in capsys.readouterr().out


def test_run_command(capsys):
    assert run_cli(["run", "fig1b", "--max-tests", "5"]) == 0
    out = capsys.readouterr().out
    assert "tests pass" in out


def test_generate_tna(capsys):
    assert run_cli(
        ["generate", "tna_forward", "--target", "tna",
         "--test-backend", "ptf", "--max-tests", "3"]
    ) == 0
    assert "send_packet" in capsys.readouterr().out


def test_bad_target_rejected(capsys):
    with pytest.raises(SystemExit):
        run_cli(["generate", "fig1a", "--target", "asic"])
