#!/usr/bin/env python3
"""Concolic execution demo (paper §3 example 2 / §5.4).

The Fig. 1b program drops packets whose EtherType does not equal the
Internet checksum of the two MAC addresses.  A checksum cannot be
encoded in first-order bitvector logic at acceptable cost, so the
oracle models it as a placeholder variable and resolves it concolically.
This script shows the three generated behaviours and verifies the
checksum arithmetic by hand.

Usage:  python examples/checksum_oracle.py
"""

from repro import TestGen, load_program
from repro.externs.checksum import ones_complement16
from repro.targets import V1Model
from repro.testback.runner import run_suite


def describe(test) -> str:
    bits = test.input_packet.bits
    width = test.input_packet.width
    if width < 112:
        return f"too-short packet ({width} bits): header invalid, checksum skipped"
    dst = (bits >> 64) & ((1 << 48) - 1)
    src = (bits >> 16) & ((1 << 48) - 1)
    ethertype = bits & 0xFFFF
    computed = ones_complement16([(48, dst), (48, src)])
    verdict = "MATCH" if ethertype == computed else "MISMATCH"
    outcome = "dropped" if test.dropped else "forwarded"
    return (
        f"dst={dst:012x} src={src:012x} type={ethertype:04x} "
        f"csum16={computed:04x} -> {verdict}, {outcome}"
    )


def main() -> int:
    program = load_program("fig1b")
    result = TestGen(program, target=V1Model(), seed=1).run()

    print("=== concolic checksum tests (fig1b) ===")
    for test in result.tests:
        print(f"  test {test.test_id}: {describe(test)}")

    # Invariants from the paper's example:
    matching = [
        t for t in result.tests if t.input_packet.width == 112 and not t.dropped
    ]
    mismatching = [t for t in result.tests if t.dropped]
    assert matching, "expected a checksum-match test"
    assert mismatching, "expected a checksum-mismatch test"

    passed, _runs = run_suite(result.tests, program)
    print(f"\nreplay on BMv2 simulator: {passed}/{len(result.tests)} pass")
    print(result.coverage_report())
    return 0 if passed == len(result.tests) else 1


if __name__ == "__main__":
    raise SystemExit(main())
