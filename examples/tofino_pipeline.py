#!/usr/bin/env python3
"""Whole-program semantics on a hardware-style target (paper §5/§6.1.2).

Generates tests for a Tofino (tna) L2 forwarding program and highlights
the target-specific behaviours the oracle had to model:

- the 64-byte minimum packet size (every input is >= 512 bits);
- intrinsic metadata and port metadata prepended to the live packet
  (parsed by the program but absent from the input packet I);
- the "egress port never written -> dropped" traffic-manager rule;
- drop_ctl handling in the ingress deparser metadata.

Also runs the same program as t2na (Tofino 2) to show the extension
reuse the paper describes.

Usage:  python examples/tofino_pipeline.py
"""

from repro import TestGen, load_program
from repro.targets import T2na, Tna
from repro.testback.runner import run_suite


def main() -> int:
    program = load_program("tna_forward")
    failures = 0
    for target in (Tna(), T2na()):
        print(f"=== {target.name} ===")
        result = TestGen(program, target=target, seed=1).run()
        for test in result.tests:
            size_note = f"{test.input_packet.width // 8}B"
            print(f"  test {test.test_id}: input {size_note:>5} -> "
                  f"{'drop' if test.dropped else 'forward'}, "
                  f"{len(test.entries)} entries")
            assert test.input_packet.width >= 64 * 8, \
                "Tofino minimum packet size violated"
        print(" ", result.coverage_report().splitlines()[0])

        # The drop test with no entries demonstrates the unwritten-
        # egress-port rule: the default action is drop(), and even the
        # noop miss cannot forward because the port was never written.
        passed, _ = run_suite(result.tests, program)
        print(f"  replay on Tofino model (v{2 if target.name == 't2na' else 1}):"
              f" {passed}/{len(result.tests)} pass\n")
        failures += len(result.tests) - passed

    print("=== PTF rendering (first tna test) ===")
    result = TestGen(program, target=Tna(), seed=1).run(max_tests=1)
    print(result.emit("ptf"))
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
