#!/usr/bin/env python3
"""Bug-finding campaign demo (paper §7, Tbl. 2/3).

Plants seeded faults (compiler mistranslations, model crashes, test
back-end defects) into the simulated toolchains and shows which ones
the oracle-generated tests expose, classified like the paper:
"exception" vs "wrong code" bugs per target.

Usage:  python examples/bug_hunting.py
"""

from repro.faults import run_campaign
from repro.targets import Tna, V1Model


def main() -> int:
    cases = [
        ("fig1a", V1Model),
        ("mpls_stack", V1Model),
        ("tiny_hdr", V1Model),
        ("middleblock", V1Model),
        ("tna_forward", Tna),
        ("switch_lite", Tna),
    ]
    print("running seeded-fault campaign "
          f"({len(cases)} program/target pairs)...\n")
    result = run_campaign(cases, seed=1, max_tests=25)

    print("=== detected bugs (Tbl. 3 shape) ===")
    for label, status, bug_type, description in result.table3_rows():
        print(f"  {label:12s} {status:6s} {bug_type:10s} {description}")

    print("\n=== bug counts (Tbl. 2 shape) ===")
    table = result.table2()
    print(f"{'Bug Type':12s} " + " ".join(
        f"{t:>8s}" for t in table if t != "total") + f" {'Total':>8s}")
    for bug_type in ("exception", "wrong_code"):
        row = [table[t].get(bug_type, 0) for t in table if t != "total"]
        print(f"{bug_type:12s} " + " ".join(f"{v:8d}" for v in row)
              + f" {table['total'][bug_type]:8d}")

    missed = [f for f in result.findings if not f.detected]
    print(f"\n{len(result.detected())} faults exposed, "
          f"{len(missed)} planted faults not triggered by these programs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
