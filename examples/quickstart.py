#!/usr/bin/env python3
"""Quickstart: generate tests for the paper's Fig. 1a program.

Runs the oracle on a small v1model program, prints the generated tests
in STF format, shows the statement-coverage report, and replays every
test on the BMv2 simulator to confirm they pass — the full §7 loop in
thirty lines.

Usage:  python examples/quickstart.py [program-name]
"""

import sys

from repro import TestGen, load_program
from repro.targets import V1Model
from repro.testback.runner import run_suite


def main() -> int:
    program_name = sys.argv[1] if len(sys.argv) > 1 else "fig1a"
    program = load_program(program_name)

    print(f"=== generating tests for {program_name} (v1model) ===")
    oracle = TestGen(program, target=V1Model(), seed=1)
    result = oracle.run(max_tests=10)

    for test in result.tests:
        print(" ", test.summary())
    print()
    print(result.coverage_report())
    print()

    print("=== STF rendering ===")
    print(result.emit("stf"))

    print("=== replaying on the BMv2 simulator ===")
    passed, runs = run_suite(result.tests, program)
    for run in runs:
        status = "PASS" if run.passed else f"FAIL ({run.kind}: {run.detail})"
        print(f"  test {run.test_id}: {status}")
    print(f"\n{passed}/{len(runs)} tests pass")
    return 0 if passed == len(runs) else 1


if __name__ == "__main__":
    raise SystemExit(main())
