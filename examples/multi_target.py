#!/usr/bin/env python3
"""Extensibility demo (paper Tbl. 1): one oracle, four targets, three
test back ends.

Generates tests for a representative program on every instantiated
target and renders each suite through every back end the target
supports — the paper's extension matrix, exercised end-to-end.

Usage:  python examples/multi_target.py
"""

from repro import TestGen, load_program
from repro.targets import EbpfModel, T2na, Tna, V1Model
from repro.testback import get_backend
from repro.testback.runner import run_suite

# Paper Tbl. 1: target -> (program, back ends).
MATRIX = [
    (V1Model, "fig1a", ["stf", "ptf", "protobuf"]),
    (Tna, "tna_forward", ["ptf", "protobuf"]),
    (T2na, "tna_forward", ["ptf", "protobuf"]),
    (EbpfModel, "ebpf_filter", ["stf"]),
]


def main() -> int:
    failures = 0
    print(f"{'Architecture':12s} {'Program':14s} {'Tests':>5s} {'Pass':>5s} "
          f"{'Coverage':>9s}  Back ends")
    for target_cls, program_name, backends in MATRIX:
        target = target_cls()
        program = load_program(program_name)
        result = TestGen(program, target=target, seed=1).run(max_tests=10)
        passed, _ = run_suite(result.tests, program)
        failures += len(result.tests) - passed
        rendered = []
        for backend_name in backends:
            text = get_backend(backend_name).render_suite(result.tests)
            rendered.append(f"{backend_name}({len(text)}ch)")
        print(f"{target.name:12s} {program_name:14s} {len(result.tests):5d} "
              f"{passed:5d} {result.statement_coverage:8.1f}%  "
              + ", ".join(rendered))
    print("\nall targets exercised" + (" - all tests pass" if failures == 0
                                       else f" - {failures} FAILURES"))
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
