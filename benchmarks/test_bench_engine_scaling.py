"""Engine scaling: solver-query caching and parallel sharding.

Measures three configurations of the same generation campaign:

- ``cache off`` — canonical solving disabled, every query solved
  incrementally (the pre-engine behaviour);
- ``cache on`` — solver-query caching (sequential, jobs=1);
- ``jobs=4`` — cache on plus the exploration tree sharded across 4
  worker processes.

Reports the cache hit rate and the wall-clock speedups of the latter
two over ``cache off``.  On single-core CI boxes the jobs=4 row mostly
demonstrates that sharding overhead stays bounded (workers re-replay
branch prefixes and time-share one core); the cache row carries the
CPU-bound speedup there.  The suites of the two cached rows are
asserted byte-identical — the engine's determinism guarantee.
"""

import time

from _util import once, report

from repro import TestGen, TestGenConfig, load_program
from repro.targets import V1Model

PROGRAM = "middleblock"
MAX_TESTS = 60


def _campaign(program, config):
    t0 = time.perf_counter()
    gen = TestGen(program, target=V1Model(), config=config)
    tests = list(gen.iter_tests())
    wall = time.perf_counter() - t0
    stats = gen.last_run.stats.as_dict()
    from repro.testback import get_backend

    return {
        "wall_s": wall,
        "tests": len(tests),
        "hits": stats["cache_hits"],
        "misses": stats["cache_misses"],
        "saved_s": stats["cache_time_saved_s"],
        "elided": (stats["elide_hits_model"] + stats["elide_hits_rewrite"]
                   + stats["elide_hits_subsume"]),
        "sat_solves": stats["sat_solves"],
        "blast_hits": stats["blast_cache_hits"],
        "blast_misses": stats["blast_cache_misses"],
        "blast_replayed": stats["blast_clauses_replayed"],
        "intern_hits": stats["intern_hits"],
        "suite": get_backend("stf").render_suite(tests),
        "coverage": gen.last_run.coverage.statement_percent,
    }


def test_engine_scaling(benchmark):
    def run():
        program = load_program(PROGRAM)
        base = TestGenConfig(seed=1, max_tests=MAX_TESTS)
        return {
            "cache off": _campaign(program, base.replace(solve_cache=False)),
            "no intern": _campaign(program, base.replace(intern=False)),
            "cache on ": _campaign(program, base),
            "jobs=4   ": _campaign(program, base.replace(jobs=4)),
        }

    results = once(benchmark, run)
    baseline = results["cache off"]["wall_s"]
    import os

    lines = [
        f"program: {PROGRAM}, max_tests={MAX_TESTS}, seed=1, "
        f"cpus={os.cpu_count()}",
        "",
        "| Config    | Tests | Wall time | Speedup | Cache hits | Hit rate | Time saved | Elided | SAT solves | Blast hits | Clauses replayed |",
    ]
    for label, r in results.items():
        queries = r["hits"] + r["misses"]
        rate = 100.0 * r["hits"] / queries if queries else 0.0
        speedup = baseline / r["wall_s"] if r["wall_s"] else 0.0
        blasts = r["blast_hits"] + r["blast_misses"]
        brate = 100.0 * r["blast_hits"] / blasts if blasts else 0.0
        lines.append(
            f"| {label} | {r['tests']:5d} | {r['wall_s']:8.2f}s | "
            f"{speedup:6.2f}x | {r['hits']:10d} | {rate:7.1f}% | "
            f"{r['saved_s']:9.2f}s | {r['elided']:6d} | "
            f"{r['sat_solves']:10d} | {r['blast_hits']:4d} ({brate:4.1f}%) | "
            f"{r['blast_replayed']:16d} |"
        )
    lines.append("")
    lines.append("cached rows are byte-identical suites (determinism check).")
    report("engine_scaling", lines)

    cached = results["cache on "]
    parallel = results["jobs=4   "]
    nointern = results["no intern"]
    # The acceptance bar: a measurable hit rate and genuine savings.
    assert cached["hits"] > 0
    assert cached["saved_s"] > 0
    assert parallel["hits"] > 0
    # The shared blast cache must be live on every canonical-cache run
    # (per worker process under jobs=4), and dead with interning off.
    assert cached["blast_hits"] > 0 and cached["blast_replayed"] > 0
    assert parallel["blast_hits"] > 0
    assert nointern["blast_hits"] == 0 and nointern["intern_hits"] == 0
    # Every configuration explores the same paths.
    assert (cached["tests"] == parallel["tests"] == nointern["tests"]
            == results["cache off"]["tests"])
    assert cached["coverage"] == parallel["coverage"] == nointern["coverage"]
    # Determinism: jobs=4 and intern-off emit the byte-identical suite.
    assert parallel["suite"] == cached["suite"]
    assert nointern["suite"] == cached["suite"]
