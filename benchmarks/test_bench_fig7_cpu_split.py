"""Figure 7: CPU-time distribution of test generation.

The paper reports that constraint solving in Z3 accounts for <10% of
P4Testgen's CPU time — the symbolic interpretation side dominates.  We
measure the same decomposition for our substrate: CDCL SAT search, CNF
encoding (bit-blasting), symbolic stepping, and the remaining
finalization machinery, against the total wall time of the generation
run (which includes the eager feasibility pruning the paper also
performs).

DEVIATION (recorded in EXPERIMENTS.md): the paper pairs a C++
interpreter with Z3's C core, so solving is a sliver.  We pair a Python
interpreter with a *Python* SAT solver, which inflates the solver share
by roughly the C-to-Python constant.  The reproduced shape is the
decomposition itself plus the paper's enabling observation — incremental
solving keeps the per-check cost low (hundreds of checks, all answered
within milliseconds each).
"""

import time

from _util import once, report

from repro import TestGen, load_program
from repro.targets import V1Model


def test_fig7_cpu_split(benchmark):
    def run():
        t0 = time.perf_counter()
        gen = TestGen(load_program("middleblock"), target=V1Model(), seed=1)
        explorer = gen.explorer(max_tests=120)
        tests = list(explorer.run())
        wall = time.perf_counter() - t0
        return explorer, tests, wall

    explorer, tests, wall = once(benchmark, run)
    # Two solvers cooperate per run: the incremental pruning solver and
    # the canonical model solver (see repro.symex.explorer); sum both.
    prune = explorer.solver.stats
    model = explorer.model_solver.stats
    stats = explorer.stats

    class _Agg:
        checks = prune.checks + model.checks
        sat_answers = prune.sat_answers + model.sat_answers
        unsat_answers = prune.unsat_answers + model.unsat_answers
        solve_time = prune.solve_time + model.solve_time
        blast_time = prune.blast_time + model.blast_time

    solver = _Agg
    solve = solver.solve_time
    blast = solver.blast_time
    stepping = stats.step_time
    other = max(wall - solve - blast - stepping, 0.0)

    def pct(x):
        return 100.0 * x / wall if wall else 0.0

    lines = [
        f"tests generated: {len(tests)}",
        f"total wall time:       {wall:8.2f} s",
        f"  SAT solving (CDCL):  {solve:8.2f} s ({pct(solve):5.1f}%)",
        f"  CNF encoding:        {blast:8.2f} s ({pct(blast):5.1f}%)",
        f"  symbolic stepping:   {stepping:8.2f} s ({pct(stepping):5.1f}%)",
        f"  other (finalize/IO): {other:8.2f} s ({pct(other):5.1f}%)",
        f"solver checks: {solver.checks} (sat={solver.sat_answers}, "
        f"unsat={solver.unsat_answers}); "
        f"{1000 * solve / max(solver.checks, 1):.1f} ms/check",
        f"query elision: {prune.elide_hits + model.elide_hits} of "
        f"{solver.checks} checks answered without SAT "
        f"(model-reuse={prune.elide_hits_model + model.elide_hits_model}, "
        f"rewrite={prune.elide_hits_rewrite + model.elide_hits_rewrite}, "
        f"subsume={prune.elide_hits_subsume + model.elide_hits_subsume}); "
        f"cache hits={model.cache_hits}; "
        f"sat solves={prune.sat_solves + model.sat_solves}",
        f"  word-level rewrite pass:"
        f"{prune.rewrite_time_s + model.rewrite_time_s:8.2f} s",
        "",
        "paper: Z3 <10% (C++ interpreter vs C solver).  Here the solver",
        "is Python, so its share is inflated by the implementation",
        "constant; the decomposition and the cheap-incremental-check",
        "property are the reproduced shape.",
    ]
    report("fig7_cpu_split", lines)

    assert len(tests) > 0
    # Accounting sanity: the categories must cover the run.
    assert solve + blast + stepping <= wall * 1.05
    # The enabling property: incremental checks stay cheap.
    assert solve / max(solver.checks, 1) < 0.5, "per-check cost exploded"
