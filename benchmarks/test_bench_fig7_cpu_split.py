"""Figure 7: CPU-time distribution of test generation.

The paper reports that constraint solving in Z3 accounts for <10% of
P4Testgen's CPU time — the symbolic interpretation side dominates.  We
measure the same decomposition for our substrate: CDCL SAT search, CNF
encoding (bit-blasting), symbolic stepping, and the remaining
finalization machinery, against the total wall time of the generation
run (which includes the eager feasibility pruning the paper also
performs).

DEVIATION (recorded in EXPERIMENTS.md): the paper pairs a C++
interpreter with Z3's C core, so solving is a sliver.  We pair a Python
interpreter with a *Python* SAT solver, which inflates the solver share
by roughly the C-to-Python constant.  The reproduced shape is the
decomposition itself plus the paper's enabling observation — incremental
solving keeps the per-check cost low (hundreds of checks, all answered
within milliseconds each).
"""

import time

from _util import once, report

from repro import TestGen, TestGenConfig, load_program
from repro.targets import V1Model


def test_fig7_cpu_split(benchmark):
    def run():
        t0 = time.perf_counter()
        gen = TestGen(load_program("middleblock"), target=V1Model(), seed=1)
        explorer = gen.explorer(max_tests=120)
        tests = list(explorer.run())
        wall = time.perf_counter() - t0
        return explorer, tests, wall

    explorer, tests, wall = once(benchmark, run)
    # Two solvers cooperate per run: the incremental pruning solver and
    # the canonical model solver (see repro.symex.explorer); sum both.
    prune = explorer.solver.stats
    model = explorer.model_solver.stats
    stats = explorer.stats

    class _Agg:
        checks = prune.checks + model.checks
        sat_answers = prune.sat_answers + model.sat_answers
        unsat_answers = prune.unsat_answers + model.unsat_answers
        solve_time = prune.solve_time + model.solve_time
        blast_time = prune.blast_time + model.blast_time

    solver = _Agg
    solve = solver.solve_time
    blast = solver.blast_time
    stepping = stats.step_time
    other = max(wall - solve - blast - stepping, 0.0)

    def pct(x):
        return 100.0 * x / wall if wall else 0.0

    lines = [
        f"tests generated: {len(tests)}",
        f"total wall time:       {wall:8.2f} s",
        f"  SAT solving (CDCL):  {solve:8.2f} s ({pct(solve):5.1f}%)",
        f"  CNF encoding:        {blast:8.2f} s ({pct(blast):5.1f}%)",
        f"  symbolic stepping:   {stepping:8.2f} s ({pct(stepping):5.1f}%)",
        f"  other (finalize/IO): {other:8.2f} s ({pct(other):5.1f}%)",
        f"solver checks: {solver.checks} (sat={solver.sat_answers}, "
        f"unsat={solver.unsat_answers}); "
        f"{1000 * solve / max(solver.checks, 1):.1f} ms/check",
        f"query elision: {prune.elide_hits + model.elide_hits} of "
        f"{solver.checks} checks answered without SAT "
        f"(model-reuse={prune.elide_hits_model + model.elide_hits_model}, "
        f"rewrite={prune.elide_hits_rewrite + model.elide_hits_rewrite}, "
        f"subsume={prune.elide_hits_subsume + model.elide_hits_subsume}); "
        f"cache hits={model.cache_hits}; "
        f"sat solves={prune.sat_solves + model.sat_solves}",
        f"  word-level rewrite pass:"
        f"{prune.rewrite_time_s + model.rewrite_time_s:8.2f} s",
        "",
        "paper: Z3 <10% (C++ interpreter vs C solver).  Here the solver",
        "is Python, so its share is inflated by the implementation",
        "constant; the decomposition and the cheap-incremental-check",
        "property are the reproduced shape.",
    ]
    report("fig7_cpu_split", lines)

    assert len(tests) > 0
    # Accounting sanity: the categories must cover the run.
    assert solve + blast + stepping <= wall * 1.05
    # The enabling property: incremental checks stay cheap.
    assert solve / max(solver.checks, 1) < 0.5, "per-check cost exploded"


def test_fig7_incremental_feasibility_speedup(benchmark):
    """The PR-10 before/after on the Fig 7 solver share: feasibility
    checks riding the retained clause database vs. solving each check
    from scratch.

    Elision is disabled on both sides so the comparison isolates the
    two SAT planes — with it on, the elider answers ~85% of checks
    before either plane runs and the delta shrinks to the residue.
    Recorded at PR-10 time: 0.28 s vs. 0.62 s of aggregate feasibility
    solve time (2.2x), 50k vs. 110k unit propagations.  The acceptance
    floor is 1.5x, pinned on the deterministic propagation counters in
    tests/perf/test_perfsmoke.py; the wall-clock assertion here is the
    honest end-to-end version of the same claim.
    """
    def run_mode(incremental):
        config = TestGenConfig(seed=1, max_tests=60, elide=False,
                               incremental=incremental)
        gen = TestGen(load_program("middleblock"), target=V1Model(),
                      config=config)
        explorer = gen.explorer()
        tests = list(explorer.run())
        ps = explorer.solver.stats
        return {
            "tests": len(tests),
            "solve_s": ps.solve_time,
            "sat_solves": ps.sat_solves,
            "propagations": explorer.solver._sat.stats["propagations"],
            "levels_reused": explorer.stats.inc_levels_reused,
            "levels_assumed": explorer.stats.inc_levels_assumed,
        }

    def run_both():
        return run_mode(True), run_mode(False)

    inc, oneshot = once(benchmark, run_both)
    assert inc["tests"] == oneshot["tests"] == 60
    wall_gain = oneshot["solve_s"] / max(inc["solve_s"], 1e-9)
    prop_gain = oneshot["propagations"] / max(inc["propagations"], 1)
    reuse = inc["levels_reused"] / max(inc["levels_assumed"], 1)

    report("fig7_incremental_feasibility", [
        "middleblock seed=1 max_tests=60 elide=off (isolates the",
        "feasibility SAT planes; default runs elide ~85% of checks)",
        "",
        f"                      incremental    one-shot",
        f"feasibility solve:  {inc['solve_s']:9.3f} s {oneshot['solve_s']:9.3f} s"
        f"   ({wall_gain:.2f}x)",
        f"unit propagations:  {inc['propagations']:11d} {oneshot['propagations']:11d}"
        f"   ({prop_gain:.2f}x)",
        f"sat solves:         {inc['sat_solves']:11d} {oneshot['sat_solves']:11d}",
        f"trail reuse: {inc['levels_reused']}/{inc['levels_assumed']} "
        f"assumption levels re-established from the kept prefix "
        f"({100 * reuse:.0f}%)",
        "",
        "paper (§6): P4Testgen configures Z3 for incremental solving so",
        "per-branch feasibility checks stay cheap; this is the same",
        "lever on the native CDCL core.",
    ])

    assert prop_gain >= 1.5, (
        f"propagation gain {prop_gain:.2f}x below the 1.5x acceptance "
        f"floor"
    )
    assert wall_gain >= 1.5, (
        f"feasibility solve time gain {wall_gain:.2f}x below the 1.5x "
        f"acceptance floor"
    )
