"""Ablation: constructor-time term simplification in the SMT substrate.

An interesting negative-space result: our Tseitin gate layer already
constant-folds (an AND with a false input emits no clauses), so turning
the *term-level* simplifier off barely changes CNF size.  What the term
simplifier still buys, and what this benchmark measures on a real
generation run, is:

- constraints that fold to constants never reach the solver at all
  (``add_constraint`` prunes them), so the solver is called less often;
- the hash-consed term DAG stays roughly half the size;
- taint mitigation 1 ('tainted * 0 == 0', §5.3) only exists at the
  term level — the gate layer runs far too late to stop taint spread.
"""

from _util import once, report

from repro import TestGen, load_program
from repro.smt import terms as T
from repro.targets import V1Model


def _run():
    import time

    t0 = time.perf_counter()
    gen = TestGen(load_program("middleblock"), target=V1Model(), seed=1)
    explorer = gen.explorer(max_tests=60)
    tests = list(explorer.run())
    return {
        "tests": len(tests),
        "wall_s": time.perf_counter() - t0,
        "checks": explorer.stats.solver_checks,
        "interned_terms": len(T._INTERN),
    }


def test_ablation_smt_simplifier(benchmark):
    def run():
        results = {}
        T._INTERN.clear()
        T.set_simplify(True)
        results["simplify on"] = _run()
        T._INTERN.clear()
        T.set_simplify(False)
        try:
            results["simplify off"] = _run()
        finally:
            T.set_simplify(True)
            T._INTERN.clear()
        return results

    results = once(benchmark, run)
    lines = ["| Simplifier   | Tests | Solver checks | Term DAG | Wall time |"]
    for label, r in results.items():
        lines.append(
            f"| {label:12s} | {r['tests']:5d} | {r['checks']:13d} | "
            f"{r['interned_terms']:8d} | {r['wall_s']:8.2f}s |"
        )
    lines.append("")
    lines.append("note: the Tseitin layer constant-folds gates, so CNF size")
    lines.append("is insensitive; the simplifier's value is avoided solver")
    lines.append("calls, a smaller term DAG, and taint mitigation 1 (§5.3).")
    report("ablation_smt", lines)

    on, off = results["simplify on"], results["simplify off"]
    assert on["tests"] == off["tests"]  # semantics preserved
    assert on["checks"] <= off["checks"], (
        "the simplifier must not increase solver traffic"
    )
    assert on["interned_terms"] < off["interned_terms"], (
        "the simplifier should shrink the term DAG"
    )


def test_taint_mitigation_needs_term_simplifier(benchmark):
    """Mitigation 1 lives in the term layer: tainted*0 folds to a
    constant, which clears the taint mask; without simplification the
    taint sticks."""
    from repro.symex import taint as TT
    from repro.symex.value import SymVal

    def run():
        a = SymVal(T.bv_var("abl_a", 8), 0xFF)  # fully tainted
        zero = SymVal(T.bv_const(0, 8), 0)
        T.set_simplify(True)
        term_on = T.bv_mul(a.term, zero.term)
        taint_on = TT.binop_taint("*", a, zero, term_on)
        T.set_simplify(False)
        try:
            term_off = T.bv_mul(a.term, zero.term)
            taint_off = TT.binop_taint("*", a, zero, term_off)
        finally:
            T.set_simplify(True)
        return taint_on, taint_off

    taint_on, taint_off = once(benchmark, run)
    assert taint_on == 0, "simplifier clears taint of x*0"
    assert taint_off == 0xFF, "without it, taint spreads"
