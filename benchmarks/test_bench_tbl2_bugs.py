"""Tables 2 and 3: bugs discovered in the (simulated) toolchains.

Runs the seeded-fault campaign: oracle tests generated against correct
semantics are replayed on toolchains with planted compiler/model/test-
framework faults.  Reproduced shape: both bug classes (exception and
wrong code) are exposed, on both the BMv2- and Tofino-style targets,
and the per-bug detail rows of Tbl. 3 are printed.
"""

from _util import once, report

from repro.faults import run_campaign
from repro.targets import Tna, V1Model

CASES = [
    ("fig1a", V1Model),
    ("fig1b", V1Model),
    ("mpls_stack", V1Model),
    ("tiny_hdr", V1Model),
    ("register_demo", V1Model),
    ("recirc_demo", V1Model),
    ("value_set_demo", V1Model),
    ("match_kinds", V1Model),
    ("middleblock", V1Model),
    ("tna_forward", Tna),
    ("switch_lite", Tna),
]


def test_tbl2_tbl3_bug_campaign(benchmark):
    result = once(
        benchmark, lambda: run_campaign(CASES, seed=1, max_tests=40)
    )
    table = result.table2()

    targets = [t for t in table if t != "total"]
    lines = ["| Bug Type   | " + " | ".join(f"{t:>8s}" for t in targets)
             + " | Total |"]
    for bug_type in ("exception", "wrong_code"):
        label = "Exception" if bug_type == "exception" else "Wrong Code"
        row = [table[t].get(bug_type, 0) for t in targets]
        lines.append(
            f"| {label:10s} | " + " | ".join(f"{v:8d}" for v in row)
            + f" | {table['total'][bug_type]:5d} |"
        )
    total_all = table["total"]["exception"] + table["total"]["wrong_code"]
    lines.append(f"| Total      | "
                 + " | ".join(f"{sum(table[t].values()):8d}" for t in targets)
                 + f" | {total_all:5d} |")
    lines.append("")
    lines.append("Tbl. 3 detail rows:")
    for label, status, bug_type, description in result.table3_rows():
        lines.append(f"  {label:12s} {status:6s} {bug_type:10s} {description}")
    report("tbl2_tbl3_bugs", lines)

    # Paper shape: bugs of BOTH classes on BOTH targets; nonzero totals.
    assert table["total"]["exception"] >= 1
    assert table["total"]["wrong_code"] >= 1
    assert "v1model" in table and sum(table["v1model"].values()) >= 1
    assert "tna" in table and sum(table["tna"].values()) >= 1
    assert total_all >= 10
