"""Batch replay throughput: lane-packed vs. scalar suite validation.

Measures :func:`repro.report.bench.measure_replay_throughput` — the
same workload ``repro bench`` records in the ``replay`` block of the
``BENCH_<label>.json`` trajectory — and pins the headline claim: the
lane engine replays validation suites at >= 5x the scalar simulators'
packet rate with every lane on the fast path (no compile fallbacks, no
runtime ejections).

Best-of-three: the measurement itself is deterministic in everything
but wall time, so the max over three runs filters scheduler noise
without changing what is being claimed.
"""

from _util import once, report

from repro.report.bench import measure_replay_throughput


def test_replay_throughput(benchmark):
    def run():
        best = None
        for _ in range(3):
            m = measure_replay_throughput(seed=1)
            if best is None or m["speedup"] > best["speedup"]:
                best = m
        return best

    m = once(benchmark, run)
    lines = [
        f"programs: {', '.join(m['programs'])}",
        f"packets per pass: {m['packets']}",
        f"scalar: {m['scalar_pps']:>10.1f} packets/s",
        f"batch:  {m['batch_pps']:>10.1f} packets/s",
        f"speedup: {m['speedup']:.2f}x",
        f"lane fill rate: {m['fill_rate']:.4f}",
        f"scalar fallback packets: {m['scalar_fallback_packets']}",
    ]
    report("replay_throughput", lines)

    assert m["speedup"] >= 5.0, f"batch replay only {m['speedup']:.2f}x"
    assert m["fill_rate"] == 1.0
    assert m["scalar_fallback_packets"] == 0
