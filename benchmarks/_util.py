"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
prints it, and appends it to ``benchmarks/results/`` so the numbers are
inspectable after a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, lines: list[str]) -> str:
    """Print and persist a benchmark report; returns the text."""
    text = "\n".join(lines)
    banner = f"==== {name} ===="
    print(f"\n{banner}\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The paper's experiments are generation campaigns, not
    microbenchmarks; repeating them for statistics would multiply
    minutes of runtime for no insight.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
