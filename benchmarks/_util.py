"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
prints it, and appends it to ``benchmarks/results/`` so the numbers are
inspectable after a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import pathlib
import resource
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def peak_rss_mb() -> float:
    """The process's peak resident set size so far, in MiB.

    ``ru_maxrss`` is a high-water mark (kilobytes on Linux, bytes on
    macOS): it only ever grows, so per-row readings show which row
    first pushed the process to its peak, not per-row footprints.
    psutil is deliberately not used — the benchmark harness must run on
    the bare stdlib.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024 * 1024)
    return peak / 1024


def traced_peak_mb(fn):
    """Run ``fn`` under tracemalloc; returns ``(result, peak_mib)``.

    tracemalloc roughly doubles allocation cost, so never wrap a row
    whose wall-clock is being reported — use a dedicated memory pass.
    """
    import tracemalloc

    tracemalloc.start()
    try:
        result = fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak / (1024 * 1024)


def report(name: str, lines: list[str]) -> str:
    """Print and persist a benchmark report; returns the text."""
    text = "\n".join(lines)
    banner = f"==== {name} ===="
    print(f"\n{banner}\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The paper's experiments are generation campaigns, not
    microbenchmarks; repeating them for statistics would multiply
    minutes of runtime for no insight.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
