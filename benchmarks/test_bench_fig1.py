"""Figure 1c: the paper's worked example tests.

Regenerates the test tables for the Fig. 1a (EtherType forwarding) and
Fig. 1b (Ethernet checksum) programs and checks the qualitative rows:
sizes in/out, the 0xBEEF match entry, the taint-driven default-action
test, and the concolic checksum relationship.
"""

from _util import once, report

from repro import TestGen, load_program
from repro.externs.checksum import ones_complement16
from repro.targets import V1Model


def _row(test):
    inp = test.input_packet
    if test.dropped or not test.expected:
        out_desc = "drop"
    else:
        out = test.expected[0]
        out_desc = f"{out.width:4d}b port {out.port}"
    entries = "; ".join(
        f"match({e.keys[0][0]}={e.keys[0][2].get('value', 0):#x}),"
        f"action({e.action.split('.')[-1]})"
        for e in test.entries
    ) or "-"
    return (
        f"| {inp.width:4d}b in p{inp.port} | {out_desc:>14s} | {entries}"
    )


def test_fig1_example_tables(benchmark):
    def run():
        rows = []
        results = {}
        for name in ("fig1a", "fig1b"):
            result = TestGen(load_program(name), target=V1Model(), seed=1).run()
            results[name] = result
            rows.append(f"--- {name} ---")
            rows.append("| Size In       | Size Out       | Table configuration")
            for test in result.tests:
                rows.append(_row(test))
        return results, rows

    results, rows = once(benchmark, run)
    report("fig1_example_tests", rows)

    a = results["fig1a"].tests
    # Paper row: entry key must be the program-written 0xBEEF.
    assert any(
        t.entries and t.entries[0].keys[0][2]["value"] == 0xBEEF for t in a
    )
    # Paper row: too-short packet -> no entries, forwarded unchanged.
    short = [t for t in a if t.input_packet.width < 112]
    assert short and all(not t.entries for t in short)
    assert results["fig1a"].statement_coverage == 100.0

    b = results["fig1b"].tests
    match = [t for t in b if t.input_packet.width == 112 and not t.dropped]
    assert match
    bits = match[0].input_packet.bits
    assert bits & 0xFFFF == ones_complement16(
        [(48, (bits >> 64) & (1 << 48) - 1), (48, (bits >> 16) & (1 << 48) - 1)]
    )
    assert any(t.dropped for t in b)
