"""Table 5: tool comparison — the value of target-specific semantics.

The paper's qualitative table contrasts P4Testgen (symbolic execution,
no extra input, target-agnostic, WITH target-specific semantics)
against spec-only tools like Gauntlet/p4pktgen.  We reproduce the
comparison operationally: a spec-only oracle (same engine, whole-
program semantics stripped) generates tests for the Fig. 1 programs,
and both tools' tests are replayed on the real BMv2 model.

Expected shape: P4Testgen's tests all pass; the spec-only tool both
*misses behaviours* (no drop tests, no checksum-mismatch test) and
*mispredicts* some outputs (checksum handling), so its pass rate and
behaviour count are strictly worse.
"""

from _util import once, report

from repro import TestGen, load_program
from repro.oracle.baselines import SpecOnlyV1Model
from repro.targets import V1Model
from repro.testback.runner import run_suite


def _evaluate(tool_name, target, program_name):
    program = load_program(program_name)
    result = TestGen(program, target=target, seed=1).run()
    passed, _ = run_suite(result.tests, program)
    behaviours = {
        "drop" if t.dropped else f"forward:{len(t.entries)}e"
        for t in result.tests
    }
    return {
        "tool": tool_name,
        "program": program_name,
        "tests": len(result.tests),
        "passed": passed,
        "behaviours": len(behaviours),
    }


def test_tbl5_tool_comparison(benchmark):
    def run():
        rows = []
        for program_name in ("fig1a", "fig1b"):
            rows.append(_evaluate("P4Testgen", V1Model(), program_name))
            rows.append(_evaluate("spec-only", SpecOnlyV1Model(), program_name))
        return rows

    rows = once(benchmark, run)
    lines = [
        "| Tool       | Program | Tests | Pass on BMv2 | Behaviours |",
    ]
    for r in rows:
        lines.append(
            f"| {r['tool']:10s} | {r['program']:7s} | {r['tests']:5d} | "
            f"{r['passed']:4d}/{r['tests']:<5d} | {r['behaviours']:10d} |"
        )
    lines.append("")
    lines.append("paper Tbl. 5: only P4Testgen combines target-agnosticism")
    lines.append("with target-specific semantics; spec-only tools (Gauntlet,")
    lines.append("p4pktgen) mispredict or miss target behaviours.")
    report("tbl5_tools", lines)

    by_key = {(r["tool"], r["program"]): r for r in rows}
    # P4Testgen: everything passes.
    for program in ("fig1a", "fig1b"):
        full = by_key[("P4Testgen", program)]
        assert full["passed"] == full["tests"]
    # The spec-only tool mispredicts the checksum program.
    spec_b = by_key[("spec-only", "fig1b")]
    assert spec_b["passed"] < spec_b["tests"] or \
        spec_b["tests"] < by_key[("P4Testgen", "fig1b")]["tests"]
    # And misses behaviours on the forwarding program (no drop test).
    assert by_key[("spec-only", "fig1a")]["behaviours"] <= \
        by_key[("P4Testgen", "fig1a")]["behaviours"]
