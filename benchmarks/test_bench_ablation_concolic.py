"""Ablation: concolic execution of complex externs (paper §5.4).

With concolic execution enabled, the oracle's checksum values are
consistent with the target's concrete checksum function, so every test
replays green on BMv2.  With it disabled (placeholder variables left
unconstrained), the oracle's expectations are arbitrary and checksum-
dependent tests fail on replay — concolic execution is what makes the
oracle *correct*, not just complete.
"""

from _util import once, report

from repro import TestGen, load_program
from repro.targets import V1Model
from repro.testback.runner import run_suite


def _run(enabled: bool):
    program = load_program("fig1b")
    gen = TestGen(program, target=V1Model(), seed=1)
    explorer = gen.explorer(concolic_enabled=enabled)
    tests = list(explorer.run())
    passed, _ = run_suite(tests, program)
    return {
        "tests": len(tests),
        "passed": passed,
        "coverage": explorer.coverage.statement_percent,
    }


def test_ablation_concolic_on_off(benchmark):
    def run():
        return {"concolic on": _run(True), "concolic off": _run(False)}

    results = once(benchmark, run)
    lines = ["| Configuration | Tests | Pass on BMv2 | Coverage |"]
    for label, r in results.items():
        lines.append(
            f"| {label:13s} | {r['tests']:5d} | {r['passed']:4d}/{r['tests']:<5d}"
            f" | {r['coverage']:7.1f}% |"
        )
    lines.append("")
    lines.append("§5.4: without the solve/bind/re-solve loop the oracle's")
    lines.append("checksum expectations are unsound; replay exposes it.")
    report("ablation_concolic", lines)

    on, off = results["concolic on"], results["concolic off"]
    assert on["passed"] == on["tests"], "concolic tests must be sound"
    assert off["passed"] < off["tests"], (
        "disabling concolic execution must break checksum tests"
    )
