"""Ablation: taint-spread mitigations (paper §5.3).

Mitigation 2 lets a tainted ternary key be wildcarded so entries can
still be synthesized.  With it disabled, the classifier table in
``taint_key.p4`` is only reachable through its default action: fewer
tests and lower statement coverage.  Every generated test must still
pass on BMv2 in both modes (taint handling must never produce flaky
tests, only fewer ones).
"""

from _util import once, report

from repro import TestGen, load_program
from repro.targets import V1Model
from repro.testback.runner import run_suite


def _run(mitigation: bool):
    target = V1Model()
    target.taint_wildcard_mitigation = mitigation
    program = load_program("taint_key")
    result = TestGen(program, target=target, seed=1).run()
    passed, _ = run_suite(result.tests, program)
    return {
        "tests": len(result.tests),
        "passed": passed,
        "coverage": result.statement_coverage,
        "blocked": result.stats.tests_blocked,
    }


def test_ablation_taint_mitigations(benchmark):
    def run():
        return {"on": _run(True), "off": _run(False)}

    results = once(benchmark, run)
    lines = ["| Wildcard mitigation | Tests | Pass | Coverage | Blocked |"]
    for label, r in results.items():
        lines.append(
            f"| {label:19s} | {r['tests']:5d} | {r['passed']:4d} | "
            f"{r['coverage']:7.1f}% | {r['blocked']:7d} |"
        )
    lines.append("")
    lines.append("§5.3: wildcarding tainted ternary keys preserves table")
    lines.append("coverage that naive taint handling loses.")
    report("ablation_taint", lines)

    on, off = results["on"], results["off"]
    assert on["tests"] > off["tests"]
    assert on["coverage"] > off["coverage"]
    # Soundness in both modes: no flaky tests.
    assert on["passed"] == on["tests"]
    assert off["passed"] == off["tests"]
