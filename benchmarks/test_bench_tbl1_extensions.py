"""Table 1: the extension matrix.

One row per instantiated target with its test back ends; every cell is
smoke-verified by generating a test and rendering it through each back
end, then replaying it on the matching software model.
"""

from _util import once, report

from repro import TestGen, load_program
from repro.targets import EbpfModel, T2na, Tna, V1Model
from repro.testback import get_backend
from repro.testback.runner import run_suite

MATRIX = [
    ("v1model", V1Model, "BMv2", "fig1a", ["stf", "ptf", "protobuf"]),
    ("tna", Tna, "Tofino 1", "tna_forward", ["ptf", "protobuf"]),
    ("t2na", T2na, "Tofino 2", "tna_forward", ["ptf", "protobuf"]),
    ("ebpf_model", EbpfModel, "Linux Kernel", "ebpf_filter", ["stf"]),
]


def test_tbl1_extension_matrix(benchmark):
    def run():
        rows = []
        all_pass = True
        for arch, target_cls, device, program_name, backends in MATRIX:
            program = load_program(program_name)
            result = TestGen(program, target=target_cls(), seed=1).run(max_tests=5)
            rendered = []
            for backend in backends:
                text = get_backend(backend).render_suite(result.tests)
                assert text.strip(), f"{backend} produced empty output"
                rendered.append(backend.upper())
            passed, _ = run_suite(result.tests, program)
            all_pass &= passed == len(result.tests)
            rows.append(
                f"| {arch:10s} | {device:12s} | {', '.join(rendered):20s} | "
                f"{passed}/{len(result.tests)} replay |"
            )
        return rows, all_pass

    rows, all_pass = once(benchmark, run)
    header = "| Architecture | Target | Test back ends | Smoke |"
    report("tbl1_extensions", [header] + rows)
    assert all_pass
    assert len(rows) == 4  # the paper's four extensions
