"""Ablation: path-exploration strategies (DESIGN.md §5).

The paper uses DFS by default and names new exploration strategies as
future work; continuations exist precisely to make strategies pluggable
(§5.1.2).  We compare DFS, random backtracking, and coverage-greedy on
the middleblock analogue: tests needed to reach a fixed coverage level.
"""

from _util import once, report

from repro import TestGen, load_program
from repro.targets import V1Model

TARGET_COVERAGE = 95.0
CAP = 120


def _tests_to_coverage(strategy: str) -> tuple[int, float]:
    gen = TestGen(
        load_program("middleblock"), target=V1Model(), seed=7,
        strategy=strategy,
    )
    explorer = gen.explorer(max_tests=CAP)
    count = 0
    for _test in explorer.run():
        count += 1
        if explorer.coverage.statement_percent >= TARGET_COVERAGE:
            break
    return count, explorer.coverage.statement_percent


def test_ablation_exploration_strategies(benchmark):
    def run():
        return {
            strategy: _tests_to_coverage(strategy)
            for strategy in ("dfs", "random", "greedy")
        }

    results = once(benchmark, run)
    lines = [f"| Strategy | Tests to {TARGET_COVERAGE:.0f}% cov. | Final cov. |"]
    for strategy, (count, cov) in results.items():
        lines.append(f"| {strategy:8s} | {count:17d} | {cov:9.1f}% |")
    lines.append("")
    lines.append("DFS enumerates sibling table-action branches before new")
    lines.append("code; diversity-seeking strategies typically need fewer")
    lines.append("tests per uncovered statement.")
    report("ablation_strategies", lines)

    for strategy, (count, cov) in results.items():
        assert count >= 1
        assert cov >= TARGET_COVERAGE or count == CAP
    # At least one non-DFS strategy should do no worse than DFS.
    dfs = results["dfs"][0]
    assert min(results["random"][0], results["greedy"][0]) <= dfs
