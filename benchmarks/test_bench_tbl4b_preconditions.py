"""Table 4b: effect of preconditions on the number of generated tests.

Paper (middleblock.p4): no preconditions 237,846 tests; fixed-size
packets -25%; P4-constraints -43%; both -57% — with 100% statement
coverage in every configuration.  We run the same four configurations
on our middleblock analogue and assert the same *shape*: every
precondition reduces the count, the combination reduces the most, and
coverage stays at 100% throughout.
"""

from _util import once, report

from repro import TestGen, load_program
from repro.targets import Preconditions, V1Model

CONFIGS = [
    ("None", Preconditions()),
    ("Fixed-size pkt.", Preconditions(fixed_packet_size_bytes=1500)),
    ("P4-constraints", Preconditions(p4constraints=True)),
    ("P4-constraints & fixed-size pkt.",
     Preconditions(fixed_packet_size_bytes=1500, p4constraints=True)),
]


def test_tbl4b_preconditions(benchmark):
    def run():
        rows = []
        for label, pre in CONFIGS:
            result = TestGen(
                load_program("middleblock"),
                target=V1Model(preconditions=pre),
                seed=1,
            ).run()
            rows.append((label, len(result.tests), result.statement_coverage))
        return rows

    rows = once(benchmark, run)
    base = rows[0][1]
    lines = ["| Applied precondition              | Valid tests | Reduction | Cov. |"]
    for label, count, cov in rows:
        reduction = 100.0 * (1 - count / base)
        lines.append(
            f"| {label:33s} | {count:11d} | {reduction:8.1f}% | {cov:3.0f}% |"
        )
    lines.append("")
    lines.append("paper: 0% / 25% / 43% / 57% reduction, all at 100% coverage.")
    report("tbl4b_preconditions", lines)

    none_, fixed, constraints, both = (r[1] for r in rows)
    assert fixed < none_, "fixed packet size must reduce the test count"
    assert constraints < none_, "P4-constraints must reduce the test count"
    assert both < fixed and both < constraints, (
        "combining preconditions must reduce the most"
    )
    assert all(cov == 100.0 for _l, _n, cov in rows), (
        "every configuration must still reach full statement coverage"
    )
