"""Table 4a: oracle statistics for the large representative programs.

Paper rows: middleblock.p4 (100% coverage, exhaustive), up4.p4 (95% —
the meter RED path needs control-plane meter support), switch.p4 on
tna (coverage plateaus well below 100% within any practical test cap
because paths explode).  We regenerate the same three rows on our
corpus analogues and assert the coverage *ordering*:

    middleblock (100%)  >  up4 (<100%, >=85%)  >  switch (partial)
"""

import time

from _util import once, report

from repro import TestGen, load_program
from repro.targets import Tna, V1Model


def _row(name, target, cap):
    t0 = time.time()
    result = TestGen(load_program(name), target=target, seed=1).run(
        max_tests=cap
    )
    elapsed = time.time() - t0
    return {
        "name": name,
        "arch": target.name,
        "tests": len(result.tests),
        "time_s": elapsed,
        "coverage": result.statement_coverage,
        "blocked": result.stats.tests_blocked,
    }


def test_tbl4a_large_programs(benchmark):
    def run():
        return [
            _row("middleblock", V1Model(), None),     # exhaustive
            _row("up4", V1Model(), None),             # exhaustive
            _row("switch_lite", Tna(), 80),           # capped (explodes)
        ]

    rows = once(benchmark, run)
    lines = [
        "| P4 program    | Arch.   | Valid tests | Time    | Stmt. cov. |"
    ]
    for r in rows:
        cap_note = "" if r["name"] != "switch_lite" else " (capped)"
        lines.append(
            f"| {r['name']:13s} | {r['arch']:7s} | {r['tests']:11d} | "
            f"{r['time_s']:6.1f}s | {r['coverage']:9.1f}% |{cap_note}"
        )
    lines.append("")
    lines.append("paper: middleblock 100%, up4 95% (meter RED uncoverable),")
    lines.append("switch.p4 41% at the 1M-test cap — same ordering expected.")
    report("tbl4a_large_programs", lines)

    mb, up4, switch = rows
    assert mb["coverage"] == 100.0
    assert 85.0 <= up4["coverage"] < 100.0, (
        "up4 should stall below 100% on the meter RED branch"
    )
    assert switch["coverage"] < 100.0, (
        "switch_lite must not be exhaustible within the cap"
    )
    assert mb["tests"] > 100
