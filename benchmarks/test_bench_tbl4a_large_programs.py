"""Table 4a: oracle statistics for the large representative programs.

Paper rows: middleblock.p4 (100% coverage, exhaustive), up4.p4 (95% —
the meter RED path needs control-plane meter support), switch.p4 on
tna (coverage plateaus well below 100% within any practical test cap
because paths explode).  We regenerate the same three rows on our
corpus analogues and assert the coverage *ordering*:

    middleblock (100%)  >  up4 (<100%, >=85%)  >  switch (partial)

Each row now runs three times — defaults, query elision off, and term
interning off — so the report doubles as the acceptance measurement
for both solver-avoidance layers: the ablation passes reproduce the
pre-optimization code paths on the same machine, per-row tests and
coverage must be identical in all three (neither layer may change what
comes out), and the default pass must finish the campaign faster.
A separate tracemalloc pass on the first row records allocation peaks
(tracemalloc distorts timing, so it never wraps a timed row).
"""

import time

from _util import RESULTS_DIR, once, peak_rss_mb, report, traced_peak_mb

from repro import TestGen, TestGenConfig, load_program
from repro.report import cache_rates
from repro.report.bench import append_point
from repro.targets import get_target

ROWS = [
    ("middleblock", "v1model", None),     # exhaustive
    ("up4", "v1model", None),             # exhaustive
    ("switch_lite", "tna", 80),           # capped (explodes)
]


def _row(name, target_name, cap, *, elide=True, intern=True):
    config = TestGenConfig(seed=1, max_tests=cap, elide=elide, intern=intern)
    gen = TestGen(load_program(name), target=get_target(target_name),
                  config=config)
    t0 = time.perf_counter()
    result = gen.run()
    elapsed = time.perf_counter() - t0
    stats = result.stats
    return {
        "name": name,
        "arch": target_name,
        "tests": len(result.tests),
        "time_s": elapsed,
        "coverage": result.statement_coverage,
        "curve": gen.last_run.coverage.curve(),
        "cache_rates": cache_rates(stats.as_dict()),
        "blocked": stats.tests_blocked,
        "checks": stats.solver_checks,
        "sat_solves": stats.sat_solves,
        "feas_checks": stats.feasibility_checks,
        "feas_elided": stats.feasibility_elided,
        "intern_hits": stats.intern_hits,
        "intern_misses": stats.intern_misses,
        "blast_hits": stats.blast_cache_hits,
        "blast_misses": stats.blast_cache_misses,
        "rss_mb": peak_rss_mb(),
    }


def test_tbl4a_large_programs(benchmark):
    def run():
        out = {
            "on": [_row(*spec) for spec in ROWS],
            "elide_off": [_row(*spec, elide=False) for spec in ROWS],
            "intern_off": [_row(*spec, intern=False) for spec in ROWS],
        }
        # Memory pass (first row only): tracemalloc halves throughput,
        # so it gets its own untimed runs.
        _, out["traced_on_mb"] = traced_peak_mb(lambda: _row(*ROWS[0]))
        _, out["traced_off_mb"] = traced_peak_mb(
            lambda: _row(*ROWS[0], intern=False))
        return out

    rows = once(benchmark, run)
    lines = [
        "| P4 program    | Arch.   | Valid tests | Time (on) | "
        "Time (-elide) | Time (-intern) | Stmt. cov. | Feas. elided | "
        "Blast hits | Peak RSS |"
    ]
    for r_on, r_noel, r_noint in zip(rows["on"], rows["elide_off"],
                                     rows["intern_off"]):
        cap_note = "" if r_on["name"] != "switch_lite" else " (capped)"
        frac = (100.0 * r_on["feas_elided"] / r_on["feas_checks"]
                if r_on["feas_checks"] else 0.0)
        blasts = r_on["blast_hits"] + r_on["blast_misses"]
        brate = 100.0 * r_on["blast_hits"] / blasts if blasts else 0.0
        lines.append(
            f"| {r_on['name']:13s} | {r_on['arch']:7s} | "
            f"{r_on['tests']:11d} | {r_on['time_s']:8.1f}s | "
            f"{r_noel['time_s']:12.1f}s | {r_noint['time_s']:13.1f}s | "
            f"{r_on['coverage']:9.1f}% | "
            f"{r_on['feas_elided']:5d}/{r_on['feas_checks']:<5d} "
            f"({frac:4.1f}%) | {r_on['blast_hits']:5d} ({brate:4.1f}%) | "
            f"{r_on['rss_mb']:6.1f}M |{cap_note}"
        )
    wall_on = sum(r["time_s"] for r in rows["on"])
    wall_noel = sum(r["time_s"] for r in rows["elide_off"])
    wall_noint = sum(r["time_s"] for r in rows["intern_off"])
    feas_checks = sum(r["feas_checks"] for r in rows["on"])
    feas_elided = sum(r["feas_elided"] for r in rows["on"])
    intern_hits = sum(r["intern_hits"] for r in rows["on"])
    intern_total = intern_hits + sum(r["intern_misses"] for r in rows["on"])
    fraction = feas_elided / feas_checks if feas_checks else 0.0
    lines.append("")
    lines.append(
        f"query elision: {feas_elided}/{feas_checks} incremental "
        f"feasibility checks answered without a SAT solve "
        f"({100.0 * fraction:.1f}%)"
    )
    lines.append(
        f"interning: {intern_hits}/{intern_total} constructions pooled "
        f"({100.0 * intern_hits / intern_total if intern_total else 0.0:.1f}%); "
        f"end-to-end wall {wall_on:.2f}s (defaults) vs "
        f"{wall_noel:.2f}s (no elide) vs {wall_noint:.2f}s (no intern)"
    )
    lines.append(
        f"tracemalloc peak, {ROWS[0][0]} row: {rows['traced_on_mb']:.1f} MiB "
        f"(intern on) vs {rows['traced_off_mb']:.1f} MiB (intern off); "
        f"process peak RSS {peak_rss_mb():.1f} MiB"
    )
    lines.append("")
    lines.append("paper: middleblock 100%, up4 95% (meter RED uncoverable),")
    lines.append("switch.p4 41% at the 1M-test cap — same ordering expected.")
    report("tbl4a_large_programs", lines)

    # Append the run to the BENCH trajectory (schema-validated): one
    # point per invocation, with the coverage curve and cache rates
    # per row — the longitudinal record ``repro bench`` also feeds.
    append_point(RESULTS_DIR, "tbl4a", {
        "label": "tbl4a",
        "timestamp_s": round(time.time(), 3),
        "seed": 1,
        "phase_times_s": {"oracle": round(wall_on, 6)},
        "cache_rates": cache_rates({
            "feasibility_checks": feas_checks,
            "feasibility_elided": feas_elided,
            "intern_hits": intern_hits,
            "intern_misses": intern_total - intern_hits,
            "blast_cache_hits": sum(r["blast_hits"] for r in rows["on"]),
            "blast_cache_misses": sum(r["blast_misses"]
                                      for r in rows["on"]),
        }),
        "rows": [
            {
                "program": r["name"],
                "target": r["arch"],
                "num_tests": r["tests"],
                "statement_coverage": round(r["coverage"], 4),
                "coverage_curve": r["curve"],
                "cache_rates": r["cache_rates"],
                "wall_s": round(r["time_s"], 6),
            }
            for r in rows["on"]
        ],
        "fuzz": None,
    })

    mb, up4, switch = rows["on"]
    assert mb["coverage"] == 100.0
    assert 85.0 <= up4["coverage"] < 100.0, (
        "up4 should stall below 100% on the meter RED branch"
    )
    assert switch["coverage"] < 100.0, (
        "switch_lite must not be exhaustible within the cap"
    )
    assert mb["tests"] > 100
    # Neither ablation may change what comes out — only how fast.
    for r_on, r_noel, r_noint in zip(rows["on"], rows["elide_off"],
                                     rows["intern_off"]):
        assert r_on["tests"] == r_noel["tests"] == r_noint["tests"]
        assert r_on["coverage"] == r_noel["coverage"] == r_noint["coverage"]
    # The PR-3 acceptance bar: >=40% of incremental feasibility checks
    # elided, and the whole campaign faster than the elide-off baseline.
    assert fraction >= 0.40, (
        f"only {100.0 * fraction:.1f}% of feasibility checks elided"
    )
    assert wall_on < wall_noel, (
        f"elision must pay for itself: {wall_on:.2f}s vs {wall_noel:.2f}s"
    )
    # The PR-5 acceptance bar: hash-consing + the shared blast cache
    # beat the intern-off baseline on aggregate wall-clock, with a
    # live blast cache on every row.
    assert wall_on < wall_noint, (
        f"interning must pay for itself: {wall_on:.2f}s vs {wall_noint:.2f}s"
    )
    for r_on in rows["on"]:
        assert r_on["blast_hits"] > 0, f"blast cache dead on {r_on['name']}"
