"""Table 4a: oracle statistics for the large representative programs.

Paper rows: middleblock.p4 (100% coverage, exhaustive), up4.p4 (95% —
the meter RED path needs control-plane meter support), switch.p4 on
tna (coverage plateaus well below 100% within any practical test cap
because paths explode).  We regenerate the same three rows on our
corpus analogues and assert the coverage *ordering*:

    middleblock (100%)  >  up4 (<100%, >=85%)  >  switch (partial)

Each row now runs twice — query elision on (default) and off — so the
report doubles as the elision-pipeline acceptance measurement: the
elide-off pass reproduces the pre-elision code path on the same
machine, and the elide-on pass must answer a healthy fraction of the
incremental feasibility checks without a SAT solve *and* finish the
whole campaign faster.
"""

import time

from _util import once, report

from repro import TestGen, TestGenConfig, load_program
from repro.targets import get_target

ROWS = [
    ("middleblock", "v1model", None),     # exhaustive
    ("up4", "v1model", None),             # exhaustive
    ("switch_lite", "tna", 80),           # capped (explodes)
]


def _row(name, target_name, cap, elide):
    config = TestGenConfig(seed=1, max_tests=cap, elide=elide)
    gen = TestGen(load_program(name), target=get_target(target_name),
                  config=config)
    t0 = time.perf_counter()
    result = gen.run()
    elapsed = time.perf_counter() - t0
    stats = result.stats
    return {
        "name": name,
        "arch": target_name,
        "tests": len(result.tests),
        "time_s": elapsed,
        "coverage": result.statement_coverage,
        "blocked": stats.tests_blocked,
        "checks": stats.solver_checks,
        "sat_solves": stats.sat_solves,
        "feas_checks": stats.feasibility_checks,
        "feas_elided": stats.feasibility_elided,
    }


def test_tbl4a_large_programs(benchmark):
    def run():
        return {
            "on": [_row(*spec, elide=True) for spec in ROWS],
            "off": [_row(*spec, elide=False) for spec in ROWS],
        }

    rows = once(benchmark, run)
    lines = [
        "| P4 program    | Arch.   | Valid tests | Time (elide) | "
        "Time (off) | Stmt. cov. | Feas. elided |"
    ]
    for r_on, r_off in zip(rows["on"], rows["off"]):
        cap_note = "" if r_on["name"] != "switch_lite" else " (capped)"
        frac = (100.0 * r_on["feas_elided"] / r_on["feas_checks"]
                if r_on["feas_checks"] else 0.0)
        lines.append(
            f"| {r_on['name']:13s} | {r_on['arch']:7s} | "
            f"{r_on['tests']:11d} | {r_on['time_s']:11.1f}s | "
            f"{r_off['time_s']:9.1f}s | {r_on['coverage']:9.1f}% | "
            f"{r_on['feas_elided']:5d}/{r_on['feas_checks']:<5d} "
            f"({frac:4.1f}%) |{cap_note}"
        )
    wall_on = sum(r["time_s"] for r in rows["on"])
    wall_off = sum(r["time_s"] for r in rows["off"])
    feas_checks = sum(r["feas_checks"] for r in rows["on"])
    feas_elided = sum(r["feas_elided"] for r in rows["on"])
    fraction = feas_elided / feas_checks if feas_checks else 0.0
    lines.append("")
    lines.append(
        f"query elision: {feas_elided}/{feas_checks} incremental "
        f"feasibility checks answered without a SAT solve "
        f"({100.0 * fraction:.1f}%); end-to-end wall "
        f"{wall_on:.2f}s (elide on) vs {wall_off:.2f}s (elide off)"
    )
    lines.append("")
    lines.append("paper: middleblock 100%, up4 95% (meter RED uncoverable),")
    lines.append("switch.p4 41% at the 1M-test cap — same ordering expected.")
    report("tbl4a_large_programs", lines)

    mb, up4, switch = rows["on"]
    assert mb["coverage"] == 100.0
    assert 85.0 <= up4["coverage"] < 100.0, (
        "up4 should stall below 100% on the meter RED branch"
    )
    assert switch["coverage"] < 100.0, (
        "switch_lite must not be exhaustible within the cap"
    )
    assert mb["tests"] > 100
    # Elision changes how answers are found, never which tests come out.
    for r_on, r_off in zip(rows["on"], rows["off"]):
        assert r_on["tests"] == r_off["tests"]
        assert r_on["coverage"] == r_off["coverage"]
    # The PR-3 acceptance bar: >=40% of incremental feasibility checks
    # elided, and the whole campaign faster than the elide-off baseline.
    assert fraction >= 0.40, (
        f"only {100.0 * fraction:.1f}% of feasibility checks elided"
    )
    assert wall_on < wall_off, (
        f"elision must pay for itself: {wall_on:.2f}s vs {wall_off:.2f}s"
    )
