"""Parallel test-generation engine.

Layers on top of the sequential oracle:

- :class:`Engine` / :func:`generate_suite` — batch orchestration of
  many ``(program, target)`` jobs across a process pool, results
  streamed in submission order.
- :class:`ProgramRun` — single-program driver that shards the
  exploration tree across workers by branch prefix and merges the
  results back into exact sequential DFS order
  (:mod:`repro.engine.sharding`), so a fixed seed yields byte-identical
  suites regardless of ``jobs``.
- :mod:`repro.engine.worker` — picklable worker entry points.

Determinism rests on two pillars in lower layers: canonical cached
solving (:mod:`repro.smt.cache`) and scoped fresh-name minting
(:class:`repro.symex.value.MintScope`).
"""

from .orchestrator import Engine, EngineJob, EngineResult, ProgramRun, generate_suite
from .sharding import dfs_order_key, merged_test_stream, ordered_entries

__all__ = [
    "Engine",
    "EngineJob",
    "EngineResult",
    "ProgramRun",
    "generate_suite",
    "dfs_order_key",
    "merged_test_stream",
    "ordered_entries",
]
