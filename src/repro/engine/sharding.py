"""Deterministic split/merge machinery for parallel exploration.

The hard requirement (ISSUE: "a fixed seed yields byte-identical suites
regardless of ``jobs``") splits into two halves:

- **Content determinism** is handled below the engine: canonical
  solving (:mod:`repro.smt.cache`) makes models history-independent and
  :class:`repro.symex.value.MintScope` makes fresh names a pure
  function of the branch path, so a path finalizes to the same test
  bytes in any process.
- **Order determinism** is handled here.  Sequential DFS emits paths
  in a specific interleaving: at each branch iteration, successors that
  finish *immediately* are emitted first in ascending choice order,
  then the surviving successors are explored last-in-first-out, i.e.
  in *descending* choice order.  :func:`dfs_order_key` encodes exactly
  that recursion as a sort key over (choice path, immediate) pairs, so
  split-phase events and shard subtrees can be discovered in any order
  (the splitter expands breadth-first for balance) and still be merged
  back into the sequential stream.

Stop limits (``max_tests``/``max_paths``/``stop_at_full_coverage``) are
checked by the sequential loop at iteration boundaries;
:func:`merged_test_stream` replays the same checks per merged block, so
truncation lands on exactly the same test as ``jobs=1``.
"""

from __future__ import annotations

__all__ = ["dfs_order_key", "ordered_entries", "merged_test_stream"]


def dfs_order_key(path: tuple[int, ...], immediate: bool) -> tuple:
    """Sort key reproducing sequential DFS emission order.

    At every branch level, immediate finishers sort before sibling
    subtrees and among themselves ascending; subtrees sort descending
    (the DFS stack pops the highest choice first).  ``immediate`` only
    qualifies the final path element — inner elements are by definition
    subtree hops.
    """
    last = len(path) - 1
    return tuple(
        (0, c) if (immediate and d == last) else (1, -c)
        for d, c in enumerate(path)
    )


def ordered_entries(event_log, prefixes: list[tuple[int, ...]]) -> list:
    """Interleave split-phase events and shard prefixes into sequential
    DFS order.

    ``event_log`` is the splitter Explorer's ``IterationRecord`` list;
    ``prefixes`` the frontier choice-path prefixes handed to workers.
    Returns entries in emission order, each either
    ``("block", n_finished, [tests...])`` (one split iteration) or
    ``("shard", index)``.  Events of one iteration always sort
    adjacently (they share a branch parent), so coalescing consecutive
    same-iteration events loses nothing.
    """
    items = []
    for rec in event_log:
        for ev in rec.events:
            items.append(
                (dfs_order_key(ev.choice_path, ev.immediate), 0, rec.iter_id, ev)
            )
    for idx, prefix in enumerate(prefixes):
        items.append((dfs_order_key(prefix, False), 1, idx, None))
    items.sort(key=lambda item: item[0])

    entries: list = []
    for _key, kind, ref, ev in items:
        if kind == 1:
            entries.append(("shard", ref))
        elif entries and entries[-1][0] == "block" and entries[-1][3] == ref:
            entries[-1][1][0] += 1
            if ev.test is not None:
                entries[-1][2].append(ev.test)
        else:
            entries.append(
                ["block", [1], [ev.test] if ev.test is not None else [], ref]
            )
    # Normalize block entries to plain tuples.
    return [
        ("block", e[1][0], e[2]) if e[0] == "block" else e
        for e in entries
    ]


def merged_test_stream(blocks, config, coverage):
    """Walk ``(n_finished, tests)`` blocks in sequential order, applying
    the sequential loop-top stop limits; renumbers ``test_id`` in merge
    order and records coverage.  Yields tests.

    ``blocks`` must arrive in sequential-iteration order (one block per
    iteration that finished at least one path); limits never fire in
    the middle of a block, matching the sequential loop which only
    checks at the top of each iteration.
    """
    emitted = 0
    finished = 0
    for n_finished, tests in blocks:
        if config.max_tests is not None and emitted >= config.max_tests:
            break
        if config.max_paths is not None and finished >= config.max_paths:
            break
        if config.stop_at_full_coverage and coverage.fully_covered:
            break
        if (config.coverage_goal is not None
                and coverage.statement_percent >= config.coverage_goal):
            break
        finished += n_finished
        for test in tests:
            emitted += 1
            test.test_id = emitted
            coverage.record(test.covered_statements)
            yield test
