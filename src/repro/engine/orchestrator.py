"""Batch/stream orchestration of test generation (the engine proper).

Two axes of parallelism, both deterministic:

- **Cross-program**: :class:`Engine` accepts many ``(program, target)``
  submissions and farms each complete job to a worker process.  Results
  stream back in submission order.
- **Intra-program**: a single program's exploration tree is split into
  branch-prefix shards (:meth:`Explorer.split_frontier`), workers
  explore subtrees independently, and :mod:`repro.engine.sharding`
  merges the finished paths back into exact sequential DFS order.  With
  a fixed seed the merged suite is byte-identical to ``jobs=1``.

``ProgramRun`` is the single-program driver used by both
:meth:`Engine.iter_results` and :meth:`repro.TestGen.iter_tests`; it
owns the merged coverage tracker and aggregated stats for the run.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field

from ..config import TestGenConfig
from ..ir.nodes import IrProgram
from ..symex.coverage import CoverageTracker
from ..symex.explorer import ExplorationStats, Explorer
from ..targets.base import TargetExtension
from .sharding import merged_test_stream, ordered_entries
from .worker import run_program, run_shard

__all__ = ["Engine", "EngineJob", "EngineResult", "ProgramRun", "generate_suite"]

# Aim for several shards per worker so stragglers interleave, without
# splitting so deep that replay overhead dominates.
SPLIT_FACTOR = 4
SPLIT_MAX_ITERS = 4096


def _format_error(exc: BaseException) -> str:
    import traceback

    return "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()


def _validate_parallel(config: TestGenConfig) -> None:
    """Reject configs that cannot *shard one program* across processes.

    Only :class:`ProgramRun` enforces this: cross-program batches run
    each whole program sequentially inside its worker (``jobs=1``
    there), so any strategy — and uncached solving — stays deterministic
    on that path.
    """
    if config.jobs > 1 and config.strategy != "dfs":
        raise ValueError(
            f"strategy {config.strategy!r} draws from a shared RNG and cannot "
            "be sharded across processes; use strategy='dfs' with jobs>1 "
            "(cross-program batches may still use any strategy)"
        )
    if config.jobs > 1 and not config.solve_cache:
        raise ValueError(
            "jobs>1 requires solve_cache=True: canonical cached solving is "
            "what makes models identical across processes"
        )


class ProgramRun:
    """One program's generation run — sequential or sharded.

    Iterate :meth:`iter_tests` to stream tests; ``coverage`` and
    ``stats`` are complete once the iterator is exhausted.
    """

    def __init__(self, program: IrProgram, target: TargetExtension,
                 config: TestGenConfig):
        _validate_parallel(config)
        self.program = program
        self.target = target
        self.config = config
        self.coverage = CoverageTracker(program)
        self.stats = ExplorationStats()
        self.explorer: Explorer | None = None

    def iter_tests(self):
        if self.config.jobs <= 1:
            yield from self._iter_sequential()
        else:
            yield from self._iter_sharded()

    def _iter_sequential(self):
        explorer = Explorer(self.program, self.target, config=self.config)
        self.explorer = explorer
        self.coverage = explorer.coverage
        self.stats = explorer.stats
        yield from explorer.run()

    def _iter_sharded(self):
        from concurrent.futures import ProcessPoolExecutor

        config = self.config
        worker_config = config.replace(jobs=1)
        splitter = Explorer(self.program, self.target, config=worker_config)
        self.explorer = splitter
        states, _exhausted = splitter.split_frontier(
            config.jobs * SPLIT_FACTOR, SPLIT_MAX_ITERS
        )
        prefixes = [s.choice_path for s in states]
        self.stats.absorb(splitter.stats.as_dict())
        entries = ordered_entries(splitter.event_log, prefixes)

        if not prefixes:
            # The split phase exhausted the whole tree; no pool needed.
            yield from merged_test_stream(
                self._entry_blocks(entries, {}), config, self.coverage
            )
            return

        program_blob = pickle.dumps(self.program)
        target_blob = pickle.dumps(self.target)
        config_dict = worker_config.as_dict()
        pool = ProcessPoolExecutor(max_workers=config.jobs)
        try:
            futures = {
                idx: pool.submit(run_shard, {
                    "index": idx,
                    "prefix": list(prefix),
                    "program_blob": program_blob,
                    "target_blob": target_blob,
                    "config": config_dict,
                })
                for idx, prefix in enumerate(prefixes)
            }
            yield from merged_test_stream(
                self._entry_blocks(entries, futures), config, self.coverage
            )
        finally:
            # Early truncation leaves shard futures unconsumed; drop the
            # queued ones instead of exploring subtrees nobody will read.
            pool.shutdown(wait=True, cancel_futures=True)

    def _entry_blocks(self, entries, futures):
        """Flatten ordered entries into ``(n_finished, tests)`` blocks,
        pulling each shard's result when the merge walk reaches it."""
        for entry in entries:
            if entry[0] == "shard":
                result = futures[entry[1]].result()
                self.stats.absorb(result["stats"])
                yield from result["blocks"]
            else:
                yield entry[1], entry[2]


@dataclass
class EngineJob:
    index: int
    program: IrProgram
    target: TargetExtension
    config: TestGenConfig


@dataclass
class EngineResult:
    """The outcome of one submitted generation job.

    ``error`` is only ever set on engines constructed with
    ``capture_errors=True``; it holds the formatted exception from the
    failed job, and ``tests``/``coverage``/``stats`` are empty.
    """

    index: int
    program: str
    target: str
    tests: list = field(default_factory=list)
    coverage: object = None
    stats: object = None
    elapsed: float = 0.0
    error: str | None = None

    @property
    def statement_coverage(self) -> float:
        return self.coverage.statement_percent

    def coverage_report(self) -> str:
        return self.coverage.report()

    def emit(self, backend: str = "stf") -> str:
        from ..testback import get_backend

        return get_backend(backend).render_suite(self.tests)


class Engine:
    """Submit generation jobs; iterate results in submission order.

    ::

        engine = Engine(jobs=4)
        engine.submit("middleblock", "v1model")
        engine.submit("tunnel", "v1model", config=TestGenConfig(seed=7))
        for result in engine.iter_results():
            print(result.program, len(result.tests))

    With several submissions the pool runs one whole program per
    worker; with a single submission the program itself is sharded
    across workers.  Either way, a fixed seed produces byte-identical
    suites for any ``jobs``.
    """

    def __init__(self, jobs: int | None = None,
                 config: TestGenConfig | None = None,
                 capture_errors: bool = False):
        base = config if config is not None else TestGenConfig()
        if jobs is not None:
            base = base.replace(jobs=max(1, int(jobs)))
        # No parallel validation here: a multi-submission batch runs
        # every job sequentially in its worker, where any strategy is
        # deterministic.  A *single* submission at jobs>1 shards the
        # program, and ProgramRun rejects unshardable configs then.
        self.config = base
        # With capture_errors=True a job that raises yields an
        # EngineResult with ``error`` set instead of aborting the whole
        # batch — fuzz campaigns classify per-program oracle crashes.
        self.capture_errors = capture_errors
        self._jobs: list[EngineJob] = []

    @property
    def jobs(self) -> int:
        return self.config.jobs

    def submit(self, program, target, config: TestGenConfig | None = None) -> int:
        """Queue one generation job; returns its index.  ``program`` may
        be an IrProgram, corpus name, path, or source text; ``target`` a
        TargetExtension or registered target name."""
        if isinstance(program, str):
            from ..oracle.testgen import load_program

            program = load_program(program)
        if isinstance(target, str):
            from ..targets import get_target

            target = get_target(target)
        job_config = config if config is not None else self.config
        job = EngineJob(len(self._jobs), program, target, job_config)
        self._jobs.append(job)
        return job.index

    def run(self) -> list[EngineResult]:
        """Run every submitted job; returns results in submission order."""
        return list(self.iter_results())

    def iter_results(self):
        """Yield an :class:`EngineResult` per submission, in submission
        order, as each completes."""
        if self.config.jobs <= 1 or len(self._jobs) <= 1:
            for job in self._jobs:
                yield self._run_inline(job)
            return
        yield from self._iter_batch()

    def _run_inline(self, job: EngineJob) -> EngineResult:
        t0 = time.perf_counter()
        try:
            run = ProgramRun(job.program, job.target, job.config)
            tests = list(run.iter_tests())
        except Exception as exc:
            if not self.capture_errors:
                raise
            return EngineResult(
                index=job.index,
                program=job.program.source_name,
                target=job.target.name,
                elapsed=time.perf_counter() - t0,
                error=_format_error(exc),
            )
        return EngineResult(
            index=job.index,
            program=job.program.source_name,
            target=job.target.name,
            tests=tests,
            coverage=run.coverage,
            stats=run.stats,
            elapsed=time.perf_counter() - t0,
        )

    def _iter_batch(self):
        from concurrent.futures import ProcessPoolExecutor

        t0 = time.perf_counter()
        workers = min(self.config.jobs, len(self._jobs))
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = [
                pool.submit(run_program, {
                    "index": job.index,
                    "program_blob": pickle.dumps(job.program),
                    "target_blob": pickle.dumps(job.target),
                    "config": job.config.replace(jobs=1).as_dict(),
                    "capture_errors": self.capture_errors,
                })
                for job in self._jobs
            ]
            for job, future in zip(self._jobs, futures):
                try:
                    result = future.result()
                except Exception as exc:
                    # Backstop for failures the worker could not wrap
                    # itself (e.g. an unpicklable result object).
                    if not self.capture_errors:
                        raise
                    result = {"error": _format_error(exc)}
                if result.get("error") is not None:
                    yield EngineResult(
                        index=job.index,
                        program=job.program.source_name,
                        target=job.target.name,
                        elapsed=time.perf_counter() - t0,
                        error=result["error"],
                    )
                    continue
                coverage = CoverageTracker(job.program)
                for test in result["tests"]:
                    coverage.record(test.covered_statements)
                stats = ExplorationStats()
                stats.absorb(result["stats"])
                yield EngineResult(
                    index=job.index,
                    program=job.program.source_name,
                    target=job.target.name,
                    tests=result["tests"],
                    coverage=coverage,
                    stats=stats,
                    elapsed=time.perf_counter() - t0,
                )
        finally:
            pool.shutdown(wait=True, cancel_futures=True)


def generate_suite(pairs, *, jobs: int = 1,
                   config: TestGenConfig | None = None) -> list[EngineResult]:
    """Batch convenience: run every ``(program, target)`` pair and return
    their results in order.

    ::

        results = generate_suite(
            [("fig1a", "v1model"), ("tunnel", "v1model")], jobs=4
        )
    """
    engine = Engine(jobs=jobs, config=config)
    for program, target in pairs:
        engine.submit(program, target)
    return engine.run()
