"""Worker-process entry points for the parallel engine.

Both entry points are module-level functions taking one picklable
``payload`` dict, so they cross the ``multiprocessing`` boundary under
any start method.  Programs travel as pre-pickled blobs: the parent
pickles the *lowered* :class:`~repro.ir.nodes.IrProgram` once (so
``stmt_id`` assignment — a process-global counter at lowering time —
happens exactly once, in the parent) and every worker unpickles the
identical object graph.  A per-process blob cache avoids re-unpickling
when one worker serves several shards of the same program.
"""

from __future__ import annotations

import hashlib
import pickle

__all__ = ["run_shard", "run_program"]

_PROGRAM_CACHE: dict[bytes, object] = {}


def _program_from_blob(blob: bytes):
    key = hashlib.sha1(blob).digest()
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        program = pickle.loads(blob)
        _PROGRAM_CACHE[key] = program
    return program


def run_shard(payload: dict) -> dict:
    """Explore one subtree of a program, identified by a branch-choice
    prefix, and return its finished paths grouped by iteration.

    Returns ``{"index", "blocks", "stats"}`` where ``blocks`` is a list
    of ``(n_finished, [tests...])`` pairs in the shard's own sequential
    DFS order — ready for :func:`repro.engine.sharding.merged_test_stream`.
    """
    from ..config import TestGenConfig
    from ..symex.explorer import Explorer

    program = _program_from_blob(payload["program_blob"])
    target = pickle.loads(payload["target_blob"])
    config = TestGenConfig.from_dict(payload["config"])
    explorer = Explorer(program, target, config=config)
    try:
        for _ in explorer.run_prefix(tuple(payload["prefix"])):
            pass
    finally:
        explorer.close()
    blocks = [
        (len(rec.events), [ev.test for ev in rec.events if ev.test is not None])
        for rec in explorer.event_log
    ]
    return {
        "index": payload["index"],
        "blocks": blocks,
        "stats": explorer.stats.as_dict(),
    }


def run_program(payload: dict) -> dict:
    """Run a complete sequential generation job for one program (used by
    cross-program batch parallelism).

    With ``payload["capture_errors"]`` set, an exception anywhere in the
    job comes back as ``{"index", "error"}`` instead of propagating —
    the traceback is formatted worker-side so nothing unpicklable has to
    cross the process boundary.
    """
    from ..config import TestGenConfig
    from ..symex.explorer import Explorer

    try:
        program = _program_from_blob(payload["program_blob"])
        target = pickle.loads(payload["target_blob"])
        config = TestGenConfig.from_dict(payload["config"])
        explorer = Explorer(program, target, config=config)
        try:
            tests = list(explorer.run())
        finally:
            explorer.close()
    except Exception as exc:
        if not payload.get("capture_errors"):
            raise
        import traceback

        detail = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        return {"index": payload["index"], "error": detail}
    return {
        "index": payload["index"],
        "tests": tests,
        "stats": explorer.stats.as_dict(),
    }
