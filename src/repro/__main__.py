"""Command-line interface: ``python -m repro``.

Mirrors the p4testgen binary's surface::

    python -m repro generate fig1a --target v1model --max-tests 10 \\
        --test-backend stf --seed 1 [--out tests.stf] [--jobs 4]
    python -m repro run fig1a --target v1model --seed 1
    python -m repro fuzz --seed 0 --count 25 [--steer] [--mutate-fraction P]
    python -m repro bench --label main [--quick]
    python -m repro list-programs
    python -m repro list-targets

``generate`` streams tests as paths finalize (both to stdout and to
``--out``); ``--jobs N`` shards the exploration across N worker
processes while keeping the output byte-identical to ``--jobs 1``.
"""

from __future__ import annotations

import argparse
import sys

from . import TestGen, TestGenConfig, load_program
from .programs import list_programs
from .report import Recorder
from .targets import TARGETS, Preconditions, get_target
from .testback import BACKENDS, SuiteWriter, get_backend


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="P4Testgen reproduction: generate input/output tests "
                    "for P4-16 programs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate tests for a program")
    gen.add_argument("program", help="corpus name, .p4 path, or '-' for stdin")
    gen.add_argument("--target", default="v1model", choices=sorted(TARGETS))
    gen.add_argument("--test-backend", default="stf",
                     choices=sorted(BACKENDS))
    gen.add_argument("--max-tests", type=int, default=10,
                     help="0 = exhaustive")
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("--strategy", default="dfs",
                     choices=["dfs", "random", "greedy"])
    gen.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes; output is byte-identical "
                          "to --jobs 1 for any N")
    gen.add_argument("--no-solve-cache", action="store_true",
                     help="disable solver-query caching (ablation; "
                          "incompatible with --jobs > 1)")
    gen.add_argument("--no-elide", action="store_true",
                     help="disable the solver query-elision pipeline "
                          "(ablation; answers and tests are identical "
                          "either way)")
    gen.add_argument("--no-intern", action="store_true",
                     help="disable hash-consed term interning and the "
                          "shared bit-blast cache (ablation; emitted "
                          "suites are byte-identical either way)")
    gen.add_argument("--no-incremental", action="store_true",
                     help="solve every feasibility check one-shot "
                          "instead of riding the incremental clause "
                          "database (escape hatch/ablation; emitted "
                          "suites are byte-identical either way)")
    gen.add_argument("--solver", default="native", metavar="NAME",
                     help="primary solver backend (default: native; see "
                          "repro.smt.backends.register_solver)")
    gen.add_argument("--portfolio", default="", metavar="NAMES",
                     help="comma-separated external backends raced "
                          "against the native search on hard queries; "
                          "emitted suites are byte-identical with or "
                          "without a portfolio")
    gen.add_argument("--solver-crosscheck", action="store_true",
                     help="differentially validate a sample of SAT "
                          "answers (model verification plus re-solving "
                          "on a second backend when one is configured)")
    gen.add_argument("--intern-stats", action="store_true",
                     help="print intern-pool / blast-cache / COW-state "
                          "counters to stderr after the run")
    gen.add_argument("--stats-json", default=None, metavar="PATH",
                     help="write the run report (phase times, coverage "
                          "curve, cache hit rates, solver stats) as "
                          "schema-validated JSON")
    gen.add_argument("--fixed-packet-size", type=int, default=None,
                     metavar="BYTES")
    gen.add_argument("--p4constraints", action="store_true")
    gen.add_argument("--stop-at-full-coverage", action="store_true")
    gen.add_argument("--coverage-goal", type=float, default=None,
                     metavar="PCT",
                     help="stop once statement coverage reaches PCT "
                          "(checked at test boundaries; deterministic "
                          "for any --jobs value)")
    gen.add_argument("--randomize-values", action="store_true",
                     help="prefer random control-plane values (§3)")
    gen.add_argument("--out", default=None, help="write tests to a file")

    run = sub.add_parser(
        "run", help="generate tests and replay them on the software model"
    )
    run.add_argument("program")
    run.add_argument("--target", default="v1model", choices=sorted(TARGETS))
    run.add_argument("--max-tests", type=int, default=10)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--batch-replay", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="replay the suite through the lane-packed "
                          "batch interpreter (--no-batch-replay forces "
                          "one scalar simulator per test)")

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random programs, oracle vs. simulator",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="first generator seed (case i uses seed+i)")
    fuzz.add_argument("--count", type=int, default=25,
                      help="number of random programs to generate")
    fuzz.add_argument("--targets", default="v1model,ebpf_model",
                      help="comma-separated targets to round-robin "
                           "(v1model, ebpf_model, tna, t2na)")
    fuzz.add_argument("--corpus", default="fuzz-corpus", metavar="DIR",
                      help="directory for shrunken reproducers")
    fuzz.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="worker processes for the oracle phase")
    fuzz.add_argument("--max-tests", type=int, default=16,
                      help="oracle test budget per generated program")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="persist failing programs without reduction")
    fuzz.add_argument("--steer", action="store_true",
                      help="coverage-guided steering: weight grammar "
                           "choices toward IR constructs the campaign "
                           "has not yet exercised")
    fuzz.add_argument("--steer-batch", type=int, default=8, metavar="N",
                      help="cases per steering round (bias recomputed "
                           "between rounds)")
    fuzz.add_argument("--mutate-fraction", type=float, default=0.0,
                      metavar="P",
                      help="probability a case mutates a saved corpus "
                           "reproducer instead of generating fresh")
    fuzz.add_argument("--mutate-corpus", default=None, metavar="DIR",
                      help="reproducer pool for --mutate-fraction "
                           "(default: the --corpus directory)")
    fuzz.add_argument("--stats-json", default=None, metavar="PATH",
                      help="write the campaign run report (construct "
                           "coverage, per-case outcomes, solver stats) "
                           "as schema-validated JSON")
    fuzz.add_argument("--batch-replay", action=argparse.BooleanOptionalAction,
                      default=True,
                      help="replay generated suites through the "
                           "lane-packed batch interpreter "
                           "(--no-batch-replay forces scalar stepping)")
    fuzz.add_argument("--intern-stats", action="store_true",
                      help="print campaign-wide intern-pool / "
                           "blast-cache counters to stderr")

    bench = sub.add_parser(
        "bench",
        help="run the pinned benchmark set and append a trajectory point",
    )
    bench.add_argument("--label", default="main",
                       help="trajectory label (file BENCH_<label>.json)")
    bench.add_argument("--out-dir", default="benchmarks/results",
                       metavar="DIR")
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--fuzz-count", type=int, default=12,
                       help="fuzz smoke campaign size (0 disables)")
    bench.add_argument("--jobs", type=int, default=1, metavar="N")
    bench.add_argument("--quick", action="store_true",
                       help="bounded variant (capped rows, tiny fuzz "
                            "campaign) for smoke runs")

    sub.add_parser("list-programs", help="list the shipped P4 corpus")
    sub.add_parser("list-targets", help="list instantiated targets")
    return parser


def _load(program_arg: str):
    if program_arg == "-":
        return load_program(sys.stdin.read(), source_name="<stdin>")
    return load_program(program_arg)


def cmd_generate(args) -> int:
    program = _load(args.program)
    preconditions = Preconditions(
        fixed_packet_size_bytes=args.fixed_packet_size,
        p4constraints=args.p4constraints,
    )
    target = get_target(
        args.target,
        preconditions=preconditions,
        test_framework=args.test_backend,
    )
    config = TestGenConfig(
        seed=args.seed,
        strategy=args.strategy,
        randomize_values=args.randomize_values,
        max_tests=args.max_tests or None,
        stop_at_full_coverage=args.stop_at_full_coverage,
        coverage_goal=args.coverage_goal,
        jobs=args.jobs,
        solve_cache=not args.no_solve_cache,
        elide=not args.no_elide,
        intern=not args.no_intern,
        incremental=not args.no_incremental,
        solver=args.solver,
        portfolio=tuple(
            name.strip() for name in args.portfolio.split(",")
            if name.strip()),
        solver_crosscheck=args.solver_crosscheck,
    )
    oracle = TestGen(program, target=target, config=config)
    backend = get_backend(args.test_backend)
    recorder = Recorder("generate", seed=args.seed,
                        program=program.source_name, target=args.target,
                        config=config.as_dict())
    if args.out:
        with open(args.out, "w") as handle:
            writer = SuiteWriter(backend, handle)
            with recorder.phase("generate"):
                for test in oracle.iter_tests():
                    writer.write(test)
            writer.close()
        print(f"wrote {writer.count} tests to {args.out}")
    else:
        writer = SuiteWriter(backend, sys.stdout)
        with recorder.phase("generate"):
            for test in oracle.iter_tests():
                writer.write(test)
        writer.close()
        sys.stdout.write("\n")
    print(oracle.last_run.coverage.report(), file=sys.stderr)
    if args.intern_stats:
        _print_intern_stats(oracle.last_run.stats.as_dict())
    if args.stats_json:
        recorder.record_program_run(oracle.last_run,
                                    num_tests=writer.count)
        recorder.write(args.stats_json)
        print(f"wrote run report to {args.stats_json}", file=sys.stderr)
    return 0


def cmd_run(args) -> int:
    from .testback.runner import run_suite

    program = _load(args.program)
    target = get_target(args.target)
    config = TestGenConfig(seed=args.seed, max_tests=args.max_tests or None,
                           batch_replay=args.batch_replay)
    result = TestGen(program, target=target, config=config).run()
    passed, runs = run_suite(result.tests, program,
                             batch=config.batch_replay)
    for run in runs:
        status = "PASS" if run.passed else f"FAIL ({run.kind}: {run.detail})"
        print(f"test {run.test_id}: {status}")
    print(f"{passed}/{len(runs)} tests pass; "
          f"{result.statement_coverage:.1f}% statement coverage")
    return 0 if passed == len(runs) else 1


def cmd_fuzz(args) -> int:
    from .fuzz import FuzzCampaignConfig, run_fuzz_campaign

    config = FuzzCampaignConfig(
        seed=args.seed,
        count=args.count,
        targets=tuple(t.strip() for t in args.targets.split(",") if t.strip()),
        corpus_dir=args.corpus,
        jobs=args.jobs,
        max_tests=args.max_tests or None,
        shrink=not args.no_shrink,
        steer=args.steer,
        steer_batch=args.steer_batch,
        mutate_fraction=args.mutate_fraction,
        mutate_corpus=args.mutate_corpus,
        batch_replay=args.batch_replay,
    )

    def on_case(case):
        status = "pass" if case.passed else case.classification
        print(f"{case.name}: {status}"
              + (f" ({case.detail})" if not case.passed else ""),
              file=sys.stderr)

    recorder = Recorder("fuzz", seed=args.seed) if args.stats_json else None
    summary = run_fuzz_campaign(config, on_case=on_case, recorder=recorder)
    print(summary.report())
    if args.intern_stats:
        _print_intern_stats(summary.solver_stats())
    if recorder is not None:
        recorder.write(args.stats_json)
        print(f"wrote run report to {args.stats_json}", file=sys.stderr)
    return 0 if summary.num_failed == 0 else 1


def cmd_bench(args) -> int:
    from .report.bench import run_bench, trajectory_path

    point = run_bench(
        args.label, args.out_dir, seed=args.seed,
        fuzz_count=args.fuzz_count, jobs=args.jobs, quick=args.quick,
    )
    path = trajectory_path(args.out_dir, args.label)
    for row in point["rows"]:
        print(f"{row['program']:13s} {row['target']:10s} "
              f"{row['num_tests']:4d} tests  "
              f"{row['statement_coverage']:6.1f}% cov  "
              f"{row['wall_s']:7.2f}s")
    if point["fuzz"] is not None:
        cc = point["fuzz"]["construct_coverage"]
        print(f"fuzz smoke: {point['fuzz']['num_cases']} cases, "
              f"{point['fuzz']['num_failed']} findings, "
              f"{cc['covered']}/{cc['universe']} constructs "
              f"({cc['percent']:.1f}%)")
    print(f"appended trajectory point to {path}")
    return 0


def _print_intern_stats(stats: dict) -> None:
    """Debug view of the hash-consing layers (``--intern-stats``)."""
    hits = int(stats.get("intern_hits", 0))
    misses = int(stats.get("intern_misses", 0))
    total = hits + misses
    rate = hits / total if total else 0.0
    print(f"intern pool: {hits} hits / {misses} misses "
          f"({rate:.1%} hit rate), {int(stats.get('intern_pool_size', 0))} "
          "live terms", file=sys.stderr)
    print(f"blast cache: {int(stats.get('blast_cache_hits', 0))} hits / "
          f"{int(stats.get('blast_cache_misses', 0))} misses, "
          f"{int(stats.get('blast_clauses_replayed', 0))} clauses replayed, "
          f"{stats.get('blast_time_saved_s', 0.0):.3f}s saved",
          file=sys.stderr)
    print(f"cow state: {int(stats.get('state_clones', 0))} clones, "
          f"{int(stats.get('path_cond_copies', 0))} path-cond copies, "
          f"{int(stats.get('frame_cow_copies', 0))} frame copies",
          file=sys.stderr)


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "generate":
        return cmd_generate(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "fuzz":
        return cmd_fuzz(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "list-programs":
        for name in list_programs():
            print(name)
        return 0
    if args.command == "list-targets":
        for name in sorted(TARGETS):
            print(name)
        return 0
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
