"""Shared plugin-registry helper.

The project grew three independent name → factory registries — test
back ends (:mod:`repro.testback`), simulators
(:mod:`repro.testback.runner`) and solver back ends
(:mod:`repro.smt.backends`) — each with its own duplicated lookup and
error-message code.  :class:`Registry` is the one implementation they
all share now: a mapping from names to factories with uniform
registration validation, duplicate-name protection, and unknown-name
errors that carry did-you-mean suggestions.

A :class:`Registry` behaves like a mutable mapping, so existing code
(and tests) that treated the registries as plain dicts —
``sorted(BACKENDS)``, ``"stf" in BACKENDS``, ``del BACKENDS[name]`` —
keeps working unchanged.

::

    SOLVERS = Registry("solver backend")
    SOLVERS.register("native", NativeBackend)
    SOLVERS.get("natiev")   # UnknownNameError: ... did you mean 'native'?
"""

from __future__ import annotations

import difflib
from collections.abc import MutableMapping

__all__ = ["Registry", "RegistryError", "UnknownNameError",
           "DuplicateNameError"]

_MISSING = object()


class RegistryError(Exception):
    """Base class for registry failures."""


class UnknownNameError(RegistryError, KeyError):
    """Lookup of a name that was never registered.

    Subclasses :class:`KeyError` so legacy ``except KeyError`` handlers
    (and tests asserting on them) keep working.
    """


class DuplicateNameError(RegistryError, ValueError):
    """Registration of a name that is already taken (without ``replace``)."""


class Registry(MutableMapping):
    """A name → factory mapping with validated registration.

    Args:
        kind: human-readable description of what is registered
            ("test back end", "simulator", "solver backend") — used in
            every error message.
        validator: optional ``validator(name, factory)`` hook run before
            insertion; raise ``TypeError``/``ValueError`` to reject.
    """

    def __init__(self, kind: str, *, validator=None, initial=None):
        self.kind = kind
        self._validator = validator
        self._entries: dict[str, object] = {}
        if initial:
            for name, factory in initial.items():
                self.register(name, factory)

    # -- registration ---------------------------------------------------

    def register(self, name: str, factory, *, replace: bool = False) -> None:
        """Register ``factory`` under ``name``.

        Raises :class:`DuplicateNameError` if the name is taken and
        ``replace`` is false, and whatever the validator raises for a
        malformed factory.  The registry is untouched on any failure.
        """
        if not isinstance(name, str) or not name:
            raise ValueError(
                f"{self.kind} name must be a non-empty string, got {name!r}")
        if self._validator is not None:
            self._validator(name, factory)
        if name in self._entries and not replace:
            raise DuplicateNameError(
                f"{self.kind} {name!r} is already registered; pass "
                f"replace=True to overwrite")
        self._entries[name] = factory

    def unregister(self, name: str) -> None:
        if name not in self._entries:
            raise self._unknown(name)
        del self._entries[name]

    # -- lookup ---------------------------------------------------------

    def get(self, name: str, default=_MISSING):
        """The factory registered under ``name``.

        Unlike ``dict.get`` this raises :class:`UnknownNameError` (with
        a did-you-mean suggestion) when the name is unknown and no
        ``default`` is supplied.
        """
        try:
            return self._entries[name]
        except KeyError:
            if default is not _MISSING:
                return default
            raise self._unknown(name) from None

    def create(self, name: str, *args, **kwargs):
        """Instantiate: ``registry.get(name)(*args, **kwargs)``."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> list[str]:
        return sorted(self._entries)

    def _unknown(self, name) -> UnknownNameError:
        known = ", ".join(sorted(self._entries)) or "none registered"
        hint = ""
        if isinstance(name, str) and self._entries:
            close = difflib.get_close_matches(name, self._entries, n=1,
                                              cutoff=0.6)
            if close:
                hint = f" — did you mean {close[0]!r}?"
        return UnknownNameError(
            f"unknown {self.kind} {name!r} (available: {known}){hint}")

    # -- mapping protocol ----------------------------------------------

    def __getitem__(self, name):
        try:
            return self._entries[name]
        except KeyError:
            raise self._unknown(name) from None

    def __setitem__(self, name, factory):
        self.register(name, factory, replace=True)

    def __delitem__(self, name):
        self.unregister(name)

    def __iter__(self):
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name) -> bool:
        return name in self._entries

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {self.names()})"
