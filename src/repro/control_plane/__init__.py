"""Control-plane modeling: table entries and P4-constraints."""

from .p4constraints import ConstraintError, constraint_terms, parse_constraint

__all__ = ["parse_constraint", "constraint_terms", "ConstraintError"]
