"""P4-constraints support (paper §6.1.1).

Tables can be annotated with an entry restriction, e.g.::

    @entry_restriction("type == 0xBEEF || type == 0x0800")
    table forward_table { ... }

P4Testgen converts the annotation into predicates over the synthesized
control-plane entry's key variables and applies them as preconditions,
which restricts the entries it may generate (and thereby the number of
tests, Tbl. 4b).

The constraint language is a boolean expression over key names:
integers (decimal/hex/binary), ``== != < <= > >=``, ``&& || !``,
parentheses, and ``true``/``false``.  Key names may use ``::`` or ``.``
separators; they are matched against the table key's control-plane
name (last component wins if unambiguous).
"""

from __future__ import annotations

import re

from ..smt import terms as T

__all__ = ["parse_constraint", "ConstraintError", "constraint_terms"]


class ConstraintError(Exception):
    pass


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_:.$]*)"
    r"|(?P<op>&&|\|\||==|!=|<=|>=|[!<>()]))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    out = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            if text[pos:].strip() == "":
                break
            raise ConstraintError(f"bad constraint syntax at {text[pos:pos+10]!r}")
        if m.group("num"):
            out.append(("num", m.group("num")))
        elif m.group("name"):
            out.append(("name", m.group("name")))
        else:
            out.append(("op", m.group("op")))
        pos = m.end()
    out.append(("eof", ""))
    return out


class _Parser:
    """Pratt-style parser building a small expression tree."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos]

    def next(self):
        tok = self.tokens[self.pos]
        if tok[0] != "eof":
            self.pos += 1
        return tok

    def parse(self):
        node = self.parse_or()
        if self.peek()[0] != "eof":
            raise ConstraintError(f"trailing tokens: {self.peek()!r}")
        return node

    def parse_or(self):
        node = self.parse_and()
        while self.peek() == ("op", "||"):
            self.next()
            node = ("or", node, self.parse_and())
        return node

    def parse_and(self):
        node = self.parse_not()
        while self.peek() == ("op", "&&"):
            self.next()
            node = ("and", node, self.parse_not())
        return node

    def parse_not(self):
        if self.peek() == ("op", "!"):
            self.next()
            return ("not", self.parse_not())
        return self.parse_cmp()

    def parse_cmp(self):
        left = self.parse_atom()
        kind, text = self.peek()
        if kind == "op" and text in ("==", "!=", "<", "<=", ">", ">="):
            self.next()
            right = self.parse_atom()
            return ("cmp", text, left, right)
        return left

    def parse_atom(self):
        kind, text = self.next()
        if kind == "num":
            return ("num", int(text, 0))
        if kind == "name":
            if text == "true":
                return ("bool", True)
            if text == "false":
                return ("bool", False)
            return ("key", text)
        if (kind, text) == ("op", "("):
            node = self.parse_or()
            if self.next() != ("op", ")"):
                raise ConstraintError("missing )")
            return node
        raise ConstraintError(f"unexpected token {text!r}")


def parse_constraint(text: str):
    return _Parser(_tokenize(text)).parse()


def _lookup_key(name: str, key_vars: dict[str, T.Term]) -> T.Term:
    if name in key_vars:
        return key_vars[name]
    # Allow qualified names: match by last component.
    last = re.split(r"::|\.", name)[-1]
    matches = [t for k, t in key_vars.items() if re.split(r"::|\.", k)[-1] == last]
    if len(matches) == 1:
        return matches[0]
    raise ConstraintError(f"constraint references unknown key {name!r}")


def _to_term(node, key_vars: dict[str, T.Term]):
    kind = node[0]
    if kind == "or":
        return T.or_(_to_term(node[1], key_vars), _to_term(node[2], key_vars))
    if kind == "and":
        return T.and_(_to_term(node[1], key_vars), _to_term(node[2], key_vars))
    if kind == "not":
        return T.not_(_to_term(node[1], key_vars))
    if kind == "bool":
        return T.bool_const(node[1])
    if kind == "cmp":
        _tag, op, left, right = node
        lt = _operand(left, key_vars, right)
        rt = _operand(right, key_vars, left)
        ops = {
            "==": T.eq, "!=": T.ne, "<": T.ult, "<=": T.ule,
            ">": T.ugt, ">=": T.uge,
        }
        return ops[op](lt, rt)
    raise ConstraintError(f"constraint node {node!r} is not boolean")


def _operand(node, key_vars, other):
    if node[0] == "key":
        return _lookup_key(node[1], key_vars)
    if node[0] == "num":
        width = 32
        if other is not None and other[0] == "key":
            width = _lookup_key(other[1], key_vars).width
        return T.bv_const(node[1], width)
    raise ConstraintError(f"bad comparison operand {node!r}")


def constraint_terms(constraint_src: str, key_vars: dict[str, T.Term]) -> list[T.Term]:
    """Parse and instantiate a constraint against the key variables of a
    synthesized table entry; returns SMT terms to assert."""
    tree = parse_constraint(constraint_src)
    return [_to_term(tree, key_vars)]
