"""Protobuf text-format back end (paper Tbl. 1: the v1model extension
supports custom Protobuf messages).

Emits P4Runtime-flavoured text protos describing each test: entities to
install, the input packet, and the expected outputs with masks.
"""

from __future__ import annotations

from .spec import AbstractTestCase

__all__ = ["ProtobufBackend"]


def _indent(lines: list[str], level: int = 1) -> list[str]:
    pad = "  " * level
    return [pad + line for line in lines]


class ProtobufBackend:
    name = "protobuf"
    SUPPORTS_RANGE_ENTRIES = True
    SUPPORTS_REGISTERS = True

    def render_test(self, test: AbstractTestCase) -> str:
        out = [f"test_case {{", f"  id: {test.test_id}"]
        for entry in test.entries:
            body = [f'table: "{entry.table}"', f'action: "{entry.action}"']
            for name, kind, roles in entry.keys:
                match = [f'field: "{name}"', f'type: "{kind}"']
                for role, value in sorted(roles.items()):
                    match.append(f"{role}: {value:#x}")
                body.append("match {")
                body.extend(_indent(match))
                body.append("}")
            for pname, value in entry.action_args:
                body.append(f'param {{ name: "{pname}" value: {value:#x} }}')
            if entry.priority is not None:
                body.append(f"priority: {entry.priority}")
            out.append("  entity {")
            out.extend(_indent(body, 2))
            out.append("  }")
        for vs in test.value_sets:
            out.append(
                f'  value_set {{ name: "{vs.value_set}" member: {vs.member:#x} }}'
            )
        for reg in test.registers:
            out.append(
                f'  register {{ name: "{reg.instance}" index: {reg.index} '
                f"value: {reg.value:#x} }}"
            )
        pkt = test.input_packet
        out.append("  input_packet {")
        out.append(f"    port: {pkt.port}")
        out.append(f'    data: "{pkt.to_bytes().hex()}"')
        out.append("  }")
        if test.dropped or not test.expected:
            out.append("  expect_drop: true")
        for exp in test.expected:
            out.append("  expected_packet {")
            out.append(f"    port: {exp.port}")
            out.append(f'    data: "{exp.to_bytes().hex()}"')
            out.append(f'    mask: "{exp.mask_bytes().hex()}"')
            out.append("  }")
        out.append("}")
        return "\n".join(out)

    SUITE_SEPARATOR = "\n"
    SUITE_SUFFIX = "\n"

    def render_suite(self, tests: list[AbstractTestCase]) -> str:
        return (
            self.SUITE_SEPARATOR.join(self.render_test(t) for t in tests)
            + self.SUITE_SUFFIX
        )
