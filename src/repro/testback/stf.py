"""STF (Simple Test Framework) back end.

Renders tests in the format of P4C's STF files: ``add`` lines for table
entries, ``packet`` lines for injected packets, and ``expect`` lines
for expected outputs (with ``*`` nibbles for don't-care bits).  STF has
the fewest configuration options of the back ends (paper §6): no range
entries and no extern initialization.
"""

from __future__ import annotations

from .spec import AbstractTestCase, ExpectedPacket

__all__ = ["StfBackend"]


def _hex_with_wildcards(packet: ExpectedPacket) -> str:
    """Hex string where fully-don't-care nibbles render as '*'."""
    data = packet.to_bytes()
    mask = packet.mask_bytes()
    out = []
    for b, m in zip(data, mask):
        for shift in (4, 0):
            nibble_mask = (m >> shift) & 0xF
            nibble = (b >> shift) & 0xF
            out.append(f"{nibble:X}" if nibble_mask == 0xF else "*")
    return "".join(out)


class StfBackend:
    name = "stf"

    # STF cannot express these (paper §6): the runner downgrades.
    SUPPORTS_RANGE_ENTRIES = False
    SUPPORTS_REGISTERS = False

    def render_test(self, test: AbstractTestCase) -> str:
        lines = [f"# test {test.test_id} ({test.target}, {test.program})"]
        for vs in test.value_sets:
            lines.append(f"add_value_set {vs.value_set} {vs.member:#x}")
        for entry in test.entries:
            keys = []
            for name, kind, roles in entry.keys:
                if kind == "exact":
                    keys.append(f"{name}:{roles['value']:#x}")
                elif kind in ("ternary", "optional"):
                    mask = roles.get("mask", 0)
                    keys.append(f"{name}:{roles['value']:#x}&&&{mask:#x}")
                elif kind == "lpm":
                    keys.append(
                        f"{name}:{roles['value']:#x}/{roles.get('prefix_len', 0)}"
                    )
                elif kind == "range":
                    # STF does not support range entries (§6); emit a
                    # comment so the limitation is visible in the file.
                    keys.append(
                        f"{name}:<range {roles.get('lo', 0):#x}..{roles.get('hi', 0):#x} unsupported>"
                    )
                else:
                    keys.append(f"{name}:{roles.get('value', 0):#x}")
            args = " ".join(f"{n}:{v:#x}" for n, v in entry.action_args)
            prio = f" prio {entry.priority}" if entry.priority is not None else ""
            lines.append(
                f"add {entry.table}{prio} {' '.join(keys)} {entry.action}({args})"
            )
        pkt = test.input_packet
        lines.append(f"packet {pkt.port} {pkt.to_bytes().hex().upper()}")
        if test.dropped or not test.expected:
            lines.append("# expect no packet (dropped)")
        for exp in test.expected:
            lines.append(f"expect {exp.port} {_hex_with_wildcards(exp)}")
        return "\n".join(lines)

    SUITE_SEPARATOR = "\n\n"
    SUITE_SUFFIX = "\n"

    def render_suite(self, tests: list[AbstractTestCase]) -> str:
        return (
            self.SUITE_SEPARATOR.join(self.render_test(t) for t in tests)
            + self.SUITE_SUFFIX
        )
