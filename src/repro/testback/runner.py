"""Test runner: execute abstract tests against the concrete simulators.

This closes the paper's evaluation loop (§7 "Does P4Testgen produce
correct tests?"): the oracle's generated tests are replayed on the
corresponding software model, and outputs are compared under the
don't-care masks.  A mismatch is either an oracle bug or — with the
fault-injection layer — a planted toolchain bug.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..interp.core import Config, InterpResult
from ..registry import Registry
from .spec import AbstractTestCase

__all__ = [
    "TestRunResult", "run_test", "evaluate_test", "run_suite",
    "make_simulator", "register_simulator", "is_stock_simulator",
    "SIMULATORS",
]


def _bmv2(program, seed):
    # Spec-only baseline tests (Tbl. 5) are judged against the real
    # BMv2 model — that is the point of the comparison.
    from ..interp.bmv2 import Bmv2Simulator

    return Bmv2Simulator(program, seed=seed)


def _tofino_v1(program, seed):
    from ..interp.tofino_model import TofinoSimulator

    return TofinoSimulator(program, seed=seed, version=1)


def _tofino_v2(program, seed):
    from ..interp.tofino_model import TofinoSimulator

    return TofinoSimulator(program, seed=seed, version=2)


def _ebpf(program, seed):
    from ..interp.ebpf_vm import EbpfSimulator

    return EbpfSimulator(program, seed=seed)


def _validate_simulator(target_name: str, factory) -> None:
    if not callable(factory):
        raise TypeError(f"simulator factory for {target_name!r} must be "
                        f"callable, got {type(factory).__name__}")


#: Oracle target name -> simulator factory ``(program, seed) -> simulator``.
SIMULATORS = Registry("simulator", validator=_validate_simulator)
SIMULATORS.register("v1model", _bmv2)
SIMULATORS.register("spec-only", _bmv2)
SIMULATORS.register("tna", _tofino_v1)
SIMULATORS.register("t2na", _tofino_v2)
SIMULATORS.register("ebpf_model", _ebpf)

#: The factories the lane engine's compiled semantics mirror.  A target
#: whose registry entry differs (fault injection, user extensions) must
#: replay scalar so the override is actually exercised.
_STOCK_FACTORIES = dict(SIMULATORS)


def is_stock_simulator(target_name: str) -> bool:
    """Whether ``target_name`` resolves to the built-in simulator."""
    return SIMULATORS.get(target_name, None) \
        is _STOCK_FACTORIES.get(target_name)


def register_simulator(target_name: str, factory) -> None:
    """Deprecated alias for ``SIMULATORS.register(..., replace=True)``.

    ``factory`` is called as ``factory(program, seed)``; mirrors the
    (equally deprecated) :func:`repro.testback.register_backend` shim.
    """
    warnings.warn(
        "register_simulator() is deprecated; use "
        "repro.testback.runner.SIMULATORS.register(name, factory) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    SIMULATORS.register(target_name, factory, replace=True)


def make_simulator(target_name: str, program, seed: int = 0):
    """Instantiate the software model matching an oracle target name."""
    return SIMULATORS.create(target_name, program, seed)


@dataclass
class TestRunResult:
    test_id: int = 0
    passed: bool = False
    # "pass" | "wrong_output" | "wrong_port" | "mask_violation"
    # | "exception" | "missing_output"
    kind: str = ""
    detail: str = ""
    interp: InterpResult = None

    def __bool__(self):
        return self.passed


def _match_expected(expected, actual):
    """None if the output matches; otherwise a (kind, description) pair."""
    port, bits, width = actual
    if port != expected.port:
        return "wrong_port", f"port {port} != expected {expected.port}"
    if width != expected.width:
        return "wrong_output", f"width {width} != expected {expected.width}"
    care = ~expected.dont_care & ((1 << width) - 1) if width else 0
    if (bits & care) != (expected.bits & care):
        return "mask_violation", (
            f"payload mismatch: got {bits:#x}, expected {expected.bits:#x} "
            f"(care mask {care:#x})"
        )
    return None


def run_test(test: AbstractTestCase, program, simulator=None,
             seed: int = 0) -> TestRunResult:
    if simulator is None:
        simulator = make_simulator(test.target, program, seed=seed)
    config = Config.from_test(test)
    pkt = test.input_packet
    result = simulator.process(pkt.port, pkt.bits, pkt.width, config)
    return evaluate_test(test, result)


def evaluate_test(test: AbstractTestCase, result: InterpResult) -> TestRunResult:
    """Judge one replayed :class:`InterpResult` against a test's
    expectations (shared by the scalar and batch replay paths)."""
    run = TestRunResult(test_id=test.test_id, interp=result)
    if result.error is not None:
        run.kind = "exception"
        run.detail = result.error
        return run
    if test.dropped or not test.expected:
        if result.outputs:
            run.kind = "wrong_output"
            run.detail = f"expected drop, got {result.outputs}"
            return run
        run.passed = True
        run.kind = "pass"
        return run
    if len(result.outputs) < len(test.expected):
        run.kind = "missing_output"
        run.detail = (
            f"expected {len(test.expected)} packets, got {len(result.outputs)}"
        )
        return run
    # Compare in order (the oracle emits outputs in pipeline order).
    for exp, actual in zip(test.expected, result.outputs):
        mismatch = _match_expected(exp, actual)
        if mismatch is not None:
            run.kind, run.detail = mismatch
            return run
    run.passed = True
    run.kind = "pass"
    return run


def run_suite(tests: list[AbstractTestCase], program, seed: int = 0, *,
              batch: bool = False, replay_stats=None):
    """Run all tests; returns (num_passed, list[TestRunResult]).

    With ``batch=True`` tests are grouped per target and replayed
    through the lane engine (:class:`repro.interp.batch.BatchSimulator`)
    instead of one scalar simulator per test; results come back in the
    original test order with identical classifications.  Pass a
    :class:`repro.interp.batch.ReplayStats` as ``replay_stats`` to
    accumulate lane/fallback counters across calls.
    """
    tests = list(tests)
    if batch:
        from ..interp.batch import BatchSimulator

        by_target: dict[str, list[int]] = {}
        for idx, test in enumerate(tests):
            by_target.setdefault(test.target, []).append(idx)
        results: list = [None] * len(tests)
        for target, idxs in by_target.items():
            sim = BatchSimulator(target, program, seed=seed,
                                 stats=replay_stats)
            cases = []
            for i in idxs:
                pkt = tests[i].input_packet
                cases.append((pkt.port, pkt.bits, pkt.width,
                              Config.from_test(tests[i])))
            for i, result in zip(idxs, sim.run_cases(cases)):
                results[i] = evaluate_test(tests[i], result)
    else:
        results = []
        for test in tests:
            simulator = make_simulator(test.target, program, seed=seed)
            results.append(run_test(test, program, simulator))
    passed = sum(1 for r in results if r.passed)
    return passed, results
