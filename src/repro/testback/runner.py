"""Test runner: execute abstract tests against the concrete simulators.

This closes the paper's evaluation loop (§7 "Does P4Testgen produce
correct tests?"): the oracle's generated tests are replayed on the
corresponding software model, and outputs are compared under the
don't-care masks.  A mismatch is either an oracle bug or — with the
fault-injection layer — a planted toolchain bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..interp.core import Config, InterpResult
from .spec import AbstractTestCase

__all__ = ["TestRunResult", "run_test", "run_suite", "make_simulator"]


def make_simulator(target_name: str, program, seed: int = 0):
    """Instantiate the software model matching an oracle target name."""
    if target_name in ("v1model", "spec-only"):
        # Spec-only baseline tests (Tbl. 5) are judged against the real
        # BMv2 model — that is the point of the comparison.
        from ..interp.bmv2 import Bmv2Simulator

        return Bmv2Simulator(program, seed=seed)
    if target_name == "tna":
        from ..interp.tofino_model import TofinoSimulator

        return TofinoSimulator(program, seed=seed, version=1)
    if target_name == "t2na":
        from ..interp.tofino_model import TofinoSimulator

        return TofinoSimulator(program, seed=seed, version=2)
    if target_name == "ebpf_model":
        from ..interp.ebpf_vm import EbpfSimulator

        return EbpfSimulator(program, seed=seed)
    raise KeyError(f"no simulator for target {target_name!r}")


@dataclass
class TestRunResult:
    test_id: int = 0
    passed: bool = False
    kind: str = ""        # "pass" | "wrong_output" | "exception" | "missing_output"
    detail: str = ""
    interp: InterpResult = None

    def __bool__(self):
        return self.passed


def _match_expected(expected, actual) -> str | None:
    """None if the output matches; otherwise a mismatch description."""
    port, bits, width = actual
    if port != expected.port:
        return f"port {port} != expected {expected.port}"
    if width != expected.width:
        return f"width {width} != expected {expected.width}"
    care = ~expected.dont_care & ((1 << width) - 1) if width else 0
    if (bits & care) != (expected.bits & care):
        return (
            f"payload mismatch: got {bits:#x}, expected {expected.bits:#x} "
            f"(care mask {care:#x})"
        )
    return None


def run_test(test: AbstractTestCase, program, simulator=None,
             seed: int = 0) -> TestRunResult:
    if simulator is None:
        simulator = make_simulator(test.target, program, seed=seed)
    config = Config.from_test(test)
    pkt = test.input_packet
    result = simulator.process(pkt.port, pkt.bits, pkt.width, config)
    run = TestRunResult(test_id=test.test_id, interp=result)
    if result.error is not None:
        run.kind = "exception"
        run.detail = result.error
        return run
    if test.dropped or not test.expected:
        if result.outputs:
            run.kind = "wrong_output"
            run.detail = f"expected drop, got {result.outputs}"
            return run
        run.passed = True
        run.kind = "pass"
        return run
    if len(result.outputs) < len(test.expected):
        run.kind = "missing_output"
        run.detail = (
            f"expected {len(test.expected)} packets, got {len(result.outputs)}"
        )
        return run
    # Compare in order (the oracle emits outputs in pipeline order).
    for exp, actual in zip(test.expected, result.outputs):
        mismatch = _match_expected(exp, actual)
        if mismatch is not None:
            run.kind = "wrong_output"
            run.detail = mismatch
            return run
    run.passed = True
    run.kind = "pass"
    return run


def run_suite(tests: list[AbstractTestCase], program, seed: int = 0):
    """Run all tests; returns (num_passed, list[TestRunResult])."""
    results = []
    simulator = None
    for test in tests:
        simulator = make_simulator(test.target, program, seed=seed)
        results.append(run_test(test, program, simulator))
    passed = sum(1 for r in results if r.passed)
    return passed, results
