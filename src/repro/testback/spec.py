"""Abstract test specifications (paper §4, step 3).

A finished path becomes an :class:`AbstractTestCase`: input packet,
control-plane configuration, and expected output(s), all fully
concrete.  Test back ends (STF/PTF/Protobuf) render this structure;
``repro.testback.runner`` can also execute it against the concrete
interpreters in :mod:`repro.interp`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "PacketData",
    "TableEntrySpec",
    "ValueSetSpec",
    "RegisterSpec",
    "ExpectedPacket",
    "AbstractTestCase",
]


@dataclass
class PacketData:
    """A concrete packet as a bit string."""

    bits: int = 0          # packet content, MSB-first
    width: int = 0         # number of valid bits
    port: int = 0

    def to_bytes(self) -> bytes:
        """Packet bytes, zero-padded in the final byte if unaligned."""
        nbytes = (self.width + 7) // 8
        if nbytes == 0:
            return b""
        padded = self.bits << (nbytes * 8 - self.width)
        return padded.to_bytes(nbytes, "big")

    def hex(self) -> str:
        return self.to_bytes().hex().upper()

    def __repr__(self):
        return f"PacketData(port={self.port}, width={self.width}, hex={self.hex()})"


@dataclass
class ExpectedPacket(PacketData):
    """Expected output; ``dont_care`` marks bits the oracle cannot
    predict (tainted), rendered as wildcard masks by back ends."""

    dont_care: int = 0

    def mask_bytes(self) -> bytes:
        """0xFF where bits must match, 0x00 where they are wildcards."""
        nbytes = (self.width + 7) // 8
        if nbytes == 0:
            return b""
        care = (~self.dont_care) & ((1 << self.width) - 1)
        padded = care << (nbytes * 8 - self.width)
        return padded.to_bytes(nbytes, "big")


@dataclass
class TableEntrySpec:
    table: str = ""
    action: str = ""
    # list of (key_name, match_kind, {role: int}) with roles value/mask/
    # prefix_len/lo/hi
    keys: list = field(default_factory=list)
    # list of (param_name, value)
    action_args: list = field(default_factory=list)
    priority: int | None = None


@dataclass
class ValueSetSpec:
    value_set: str = ""
    member: int = 0


@dataclass
class RegisterSpec:
    instance: str = ""
    index: int = 0
    value: int = 0


@dataclass
class AbstractTestCase:
    """One input/output test for a P4 program on a specific target."""

    test_id: int = 0
    target: str = ""
    program: str = ""
    seed: int | None = None
    input_packet: PacketData = None
    entries: list = field(default_factory=list)       # TableEntrySpec
    value_sets: list = field(default_factory=list)    # ValueSetSpec
    registers: list = field(default_factory=list)     # RegisterSpec
    expected: list = field(default_factory=list)      # ExpectedPacket
    dropped: bool = False
    covered_statements: frozenset = frozenset()
    trace: list = field(default_factory=list)

    def summary(self) -> str:
        outs = ", ".join(
            f"port {p.port} ({p.width}b)" for p in self.expected
        ) or ("drop" if self.dropped else "none")
        return (
            f"test {self.test_id}: in port {self.input_packet.port} "
            f"({self.input_packet.width}b) -> {outs}, "
            f"{len(self.entries)} entries"
        )
