"""Parser for the STF files this package emits.

Closes the loop render -> parse -> replay: an emitted STF suite can be
read back into :class:`AbstractTestCase` objects and executed against
the simulators, the way P4C's STF harness feeds BMv2.

Grammar (the subset our back end produces)::

    # test N (target, program)        -- starts a new test
    add <table> [prio N] k:v ... <action>(p:v ...)
    add_value_set <set> <member>
    packet <port> <hex>
    expect <port> <hex-with-*-wildcards>
    # expect no packet (dropped)
"""

from __future__ import annotations

import re

from .spec import (
    AbstractTestCase,
    ExpectedPacket,
    PacketData,
    TableEntrySpec,
    ValueSetSpec,
)

__all__ = ["parse_stf", "StfParseError"]


class StfParseError(Exception):
    pass


_TEST_RE = re.compile(r"#\s*test\s+(\d+)\s*(?:\(([^,]*),\s*([^)]*)\))?")
_DROP_RE = re.compile(r"#\s*expect no packet")
_ADD_RE = re.compile(r"add\s+(\S+)(?:\s+prio\s+(\d+))?\s+(.*)")
_VS_RE = re.compile(r"add_value_set\s+(\S+)\s+(\S+)")
_PACKET_RE = re.compile(r"(packet|expect)\s+(\d+)\s*([0-9A-Fa-f*]*)")


def _parse_key(token: str):
    name, _, rest = token.partition(":")
    if "&&&" in rest:
        value, _, mask = rest.partition("&&&")
        return name, "ternary", {"value": int(value, 0), "mask": int(mask, 0)}
    if "/" in rest:
        value, _, plen = rest.partition("/")
        return name, "lpm", {"value": int(value, 0), "prefix_len": int(plen, 0)}
    return name, "exact", {"value": int(rest, 0)}


def _parse_add(line: str) -> TableEntrySpec:
    m = _ADD_RE.match(line)
    if not m:
        raise StfParseError(f"bad add line: {line!r}")
    table, prio, rest = m.group(1), m.group(2), m.group(3)
    # Split "<keys...> action(args)" — the action is the last token
    # carrying parentheses.
    action_m = re.search(r"(\S+)\(([^)]*)\)\s*$", rest)
    if not action_m:
        raise StfParseError(f"add line missing action: {line!r}")
    action = action_m.group(1)
    args_text = action_m.group(2)
    keys_text = rest[: action_m.start()].strip()
    keys = [_parse_key(tok) for tok in keys_text.split() if tok]
    args = []
    for tok in args_text.split():
        name, _, value = tok.partition(":")
        args.append((name, int(value, 0)))
    return TableEntrySpec(
        table=table,
        action=action,
        keys=keys,
        action_args=args,
        priority=int(prio) if prio else None,
    )


def _parse_hex_packet(hex_text: str) -> tuple[int, int, int]:
    """Returns (bits, width, dont_care) from hex with '*' wildcards."""
    bits = 0
    dont_care = 0
    for ch in hex_text:
        bits <<= 4
        dont_care <<= 4
        if ch == "*":
            dont_care |= 0xF
        else:
            bits |= int(ch, 16)
    return bits, 4 * len(hex_text), dont_care


def parse_stf(text: str) -> list[AbstractTestCase]:
    tests: list[AbstractTestCase] = []
    current: AbstractTestCase | None = None
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        test_m = _TEST_RE.match(line)
        if test_m:
            current = AbstractTestCase(
                test_id=int(test_m.group(1)),
                target=(test_m.group(2) or "v1model").strip(),
                program=(test_m.group(3) or "").strip(),
                input_packet=PacketData(),
            )
            tests.append(current)
            continue
        if _DROP_RE.match(line):
            if current is not None:
                current.dropped = True
            continue
        if line.startswith("#"):
            continue
        if current is None:
            # Tolerate header-less files: implicit single test.
            current = AbstractTestCase(test_id=1, target="v1model",
                                       input_packet=PacketData())
            tests.append(current)
        if line.startswith("add_value_set"):
            m = _VS_RE.match(line)
            if not m:
                raise StfParseError(f"bad value-set line: {line!r}")
            current.value_sets.append(
                ValueSetSpec(value_set=m.group(1), member=int(m.group(2), 0))
            )
            continue
        if line.startswith("add"):
            current.entries.append(_parse_add(line))
            continue
        pkt_m = _PACKET_RE.match(line)
        if pkt_m:
            kind, port, hex_text = pkt_m.groups()
            bits, width, dont_care = _parse_hex_packet(hex_text)
            if kind == "packet":
                current.input_packet = PacketData(
                    bits=bits, width=width, port=int(port)
                )
            else:
                current.expected.append(
                    ExpectedPacket(
                        bits=bits, width=width, port=int(port),
                        dont_care=dont_care,
                    )
                )
            continue
        raise StfParseError(f"unrecognized STF line: {line!r}")
    return tests
