"""Test back ends: abstract specs and renderers (STF, PTF, Protobuf),
plus a runner that executes specs against the concrete interpreters."""

from .protobuf import ProtobufBackend
from .ptf import PtfBackend
from .spec import (
    AbstractTestCase,
    ExpectedPacket,
    PacketData,
    RegisterSpec,
    TableEntrySpec,
    ValueSetSpec,
)
from .stf import StfBackend

__all__ = [
    "AbstractTestCase", "PacketData", "ExpectedPacket", "TableEntrySpec",
    "ValueSetSpec", "RegisterSpec", "StfBackend", "PtfBackend",
    "ProtobufBackend", "get_backend", "BACKENDS",
]

BACKENDS = {
    "stf": StfBackend,
    "ptf": PtfBackend,
    "protobuf": ProtobufBackend,
}


def get_backend(name: str):
    try:
        return BACKENDS[name]()
    except KeyError:
        raise KeyError(
            f"unknown back end {name!r}; available: {', '.join(sorted(BACKENDS))}"
        )
