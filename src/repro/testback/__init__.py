"""Test back ends: abstract specs and renderers (STF, PTF, Protobuf),
plus a runner that executes specs against the concrete interpreters.

The registry is open: ``BACKENDS.register(name, cls)`` (a
:class:`repro.registry.Registry`, shared machinery with simulators and
solver back ends) adds a custom renderer class under a name, after
which ``get_backend(name)``, the CLI ``--test-backend`` flag, and
``TestGenResult.emit(name)`` all accept it.  A back end must provide
``name``, ``render_test(test)`` and ``render_suite(tests)``; back ends
that also declare the suite-shape attributes (``SUITE_SEPARATOR``,
``SUITE_SUFFIX``, optionally ``suite_prefix()``) can be streamed
incrementally via :class:`SuiteWriter`.
"""

import warnings

from ..registry import Registry
from .protobuf import ProtobufBackend
from .ptf import PtfBackend
from .spec import (
    AbstractTestCase,
    ExpectedPacket,
    PacketData,
    RegisterSpec,
    TableEntrySpec,
    ValueSetSpec,
)
from .stf import StfBackend

__all__ = [
    "AbstractTestCase", "PacketData", "ExpectedPacket", "TableEntrySpec",
    "ValueSetSpec", "RegisterSpec", "StfBackend", "PtfBackend",
    "ProtobufBackend", "SuiteWriter", "get_backend", "register_backend",
    "BACKENDS",
]


def _validate_backend(name: str, cls) -> None:
    for attr in ("render_test", "render_suite"):
        if not callable(getattr(cls, attr, None)):
            raise TypeError(
                f"back end {name!r} must define a callable {attr}; got {cls!r}"
            )


#: name -> renderer class, instantiated with no arguments.
BACKENDS = Registry("test backend", validator=_validate_backend)
BACKENDS.register("stf", StfBackend)
BACKENDS.register("ptf", PtfBackend)
BACKENDS.register("protobuf", ProtobufBackend)


def get_backend(name: str):
    """Instantiate the renderer registered under ``name``."""
    return BACKENDS.create(name)


def register_backend(name: str, cls) -> None:
    """Deprecated alias for ``BACKENDS.register(name, cls, replace=True)``.

    ``cls`` is instantiated with no arguments by :func:`get_backend`
    and must provide ``render_test(test) -> str`` and
    ``render_suite(tests) -> str``.  Re-registering a name replaces the
    previous back end (which is why the shim keeps replace semantics).
    """
    warnings.warn(
        "register_backend() is deprecated; use "
        "repro.testback.BACKENDS.register(name, cls) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    BACKENDS.register(name, cls, replace=True)


class SuiteWriter:
    """Write a suite to a stream one test at a time, producing bytes
    identical to ``backend.render_suite(tests)``.

    ::

        writer = SuiteWriter(get_backend("stf"), fh)
        for test in gen.iter_tests():
            writer.write(test)
        writer.close()
    """

    def __init__(self, backend, stream):
        self.backend = backend
        self.stream = stream
        self.count = 0
        self._opened = False

    def _open(self) -> None:
        prefix = getattr(self.backend, "suite_prefix", None)
        if callable(prefix):
            self.stream.write(prefix())
        self._opened = True

    def write(self, test) -> None:
        if not self._opened:
            self._open()
        if self.count:
            self.stream.write(getattr(self.backend, "SUITE_SEPARATOR", "\n\n"))
        self.stream.write(self.backend.render_test(test))
        self.count += 1

    def close(self) -> None:
        """Write the suite suffix.  Does not close the stream."""
        if not self._opened:
            self._open()
        self.stream.write(getattr(self.backend, "SUITE_SUFFIX", "\n"))
