"""PTF (Packet Testing Framework) back end.

Emits a Python unittest-style PTF test class per test case, mirroring
the structure P4Testgen's PTF back end generates: P4Runtime-style table
writes in ``setUp``-like preamble, ``send_packet`` and
``verify_packet``/``verify_no_other_packets`` calls.  PTF is richer
than STF (§6): it can express don't-care masks and extern (register)
initialization.
"""

from __future__ import annotations

from .spec import AbstractTestCase

__all__ = ["PtfBackend"]


class PtfBackend:
    name = "ptf"
    SUPPORTS_RANGE_ENTRIES = True
    SUPPORTS_REGISTERS = True

    def render_test(self, test: AbstractTestCase) -> str:
        ind = "        "
        lines = [
            f"class Test{test.test_id}(P4RuntimeTest):",
            f'    """{test.target} / {test.program} path {test.test_id}."""',
            "",
            "    def runTest(self):",
        ]
        for reg in test.registers:
            lines.append(
                f"{ind}self.write_register({reg.instance!r}, {reg.index}, "
                f"{reg.value:#x})"
            )
        for vs in test.value_sets:
            lines.append(
                f"{ind}self.insert_pvs_entry({vs.value_set!r}, {vs.member:#x})"
            )
        for entry in test.entries:
            match_fields = []
            for name, kind, roles in entry.keys:
                if kind == "exact":
                    match_fields.append(f"({name!r}, {roles['value']:#x})")
                elif kind in ("ternary", "optional"):
                    match_fields.append(
                        f"({name!r}, {roles['value']:#x}, {roles.get('mask', 0):#x})"
                    )
                elif kind == "lpm":
                    match_fields.append(
                        f"({name!r}, {roles['value']:#x}, {roles.get('prefix_len', 0)})"
                    )
                elif kind == "range":
                    match_fields.append(
                        f"({name!r}, range_({roles.get('lo', 0):#x}, "
                        f"{roles.get('hi', 0):#x}))"
                    )
            args = ", ".join(f"({n!r}, {v:#x})" for n, v in entry.action_args)
            prio = f", priority={entry.priority}" if entry.priority is not None else ""
            lines.append(
                f"{ind}self.insert_table_entry({entry.table!r}, "
                f"[{', '.join(match_fields)}], {entry.action!r}, [{args}]{prio})"
            )
        pkt = test.input_packet
        lines.append(
            f"{ind}send_packet(self, {pkt.port}, "
            f"bytes.fromhex({pkt.to_bytes().hex()!r}))"
        )
        if test.dropped or not test.expected:
            lines.append(f"{ind}verify_no_other_packets(self)")
        else:
            for exp in test.expected:
                lines.append(
                    f"{ind}verify_packet_masked(self, "
                    f"bytes.fromhex({exp.to_bytes().hex()!r}), "
                    f"bytes.fromhex({exp.mask_bytes().hex()!r}), {exp.port})"
                )
        return "\n".join(lines)

    SUITE_SEPARATOR = "\n\n"
    SUITE_SUFFIX = "\n"

    def suite_prefix(self) -> str:
        return (
            "# Auto-generated PTF tests\n"
            "from ptf_shim import P4RuntimeTest, send_packet, "
            "verify_packet_masked, verify_no_other_packets, range_\n"
            "\n\n"
        )

    def render_suite(self, tests: list[AbstractTestCase]) -> str:
        return (
            self.suite_prefix()
            + self.SUITE_SEPARATOR.join(self.render_test(t) for t in tests)
            + self.SUITE_SUFFIX
        )
