"""Corpus-guided (greybox) mutation of saved reproducers.

Generating every campaign program from scratch wastes what the corpus
already knows: a saved reproducer is a program the oracle *proved*
interesting.  This module perturbs such a spec structurally — nudge a
constant, flip a comparison, swap a match kind, toggle a parser
feature — so a steered campaign can spend part of its budget exploring
the neighborhood of known findings instead of the whole grammar.

Mutations stay inside the generator's grammar (the same well-typedness
:func:`repro.fuzz.shrink._repair` enforces), and the whole pipeline is
deterministic: ``mutate_spec(spec, seed)`` is a pure function, so a
mutated campaign replays bit-for-bit from its seed.
"""

from __future__ import annotations

import copy
import random

from .generator import (ProgramSpec, ApplyStmt, _MATCH_KIND_WEIGHTS,
                        spec_width)
from .shrink import _repair

__all__ = ["mutate_spec", "MUTATION_NAMES"]

# The catalogue, in the fixed order the mutator scans it.  Each entry
# is (name, applicability-check, apply); apply mutates in place.
MUTATION_NAMES = (
    "tweak_operand",
    "flip_cond",
    "swap_match_kind",
    "add_assign",
    "toggle_lookahead",
    "toggle_checksum",
    "perturb_entry_value",
    "swap_default_action",
    "perturb_branch_value",
)


def _operand_sites(spec):
    sites = [a for a in spec.actions if a.kind == "addf"]
    sites += [s for s in spec.apply_stmts if s.kind == "assign"]
    return sites


def _mut_tweak_operand(spec, rng):
    sites = _operand_sites(spec)
    if not sites:
        return False
    site = rng.choice(sites)
    site.operand = (site.operand ^ (1 << rng.randrange(8))) | 1
    return True


def _mut_flip_cond(spec, rng):
    sites = [s for s in spec.apply_stmts
             if s.kind == "if_apply" and s.cond != "valid"]
    if not sites:
        return False
    site = rng.choice(sites)
    site.cond = rng.choice([c for c in ("==", "<", ">") if c != site.cond])
    return True


def _mut_swap_match_kind(spec, rng):
    # Const-entry keysets are shaped by the match kind (ternary masks,
    # exact values); only kindshift tables without entries.
    kinds = [k for k, _w in _MATCH_KIND_WEIGHTS[spec.target]]
    sites = [k for t in spec.tables if not t.const_entries for k in t.keys]
    if not sites:
        return False
    site = rng.choice(sites)
    other = [k for k in kinds if k != site.match_kind]
    if not other:
        return False
    site.match_kind = rng.choice(other)
    return True


def _mut_add_assign(spec, rng):
    base = spec.headers[0]
    pool = [f for f in base.fields if f.name != "tag"]
    if not pool:
        return False
    fld = rng.choice(pool)
    spec.apply_stmts.insert(
        rng.randrange(len(spec.apply_stmts) + 1),
        ApplyStmt("assign", header=base.name, fld=fld.name,
                  op=rng.choice(["+", "^", "&", "|"]),
                  operand=rng.getrandbits(8) | 1))
    return True


def _mut_toggle_lookahead(spec, rng):
    if spec.target not in ("v1model", "ebpf_model"):
        return False
    spec.use_lookahead = not spec.use_lookahead
    return True


def _mut_toggle_checksum(spec, rng):
    if spec.target != "v1model":
        return False
    spec.use_checksum = not spec.use_checksum
    return True


def _mut_perturb_entry_value(spec, rng):
    sites = [(t, e) for t in spec.tables for e in t.const_entries]
    if not sites:
        return False
    table, entry = rng.choice(sites)
    i = rng.randrange(len(entry.keysets))
    value, mask = entry.keysets[i]
    width = spec_width(spec.headers, table.keys[i].header,
                       table.keys[i].fld)
    value ^= 1 << rng.randrange(width)
    if mask is not None:
        value &= mask
    entry.keysets[i] = (value, mask)
    return True


def _mut_swap_default_action(spec, rng):
    # Only zero-arg actions render as valid defaults (fwd/setf take
    # compile-time-unknown args), so the swap stays within nop/toss.
    sites = []
    for t in spec.tables:
        options = [n for n in t.actions
                   if n != t.default_action
                   and any(a.name == n and a.kind in ("noop", "drop")
                           for a in spec.actions)]
        if options:
            sites.append((t, options))
    if not sites:
        return False
    table, options = rng.choice(sites)
    table.default_action = rng.choice(options)
    return True


def _mut_perturb_branch_value(spec, rng):
    sites = [(parent, b) for parent, blist in spec.branches.items()
             for b in blist]
    if not sites:
        return False
    parent, branch = rng.choice(sites)
    value = branch.value ^ (1 << rng.randrange(16))
    if branch.mask is not None:
        value &= branch.mask
    taken = {(b.value, b.mask) for b in spec.branches[parent]
             if b is not branch}
    while (value, branch.mask) in taken:
        value = (value + 1) & 0xFFFF if branch.mask is None \
            else (value ^ branch.mask)
    branch.value = value
    return True


_MUTATORS = {
    "tweak_operand": _mut_tweak_operand,
    "flip_cond": _mut_flip_cond,
    "swap_match_kind": _mut_swap_match_kind,
    "add_assign": _mut_add_assign,
    "toggle_lookahead": _mut_toggle_lookahead,
    "toggle_checksum": _mut_toggle_checksum,
    "perturb_entry_value": _mut_perturb_entry_value,
    "swap_default_action": _mut_swap_default_action,
    "perturb_branch_value": _mut_perturb_branch_value,
}


def mutate_spec(spec: ProgramSpec, seed: int, *,
                n_mutations: int | None = None) -> ProgramSpec:
    """A structurally perturbed copy of ``spec``.

    Deterministic in ``(spec, seed)``: the RNG is keyed off the seed
    and the spec's name, the mutation order is the fixed catalogue
    order shuffled by that RNG, and between 1 and 3 applicable
    mutations are applied.  The result is re-repaired so it stays
    inside the generator's grammar, and renamed so corpus entries and
    reports distinguish it from its parent.
    """
    rng = random.Random(f"mutate|{seed}|{spec.name}")
    mutated = copy.deepcopy(spec)
    want = n_mutations if n_mutations is not None else rng.randint(1, 3)
    order = list(MUTATION_NAMES)
    rng.shuffle(order)
    applied = 0
    for name in order:
        if applied >= want:
            break
        if _MUTATORS[name](mutated, rng):
            applied += 1
    mutated.seed = seed
    mutated.name = f"{spec.name}_m{seed}"
    return _repair(mutated)
