"""Fuzz campaign driver: generate → cross-check → shrink → persist.

One campaign generates ``count`` programs (seeds ``seed .. seed+count-1``
round-robined over ``targets``), pushes the expensive oracle phase
through the PR-1 :class:`repro.engine.Engine` (worker-process fan-out
with per-job error capture), replays and classifies each suite in the
parent, and for every failing case runs the delta-debugging shrinker
and writes a minimal reproducer + seed to the corpus directory.

Two feedback mechanisms close the loop (both off by default and both
deterministic given the campaign seed):

- **Steering** (``steer=True``): the campaign runs in rounds of
  ``steer_batch`` cases; after each round the accumulated
  :class:`~repro.fuzz.steer.ConstructCoverage` is turned into a
  :class:`~repro.fuzz.steer.GrammarBias` that weights the next round's
  grammar draws toward still-uncovered IR constructs.  The bias is a
  pure function of completed rounds, so any ``jobs`` value sees the
  identical schedule.
- **Corpus-guided mutation** (``mutate_fraction > 0``): a per-case RNG
  (keyed off the campaign seed and case index) decides whether to
  perturb a saved reproducer via :func:`~repro.fuzz.mutate.mutate_spec`
  instead of generating from scratch.  The mutation pool is loaded
  once, up front, from ``mutate_corpus`` (default: the campaign's own
  corpus directory).

The invariant the CLI and smoke tests assert: every generated program
either passes differential replay or leaves a reproducer in the corpus
— a campaign never silently drops a finding.
"""

from __future__ import annotations

import random
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..interp.batch import ReplayStats
from .corpus import load_corpus, write_corpus_entry
from .generator import FUZZ_TARGETS, generate_spec
from .harness import CaseResult, classify_replay, run_spec
from .mutate import mutate_spec
from .shrink import shrink_spec
from .steer import IDENTITY_BIAS, ConstructCoverage

__all__ = ["FuzzCampaignConfig", "CampaignSummary", "run_fuzz_campaign"]


@dataclass(frozen=True)
class FuzzCampaignConfig:
    seed: int = 0
    count: int = 25
    targets: tuple = ("v1model", "ebpf_model")
    corpus_dir: str = "fuzz-corpus"
    jobs: int = 1
    max_tests: int | None = 16       # oracle test budget per program
    oracle_seed: int = 1
    shrink: bool = True
    shrink_checks: int = 200         # predicate budget per finding
    steer: bool = False              # coverage-guided grammar steering
    steer_batch: int = 8             # cases per steering round
    batch_replay: bool = True        # lane-engine suite replay
    steer_strength: float = 4.0      # uncovered-construct weight boost
    mutate_fraction: float = 0.0     # P(case mutates a reproducer)
    mutate_corpus: str | None = None  # pool dir (default: corpus_dir)

    def __post_init__(self):
        for target in self.targets:
            if target not in FUZZ_TARGETS:
                raise KeyError(
                    f"unknown fuzz target {target!r}; "
                    f"available: {', '.join(FUZZ_TARGETS)}"
                )
        if self.count < 0:
            raise ValueError("count must be >= 0")
        if not self.targets:
            raise ValueError("need at least one target")
        if self.steer_batch < 1:
            raise ValueError("steer_batch must be >= 1")
        if not 0.0 <= self.mutate_fraction <= 1.0:
            raise ValueError("mutate_fraction must be in [0, 1]")

    def case_plan(self):
        """The deterministic (seed, target) list this campaign runs."""
        return [
            (self.seed + i, self.targets[i % len(self.targets)])
            for i in range(self.count)
        ]


@dataclass
class CampaignSummary:
    config: FuzzCampaignConfig
    cases: list = field(default_factory=list)        # [CaseResult]
    corpus_entries: list = field(default_factory=list)  # [Path]
    elapsed: float = 0.0
    construct_coverage: ConstructCoverage = field(
        default_factory=ConstructCoverage)
    replay: ReplayStats = field(default_factory=ReplayStats)

    @property
    def num_passed(self) -> int:
        return sum(1 for c in self.cases if c.passed)

    @property
    def num_failed(self) -> int:
        return len(self.cases) - self.num_passed

    @property
    def num_mutated(self) -> int:
        return sum(1 for c in self.cases if c.origin != "generated")

    def by_classification(self) -> dict:
        counts: dict = {}
        for case in self.cases:
            counts[case.classification] = \
                counts.get(case.classification, 0) + 1
        return dict(sorted(counts.items()))

    def solver_stats(self) -> dict:
        """Campaign-wide sums of the per-case oracle stats.

        Every numeric field of each case's ``ExplorationStats`` dict is
        accumulated, so worker-process runs contribute the same way
        sequential ones do (the per-worker shards were already absorbed
        into each case's stats by the engine).
        """
        totals: dict = {}
        for case in self.cases:
            for key, value in case.stats.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                totals[key] = totals.get(key, 0) + value
        return dict(sorted(totals.items()))

    def record(self, recorder) -> None:
        """Fold this summary into a :class:`repro.report.Recorder`.

        The campaign block carries construct coverage (the grammar-side
        coverage curve), per-case outcomes, and the steering/mutation
        knobs, so steered and unsteered runs compare field-for-field.
        """
        recorder.num_tests = sum(c.num_tests for c in self.cases)
        exercised = [c.coverage for c in self.cases if c.num_tests > 0]
        recorder.statement_coverage = round(
            sum(exercised) / len(exercised), 4) if exercised else 0.0
        recorder.record_stats(self.solver_stats())
        recorder.extra["campaign"] = {
            "num_cases": len(self.cases),
            "num_passed": self.num_passed,
            "num_failed": self.num_failed,
            "steered": self.config.steer,
            "mutated_cases": self.num_mutated,
            "by_classification": self.by_classification(),
            "construct_coverage": self.construct_coverage.as_dict(),
            "cases": [c.to_dict() for c in self.cases],
            "corpus_entries": [str(p) for p in self.corpus_entries],
            "replay": {
                **self.replay.as_dict(),
                "fill_rate": round(self.replay.fill_rate(), 4),
                "batched": self.config.batch_replay,
            },
        }

    def report(self) -> str:
        lines = [
            f"fuzz campaign: {len(self.cases)} programs, "
            f"{self.num_passed} pass, {self.num_failed} findings "
            f"({self.elapsed:.1f}s)"
        ]
        if self.num_mutated:
            lines.append(f"  mutated from corpus: {self.num_mutated}")
        cc = self.construct_coverage
        if cc.cases:
            lines.append(
                f"  construct coverage: {len(cc.covered())}/"
                f"{len(cc.universe)} ({cc.percent:.1f}%)"
                + (" [steered]" if self.config.steer else "")
            )
        for kind, n in self.by_classification().items():
            lines.append(f"  {kind}: {n}")
        stats = self.solver_stats()
        if stats:
            elided = (stats.get("elide_hits_model", 0)
                      + stats.get("elide_hits_rewrite", 0)
                      + stats.get("elide_hits_subsume", 0))
            lines.append(
                f"  solver: {int(stats.get('solver_checks', 0))} checks, "
                f"{int(stats.get('sat_solves', 0))} SAT solves, "
                f"{int(elided)} elided, "
                f"{int(stats.get('cache_hits', 0))} cache hits"
            )
            lines.append(
                f"  intern: {int(stats.get('intern_hits', 0))} pool hits, "
                f"{int(stats.get('intern_misses', 0))} misses; "
                f"blast cache: {int(stats.get('blast_cache_hits', 0))} hits, "
                f"{int(stats.get('blast_clauses_replayed', 0))} clauses "
                "replayed"
            )
        if self.replay.replay_packets:
            lines.append(
                f"  replay: {self.replay.replay_packets} packets, "
                f"{self.replay.replay_batches} batches, "
                f"{self.replay.replay_scalar_packets} scalar, "
                f"fill {self.replay.fill_rate():.0%}"
            )
        for path in self.corpus_entries:
            lines.append(f"  reproducer: {path}")
        return "\n".join(lines)


def _oracle_results(config: FuzzCampaignConfig, specs, origins=None):
    """Run the oracle phase for every loadable spec.

    Yields ``(spec, case, oracle_result_or_None)`` in plan order.
    Frontend failures are caught here (loading happens in the parent);
    symex failures ride back on :class:`EngineResult.error`.
    ``origins`` maps spec names to case origins (mutated vs generated).
    """
    from .. import TestGen, TestGenConfig, load_program
    from ..engine import Engine
    from ..targets import get_target

    origins = origins or {}
    oracle_config = TestGenConfig(
        seed=config.oracle_seed, max_tests=config.max_tests
    )

    loaded = []      # (spec, program) pairs that reached the engine
    prepared = []    # (spec, case, program_or_None) in plan order
    for spec in specs:
        case = CaseResult(seed=spec.seed, target=spec.target, name=spec.name,
                          origin=origins.get(spec.name, "generated"))
        try:
            program = load_program(spec.render(), source_name=spec.name)
        except Exception as exc:
            case.classification = "oracle_crash"
            case.detail = _exc_str(exc)
            prepared.append((spec, case, None))
            continue
        prepared.append((spec, case, program))
        loaded.append((spec, program))

    if config.jobs > 1 and len(loaded) > 1:
        engine = Engine(jobs=config.jobs, config=oracle_config,
                        capture_errors=True)
        for spec, program in loaded:
            engine.submit(program, get_target(spec.target))
        engine_results = iter(engine.iter_results())
        for spec, case, program in prepared:
            if program is None:
                yield spec, case, None
                continue
            result = next(engine_results)
            if result.error is not None:
                case.classification = "oracle_crash"
                case.detail = result.error
                yield spec, case, None
            else:
                yield spec, case, (program, result.tests, result)
        return

    # Sequential path: run the oracle inline, no process pool.
    for spec, case, program in prepared:
        if program is None:
            yield spec, case, None
            continue
        try:
            result = TestGen(
                program, target=get_target(spec.target), config=oracle_config
            ).run()
        except Exception as exc:
            case.classification = "oracle_crash"
            case.detail = _exc_str(exc)
            yield spec, case, None
            continue
        yield spec, case, (program, result.tests, result)


def _exc_str(exc: BaseException) -> str:
    import traceback

    return "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()


def _mutation_pool(config: FuzzCampaignConfig):
    """The reproducer specs mutation may draw from, keyed by target.

    Loaded once, up front: a campaign must not mutate its *own* fresh
    findings mid-flight, or the plan would depend on failure timing.
    """
    if config.mutate_fraction <= 0.0:
        return {}
    source = config.mutate_corpus or config.corpus_dir
    pool: dict = {}
    for entry in load_corpus(source):
        if entry.spec is not None and entry.target in config.targets:
            pool.setdefault(entry.target, []).append(entry.spec)
    return pool


def _plan_specs(config: FuzzCampaignConfig, round_plan, base_index, bias,
                pool):
    """Build one round's specs: per-case mutate-or-generate decision.

    The decision RNG is keyed off ``(campaign seed, case index)`` only,
    so adding corpus entries changes *which parent* is drawn but a
    fixed pool replays exactly.
    """
    specs, origins = [], {}
    for offset, (seed, target) in enumerate(round_plan):
        index = base_index + offset
        rng = random.Random(f"mutate-pick|{config.seed}|{index}")
        roll = rng.random()
        parents = pool.get(target, ())
        if parents and roll < config.mutate_fraction:
            parent = parents[rng.randrange(len(parents))]
            spec = mutate_spec(parent, seed)
            origins[spec.name] = f"mutated:{parent.name}"
        else:
            spec = generate_spec(seed, target, bias=bias)
        specs.append(spec)
    return specs, origins


def run_fuzz_campaign(config: FuzzCampaignConfig,
                      on_case=None, recorder=None) -> CampaignSummary:
    """Run a full differential fuzz campaign.

    ``on_case(case)`` is invoked after each case finishes its oracle +
    replay phase (the CLI uses it for streaming progress).  An optional
    :class:`repro.report.Recorder` captures phase times and, at the
    end, the campaign block of the run report.
    """
    from ..testback.runner import run_suite

    def phase(name):
        return recorder.phase(name) if recorder is not None \
            else nullcontext()

    t0 = time.perf_counter()
    summary = CampaignSummary(config=config)
    pool = _mutation_pool(config)
    plan = config.case_plan()
    batch = config.steer_batch if config.steer else max(1, len(plan) or 1)
    bias = IDENTITY_BIAS

    def progress(case):
        if on_case is not None:
            on_case(case)

    for start in range(0, len(plan), batch):
        round_plan = plan[start:start + batch]
        with phase("generate"):
            specs, origins = _plan_specs(
                config, round_plan, start, bias, pool)

        # Phase order matters for determinism: classification and
        # shrinking happen in plan order regardless of worker
        # completion order (the Engine already yields in submission
        # order), and construct coverage folds in the same order.
        with phase("oracle_replay"):
            round_results = list(_oracle_results(config, specs, origins))
        for spec, case, oracle in round_results:
            if oracle is not None:
                program, tests, result = oracle
                case.num_tests = len(tests)
                try:
                    case.coverage = result.statement_coverage
                except Exception:
                    case.coverage = 0.0
                # Both the Engine path (EngineResult) and the sequential
                # path (TestGenResult) carry the run's ExplorationStats;
                # keep them on the case so per-worker solver behavior
                # survives capture_errors aggregation.
                stats = getattr(result, "stats", None)
                if stats is not None:
                    case.stats = stats.as_dict()
                case_replay = ReplayStats()
                with phase("oracle_replay"):
                    _passed, runs = run_suite(
                        tests, program, batch=config.batch_replay,
                        replay_stats=case_replay)
                if config.batch_replay:
                    case.stats.update(case_replay.as_dict())
                summary.replay.merge(case_replay)
                classify_replay(case, runs)
            summary.cases.append(case)
            summary.construct_coverage.record_case(
                spec, exercised=case.num_tests > 0)
            progress(case)
            if case.passed:
                continue

            # A finding: shrink it (re-running the oracle sequentially
            # on each candidate) and persist the minimal reproducer.
            shrunk = spec
            if config.shrink:
                want = case.classification

                def still_fails(candidate):
                    outcome = run_spec(
                        candidate, max_tests=config.max_tests,
                        oracle_seed=config.oracle_seed,
                        batch_replay=config.batch_replay,
                    )
                    return (not outcome.passed
                            and outcome.classification == want)

                with phase("shrink"):
                    shrunk = shrink_spec(
                        spec, still_fails, max_checks=config.shrink_checks
                    ).spec
            entry = write_corpus_entry(
                config.corpus_dir, case, shrunk, original_spec=spec
            )
            summary.corpus_entries.append(entry)

        if config.steer:
            bias = summary.construct_coverage.bias(config.steer_strength)

    summary.elapsed = time.perf_counter() - t0
    if recorder is not None:
        summary.record(recorder)
    return summary
