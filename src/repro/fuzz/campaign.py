"""Fuzz campaign driver: generate → cross-check → shrink → persist.

One campaign generates ``count`` programs (seeds ``seed .. seed+count-1``
round-robined over ``targets``), pushes the expensive oracle phase
through the PR-1 :class:`repro.engine.Engine` (worker-process fan-out
with per-job error capture), replays and classifies each suite in the
parent, and for every failing case runs the delta-debugging shrinker
and writes a minimal reproducer + seed to the corpus directory.

The invariant the CLI and smoke tests assert: every generated program
either passes differential replay or leaves a reproducer in the corpus
— a campaign never silently drops a finding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .corpus import write_corpus_entry
from .generator import FUZZ_TARGETS, generate_spec
from .harness import CaseResult, classify_replay, run_spec
from .shrink import shrink_spec

__all__ = ["FuzzCampaignConfig", "CampaignSummary", "run_fuzz_campaign"]


@dataclass(frozen=True)
class FuzzCampaignConfig:
    seed: int = 0
    count: int = 25
    targets: tuple = ("v1model", "ebpf_model")
    corpus_dir: str = "fuzz-corpus"
    jobs: int = 1
    max_tests: int | None = 16       # oracle test budget per program
    oracle_seed: int = 1
    shrink: bool = True
    shrink_checks: int = 200         # predicate budget per finding

    def __post_init__(self):
        for target in self.targets:
            if target not in FUZZ_TARGETS:
                raise KeyError(
                    f"unknown fuzz target {target!r}; "
                    f"available: {', '.join(FUZZ_TARGETS)}"
                )
        if self.count < 0:
            raise ValueError("count must be >= 0")
        if not self.targets:
            raise ValueError("need at least one target")

    def case_plan(self):
        """The deterministic (seed, target) list this campaign runs."""
        return [
            (self.seed + i, self.targets[i % len(self.targets)])
            for i in range(self.count)
        ]


@dataclass
class CampaignSummary:
    config: FuzzCampaignConfig
    cases: list = field(default_factory=list)        # [CaseResult]
    corpus_entries: list = field(default_factory=list)  # [Path]
    elapsed: float = 0.0

    @property
    def num_passed(self) -> int:
        return sum(1 for c in self.cases if c.passed)

    @property
    def num_failed(self) -> int:
        return len(self.cases) - self.num_passed

    def by_classification(self) -> dict:
        counts: dict = {}
        for case in self.cases:
            counts[case.classification] = \
                counts.get(case.classification, 0) + 1
        return dict(sorted(counts.items()))

    def solver_stats(self) -> dict:
        """Campaign-wide sums of the per-case oracle stats.

        Every numeric field of each case's ``ExplorationStats`` dict is
        accumulated, so worker-process runs contribute the same way
        sequential ones do (the per-worker shards were already absorbed
        into each case's stats by the engine).
        """
        totals: dict = {}
        for case in self.cases:
            for key, value in case.stats.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                totals[key] = totals.get(key, 0) + value
        return dict(sorted(totals.items()))

    def report(self) -> str:
        lines = [
            f"fuzz campaign: {len(self.cases)} programs, "
            f"{self.num_passed} pass, {self.num_failed} findings "
            f"({self.elapsed:.1f}s)"
        ]
        for kind, n in self.by_classification().items():
            lines.append(f"  {kind}: {n}")
        stats = self.solver_stats()
        if stats:
            elided = (stats.get("elide_hits_model", 0)
                      + stats.get("elide_hits_rewrite", 0)
                      + stats.get("elide_hits_subsume", 0))
            lines.append(
                f"  solver: {int(stats.get('solver_checks', 0))} checks, "
                f"{int(stats.get('sat_solves', 0))} SAT solves, "
                f"{int(elided)} elided, "
                f"{int(stats.get('cache_hits', 0))} cache hits"
            )
            lines.append(
                f"  intern: {int(stats.get('intern_hits', 0))} pool hits, "
                f"{int(stats.get('intern_misses', 0))} misses; "
                f"blast cache: {int(stats.get('blast_cache_hits', 0))} hits, "
                f"{int(stats.get('blast_clauses_replayed', 0))} clauses "
                "replayed"
            )
        for path in self.corpus_entries:
            lines.append(f"  reproducer: {path}")
        return "\n".join(lines)


def _oracle_results(config: FuzzCampaignConfig, specs):
    """Run the oracle phase for every loadable spec.

    Yields ``(spec, case, oracle_result_or_None)`` in plan order.
    Frontend failures are caught here (loading happens in the parent);
    symex failures ride back on :class:`EngineResult.error`.
    """
    from .. import TestGen, TestGenConfig, load_program
    from ..engine import Engine
    from ..targets import get_target

    oracle_config = TestGenConfig(
        seed=config.oracle_seed, max_tests=config.max_tests
    )

    loaded = []      # (spec, program) pairs that reached the engine
    prepared = []    # (spec, case, program_or_None) in plan order
    for spec in specs:
        case = CaseResult(seed=spec.seed, target=spec.target, name=spec.name)
        try:
            program = load_program(spec.render(), source_name=spec.name)
        except Exception as exc:
            case.classification = "oracle_crash"
            case.detail = _exc_str(exc)
            prepared.append((spec, case, None))
            continue
        prepared.append((spec, case, program))
        loaded.append((spec, program))

    if config.jobs > 1 and len(loaded) > 1:
        engine = Engine(jobs=config.jobs, config=oracle_config,
                        capture_errors=True)
        for spec, program in loaded:
            engine.submit(program, get_target(spec.target))
        engine_results = iter(engine.iter_results())
        for spec, case, program in prepared:
            if program is None:
                yield spec, case, None
                continue
            result = next(engine_results)
            if result.error is not None:
                case.classification = "oracle_crash"
                case.detail = result.error
                yield spec, case, None
            else:
                yield spec, case, (program, result.tests, result)
        return

    # Sequential path: run the oracle inline, no process pool.
    for spec, case, program in prepared:
        if program is None:
            yield spec, case, None
            continue
        try:
            result = TestGen(
                program, target=get_target(spec.target), config=oracle_config
            ).run()
        except Exception as exc:
            case.classification = "oracle_crash"
            case.detail = _exc_str(exc)
            yield spec, case, None
            continue
        yield spec, case, (program, result.tests, result)


def _exc_str(exc: BaseException) -> str:
    import traceback

    return "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()


def run_fuzz_campaign(config: FuzzCampaignConfig,
                      on_case=None) -> CampaignSummary:
    """Run a full differential fuzz campaign.

    ``on_case(case)`` is invoked after each case finishes its oracle +
    replay phase (the CLI uses it for streaming progress).
    """
    from ..testback.runner import run_suite

    t0 = time.perf_counter()
    summary = CampaignSummary(config=config)
    specs = [generate_spec(s, t) for s, t in config.case_plan()]

    def progress(case):
        if on_case is not None:
            on_case(case)

    # Phase order matters for determinism: classification and shrinking
    # happen in plan order regardless of worker completion order (the
    # Engine already yields in submission order).
    for spec, case, oracle in _oracle_results(config, specs):
        if oracle is not None:
            program, tests, result = oracle
            case.num_tests = len(tests)
            try:
                case.coverage = result.statement_coverage
            except Exception:
                case.coverage = 0.0
            # Both the Engine path (EngineResult) and the sequential
            # path (TestGenResult) carry the run's ExplorationStats;
            # keep them on the case so per-worker solver behavior
            # survives capture_errors aggregation.
            stats = getattr(result, "stats", None)
            if stats is not None:
                case.stats = stats.as_dict()
            _passed, runs = run_suite(tests, program)
            classify_replay(case, runs)
        summary.cases.append(case)
        progress(case)
        if case.passed:
            continue

        # A finding: shrink it (re-running the oracle sequentially on
        # each candidate) and persist the minimal reproducer.
        shrunk = spec
        if config.shrink:
            want = case.classification

            def still_fails(candidate):
                outcome = run_spec(
                    candidate, max_tests=config.max_tests,
                    oracle_seed=config.oracle_seed,
                )
                return (not outcome.passed
                        and outcome.classification == want)

            shrunk = shrink_spec(
                spec, still_fails, max_checks=config.shrink_checks
            ).spec
        entry = write_corpus_entry(
            config.corpus_dir, case, shrunk, original_spec=spec
        )
        summary.corpus_entries.append(entry)

    summary.elapsed = time.perf_counter() - t0
    return summary
