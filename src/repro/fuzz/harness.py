"""Differential harness: oracle vs. concrete interpreter, one program.

For each generated :class:`~repro.fuzz.generator.ProgramSpec` the
harness runs the symbolic-execution oracle (:class:`repro.TestGen`),
then replays every emitted abstract test on the matching concrete
simulator via :func:`repro.testback.runner.run_suite`.  Any
disagreement is classified into one of five mismatch kinds so campaign
triage can bucket failures before a human ever reads a reproducer:

=================  ========================================================
classification     meaning
=================  ========================================================
``pass``           every generated test replayed identically
``wrong_output``   payload width / drop-vs-forward / packet-count mismatch
``wrong_port``     packet emitted on a different egress port
``mask_violation`` payload differs under the oracle's *care* bits
``interp_exception``  the concrete simulator raised / flagged an error
``oracle_crash``   the frontend/symex stack itself raised
=================  ========================================================

The first four come from :class:`repro.testback.runner.TestRunResult`
kinds; ``oracle_crash`` is caught here because the oracle dying on a
well-typed program is itself a finding.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field

from .generator import ProgramSpec, generate_spec

__all__ = ["CaseResult", "run_case", "run_spec", "classify_run",
           "classify_replay", "CLASSIFICATIONS"]

CLASSIFICATIONS = (
    "pass", "wrong_output", "wrong_port", "mask_violation",
    "interp_exception", "oracle_crash",
)

# TestRunResult.kind -> campaign classification.
_KIND_MAP = {
    "wrong_output": "wrong_output",
    "missing_output": "wrong_output",
    "wrong_port": "wrong_port",
    "mask_violation": "mask_violation",
    "exception": "interp_exception",
}


@dataclass
class CaseResult:
    """Outcome of one differential case (one generated program)."""

    seed: int
    target: str
    name: str = ""
    passed: bool = False
    classification: str = "pass"
    detail: str = ""
    num_tests: int = 0
    failed_test_ids: list = field(default_factory=list)
    coverage: float = 0.0
    # Oracle-phase solver/exploration stats (ExplorationStats.as_dict()).
    # Populated even for worker-process cases, so campaign reports can
    # aggregate solver behavior instead of just mismatch counts.
    stats: dict = field(default_factory=dict)
    # "generated" for fresh grammar draws, "mutated:<parent>" for
    # corpus-guided perturbations of a saved reproducer.
    origin: str = "generated"

    def __bool__(self):
        return self.passed

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "target": self.target,
            "name": self.name,
            "passed": self.passed,
            "classification": self.classification,
            "detail": self.detail,
            "num_tests": self.num_tests,
            "failed_test_ids": list(self.failed_test_ids),
            "coverage": self.coverage,
            "stats": dict(self.stats),
            "origin": self.origin,
        }


def classify_run(run) -> str:
    """Map a :class:`TestRunResult` to a campaign classification."""
    return _KIND_MAP.get(run.kind, "wrong_output")


def run_spec(spec: ProgramSpec, *, max_tests: int | None = 16,
             oracle_seed: int = 1, batch_replay: bool = True) -> CaseResult:
    """Differentially test one concrete spec.

    Used both for fresh campaign cases and by the shrinker to check a
    reduced candidate still fails the same way.  ``batch_replay``
    selects the lane-engine replay path (classifications are identical
    either way; only throughput and the ``replay_*`` counters differ).
    """
    from .. import TestGen, TestGenConfig, load_program
    from ..interp.batch import ReplayStats
    from ..targets import get_target
    from ..testback.runner import run_suite

    case = CaseResult(seed=spec.seed, target=spec.target, name=spec.name)
    try:
        program = load_program(spec.render(), source_name=spec.name)
        target = get_target(spec.target)
        config = TestGenConfig(seed=oracle_seed, max_tests=max_tests)
        result = TestGen(program, target=target, config=config).run()
    except Exception as exc:  # the oracle dying IS the finding
        case.classification = "oracle_crash"
        case.detail = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        return case

    case.num_tests = len(result.tests)
    case.coverage = result.statement_coverage
    if result.stats is not None:
        case.stats = result.stats.as_dict()
    replay_stats = ReplayStats()
    _passed, runs = run_suite(result.tests, program, batch=batch_replay,
                              replay_stats=replay_stats)
    if batch_replay:
        case.stats.update(replay_stats.as_dict())
    return classify_replay(case, runs)


def classify_replay(case: CaseResult, runs) -> CaseResult:
    """Fold a suite of :class:`TestRunResult` replays into ``case``.

    Classifies by the first failure (stable: ``run_suite`` preserves
    test order), but records every failing test id for triage.
    """
    failing = [r for r in runs if not r.passed]
    if not failing:
        case.passed = True
        return case
    first = failing[0]
    case.classification = classify_run(first)
    case.detail = f"test {first.test_id}: {first.detail}"
    case.failed_test_ids = [r.test_id for r in failing]
    return case


def run_case(seed: int, target: str, *, max_tests: int | None = 16,
             oracle_seed: int = 1, batch_replay: bool = True) -> CaseResult:
    """Generate the program for ``(seed, target)`` and run it
    differentially."""
    spec = generate_spec(seed, target)
    return run_spec(spec, max_tests=max_tests, oracle_seed=oracle_seed,
                    batch_replay=batch_replay)
