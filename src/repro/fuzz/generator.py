"""Seeded, grammar-based random P4-16 program generation.

The generator is Csmith-shaped: a seeded RNG drives a structured
:class:`ProgramSpec` (headers, a parser chain with select/lookahead,
tables over mixed match kinds, actions, checksum usage), and the spec
renders to concrete P4-16 source per target architecture (v1model,
ebpf_model, tna, t2na).  Everything it emits stays inside the subset
the frontend, mid-end, and both executors support, so every generated
program is a legitimate differential-testing input: any downstream
disagreement is a bug, not a language gap.

The spec is plain dataclasses (JSON-serializable via
:meth:`ProgramSpec.to_dict`) so the shrinker can reduce structure
rather than text, and a corpus entry can record exactly what was
generated.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field, replace

from .steer import IDENTITY_BIAS

__all__ = [
    "FieldSpec", "HeaderSpec", "ParserBranch", "ActionSpec", "KeySpec",
    "ConstEntrySpec", "TableSpec", "ApplyStmt", "ProgramSpec",
    "generate_spec", "render_program", "FUZZ_TARGETS",
]

FUZZ_TARGETS = ("v1model", "ebpf_model", "tna", "t2na")

# Field widths the generator draws from; header totals stay
# byte-aligned so parsers compose with byte-aligned packet lengths.
_FIELD_WIDTHS = (8, 16, 32)
# core.p4 declares exact/ternary/lpm everywhere; v1model adds
# range+optional, tna/t2na add range only, ebpf adds nothing.
_MATCH_KIND_WEIGHTS = {
    "v1model": (
        ("exact", 45), ("ternary", 20), ("lpm", 15),
        ("range", 10), ("optional", 10),
    ),
    "ebpf_model": (
        ("exact", 55), ("ternary", 25), ("lpm", 20),
    ),
    "tna": (
        ("exact", 50), ("ternary", 20), ("lpm", 18), ("range", 12),
    ),
    "t2na": (
        ("exact", 50), ("ternary", 20), ("lpm", 18), ("range", 12),
    ),
}


@dataclass
class FieldSpec:
    name: str
    width: int


@dataclass
class HeaderSpec:
    name: str                      # struct member name, e.g. "h0"
    fields: list                   # [FieldSpec]

    @property
    def type_name(self) -> str:
        return f"{self.name}_t"

    def bit_width(self) -> int:
        return sum(f.width for f in self.fields)


@dataclass
class ParserBranch:
    """One select case in the header chain: ``value [&&& mask]`` on the
    parent header's selector field transitions to ``header``."""

    header: str                    # target header name
    value: int
    mask: int | None = None        # None = exact constant case


@dataclass
class KeySpec:
    header: str
    fld: str
    match_kind: str


@dataclass
class ActionSpec:
    name: str
    kind: str                      # "noop" | "forward" | "drop" | "setf" | "addf"
    header: str = ""               # for setf/addf: the written field
    fld: str = ""
    op: str = "+"                  # for addf
    operand: int = 0               # for addf: constant operand


@dataclass
class ConstEntrySpec:
    keysets: list                  # [(value, mask_or_None)] per key
    action: str
    args: list                     # [int] action args
    priority: int | None = None


@dataclass
class TableSpec:
    name: str
    keys: list                     # [KeySpec]
    actions: list                  # [str] action names (default last)
    default_action: str = "nop"
    const_entries: list = field(default_factory=list)


@dataclass
class ApplyStmt:
    """One statement in the ingress/filter apply block."""

    kind: str                      # "apply" | "if_apply" | "assign"
    table: str = ""                # for apply / if_apply
    header: str = ""               # condition or assignment field
    fld: str = ""
    value: int = 0                 # comparison constant
    cond: str = "=="               # "==" | "<" | ">" | "valid"
    op: str = "+"                  # for assign
    operand: int = 0


@dataclass
class ProgramSpec:
    """A complete randomly generated program, target-specialized."""

    seed: int
    target: str
    name: str
    headers: list                  # [HeaderSpec]; headers[0] is the base
    branches: dict                 # parent header name -> [ParserBranch]
    selector: dict                 # parent header name -> selector field name
    actions: list                  # [ActionSpec]
    tables: list                   # [TableSpec]
    apply_stmts: list              # [ApplyStmt]
    use_checksum: bool = False     # v1model: update_checksum in compute
    use_lookahead: bool = False    # v1model/ebpf: lookahead pre-state
    accept_default: bool = True    # ebpf: initial accept value

    def header(self, name: str) -> HeaderSpec:
        for h in self.headers:
            if h.name == name:
                return h
        raise KeyError(name)

    def find_field(self, header: str, fld: str) -> FieldSpec:
        for f in self.header(header).fields:
            if f.name == fld:
                return f
        raise KeyError(f"{header}.{fld}")

    def to_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        return render_program(self)


# ===========================================================================
# Generation
# ===========================================================================

def _weighted(rng: random.Random, pairs, bias=IDENTITY_BIAS,
              prefix: str = "") -> str:
    """Weighted draw.  With the identity bias this consumes exactly the
    RNG draws the pre-steering generator did, so unbiased specs are
    bit-for-bit what they always were; a real bias multiplies weights
    (floats) and draws via ``rng.random()`` instead."""
    if bias.identity:
        total = sum(w for _v, w in pairs)
        roll: float = rng.randrange(total)
    else:
        pairs = [(v, bias.weight(f"{prefix}{v}", w)) for v, w in pairs]
        roll = rng.random() * sum(w for _v, w in pairs)
    for value, weight in pairs:
        roll -= weight
        if roll < 0:
            return value
    return pairs[-1][0]


def _biased_choice(rng: random.Random, bias, options):
    """Uniform choice under identity bias (same draw as ``rng.choice``);
    construct-key-weighted otherwise.  ``options`` is a list of
    ``(value, construct_key)`` pairs."""
    if bias.identity:
        return rng.choice([v for v, _key in options])
    weights = [(v, bias.weight(key, 1.0)) for v, key in options]
    roll = rng.random() * sum(w for _v, w in weights)
    for value, weight in weights:
        roll -= weight
        if roll < 0:
            return value
    return weights[-1][0]


def _make_header(rng: random.Random, name: str, *, base: bool) -> HeaderSpec:
    fields = []
    if base:
        # The base header always carries a 16-bit selector the parser
        # branches on, and a checksum slot the compute block may fill.
        fields.append(FieldSpec("tag", 16))
    for i in range(rng.randint(1, 3)):
        fields.append(FieldSpec(f"f{i}", rng.choice(_FIELD_WIDTHS)))
    if base:
        fields.append(FieldSpec("csum", 16))
    return HeaderSpec(name, fields)


def _data_fields(header: HeaderSpec) -> list:
    """Fields safe for tables/actions to read and write (everything but
    the parser's selector, which steering must not disturb)."""
    return [f for f in header.fields if f.name != "tag"]


def _pick_field(rng: random.Random, spec_headers, *, writable: bool = False):
    header = rng.choice(spec_headers)
    pool = _data_fields(header) if writable else header.fields
    return header.name, rng.choice(pool).name


def generate_spec(seed: int, target: str, bias=None) -> ProgramSpec:
    """Generate one well-typed random program for ``target``.

    The same (seed, target) pair always produces the identical spec —
    campaign reproducibility rests on this.  An optional
    :class:`~repro.fuzz.steer.GrammarBias` steers grammar choices
    toward under-covered constructs; ``(seed, target, bias)`` is still
    a pure function, and the identity bias (or ``None``) reproduces the
    unbiased spec exactly.
    """
    if target not in FUZZ_TARGETS:
        raise KeyError(
            f"unknown fuzz target {target!r}; available: {', '.join(FUZZ_TARGETS)}"
        )
    if bias is None:
        bias = IDENTITY_BIAS
    rng = random.Random((seed, target).__repr__())
    name = f"fuzz_{target}_s{seed}"

    headers = [_make_header(rng, "h0", base=True)]
    n_extra = rng.randint(0, 2)
    if n_extra == 0 and bias.boosted("feature:multi_header"):
        n_extra = 1
    if n_extra < 2 and bias.boosted("parser:chain"):
        n_extra = 2               # a chain needs a header to hang off h1
    for i in range(n_extra):
        headers.append(_make_header(rng, f"h{i + 1}", base=False))

    # Parser chain: extras hang off h0's selector; with two extras the
    # second either also hangs off h0 (fan-out) or off h1 (chain, when
    # h1 has a 16-bit field to select on).
    branches: dict = {"h0": []}
    selector = {"h0": "tag"}
    chain_parent = "h0"
    for i, hdr in enumerate(headers[1:]):
        parent = "h0"
        if i == 1 and rng.random() < bias.prob("parser:chain", 0.5):
            h1 = headers[1]
            wide = [f for f in h1.fields if f.width == 16]
            if wide:
                parent = "h1"
                selector.setdefault("h1", wide[0].name)
                branches.setdefault("h1", [])
        value = rng.getrandbits(16)
        mask = None
        if rng.random() < bias.prob("parser:masked_branch", 0.25):
            mask = (0xFF00 if rng.random() < 0.5 else 0x00FF)
            value &= mask
        taken = {(b.value, b.mask) for b in branches.get(parent, [])}
        while (value, mask) in taken:
            value = (value + 1) & 0xFFFF if mask is None else (value ^ mask)
        branches.setdefault(parent, []).append(ParserBranch(hdr.name, value, mask))
        chain_parent = parent

    # Actions.  "nop" is always available as a safe default.
    actions = [ActionSpec("nop", "noop")]
    actions.append(ActionSpec("fwd", "forward"))
    if rng.random() < bias.prob("action:drop", 0.6):
        actions.append(ActionSpec("toss", "drop"))
    w_setf = bias.weight("action:setf", 1.0)
    w_addf = bias.weight("action:addf", 1.0)
    n_modify = rng.randint(0, 2)
    if n_modify == 0 and (w_setf > 1.0 or w_addf > 1.0):
        n_modify = 1              # a boosted modifier kind must exist
    for i in range(n_modify):
        hname, fname = _pick_field(rng, headers[:1], writable=True)
        if rng.random() < w_setf / (w_setf + w_addf):
            actions.append(ActionSpec(f"setf{i}", "setf", header=hname, fld=fname))
        else:
            actions.append(ActionSpec(
                f"addf{i}", "addf", header=hname, fld=fname,
                op=_biased_choice(rng, bias, [("+", "op:add"), ("-", "op:sub"),
                                              ("^", "op:xor")]),
                operand=rng.getrandbits(8) | 1,
            ))
    action_names = [a.name for a in actions]

    # Tables over mixed match kinds.
    tables = []
    for t in range(rng.randint(1, 3)):
        keys = []
        for _k in range(rng.randint(1, 2)):
            # Mostly key on the always-parsed base header; occasionally
            # on an extra header (exercising invalid-read taint).
            pool = headers[:1] if (len(headers) == 1 or rng.random() < 0.75) \
                else headers[1:]
            hname, fname = _pick_field(rng, pool)
            keys.append(KeySpec(
                hname, fname,
                _weighted(rng, _MATCH_KIND_WEIGHTS[target], bias,
                          prefix="match:")))
        n_act = rng.randint(1, min(2, len(action_names) - 1)) \
            if len(action_names) > 1 else 1
        chosen = rng.sample([n for n in action_names if n != "nop"],
                            k=min(n_act, len(action_names) - 1))
        table = TableSpec(
            name=f"t{t}",
            keys=keys,
            actions=chosen + ["nop"],
            default_action="toss" if (
                "toss" in chosen and rng.random() < 0.3) else "nop",
        )
        if rng.random() < bias.prob("feature:const_entries", 0.3) and all(
            k.match_kind in ("exact", "ternary") for k in keys
        ):
            prioritized = any(k.match_kind == "ternary" for k in keys)
            for e in range(rng.randint(1, 2)):
                keysets = []
                for k in keys:
                    width = _spec_field_width(headers, k)
                    value = rng.getrandbits(width)
                    mask = None
                    if k.match_kind == "ternary":
                        mask = rng.getrandbits(width) | 1
                        value &= mask
                    keysets.append((value, mask))
                entry_action = rng.choice(table.actions)
                table.const_entries.append(ConstEntrySpec(
                    keysets=keysets,
                    action=entry_action,
                    args=_const_args(rng, actions, entry_action),
                    priority=(e + 1) if prioritized else None,
                ))
        tables.append(table)

    # Apply block: each table applied once, some guarded; plus an
    # optional direct field update.
    apply_stmts = []
    for table in tables:
        if rng.random() < bias.prob("apply:guarded", 0.3):
            if len(headers) > 1 and rng.random() < bias.prob("cond:valid", 0.5):
                apply_stmts.append(ApplyStmt(
                    "if_apply", table=table.name,
                    header=rng.choice(headers[1:]).name, cond="valid",
                ))
            else:
                hname, fname = _pick_field(rng, headers[:1])
                width = spec_width(headers, hname, fname)
                apply_stmts.append(ApplyStmt(
                    "if_apply", table=table.name, header=hname, fld=fname,
                    value=rng.getrandbits(min(width, 8)),
                    cond=_biased_choice(rng, bias, [("==", "cond:eq"),
                                                    ("<", "cond:lt"),
                                                    (">", "cond:gt")]),
                ))
        else:
            apply_stmts.append(ApplyStmt("apply", table=table.name))
    if rng.random() < bias.prob("apply:assign", 0.4):
        hname, fname = _pick_field(rng, headers[:1], writable=True)
        apply_stmts.insert(rng.randrange(len(apply_stmts) + 1), ApplyStmt(
            "assign", header=hname, fld=fname,
            op=_biased_choice(rng, bias, [("+", "op:add"), ("^", "op:xor"),
                                          ("&", "op:and"), ("|", "op:or")]),
            operand=rng.getrandbits(8) | 1,
        ))

    return ProgramSpec(
        seed=seed,
        target=target,
        name=name,
        headers=headers,
        branches=branches,
        selector=selector,
        actions=actions,
        tables=tables,
        apply_stmts=apply_stmts,
        use_checksum=(target == "v1model"
                      and rng.random() < bias.prob("feature:checksum", 0.25)),
        use_lookahead=(target in ("v1model", "ebpf_model")
                       and rng.random() < bias.prob("parser:lookahead", 0.2)),
        accept_default=rng.random() < 0.5,
    )


def _spec_field_width(headers, key: KeySpec) -> int:
    for h in headers:
        if h.name == key.header:
            for f in h.fields:
                if f.name == key.fld:
                    return f.width
    raise KeyError(f"{key.header}.{key.fld}")


def spec_width(headers, hname: str, fname: str) -> int:
    return _spec_field_width(headers, KeySpec(hname, fname, "exact"))


def _const_args(rng: random.Random, actions, action_name: str) -> list:
    for a in actions:
        if a.name == action_name:
            if a.kind == "forward":
                return [rng.randrange(1, 64)]
            if a.kind == "setf":
                return [rng.getrandbits(8)]
            return []
    return []


# ===========================================================================
# Rendering
# ===========================================================================

def render_program(spec: ProgramSpec) -> str:
    if spec.target == "v1model":
        return _render_v1model(spec)
    if spec.target == "ebpf_model":
        return _render_ebpf(spec)
    if spec.target in ("tna", "t2na"):
        return _render_tofino(spec)
    raise KeyError(f"no renderer for target {spec.target!r}")


def _render_headers(spec: ProgramSpec) -> str:
    out = []
    for h in spec.headers:
        out.append(f"header {h.type_name} {{")
        for f in h.fields:
            out.append(f"    bit<{f.width}> {f.name};")
        out.append("}\n")
    out.append("struct headers_t {")
    for h in spec.headers:
        out.append(f"    {h.type_name} {h.name};")
    out.append("}\n")
    return "\n".join(out)


def _render_parser_states(spec: ProgramSpec, hdr: str, accept: str = "accept") -> str:
    """The shared header-chain states (start handled per target)."""
    out = []
    for h in spec.headers:
        state = "parse_h0" if h.name == "h0" else f"parse_{h.name}"
        out.append(f"    state {state} {{")
        out.append(f"        pkt.extract({hdr}.{h.name});")
        branch_list = spec.branches.get(h.name, [])
        if branch_list:
            sel = spec.selector[h.name]
            out.append(f"        transition select({hdr}.{h.name}.{sel}) {{")
            for b in branch_list:
                if b.mask is None:
                    out.append(f"            16w{b.value:#x}: parse_{b.header};")
                else:
                    out.append(
                        f"            16w{b.value:#x} &&& 16w{b.mask:#x}: "
                        f"parse_{b.header};"
                    )
            out.append(f"            default: {accept};")
            out.append("        }")
        else:
            out.append(f"        transition {accept};")
        out.append("    }")
    return "\n".join(out)


def _lookahead_start(next_state: str) -> str:
    return (
        "    state start {\n"
        "        bit<8> peek = pkt.lookahead<bit<8>>();\n"
        "        transition select(peek) {\n"
        "            8w0x80 &&& 8w0x80: skip_octet;\n"
        f"            default: {next_state};\n"
        "        }\n"
        "    }\n"
        "    state skip_octet {\n"
        "        pkt.advance(8);\n"
        f"        transition {next_state};\n"
        "    }"
    )


def _render_actions(spec: ProgramSpec, *, port_sink: str, port_type: str,
                    drop_stmt: str, indent: str = "    ") -> str:
    out = []
    for a in spec.actions:
        if a.kind == "noop":
            out.append(f"{indent}action nop() {{ }}")
        elif a.kind == "forward":
            out.append(f"{indent}action {a.name}({port_type} port) {{")
            out.append(f"{indent}    {port_sink} = port;")
            out.append(f"{indent}}}")
        elif a.kind == "drop":
            out.append(f"{indent}action {a.name}() {{")
            out.append(f"{indent}    {drop_stmt}")
            out.append(f"{indent}}}")
        elif a.kind == "setf":
            width = spec.find_field(a.header, a.fld).width
            out.append(f"{indent}action {a.name}(bit<{width}> v) {{")
            out.append(f"{indent}    h.{a.header}.{a.fld} = v;")
            out.append(f"{indent}}}")
        elif a.kind == "addf":
            width = spec.find_field(a.header, a.fld).width
            operand = a.operand & ((1 << width) - 1)
            out.append(f"{indent}action {a.name}() {{")
            out.append(
                f"{indent}    h.{a.header}.{a.fld} = "
                f"h.{a.header}.{a.fld} {a.op} {width}w{operand:#x};"
            )
            out.append(f"{indent}}}")
    return "\n".join(out)


def _render_tables(spec: ProgramSpec, indent: str = "    ") -> str:
    out = []
    for t in spec.tables:
        out.append(f"{indent}table {t.name} {{")
        out.append(f"{indent}    key = {{")
        for k in t.keys:
            out.append(
                f"{indent}        h.{k.header}.{k.fld}: {k.match_kind} "
                f"@name(\"{k.header}_{k.fld}\");"
            )
        out.append(f"{indent}    }}")
        out.append(f"{indent}    actions = {{ {'; '.join(t.actions)}; }}")
        out.append(f"{indent}    default_action = {t.default_action}();")
        if t.const_entries:
            out.append(f"{indent}    const entries = {{")
            for e in t.const_entries:
                parts = []
                for (value, mask), k in zip(e.keysets, t.keys):
                    width = _spec_field_width(spec.headers, k)
                    if mask is None:
                        parts.append(f"{width}w{value:#x}")
                    else:
                        parts.append(f"{width}w{value:#x} &&& {width}w{mask:#x}")
                keyset = ", ".join(parts)
                if len(parts) > 1:
                    keyset = f"({keyset})"
                args = ", ".join(str(v) for v in e.args)
                prio = f"@priority({e.priority}) " if e.priority is not None else ""
                out.append(f"{indent}        {prio}{keyset} : {e.action}({args});")
            out.append(f"{indent}    }}")
        out.append(f"{indent}}}")
    return "\n".join(out)


def _render_apply(spec: ProgramSpec, indent: str = "        ") -> str:
    out = []
    for s in spec.apply_stmts:
        if s.kind == "apply":
            out.append(f"{indent}{s.table}.apply();")
        elif s.kind == "if_apply":
            if s.cond == "valid":
                cond = f"h.{s.header}.isValid()"
            else:
                width = spec_width(spec.headers, s.header, s.fld)
                cond = f"h.{s.header}.{s.fld} {s.cond} {width}w{s.value:#x}"
            out.append(f"{indent}if ({cond}) {{")
            out.append(f"{indent}    {s.table}.apply();")
            out.append(f"{indent}}}")
        elif s.kind == "assign":
            width = spec_width(spec.headers, s.header, s.fld)
            operand = s.operand & ((1 << width) - 1)
            out.append(
                f"{indent}h.{s.header}.{s.fld} = "
                f"h.{s.header}.{s.fld} {s.op} {width}w{operand:#x};"
            )
    return "\n".join(out)


def _render_emits(spec: ProgramSpec, indent: str = "        ") -> str:
    return "\n".join(
        f"{indent}pkt.emit(h.{h.name});" for h in spec.headers
    )


def _render_v1model(spec: ProgramSpec) -> str:
    start = _lookahead_start("parse_h0") if spec.use_lookahead else (
        "    state start {\n        transition parse_h0;\n    }"
    )
    compute_body = "        "
    if spec.use_checksum:
        data = [f for f in spec.headers[0].fields
                if f.name not in ("tag", "csum")]
        fields = ", ".join(f"h.h0.{f.name}" for f in data)
        compute_body = (
            "        update_checksum(h.h0.isValid(),\n"
            f"                        {{ {fields} }},\n"
            "                        h.h0.csum,\n"
            "                        HashAlgorithm.csum16);"
        )
    return f"""// Generated by repro.fuzz (seed={spec.seed}, target={spec.target}).
#include <core.p4>
#include <v1model.p4>

{_render_headers(spec)}
struct meta_t {{
    bit<8> scratch;
}}

parser fz_parser(packet_in pkt, out headers_t h, inout meta_t meta,
                 inout standard_metadata_t sm) {{
{start}
{_render_parser_states(spec, "h")}
}}

control fz_verify(inout headers_t h, inout meta_t meta) {{ apply {{ }} }}

control fz_ingress(inout headers_t h, inout meta_t meta,
                   inout standard_metadata_t sm) {{
{_render_actions(spec, port_sink="sm.egress_spec", port_type="bit<9>",
                 drop_stmt="mark_to_drop(sm);")}
{_render_tables(spec)}
    apply {{
{_render_apply(spec)}
    }}
}}

control fz_egress(inout headers_t h, inout meta_t meta,
                  inout standard_metadata_t sm) {{ apply {{ }} }}

control fz_compute(inout headers_t h, inout meta_t meta) {{
    apply {{
{compute_body}
    }}
}}

control fz_deparser(packet_out pkt, in headers_t h) {{
    apply {{
{_render_emits(spec)}
    }}
}}

V1Switch(fz_parser(), fz_verify(), fz_ingress(), fz_egress(),
         fz_compute(), fz_deparser()) main;
"""


def _render_ebpf(spec: ProgramSpec) -> str:
    start = _lookahead_start("parse_h0") if spec.use_lookahead else (
        "    state start {\n        transition parse_h0;\n    }"
    )
    init = "true" if spec.accept_default else "false"
    flip = "\n        accept = true;" if not spec.accept_default else ""
    return f"""// Generated by repro.fuzz (seed={spec.seed}, target={spec.target}).
#include <core.p4>
#include <ebpf_model.p4>

{_render_headers(spec)}
parser fz_prs(packet_in pkt, out headers_t h) {{
{start}
{_render_parser_states(spec, "h")}
}}

control fz_flt(inout headers_t h, out bool accept) {{
{_render_actions(spec, port_sink="h.h0.csum",
                 port_type="bit<16>",
                 drop_stmt="accept = false;")}
{_render_tables(spec)}
    apply {{
        accept = {init};
        if (h.h0.isValid()) {{{flip}
{_render_apply(spec, indent="            ")}
        }}
    }}
}}

ebpfFilter(fz_prs(), fz_flt()) main;
"""


def _render_tofino(spec: ProgramSpec) -> str:
    port_md_bits = 64 if spec.target == "tna" else 192
    include = "tna.p4" if spec.target == "tna" else "t2na.p4"
    return f"""// Generated by repro.fuzz (seed={spec.seed}, target={spec.target}).
#include <core.p4>
#include <{include}>

{_render_headers(spec)}
struct ig_md_t {{
    bit<8> scratch;
}}

struct eg_md_t {{
    bit<8> unused;
}}

parser FzIngressParser(packet_in pkt,
        out headers_t h,
        out ig_md_t ig_md,
        out ingress_intrinsic_metadata_t ig_intr_md) {{
    state start {{
        pkt.extract(ig_intr_md);
        pkt.advance({port_md_bits});
        transition parse_h0;
    }}
{_render_parser_states(spec, "h")}
}}

control FzIngress(inout headers_t h,
        inout ig_md_t ig_md,
        in ingress_intrinsic_metadata_t ig_intr_md,
        in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
        inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
        inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {{
{_render_actions(spec, port_sink="ig_tm_md.ucast_egress_port",
                 port_type="PortId_t",
                 drop_stmt="ig_dprsr_md.drop_ctl = 1;")}
{_render_tables(spec)}
    apply {{
{_render_apply(spec)}
    }}
}}

control FzIngressDeparser(packet_out pkt,
        inout headers_t h,
        in ig_md_t ig_md,
        in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {{
    apply {{
{_render_emits(spec)}
    }}
}}

parser FzEgressParser(packet_in pkt,
        out headers_t h,
        out eg_md_t eg_md,
        out egress_intrinsic_metadata_t eg_intr_md) {{
    state start {{
        pkt.extract(eg_intr_md);
        transition parse_h0;
    }}
{_render_parser_states(spec, "h")}
}}

control FzEgress(inout headers_t h,
        inout eg_md_t eg_md,
        in egress_intrinsic_metadata_t eg_intr_md,
        in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
        inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
        inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {{
    apply {{ }}
}}

control FzEgressDeparser(packet_out pkt,
        inout headers_t h,
        in eg_md_t eg_md,
        in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {{
    apply {{
{_render_emits(spec)}
    }}
}}

Pipeline(FzIngressParser(), FzIngress(), FzIngressDeparser(),
         FzEgressParser(), FzEgress(), FzEgressDeparser()) pipe;

Switch(pipe) main;
"""
