"""Delta-debugging shrinker for failing fuzz programs.

Works on :class:`~repro.fuzz.generator.ProgramSpec` *structure*, not
program text: each pass proposes removing one structural element
(header, table, const-entry block, apply statement, action, key,
field, parser feature), repairs the spec so it stays well-typed, and
keeps the removal only if the predicate still fails the same way.
Passes repeat to a fixpoint under a bounded predicate budget, so a
shrink can never loop forever even if the failure is flaky.

This is ddmin specialized to a tree: removing one subtree at a time is
O(n) per round instead of ddmin's subset search, and since generated
specs are small (a handful of tables/actions), a few rounds reach a
local minimum quickly.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from .generator import ProgramSpec

__all__ = ["ShrinkResult", "shrink_spec"]


@dataclass
class ShrinkResult:
    spec: ProgramSpec          # the minimal still-failing spec
    steps: int                 # accepted reductions
    checks: int                # predicate evaluations spent


def _repair(spec: ProgramSpec) -> ProgramSpec:
    """Restore cross-references after a structural removal.

    Keeps the spec inside the generator's grammar: headers[0] survives,
    ``nop`` survives, tables always have >= 1 key and a valid default,
    const entries stay aligned with their table's key list.
    """
    header_names = {h.name for h in spec.headers}

    spec.branches = {
        parent: [b for b in blist if b.header in header_names]
        for parent, blist in spec.branches.items()
        if parent in header_names
    }
    spec.selector = {
        parent: sel for parent, sel in spec.selector.items()
        if parent in header_names
    }

    def field_exists(hname, fname):
        return hname in header_names and any(
            f.name == fname for f in spec.header(hname).fields
        )

    spec.actions = [
        a for a in spec.actions
        if a.name == "nop"
        or a.kind in ("forward", "drop")
        or field_exists(a.header, a.fld)
    ]
    action_names = {a.name for a in spec.actions}

    tables = []
    for t in spec.tables:
        keys_before = len(t.keys)
        t.keys = [k for k in t.keys if field_exists(k.header, k.fld)]
        if not t.keys:
            continue
        t.actions = [n for n in t.actions if n in action_names]
        if "nop" not in t.actions:
            t.actions.append("nop")
        if t.default_action not in t.actions:
            t.default_action = "nop"
        if len(t.keys) != keys_before:
            # Keysets are positional; realigning them is not worth the
            # complexity — a shrunken table just loses its entries.
            t.const_entries = []
        t.const_entries = [
            e for e in t.const_entries if e.action in t.actions
        ]
        tables.append(t)
    spec.tables = tables
    table_names = {t.name for t in spec.tables}

    stmts = []
    for s in spec.apply_stmts:
        if s.kind in ("apply", "if_apply") and s.table not in table_names:
            continue
        if s.kind == "if_apply" and s.cond == "valid":
            if s.header not in header_names:
                s.kind = "apply"
        elif s.kind in ("if_apply", "assign"):
            if not field_exists(s.header, s.fld):
                if s.kind == "assign":
                    continue
                s.kind = "apply"
        stmts.append(s)
    spec.apply_stmts = stmts
    return spec


def _candidates(spec: ProgramSpec):
    """Yield (description, reduced-spec) pairs, one removal each.

    Ordered biggest-subtree-first so early accepts delete the most.
    """

    def clone():
        return copy.deepcopy(spec)

    # Drop an extra header (never headers[0], the parse anchor).
    for i in range(len(spec.headers) - 1, 0, -1):
        c = clone()
        dropped = c.headers.pop(i)
        yield f"drop header {dropped.name}", _repair(c)

    # Drop a whole table.
    for i in range(len(spec.tables) - 1, -1, -1):
        c = clone()
        dropped = c.tables.pop(i)
        yield f"drop table {dropped.name}", _repair(c)

    # Drop an apply statement.
    for i in range(len(spec.apply_stmts) - 1, -1, -1):
        c = clone()
        c.apply_stmts.pop(i)
        yield f"drop apply stmt {i}", _repair(c)

    # Drop a table's const entries wholesale, then one at a time.
    for ti, t in enumerate(spec.tables):
        if t.const_entries:
            c = clone()
            c.tables[ti].const_entries = []
            yield f"drop {t.name} const entries", _repair(c)
            for ei in range(len(t.const_entries) - 1, -1, -1):
                c = clone()
                c.tables[ti].const_entries.pop(ei)
                yield f"drop {t.name} entry {ei}", _repair(c)

    # Drop one key from a multi-key table.
    for ti, t in enumerate(spec.tables):
        if len(t.keys) > 1:
            for ki in range(len(t.keys) - 1, -1, -1):
                c = clone()
                c.tables[ti].keys.pop(ki)
                c.tables[ti].const_entries = []
                yield f"drop {t.name} key {ki}", _repair(c)

    # Drop a non-nop action.
    for i in range(len(spec.actions) - 1, -1, -1):
        if spec.actions[i].name == "nop":
            continue
        c = clone()
        dropped = c.actions.pop(i)
        yield f"drop action {dropped.name}", _repair(c)

    # Drop an unreferenced-by-structure data field of an extra header.
    for hi in range(len(spec.headers) - 1, 0, -1):
        h = spec.headers[hi]
        sel = spec.selector.get(h.name)
        for fi in range(len(h.fields) - 1, -1, -1):
            if h.fields[fi].name == sel or len(h.fields) == 1:
                continue
            c = clone()
            c.headers[hi].fields.pop(fi)
            yield f"drop {h.name}.{h.fields[fi].name}", _repair(c)

    # Turn off optional parser/compute features.
    if spec.use_checksum:
        c = clone()
        c.use_checksum = False
        yield "disable checksum", c
    if spec.use_lookahead:
        c = clone()
        c.use_lookahead = False
        yield "disable lookahead", c

    # Drop a parser branch (the chain below it detaches via repair).
    for parent, blist in spec.branches.items():
        for bi in range(len(blist) - 1, -1, -1):
            c = clone()
            dropped = c.branches[parent].pop(bi)
            dead = [h for h in c.headers
                    if h.name == dropped.header and h.name != "h0"]
            for h in dead:
                c.headers.remove(h)
            yield f"drop branch {parent}->{dropped.header}", _repair(c)


def shrink_spec(spec: ProgramSpec, predicate, *,
                max_checks: int = 200) -> ShrinkResult:
    """Greedily reduce ``spec`` while ``predicate(candidate)`` holds.

    ``predicate`` must return True when the candidate still exhibits
    the original failure (same classification); the campaign wires in
    :func:`repro.fuzz.harness.run_spec` for this.  Returns the smallest
    accepted spec — ``spec`` itself if nothing could be removed.
    """
    current = copy.deepcopy(spec)
    steps = 0
    checks = 0
    progress = True
    while progress and checks < max_checks:
        progress = False
        for _desc, candidate in _candidates(current):
            if checks >= max_checks:
                break
            checks += 1
            try:
                still_fails = predicate(candidate)
            except Exception:
                # A candidate that crashes the *predicate machinery*
                # (not the oracle under test) is not a valid reduction.
                still_fails = False
            if still_fails:
                current = candidate
                steps += 1
                progress = True
                break  # restart candidate enumeration on the new base
    return ShrinkResult(spec=current, steps=steps, checks=checks)
