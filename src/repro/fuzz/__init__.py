"""Differential fuzzing subsystem (the correctness backstop).

Three cooperating pieces, mirroring Csmith-style compiler fuzzing:

- :mod:`repro.fuzz.generator` — a seeded, grammar-based random P4-16
  program generator emitting well-typed programs over the subset the
  frontend supports, specialized per target architecture;
- :mod:`repro.fuzz.harness` — the differential oracle-vs-interpreter
  check: run :class:`repro.TestGen` on a generated program, replay
  every emitted test on the matching concrete simulator, and classify
  any disagreement;
- :mod:`repro.fuzz.shrink` — a delta-debugging reducer that shrinks a
  failing program to a minimal reproducer, persisted with its seed by
  :mod:`repro.fuzz.corpus` for triage and regression replay.

Two feedback layers ride on top: :mod:`repro.fuzz.steer` (construct
coverage + grammar steering) and :mod:`repro.fuzz.mutate`
(corpus-guided perturbation of saved reproducers).

:func:`repro.fuzz.campaign.run_fuzz_campaign` ties them together and
fans test generation across worker processes via the
:class:`repro.engine.Engine`; the CLI front door is
``python -m repro fuzz``.
"""

from .campaign import CampaignSummary, FuzzCampaignConfig, run_fuzz_campaign
from .corpus import CorpusEntry, load_corpus, write_corpus_entry
from .generator import ProgramSpec, generate_spec, render_program
from .harness import CaseResult, run_case
from .mutate import mutate_spec
from .shrink import shrink_spec
from .steer import (ALL_CONSTRUCTS, ConstructCoverage, GrammarBias,
                    spec_constructs)

__all__ = [
    "ProgramSpec", "generate_spec", "render_program",
    "CaseResult", "run_case",
    "shrink_spec", "mutate_spec",
    "CorpusEntry", "load_corpus", "write_corpus_entry",
    "ALL_CONSTRUCTS", "ConstructCoverage", "GrammarBias",
    "spec_constructs",
    "FuzzCampaignConfig", "CampaignSummary", "run_fuzz_campaign",
]
