"""Corpus persistence for shrunken fuzz reproducers.

Layout (one directory per finding)::

    <corpus>/
        <name>/
            repro.p4     # the shrunken, still-failing program source
            meta.json    # seed, target, classification, spec, sizes

``meta.json`` carries everything needed to replay the finding without
the generator: the seed regenerates the *original* program
(``generate_spec(seed, target)``), the embedded spec dict rebuilds the
*shrunken* one, and ``repro.p4`` is the human-facing artifact.  See
TESTING.md for the triage workflow.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .generator import (ActionSpec, ApplyStmt, ConstEntrySpec, FieldSpec,
                        HeaderSpec, KeySpec, ParserBranch, ProgramSpec,
                        TableSpec)

__all__ = ["CorpusEntry", "write_corpus_entry", "load_corpus", "spec_from_dict"]

_META_NAME = "meta.json"
_SOURCE_NAME = "repro.p4"


@dataclass
class CorpusEntry:
    name: str
    seed: int
    target: str
    classification: str
    detail: str
    source: str
    spec: ProgramSpec | None
    path: Path


def spec_from_dict(data: dict) -> ProgramSpec:
    """Rebuild a :class:`ProgramSpec` from its ``to_dict`` form."""
    headers = [
        HeaderSpec(h["name"], [FieldSpec(**f) for f in h["fields"]])
        for h in data["headers"]
    ]
    branches = {
        parent: [ParserBranch(**b) for b in blist]
        for parent, blist in data["branches"].items()
    }
    actions = [ActionSpec(**a) for a in data["actions"]]
    tables = []
    for t in data["tables"]:
        tables.append(TableSpec(
            name=t["name"],
            keys=[KeySpec(**k) for k in t["keys"]],
            actions=list(t["actions"]),
            default_action=t["default_action"],
            const_entries=[
                ConstEntrySpec(
                    keysets=[tuple(ks) for ks in e["keysets"]],
                    action=e["action"],
                    args=list(e["args"]),
                    priority=e["priority"],
                )
                for e in t["const_entries"]
            ],
        ))
    return ProgramSpec(
        seed=data["seed"],
        target=data["target"],
        name=data["name"],
        headers=headers,
        branches=branches,
        selector=dict(data["selector"]),
        actions=actions,
        tables=tables,
        apply_stmts=[ApplyStmt(**s) for s in data["apply_stmts"]],
        use_checksum=data["use_checksum"],
        use_lookahead=data["use_lookahead"],
        accept_default=data["accept_default"],
    )


def write_corpus_entry(corpus_dir, case, shrunk_spec: ProgramSpec,
                       *, original_spec: ProgramSpec | None = None) -> Path:
    """Persist one finding; returns the entry directory.

    ``case`` is the :class:`repro.fuzz.harness.CaseResult` that
    classified the failure (pre-shrink).
    """
    corpus = Path(corpus_dir)
    entry_dir = corpus / f"{shrunk_spec.name}_{case.classification}"
    entry_dir.mkdir(parents=True, exist_ok=True)
    (entry_dir / _SOURCE_NAME).write_text(shrunk_spec.render())
    meta = {
        "seed": case.seed,
        "target": case.target,
        "classification": case.classification,
        "detail": case.detail,
        "num_tests": case.num_tests,
        "failed_test_ids": list(case.failed_test_ids),
        "spec": shrunk_spec.to_dict(),
        "shrunk": {
            "headers": len(shrunk_spec.headers),
            "tables": len(shrunk_spec.tables),
            "actions": len(shrunk_spec.actions),
        },
    }
    if original_spec is not None:
        meta["original"] = {
            "headers": len(original_spec.headers),
            "tables": len(original_spec.tables),
            "actions": len(original_spec.actions),
        }
    (entry_dir / _META_NAME).write_text(json.dumps(meta, indent=2) + "\n")
    return entry_dir


def load_corpus(corpus_dir) -> list:
    """Load every reproducer under ``corpus_dir`` (sorted by name)."""
    corpus = Path(corpus_dir)
    entries = []
    if not corpus.is_dir():
        return entries
    for entry_dir in sorted(p for p in corpus.iterdir() if p.is_dir()):
        meta_path = entry_dir / _META_NAME
        source_path = entry_dir / _SOURCE_NAME
        if not meta_path.is_file() or not source_path.is_file():
            continue
        meta = json.loads(meta_path.read_text())
        spec = spec_from_dict(meta["spec"]) if "spec" in meta else None
        entries.append(CorpusEntry(
            name=entry_dir.name,
            seed=meta["seed"],
            target=meta["target"],
            classification=meta["classification"],
            detail=meta.get("detail", ""),
            source=source_path.read_text(),
            spec=spec,
            path=entry_dir,
        ))
    return entries
