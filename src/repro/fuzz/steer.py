"""Coverage-guided campaign steering (the Test4DT feedback loop).

A fuzz campaign's effectiveness is how much of the *grammar* its
programs collectively push through the oracle — a hundred programs that
all use exact-match tables and ``setf`` actions exercise a sliver of
the IR.  This module closes the loop:

- :func:`spec_constructs` maps a generated :class:`ProgramSpec` to the
  set of IR-construct keys it exercises (match kinds, action kinds,
  parser features, apply shapes, arithmetic ops, ...);
- :class:`ConstructCoverage` accumulates which constructs the campaign
  has pushed through oracle + replay so far, and exposes the coverage
  curve the run report records;
- :meth:`ConstructCoverage.bias` turns the *uncovered* construct set
  into a :class:`GrammarBias` — weight multipliers the program
  generator applies to its grammar choices, steering the next round of
  programs toward what the campaign has not yet exercised.

Everything is deterministic given the campaign seed: the bias is a
pure function of the (ordered) case results so far, and a biased
``generate_spec`` is a pure function of ``(seed, target, bias)``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ALL_CONSTRUCTS", "GrammarBias", "ConstructCoverage",
           "spec_constructs", "IDENTITY_BIAS"]

_OP_NAMES = {"+": "op:add", "-": "op:sub", "^": "op:xor",
             "&": "op:and", "|": "op:or"}

# The construct universe: every grammar feature the generator can emit.
# Fixed and ordered so reports and steering are stable across runs.
ALL_CONSTRUCTS = (
    "match:exact", "match:ternary", "match:lpm", "match:range",
    "match:optional",
    "action:forward", "action:drop", "action:setf", "action:addf",
    "apply:plain", "apply:guarded", "apply:assign",
    "cond:valid", "cond:eq", "cond:lt", "cond:gt",
    "parser:branch", "parser:masked_branch", "parser:chain",
    "parser:lookahead",
    "feature:checksum", "feature:const_entries",
    "feature:priority_entries", "feature:multi_header",
    "op:add", "op:sub", "op:xor", "op:and", "op:or",
)

_COND_NAMES = {"==": "cond:eq", "<": "cond:lt", ">": "cond:gt",
               "valid": "cond:valid"}


def spec_constructs(spec) -> frozenset:
    """The IR-construct keys a :class:`ProgramSpec` exercises."""
    found = set()
    for table in spec.tables:
        for key in table.keys:
            found.add(f"match:{key.match_kind}")
        if table.const_entries:
            found.add("feature:const_entries")
            if any(e.priority is not None for e in table.const_entries):
                found.add("feature:priority_entries")
    for action in spec.actions:
        if action.kind == "forward":
            found.add("action:forward")
        elif action.kind == "drop":
            found.add("action:drop")
        elif action.kind == "setf":
            found.add("action:setf")
        elif action.kind == "addf":
            found.add("action:addf")
            found.add(_OP_NAMES.get(action.op, "op:add"))
    for stmt in spec.apply_stmts:
        if stmt.kind == "apply":
            found.add("apply:plain")
        elif stmt.kind == "if_apply":
            found.add("apply:guarded")
            found.add(_COND_NAMES.get(stmt.cond, "cond:eq"))
        elif stmt.kind == "assign":
            found.add("apply:assign")
            found.add(_OP_NAMES.get(stmt.op, "op:add"))
    for parent, branch_list in spec.branches.items():
        if branch_list:
            found.add("parser:branch")
        if any(b.mask is not None for b in branch_list):
            found.add("parser:masked_branch")
        if parent != "h0":
            found.add("parser:chain")
    if spec.use_lookahead:
        found.add("parser:lookahead")
    if spec.use_checksum:
        found.add("feature:checksum")
    if len(spec.headers) > 1:
        found.add("feature:multi_header")
    return frozenset(found)


class GrammarBias:
    """Multiplicative weights the generator applies to grammar choices.

    ``boost`` maps construct keys to multipliers (> 1 steers toward the
    construct).  The identity bias (empty boost) leaves the generator's
    RNG stream untouched, so ``generate_spec(s, t)`` and
    ``generate_spec(s, t, bias=GrammarBias())`` are identical.
    """

    __slots__ = ("boost",)

    def __init__(self, boost: dict | None = None):
        self.boost = dict(sorted((boost or {}).items()))

    @property
    def identity(self) -> bool:
        return not self.boost

    def weight(self, key: str, base: float) -> float:
        return base * self.boost.get(key, 1.0)

    def prob(self, key: str, base: float) -> float:
        """A biased probability, clamped so steering can raise a rare
        feature without ever making any choice certain."""
        mult = self.boost.get(key, 1.0)
        if mult == 1.0:
            return base
        return max(0.02, min(0.90, base * mult))

    def boosted(self, key: str) -> bool:
        return self.boost.get(key, 1.0) > 1.0

    def as_dict(self) -> dict:
        return dict(self.boost)

    def __repr__(self):
        return f"GrammarBias({self.boost!r})"


IDENTITY_BIAS = GrammarBias()


@dataclass
class _CasePoint:
    index: int
    covered: int
    percent: float


class ConstructCoverage:
    """Campaign-wide construct-coverage accumulator.

    A construct counts as *covered* once it appears in a program for
    which the oracle emitted at least one test (the construct's IR
    statements were symbolically executed and differentially replayed).
    ``record_case`` returns how many constructs the case newly covered,
    mirroring :meth:`CoverageTracker.record`.
    """

    def __init__(self, universe=ALL_CONSTRUCTS):
        self.universe = tuple(universe)
        self.counts: dict[str, int] = {c: 0 for c in self.universe}
        self._curve: list = []
        self.cases = 0

    def record_case(self, spec, *, exercised: bool) -> int:
        """Fold one finished case in.  ``exercised`` is whether the
        oracle actually generated tests for the program (a frontend or
        oracle crash exercises nothing)."""
        new = 0
        if exercised:
            present = spec_constructs(spec) & set(self.universe)
            for key in present:
                if self.counts[key] == 0:
                    new += 1
                self.counts[key] += 1
        self.cases += 1
        covered = sum(1 for c in self.universe if self.counts[c] > 0)
        self._curve.append([self.cases, covered, round(self.percent, 4)])
        return new

    def covered(self) -> frozenset:
        return frozenset(c for c in self.universe if self.counts[c] > 0)

    def uncovered(self) -> list:
        return [c for c in self.universe if self.counts[c] == 0]

    @property
    def percent(self) -> float:
        if not self.universe:
            return 100.0
        return 100.0 * len(self.covered()) / len(self.universe)

    def curve(self) -> list:
        return [list(p) for p in self._curve]

    def bias(self, strength: float = 4.0) -> GrammarBias:
        """The steering bias for the next generation round: boost every
        still-uncovered construct; leave covered ones at weight 1.

        Compound constructs get their prerequisites boosted too —
        priority entries only exist on ternary-keyed const-entry
        tables, so an uncovered ``feature:priority_entries`` pulls
        ``match:ternary`` and ``feature:const_entries`` along even when
        those are already covered on their own."""
        boost = {c: strength for c in self.uncovered()}
        if "feature:priority_entries" in boost:
            boost.setdefault("match:ternary", strength)
            boost.setdefault("feature:const_entries", strength)
        if any(k in boost for k in ("op:add", "op:sub", "op:xor")):
            boost.setdefault("action:addf", strength)
        return GrammarBias(boost)

    def as_dict(self) -> dict:
        return {
            "covered": len(self.covered()),
            "universe": len(self.universe),
            "percent": round(self.percent, 4),
            "curve": self.curve(),
            "uncovered": self.uncovered(),
        }
