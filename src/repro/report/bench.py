"""``repro bench``: the pinned benchmark set and its trajectory file.

One invocation measures the current tree on a fixed workload — the
Table-4a large-program subset (oracle runs with coverage curves and
cache rates) plus a small steered fuzz smoke campaign — and *appends*
the result as one point to ``BENCH_<label>.json``.  Successive points
over successive PRs form the performance/coverage trajectory the
roadmap tracks; the file itself validates against the
``bench_trajectory`` branch of ``run_report.schema.json``.

Counts, coverage, and curves are deterministic for a fixed seed; wall
times and cache-warmth counters are the machine-dependent residue and
are exactly what :func:`repro.report.normalized` strips.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .recorder import Recorder, SCHEMA_VERSION, cache_rates
from .schema import load_schema, validate

__all__ = ["BENCH_ROWS", "QUICK_ROWS", "REPLAY_ROWS", "run_bench",
           "measure_replay_throughput", "append_point", "trajectory_path",
           "solver_block"]

# The tbl4a subset: same programs and caps as the benchmark suite.
BENCH_ROWS = (
    ("middleblock", "v1model", None),
    ("up4", "v1model", None),
    ("switch_lite", "tna", 80),
)

# Bounded variant for the perfsmoke guard: capped test budgets, two
# rows, a handful of fuzz cases — seconds, not minutes.
QUICK_ROWS = (
    ("middleblock", "v1model", 48),
    ("up4", "v1model", 32),
)

# The replay-throughput workload: one program per compiled family.
# These stay on the lane engine's fast path (middleblock/up4 fall back
# — 128-bit fields, meters — so they would measure the scalar path
# twice and say nothing about lane packing).
REPLAY_ROWS = (
    ("fig1a", "v1model"),
    ("match_kinds", "v1model"),
    ("tna_forward", "tna"),
    ("ebpf_filter", "ebpf_model"),
)


def trajectory_path(out_dir, label: str) -> Path:
    return Path(out_dir) / f"BENCH_{label}.json"


def solver_block(stats: dict, phase_times: dict) -> dict:
    """The Fig 7 solver view of one bench point.

    CPU-split fractions (solver / bit-blast / interpreter step over the
    oracle phase's wall time) plus the incremental status plane's
    reuse and clause-retention counters — the per-PR scoreboard for
    solver-side speedups.  Fractions are wall-derived and therefore
    machine-dependent; the counters and rates are deterministic for a
    fixed seed.
    """
    def frac(num, den):
        return round(num / den, 6) if den else 0.0

    oracle = phase_times.get("oracle", 0.0)
    return {
        "solve_frac": frac(stats.get("solve_time_s", 0.0), oracle),
        "blast_frac": frac(stats.get("blast_time_s", 0.0), oracle),
        "step_frac": frac(stats.get("step_time", 0.0), oracle),
        "sat_solves": stats.get("sat_solves", 0),
        "solver_checks": stats.get("solver_checks", 0),
        "feasibility_checks": stats.get("feasibility_checks", 0),
        "feasibility_cache_hits": stats.get("feasibility_cache_hits", 0),
        "incremental": {
            "solves": stats.get("inc_solves", 0),
            "levels_pushed": stats.get("inc_levels_pushed", 0),
            "levels_popped": stats.get("inc_levels_popped", 0),
            "levels_reused": stats.get("inc_levels_reused", 0),
            "reuse_rate": frac(stats.get("inc_levels_reused", 0),
                               stats.get("inc_levels_assumed", 0)),
            "learned_retained": stats.get("inc_learned_retained", 0),
            "learned_deleted": stats.get("inc_learned_deleted", 0),
            "clauses_gced": stats.get("inc_clauses_gced", 0),
            "db_reductions": stats.get("inc_db_reductions", 0),
        },
    }


def _oracle_row(name, target_name, cap, *, seed, jobs):
    from .. import TestGen, TestGenConfig, load_program
    from ..targets import get_target

    rec = Recorder("bench", seed=seed, program=name, target=target_name)
    config = TestGenConfig(seed=seed, max_tests=cap, jobs=jobs)
    t0 = time.perf_counter()
    with rec.phase("oracle"):
        gen = TestGen(load_program(name), target=get_target(target_name),
                      config=config)
        result = gen.run()
    wall = time.perf_counter() - t0
    rec.record_program_run(gen.last_run, num_tests=len(result.tests))
    return {
        "program": name,
        "target": target_name,
        "num_tests": len(result.tests),
        "statement_coverage": round(result.statement_coverage, 4),
        "coverage_curve": gen.last_run.coverage.curve(),
        "cache_rates": cache_rates(rec.stats),
        "wall_s": round(wall, 6),
    }, rec


def _fuzz_block(*, seed, count, jobs, corpus_dir):
    from ..fuzz import FuzzCampaignConfig, run_fuzz_campaign

    rec = Recorder("bench-fuzz", seed=seed)
    config = FuzzCampaignConfig(
        seed=seed, count=count, corpus_dir=str(corpus_dir), jobs=jobs,
        max_tests=8, steer=True, steer_batch=max(2, count // 3),
        shrink=False,
    )
    summary = run_fuzz_campaign(config, recorder=rec)
    doc = rec.report()
    return {
        "num_cases": len(summary.cases),
        "num_passed": summary.num_passed,
        "num_failed": summary.num_failed,
        "construct_coverage": summary.construct_coverage.as_dict(),
        "cache_rates": doc["cache_rates"],
        "phase_times_s": doc["phase_times_s"],
    }


def measure_replay_throughput(*, seed: int = 1, max_tests: int = 16,
                              packets_per_suite: int = 48,
                              min_time_s: float = 0.25) -> dict:
    """Time suite replay scalar vs. lane-packed on :data:`REPLAY_ROWS`.

    Generates each suite once with the oracle, tiles it to
    ``packets_per_suite`` packets (small corpus programs have 3-6 paths;
    tiling models a campaign replaying many cases of one program, which
    is where full lanes actually come from), then replays everything
    repeatedly through :func:`repro.testback.runner.run_suite` in both
    modes until ``min_time_s`` of wall time accumulates per mode.
    Everything but the two wall times (and hence the rates) is
    deterministic for a fixed seed.
    """
    from .. import TestGen, TestGenConfig, load_program
    from ..interp.batch import ReplayStats
    from ..targets import get_target
    from ..testback.runner import run_suite

    suites = []
    for name, target_name in REPLAY_ROWS:
        program = load_program(name)
        config = TestGenConfig(seed=seed, max_tests=max_tests)
        result = TestGen(program, target=get_target(target_name),
                         config=config).run()
        tests = list(result.tests)
        reps = -(-packets_per_suite // len(tests))
        suites.append((program, (tests * reps)[:packets_per_suite]))

    def once(batch, stats=None):
        packets = 0
        for program, tests in suites:
            run_suite(tests, program, seed=seed, batch=batch,
                      replay_stats=stats)
            packets += len(tests)
        return packets

    def timed(batch):
        once(batch)  # warm the compile cache / interpreter setup
        packets = 0
        reps = 0
        t0 = time.perf_counter()
        while True:
            packets += once(batch)
            reps += 1
            elapsed = time.perf_counter() - t0
            if elapsed >= min_time_s and reps >= 3:
                return packets / elapsed

    stats = ReplayStats()
    once(True, stats)
    batch_pps = timed(True)
    scalar_pps = timed(False)
    return {
        "programs": [name for name, _ in REPLAY_ROWS],
        "packets": sum(len(tests) for _, tests in suites),
        "scalar_pps": round(scalar_pps, 1),
        "batch_pps": round(batch_pps, 1),
        "speedup": round(batch_pps / scalar_pps, 2),
        "fill_rate": round(stats.fill_rate(), 4),
        "scalar_fallback_packets": stats.replay_scalar_packets,
    }


def run_bench(label: str, out_dir, *, seed: int = 1, fuzz_count: int = 12,
              jobs: int = 1, quick: bool = False,
              fuzz_corpus=None) -> dict:
    """Run the pinned benchmark set; returns the new trajectory point.

    The point is appended to ``BENCH_<label>.json`` under ``out_dir``
    (created if needed) and the whole trajectory re-validates against
    the checked-in schema before anything is written.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    rows_spec = QUICK_ROWS if quick else BENCH_ROWS
    if quick:
        fuzz_count = min(fuzz_count, 4)

    rows = []
    phase_times: dict = {}
    stats_total: dict = {}
    for name, target_name, cap in rows_spec:
        row, rec = _oracle_row(name, target_name, cap, seed=seed, jobs=jobs)
        rows.append(row)
        for pname, secs in rec.report()["phase_times_s"].items():
            phase_times[pname] = round(
                phase_times.get(pname, 0.0) + secs, 6)
        for key, value in rec.stats.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            stats_total[key] = stats_total.get(key, 0) + value

    corpus = fuzz_corpus if fuzz_corpus is not None \
        else out / f"bench-corpus-{label}"
    fuzz = _fuzz_block(seed=seed, count=fuzz_count, jobs=jobs,
                       corpus_dir=corpus) if fuzz_count > 0 else None

    replay = measure_replay_throughput(
        seed=seed, max_tests=8 if quick else 16,
        min_time_s=0.1 if quick else 0.25)

    point = {
        "label": label,
        "timestamp_s": round(time.time(), 3),
        "seed": seed,
        "phase_times_s": phase_times,
        "cache_rates": cache_rates(stats_total),
        "solver": solver_block(stats_total, phase_times),
        "rows": rows,
        "fuzz": fuzz,
        "replay": replay,
    }
    append_point(out, label, point)
    return point


def append_point(out_dir, label: str, point: dict) -> Path:
    """Append one point to the ``BENCH_<label>.json`` trajectory.

    The existing file (if any) must already be a valid trajectory; the
    updated document is validated before the write, so a bad point can
    never corrupt the history.
    """
    path = trajectory_path(out_dir, label)
    if path.is_file():
        doc = json.loads(path.read_text())
        if doc.get("kind") != "bench_trajectory":
            raise ValueError(f"{path} is not a bench trajectory")
    else:
        doc = {
            "schema_version": SCHEMA_VERSION,
            "kind": "bench_trajectory",
            "label": label,
            "points": [],
        }
    doc["points"].append(point)
    validate(doc, load_schema())
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True,
                               default=str) + "\n")
    return path
