"""A minimal JSON-Schema validator for run reports.

The repo deliberately runs on the bare stdlib (no ``jsonschema``
package), so this module implements the small, well-defined subset of
JSON Schema the checked-in report schemas actually use:

``type`` (including type lists), ``properties``, ``required``,
``additionalProperties`` (bool or schema), ``items``, ``enum``,
``oneOf``, ``minimum`` / ``maximum``, ``minItems``.

Downstream tooling can still feed ``run_report.schema.json`` to a full
validator; this one exists so the repo's own tests and the CLI can
guarantee every report they emit matches the published schema without
growing a dependency.
"""

from __future__ import annotations

import json
import pathlib

__all__ = ["SchemaError", "validate", "load_schema", "RUN_REPORT_SCHEMA_PATH"]

RUN_REPORT_SCHEMA_PATH = pathlib.Path(__file__).parent / "run_report.schema.json"

# JSON Schema type name -> accepted python types.  bool is explicitly
# not an "integer"/"number" (JSON Schema semantics; also a real bug
# class in stats dicts).
_TYPES = {
    "object": (dict,),
    "array": (list,),
    "string": (str,),
    "integer": (int,),
    "number": (int, float),
    "boolean": (bool,),
    "null": (type(None),),
}


class SchemaError(ValueError):
    """A schema violation, carrying the JSON path to the offender."""


def load_schema(path=None) -> dict:
    """Load a schema file (default: the run-report schema)."""
    target = pathlib.Path(path) if path is not None else RUN_REPORT_SCHEMA_PATH
    return json.loads(target.read_text())


def _type_ok(instance, type_name: str) -> bool:
    accepted = _TYPES[type_name]
    if isinstance(instance, bool) and type_name in ("integer", "number"):
        return False
    return isinstance(instance, accepted)


def validate(instance, schema: dict, path: str = "$") -> None:
    """Validate ``instance`` against ``schema``; raises
    :class:`SchemaError` naming the first violating path."""
    if "enum" in schema:
        if instance not in schema["enum"]:
            raise SchemaError(
                f"{path}: {instance!r} not in enum {schema['enum']!r}")

    if "oneOf" in schema:
        errors = []
        matches = 0
        for i, sub in enumerate(schema["oneOf"]):
            try:
                validate(instance, sub, path)
                matches += 1
            except SchemaError as exc:
                errors.append(f"[{i}] {exc}")
        if matches != 1:
            raise SchemaError(
                f"{path}: matched {matches} of {len(schema['oneOf'])} "
                f"oneOf branches; " + "; ".join(errors))

    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(_type_ok(instance, name) for name in names):
            raise SchemaError(
                f"{path}: expected {declared}, got {type(instance).__name__}")

    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            raise SchemaError(
                f"{path}: {instance} < minimum {schema['minimum']}")
        if "maximum" in schema and instance > schema["maximum"]:
            raise SchemaError(
                f"{path}: {instance} > maximum {schema['maximum']}")

    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                raise SchemaError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, value in instance.items():
            if not isinstance(key, str):
                raise SchemaError(f"{path}: non-string key {key!r}")
            sub = properties.get(key)
            if sub is not None:
                validate(value, sub, f"{path}.{key}")
            else:
                extra = schema.get("additionalProperties", True)
                if extra is False:
                    raise SchemaError(f"{path}: unexpected key {key!r}")
                if isinstance(extra, dict):
                    validate(value, extra, f"{path}.{key}")

    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            raise SchemaError(
                f"{path}: {len(instance)} items < minItems "
                f"{schema['minItems']}")
        items = schema.get("items")
        if isinstance(items, dict):
            for i, value in enumerate(instance):
                validate(value, items, f"{path}[{i}]")
