"""Per-run report recording (the Test4DT-style measure half of the
coverage feedback loop).

Every ``generate``/``fuzz``/``bench`` run threads a :class:`Recorder`
through the engine: it captures per-phase wall time, the coverage curve
(coverage vs. tests emitted), and the elision / intern / blast /
solve-cache hit rates already counted by ``ExplorationStats`` — then
serializes everything as one stable JSON document validated against
``run_report.schema.json``.

Two invariants the tests pin:

- **Schema stability** — reports validate against the checked-in
  schema, so downstream tooling can rely on field names and types.
- **Determinism modulo wall time** — :func:`normalized` strips every
  wall-clock/memory field; what remains is byte-identical for a fixed
  seed at any ``--jobs`` value.
"""

from __future__ import annotations

import json
import re
from contextlib import contextmanager

from .schema import load_schema, validate

__all__ = ["Recorder", "cache_rates", "normalized", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1

# Keys a determinism comparison must ignore, matched as substrings of
# the key name at any nesting depth:
#
# - wall-clock / host-load / memory readings ("timeouts" is
#   deliberately caught: external-solver timeouts are wall-dependent);
# - intern-pool and blast-cache counters — those caches are
#   process-global singletons (PR 4), so their hit counts depend on
#   what else already ran in the process, not on the run itself.
_VOLATILE_KEY = re.compile(
    r"time|elapsed|wall|rss|memory|timestamp|intern_|blast_", re.I)


def cache_rates(stats: dict) -> dict:
    """Derive the headline hit rates from a stats dict.

    Rates are plain fractions in [0, 1]; a dead layer (zero
    denominator) reports 0.0 rather than being omitted, so curve
    consumers get a fixed key set.
    """
    def rate(hits, total):
        return round(hits / total, 6) if total else 0.0

    hits = stats.get("cache_hits", 0)
    misses = stats.get("cache_misses", 0)
    elided = (stats.get("elide_hits_model", 0)
              + stats.get("elide_hits_rewrite", 0)
              + stats.get("elide_hits_subsume", 0))
    blast_hits = stats.get("blast_cache_hits", 0)
    blast_total = blast_hits + stats.get("blast_cache_misses", 0)
    intern_hits = stats.get("intern_hits", 0)
    intern_total = intern_hits + stats.get("intern_misses", 0)
    return {
        "solve_cache_hit_rate": rate(hits, hits + misses),
        "query_elision_rate": rate(elided, stats.get("solver_checks", 0)),
        "feasibility_elision_rate": rate(
            stats.get("feasibility_elided", 0),
            stats.get("feasibility_checks", 0)),
        "blast_cache_hit_rate": rate(blast_hits, blast_total),
        "intern_hit_rate": rate(intern_hits, intern_total),
        # Of the assumption levels the incremental feasibility plane
        # solved under, how many arrived pre-established on the reused
        # SAT trail (smt/sat.py reuse_trail)?
        "incremental_reuse_rate": rate(
            stats.get("inc_levels_reused", 0),
            stats.get("inc_levels_assumed", 0)),
    }


def normalized(report):
    """A deep copy of ``report`` with every volatile field removed
    (wall time, memory, process-global cache warmth).  Two runs of the
    same seeded workload must produce equal normalized reports — this
    is the comparison the determinism locks use."""
    if isinstance(report, dict):
        return {
            key: normalized(value)
            for key, value in report.items()
            if not (isinstance(key, str) and _VOLATILE_KEY.search(key))
        }
    if isinstance(report, list):
        return [normalized(item) for item in report]
    return report


class Recorder:
    """Accumulates one run's measurements into a schema-valid report.

    ::

        rec = Recorder("generate", seed=1, program="fig1a.p4",
                       target="v1model")
        with rec.phase("load"):
            program = load_program("fig1a")
        with rec.phase("generate"):
            tests = list(gen.iter_tests())
        rec.record_program_run(gen.last_run, num_tests=len(tests))
        rec.write("report.json")
    """

    def __init__(self, command: str, *, label: str | None = None,
                 seed: int | None = None, program: str | None = None,
                 target: str | None = None, config: dict | None = None):
        self.command = command
        self.label = label
        self.seed = seed
        self.program = program
        self.target = target
        self.config = dict(config) if config is not None else None
        self.num_tests = 0
        self.statement_coverage = 0.0
        self.coverage_curve: list = []
        self.stats: dict = {}
        self.extra: dict = {}
        self._phase_times: dict[str, float] = {}
        self._phase_order: list[str] = []

    # -- phases ---------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Time a phase; repeated phases accumulate."""
        import time

        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.add_phase_time(name, time.perf_counter() - t0)

    def add_phase_time(self, name: str, seconds: float) -> None:
        if name not in self._phase_times:
            self._phase_order.append(name)
            self._phase_times[name] = 0.0
        self._phase_times[name] += seconds

    # -- measurements ---------------------------------------------------

    def record_coverage_curve(self, curve) -> None:
        """Record a coverage curve (``CoverageTracker.curve()`` shape:
        ``[tests, covered, percent]`` points)."""
        self.coverage_curve = [list(point) for point in curve]
        if self.coverage_curve:
            self.statement_coverage = float(self.coverage_curve[-1][2])

    def record_stats(self, stats: dict) -> None:
        self.stats = dict(stats)

    def record_program_run(self, run, *, num_tests: int | None = None) -> None:
        """Capture a finished :class:`repro.engine.ProgramRun` (or any
        object with ``coverage`` and ``stats``): curve, final coverage,
        stats, and the solver-phase split already counted there."""
        self.record_coverage_curve(run.coverage.curve())
        self.statement_coverage = round(run.coverage.statement_percent, 4)
        stats = run.stats.as_dict() if hasattr(run.stats, "as_dict") \
            else dict(run.stats)
        self.record_stats(stats)
        if num_tests is not None:
            self.num_tests = num_tests
        else:
            self.num_tests = int(stats.get("tests_emitted", 0))
        for phase_key, stat_key in (("step", "step_time"),
                                    ("finalize", "finalize_time")):
            if stats.get(stat_key):
                self.add_phase_time(phase_key, float(stats[stat_key]))

    # -- output ---------------------------------------------------------

    def report(self) -> dict:
        """The complete report document (validated against the
        checked-in schema before it is returned)."""
        doc = {
            "schema_version": SCHEMA_VERSION,
            "kind": "run_report",
            "command": self.command,
            "label": self.label,
            "seed": self.seed,
            "program": self.program,
            "target": self.target,
            "config": self.config,
            "num_tests": int(self.num_tests),
            "statement_coverage": float(self.statement_coverage),
            "coverage_curve": self.coverage_curve,
            "phase_times_s": {
                name: round(self._phase_times[name], 6)
                for name in self._phase_order
            },
            "cache_rates": cache_rates(self.stats),
            "stats": self.stats,
        }
        if self.extra:
            doc.update(self.extra)
        validate(doc, load_schema())
        return doc

    def write(self, path) -> dict:
        """Serialize the report to ``path``; returns the report dict."""
        doc = self.report()
        with open(path, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        return doc
