"""Run reports: coverage curves, phase times, and cache-rate capture.

The public surface is :class:`Recorder` (accumulate one run's
measurements into a schema-valid JSON document), the checked-in schema
at :data:`RUN_REPORT_SCHEMA_PATH` with its stdlib validator, and the
helpers the determinism locks use (:func:`normalized`) plus the bench
trajectory writer (:mod:`repro.report.bench`).
"""

from .recorder import Recorder, SCHEMA_VERSION, cache_rates, normalized
from .schema import (RUN_REPORT_SCHEMA_PATH, SchemaError, load_schema,
                     validate)

__all__ = [
    "Recorder",
    "SCHEMA_VERSION",
    "cache_rates",
    "normalized",
    "RUN_REPORT_SCHEMA_PATH",
    "SchemaError",
    "load_schema",
    "validate",
]
