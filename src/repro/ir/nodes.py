"""Simplified, typed intermediate representation.

The front-end AST is lowered into this IR (``repro.ir.lower``), the
mid-end transforms normalize it (``repro.ir.transforms``), and both the
symbolic executor and the concrete interpreters consume it.  Statements
carry a unique ``stmt_id`` used for the paper's statement-coverage
metric (assigned after dead-code elimination, matching §7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..frontend.types import (
    BitsType,
    BoolType,
    ErrorType,
    HeaderType,
    P4Type,
    StackType,
    StructType,
)

__all__ = [
    # lvalues
    "LValue", "VarLV", "FieldLV", "IndexLV", "SliceLV",
    # expressions
    "IrExpr", "IrConst", "IrLValExpr", "IrUnop", "IrBinop", "IrTernary",
    "IrCast", "IrCall", "IrValidExpr", "IrApplyExpr", "IrConcat",
    "IrSliceExpr", "IrTupleExpr",
    # statements
    "IrStmt", "IrAssign", "IrVarDecl", "IrIf", "IrMethodCall",
    "IrApplyTable", "IrSwitch", "IrExit", "IrReturn",
    # parser
    "IrParserState", "IrTransition", "IrSelectCase",
    "KsConst", "KsMask", "KsRange", "KsDefault", "KsValueSet",
    # declarations
    "IrParam", "IrAction", "IrActionRef", "IrTableKey", "IrTableEntry",
    "IrTable", "IrParser", "IrControl", "IrValueSet", "IrInstance",
    "IrProgram", "BlockBinding",
]


# ---------------------------------------------------------------------------
# L-values
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LValue:
    p4_type: P4Type = None

    def path(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class VarLV(LValue):
    name: str = ""

    def path(self) -> str:
        return self.name


@dataclass(frozen=True)
class FieldLV(LValue):
    base: LValue = None
    field: str = ""

    def path(self) -> str:
        return f"{self.base.path()}.{self.field}"


@dataclass(frozen=True)
class IndexLV(LValue):
    base: LValue = None
    index: "IrExpr" = None  # constant after midend transforms

    def path(self) -> str:
        idx = self.index.value if isinstance(self.index, IrConst) else "?"
        return f"{self.base.path()}[{idx}]"


@dataclass(frozen=True)
class SliceLV(LValue):
    base: LValue = None
    hi: int = 0
    lo: int = 0

    def path(self) -> str:
        return f"{self.base.path()}[{self.hi}:{self.lo}]"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IrExpr:
    p4_type: P4Type = None


@dataclass(frozen=True)
class IrConst(IrExpr):
    value: int = 0  # bool for BoolType

    def __repr__(self):
        return f"IrConst({self.value}:{self.p4_type!r})"


@dataclass(frozen=True)
class IrLValExpr(IrExpr):
    lval: LValue = None


@dataclass(frozen=True)
class IrUnop(IrExpr):
    op: str = ""
    operand: IrExpr = None


@dataclass(frozen=True)
class IrBinop(IrExpr):
    op: str = ""
    left: IrExpr = None
    right: IrExpr = None


@dataclass(frozen=True)
class IrConcat(IrExpr):
    parts: tuple = ()


@dataclass(frozen=True)
class IrSliceExpr(IrExpr):
    expr: IrExpr = None
    hi: int = 0
    lo: int = 0


@dataclass(frozen=True)
class IrTernary(IrExpr):
    cond: IrExpr = None
    then: IrExpr = None
    other: IrExpr = None


@dataclass(frozen=True)
class IrCast(IrExpr):
    expr: IrExpr = None


@dataclass(frozen=True)
class IrCall(IrExpr):
    """Extern/builtin call, in expression or statement position.

    ``obj`` is the receiver l-value or instance name (``pkt`` for
    packet methods, a header lvalue for setValid, an extern instance
    name for register.read, ``None`` for free functions).
    """

    func: str = ""
    obj: object = None  # LValue | str | None
    args: tuple = ()
    type_args: tuple = ()


@dataclass(frozen=True)
class IrTupleExpr(IrExpr):
    """A ``{a, b, c}`` list literal (extern data arguments)."""

    elements: tuple = ()


@dataclass(frozen=True)
class IrValidExpr(IrExpr):
    header: LValue = None


@dataclass(frozen=True)
class IrApplyExpr(IrExpr):
    """``t.apply().hit`` / ``.miss`` (boolean) in expression position."""

    table: str = ""
    member: str = "hit"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

_next_stmt_id = [0]


def _fresh_stmt_id() -> int:
    _next_stmt_id[0] += 1
    return _next_stmt_id[0]


@dataclass
class IrStmt:
    stmt_id: int = field(default_factory=_fresh_stmt_id)
    location: object = None
    source_text: str = ""


@dataclass
class IrAssign(IrStmt):
    target: LValue = None
    value: IrExpr = None


@dataclass
class IrVarDecl(IrStmt):
    name: str = ""
    p4_type: P4Type = None
    init: Optional[IrExpr] = None


@dataclass
class IrIf(IrStmt):
    cond: IrExpr = None
    then_stmts: list = field(default_factory=list)
    else_stmts: list = field(default_factory=list)


@dataclass
class IrMethodCall(IrStmt):
    call: IrCall = None


@dataclass
class IrApplyTable(IrStmt):
    table: str = ""


@dataclass
class IrSwitch(IrStmt):
    """Switch on ``table.apply().action_run``."""

    table: str = ""
    cases: list = field(default_factory=list)  # list[(labels, stmts)]


@dataclass
class IrExit(IrStmt):
    pass


@dataclass
class IrReturn(IrStmt):
    value: Optional[IrExpr] = None


# ---------------------------------------------------------------------------
# Parser constructs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KsConst:
    value: int = 0
    width: int = 0


@dataclass(frozen=True)
class KsMask:
    value: IrExpr = None
    mask: IrExpr = None


@dataclass(frozen=True)
class KsRange:
    lo: IrExpr = None
    hi: IrExpr = None


@dataclass(frozen=True)
class KsDefault:
    pass


@dataclass(frozen=True)
class KsValueSet:
    name: str = ""


@dataclass
class IrSelectCase:
    keysets: list = field(default_factory=list)  # one per select expr
    state: str = ""


@dataclass
class IrTransition:
    direct: Optional[str] = None
    select_exprs: list = field(default_factory=list)
    cases: list = field(default_factory=list)
    stmt_id: int = field(default_factory=_fresh_stmt_id)


@dataclass
class IrParserState:
    name: str = ""
    statements: list = field(default_factory=list)
    transition: IrTransition = None


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass
class IrParam:
    name: str = ""
    direction: str = ""
    p4_type: P4Type = None


@dataclass
class IrAction:
    name: str = ""
    full_name: str = ""       # control-scoped, e.g. "Ingress.set_out"
    cp_name: str = ""         # @name annotation override
    params: list = field(default_factory=list)  # list[IrParam]; dir "" = control-plane
    body: list = field(default_factory=list)
    annotations: list = field(default_factory=list)

    @property
    def control_plane_params(self):
        return [p for p in self.params if p.direction == ""]


@dataclass
class IrActionRef:
    action: str = ""          # resolved full action name
    args: list = field(default_factory=list)  # bound IrExpr args (may be partial)
    annotations: list = field(default_factory=list)


@dataclass
class IrTableKey:
    expr: IrExpr = None
    match_kind: str = "exact"
    name: str = ""            # control-plane key name


@dataclass
class IrTableEntry:
    keysets: list = field(default_factory=list)
    action_ref: IrActionRef = None
    priority: Optional[int] = None


@dataclass
class IrTable:
    name: str = ""
    full_name: str = ""
    keys: list = field(default_factory=list)
    action_refs: list = field(default_factory=list)
    default_action: Optional[IrActionRef] = None
    const_entries: list = field(default_factory=list)
    size: Optional[int] = None
    annotations: list = field(default_factory=list)
    properties: dict = field(default_factory=dict)

    @property
    def cp_name(self) -> str:
        for ann in self.annotations:
            if ann.name == "name":
                s = ann.single_string()
                if s:
                    return s
        return self.full_name


@dataclass
class IrValueSet:
    name: str = ""
    full_name: str = ""
    width: int = 0
    size: int = 0


@dataclass
class IrInstance:
    """An extern object instantiation, e.g. ``register<bit<32>>(1024) r;``."""

    name: str = ""
    full_name: str = ""
    extern_type: str = ""
    type_args: list = field(default_factory=list)  # resolved P4Types
    ctor_args: list = field(default_factory=list)  # IrExpr (constants)


@dataclass
class IrParser:
    name: str = ""
    params: list = field(default_factory=list)
    states: dict = field(default_factory=dict)
    value_sets: dict = field(default_factory=dict)
    locals: list = field(default_factory=list)  # IrVarDecl
    instances: dict = field(default_factory=dict)

    @property
    def start_state(self) -> IrParserState:
        return self.states["start"]


@dataclass
class IrControl:
    name: str = ""
    params: list = field(default_factory=list)
    locals: list = field(default_factory=list)    # IrVarDecl
    actions: dict = field(default_factory=dict)   # full_name -> IrAction
    tables: dict = field(default_factory=dict)    # full_name -> IrTable
    instances: dict = field(default_factory=dict)
    apply_stmts: list = field(default_factory=list)


@dataclass
class BlockBinding:
    """One constructor argument of the top-level package instantiation:
    which parser/control runs in which architectural slot."""

    slot: str = ""        # package parameter name, e.g. "ig" or positional idx
    kind: str = ""        # "parser" | "control"
    decl_name: str = ""   # name of the IrParser/IrControl


@dataclass
class IrProgram:
    source_name: str = "<input>"
    headers: dict = field(default_factory=dict)    # name -> HeaderType
    structs: dict = field(default_factory=dict)    # name -> StructType
    enums: dict = field(default_factory=dict)
    errors: list = field(default_factory=list)     # error member names, by index
    match_kinds: set = field(default_factory=set)
    parsers: dict = field(default_factory=dict)    # name -> IrParser
    controls: dict = field(default_factory=dict)   # name -> IrControl
    actions: dict = field(default_factory=dict)    # global actions
    package_name: str = ""
    bindings: list = field(default_factory=list)   # list[BlockBinding]
    consts: dict = field(default_factory=dict)
    annotations: list = field(default_factory=list)
    p4constraints: dict = field(default_factory=dict)  # table full_name -> constraint src

    def error_code(self, member: str) -> int:
        try:
            return self.errors.index(member)
        except ValueError:
            raise KeyError(f"unknown error member {member}")

    # ------------------------------------------------------------------
    # Coverage universe
    # ------------------------------------------------------------------

    def all_statements(self):
        """Every executable IR statement in program order (the coverage
        universe for the paper's statement-coverage metric)."""
        out = []

        def walk(stmts):
            for s in stmts:
                out.append(s)
                if isinstance(s, IrIf):
                    walk(s.then_stmts)
                    walk(s.else_stmts)
                elif isinstance(s, IrSwitch):
                    for _labels, body in s.cases:
                        walk(body)

        for parser in self.parsers.values():
            for state in parser.states.values():
                walk(state.statements)
        for control in self.controls.values():
            walk(control.apply_stmts)
            for action in control.actions.values():
                walk(action.body)
        for action in self.actions.values():
            walk(action.body)
        return out

    def find_table(self, name: str) -> IrTable:
        for control in self.controls.values():
            if name in control.tables:
                return control.tables[name]
            for table in control.tables.values():
                if table.name == name:
                    return table
        raise KeyError(f"unknown table {name}")

    def find_action(self, name: str) -> IrAction:
        if name in self.actions:
            return self.actions[name]
        for control in self.controls.values():
            if name in control.actions:
                return control.actions[name]
            for action in control.actions.values():
                if action.name == name:
                    return action
        raise KeyError(f"unknown action {name}")
