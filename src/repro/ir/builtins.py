"""Built-in P4 preludes for the architectures we model.

Real P4 programs ``#include <core.p4>`` and an architecture header
(``v1model.p4``, ``ebpf_model.p4``, ``tna.p4``).  We provide compact
versions of those headers, written in our own P4 subset and parsed with
our own front end — the same way P4C ships the standard library as
``.p4`` source.  The subset preludes declare exactly the pieces the
symbolic executor and targets interpret: intrinsic metadata layouts,
extern signatures, and package shapes.
"""

from __future__ import annotations

__all__ = ["PRELUDES", "prelude_for_includes"]

CORE_P4 = """
error {
    NoError,
    PacketTooShort,
    NoMatch,
    StackOutOfBounds,
    HeaderTooShort,
    ParserTimeout,
    ParserInvalidArgument
}

extern packet_in {
    void extract<T>(out T hdr);
    void extract<T>(out T variableSizeHeader, in bit<32> variableFieldSizeInBits);
    T lookahead<T>();
    void advance(in bit<32> sizeInBits);
    bit<32> length();
}

extern packet_out {
    void emit<T>(in T hdr);
}

extern void verify(in bool check, in error toSignal);

action NoAction() {}

match_kind {
    exact,
    ternary,
    lpm
}
"""

V1MODEL_P4 = """
match_kind {
    range,
    optional,
    selector
}

struct standard_metadata_t {
    bit<9>  ingress_port;
    bit<9>  egress_spec;
    bit<9>  egress_port;
    bit<32> instance_type;
    bit<32> packet_length;
    bit<32> enq_timestamp;
    bit<19> enq_qdepth;
    bit<32> deq_timedelta;
    bit<19> deq_qdepth;
    bit<48> ingress_global_timestamp;
    bit<48> egress_global_timestamp;
    bit<16> mcast_grp;
    bit<16> egress_rid;
    bit<1>  checksum_error;
    error   parser_error;
    bit<3>  priority;
}

enum CounterType {
    packets,
    bytes,
    packets_and_bytes
}

enum MeterType {
    packets,
    bytes
}

enum HashAlgorithm {
    crc32,
    crc32_custom,
    crc16,
    crc16_custom,
    random,
    identity,
    csum16,
    xor16
}

enum CloneType {
    I2E,
    E2E
}

enum MeterColor_t {
    GREEN,
    YELLOW,
    RED
}

extern counter {
    counter(bit<32> size, CounterType type);
    void count(in bit<32> index);
}

extern direct_counter {
    direct_counter(CounterType type);
    void count();
}

extern meter {
    meter(bit<32> size, MeterType type);
    void execute_meter<T>(in bit<32> index, out T result);
}

extern direct_meter<T> {
    direct_meter(MeterType type);
    void read(out T result);
}

extern register<T> {
    register(bit<32> size);
    void read(out T result, in bit<32> index);
    void write(in bit<32> index, in T value);
}

extern void random<T>(out T result, in T lo, in T hi);
extern void digest<T>(in bit<32> receiver, in T data);
extern void mark_to_drop(inout standard_metadata_t standard_metadata);
extern void hash<O, T, D, M>(out O result, in HashAlgorithm algo, in T base, in D data, in M max);
extern void verify_checksum<T, O>(in bool condition, in T data, in O checksum, HashAlgorithm algo);
extern void update_checksum<T, O>(in bool condition, in T data, inout O checksum, HashAlgorithm algo);
extern void verify_checksum_with_payload<T, O>(in bool condition, in T data, in O checksum, HashAlgorithm algo);
extern void update_checksum_with_payload<T, O>(in bool condition, in T data, inout O checksum, HashAlgorithm algo);
extern void resubmit_preserving_field_list(bit<8> index);
extern void recirculate_preserving_field_list(bit<8> index);
extern void clone(in CloneType type, in bit<32> session);
extern void clone_preserving_field_list(in CloneType type, in bit<32> session, bit<8> index);
extern void truncate(in bit<32> length);
extern void assert(in bool check);
extern void assume(in bool check);
extern void log_msg<T>(in T data);

parser Parser<H, M>(packet_in b,
                    out H parsedHdr,
                    inout M meta,
                    inout standard_metadata_t standard_metadata);

control VerifyChecksum<H, M>(inout H hdr,
                             inout M meta);

control Ingress<H, M>(inout H hdr,
                      inout M meta,
                      inout standard_metadata_t standard_metadata);

control Egress<H, M>(inout H hdr,
                     inout M meta,
                     inout standard_metadata_t standard_metadata);

control ComputeChecksum<H, M>(inout H hdr,
                              inout M meta);

control Deparser<H>(packet_out b, in H hdr);

package V1Switch<H, M>(Parser<H, M> p,
                       VerifyChecksum<H, M> vr,
                       Ingress<H, M> ig,
                       Egress<H, M> eg,
                       ComputeChecksum<H, M> ck,
                       Deparser<H> dep);
"""

EBPF_MODEL_P4 = """
extern CounterArray {
    CounterArray(bit<32> max_index, bool sparse);
    void increment(in bit<32> index);
    void add(in bit<32> index, in bit<32> value);
}

extern array_table {
    array_table(bit<32> size);
}

extern hash_table {
    hash_table(bit<32> size);
}

parser parse<H>(packet_in packet, out H headers);

control filter<H>(inout H headers, out bool accept);

package ebpfFilter<H>(parse<H> prs, filter<H> filt);
"""

TNA_P4 = """
match_kind {
    range,
    selector,
    atcam_partition_index
}

typedef bit<9>  PortId_t;
typedef bit<16> MulticastGroupId_t;
typedef bit<5>  QueueId_t;
typedef bit<10> MirrorId_t;
typedef bit<16> ReplicationId_t;
typedef bit<8>  ParserError_t;

struct ingress_intrinsic_metadata_t {
    bit<1>  resubmit_flag;
    bit<1>  _pad1;
    bit<2>  packet_version;
    bit<3>  _pad2;
    bit<9>  ingress_port;
    bit<48> ingress_mac_tstamp;
}

struct ingress_intrinsic_metadata_from_parser_t {
    bit<48> global_tstamp;
    bit<32> global_ver;
    bit<16> parser_err;
}

struct ingress_intrinsic_metadata_for_deparser_t {
    bit<3> drop_ctl;
    bit<3> digest_type;
    bit<3> resubmit_type;
    bit<3> mirror_type;
}

struct ingress_intrinsic_metadata_for_tm_t {
    bit<9>  ucast_egress_port;
    bit<1>  bypass_egress;
    bit<1>  deflect_on_drop;
    bit<3>  ingress_cos;
    bit<5>  qid;
    bit<3>  icos_for_copy_to_cpu;
    bit<1>  copy_to_cpu;
    bit<2>  packet_color;
    bit<1>  disable_ucast_cutthru;
    bit<1>  enable_mcast_cutthru;
    bit<16> mcast_grp_a;
    bit<16> mcast_grp_b;
    bit<13> level1_mcast_hash;
    bit<13> level2_mcast_hash;
    bit<16> level1_exclusion_id;
    bit<9>  level2_exclusion_id;
    bit<16> rid;
}

struct egress_intrinsic_metadata_t {
    bit<7>  _pad0;
    bit<9>  egress_port;
    bit<19> enq_qdepth;
    bit<2>  enq_congest_stat;
    bit<18> enq_tstamp;
    bit<19> deq_qdepth;
    bit<2>  deq_congest_stat;
    bit<8>  app_pool_congest_stat;
    bit<18> deq_timedelta;
    bit<16> egress_rid;
    bit<1>  egress_rid_first;
    bit<5>  egress_qid;
    bit<3>  egress_cos;
    bit<1>  deflection_flag;
    bit<16> pkt_length;
}

struct egress_intrinsic_metadata_from_parser_t {
    bit<48> global_tstamp;
    bit<32> global_ver;
    bit<16> parser_err;
}

struct egress_intrinsic_metadata_for_deparser_t {
    bit<3> drop_ctl;
    bit<3> mirror_type;
    bit<1> coalesce_flush;
    bit<7> coalesce_length;
}

struct egress_intrinsic_metadata_for_output_port_t {
    bit<1> capture_tstamp_on_tx;
    bit<1> update_delay_on_tx;
}

enum HashAlgorithm_t {
    IDENTITY,
    RANDOM,
    CRC8,
    CRC16,
    CRC32,
    CRC64,
    CUSTOM
}

enum CounterType_t {
    PACKETS,
    BYTES,
    PACKETS_AND_BYTES
}

enum MeterType_t {
    PACKETS,
    BYTES
}

enum MeterColor_t {
    GREEN,
    YELLOW,
    RED
}

extern Register<T, I> {
    Register(bit<32> size);
    Register(bit<32> size, T initial_value);
    T read(in I index);
    void write(in I index, in T value);
}

extern RegisterAction<T, I, U> {
    RegisterAction(Register<T, I> reg);
    U execute(in I index);
}

extern Counter<W, I> {
    Counter(bit<32> size, CounterType_t type);
    void count(in I index);
}

extern DirectCounter<W> {
    DirectCounter(CounterType_t type);
    void count();
}

extern Meter<I> {
    Meter(bit<32> size, MeterType_t type);
    bit<8> execute(in I index);
}

extern DirectMeter {
    DirectMeter(MeterType_t type);
    bit<8> execute();
}

extern Hash<W> {
    Hash(HashAlgorithm_t algo);
    W get<D>(in D data);
}

extern Checksum {
    Checksum();
    void add<T>(in T data);
    void subtract<T>(in T data);
    bit<16> get();
    bit<16> update<T>(in T data);
    bool verify();
    void subtract_all_and_deposit<T>(inout T field);
}

extern Random<W> {
    Random();
    W get();
}

extern Mirror {
    Mirror();
    void emit(in MirrorId_t session_id);
    void emit<T>(in MirrorId_t session_id, in T hdr);
}

extern Resubmit {
    Resubmit();
    void emit();
    void emit<T>(in T hdr);
}

extern Digest<T> {
    Digest();
    void pack(in T data);
}

parser IngressParserT<H, M>(packet_in pkt,
    out H hdr,
    out M ig_md,
    out ingress_intrinsic_metadata_t ig_intr_md);

control IngressT<H, M>(inout H hdr,
    inout M ig_md,
    in ingress_intrinsic_metadata_t ig_intr_md,
    in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
    inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
    inout ingress_intrinsic_metadata_for_tm_t ig_tm_md);

control IngressDeparserT<H, M>(packet_out pkt,
    inout H hdr,
    in M ig_md,
    in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md);

parser EgressParserT<H, M>(packet_in pkt,
    out H hdr,
    out M eg_md,
    out egress_intrinsic_metadata_t eg_intr_md);

control EgressT<H, M>(inout H hdr,
    inout M eg_md,
    in egress_intrinsic_metadata_t eg_intr_md,
    in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
    inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
    inout egress_intrinsic_metadata_for_output_port_t eg_oport_md);

control EgressDeparserT<H, M>(packet_out pkt,
    inout H hdr,
    in M eg_md,
    in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md);

package Pipeline<IH, IM, EH, EM>(
    IngressParserT<IH, IM> ingress_parser,
    IngressT<IH, IM> ingress,
    IngressDeparserT<IH, IM> ingress_deparser,
    EgressParserT<EH, EM> egress_parser,
    EgressT<EH, EM> egress,
    EgressDeparserT<EH, EM> egress_deparser);

package Switch<IH, IM, EH, EM>(Pipeline<IH, IM, EH, EM> pipe);
"""

# t2na: Tofino 2 — same shapes as tna plus the ghost thread and extra
# intrinsic metadata; we extend the tna prelude.
T2NA_EXTRA_P4 = """
struct ghost_intrinsic_metadata_t {
    bit<1>  ping_pong;
    bit<18> qlength;
    bit<11> qid;
    bit<2>  pipe_id;
}

control GhostT(in ghost_intrinsic_metadata_t g_intr_md);

package GhostPipeline<IH, IM, EH, EM>(
    IngressParserT<IH, IM> ingress_parser,
    IngressT<IH, IM> ingress,
    IngressDeparserT<IH, IM> ingress_deparser,
    EgressParserT<EH, EM> egress_parser,
    EgressT<EH, EM> egress,
    EgressDeparserT<EH, EM> egress_deparser,
    GhostT ghost);
"""

PRELUDES: dict[str, str] = {
    "core.p4": CORE_P4,
    "v1model.p4": CORE_P4 + V1MODEL_P4,
    "ebpf_model.p4": CORE_P4 + EBPF_MODEL_P4,
    "ebpf/ebpf_model.p4": CORE_P4 + EBPF_MODEL_P4,
    "tna.p4": CORE_P4 + TNA_P4,
    "t2na.p4": CORE_P4 + TNA_P4 + T2NA_EXTRA_P4,
}


def prelude_for_includes(includes: list[str]) -> str:
    """Concatenated prelude text for a program's #include list.

    The most specific architecture include wins; core.p4 alone yields
    just the core declarations.
    """
    best = ""
    best_len = 0
    for inc in includes:
        text = PRELUDES.get(inc)
        if text is None:
            # tolerate paths like "lib/v1model.p4"
            base = inc.rsplit("/", 1)[-1]
            text = PRELUDES.get(base)
        if text and len(text) > best_len:
            best = text
            best_len = len(text)
    return best or CORE_P4
