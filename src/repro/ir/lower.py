"""Lowering: front-end AST -> typed IR.

Responsibilities (mirroring the P4C front/mid-end the paper builds on):

- merge the architecture prelude declarations with the user program;
- resolve typedefs, compute widths, build header/struct layouts;
- fold compile-time constants (``const`` declarations, enum members,
  error codes);
- resolve names (actions, tables, value sets, extern instances) into
  fully-qualified IR references;
- type/width-coerce expressions (P4's infinite-precision literals get
  their widths from context).
"""

from __future__ import annotations

from ..frontend import ast as A, parse_program
from ..frontend.errors import TypeError_
from ..frontend.types import (
    BitsType,
    BoolType,
    EnumType,
    ErrorType,
    HeaderType,
    P4Type,
    StackType,
    StringType,
    StructType,
    VarbitType,
)
from . import nodes as N
from .builtins import prelude_for_includes

__all__ = ["lower", "lower_source", "Lowerer"]


class _Scope:
    """Lexically nested name -> P4Type (for variables) mapping."""

    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.vars: dict[str, P4Type] = {}

    def child(self) -> "_Scope":
        return _Scope(self)

    def define(self, name: str, p4_type: P4Type) -> None:
        self.vars[name] = p4_type

    def lookup(self, name: str) -> P4Type | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None


class Lowerer:
    def __init__(self, program: A.Program):
        self.ast = program
        self.ir = N.IrProgram(source_name=program.source)
        self.typedefs: dict[str, P4Type] = {}
        self.consts: dict[str, N.IrConst] = {}
        # Extern object type names (register, Counter, ...) and extern
        # function names (hash, mark_to_drop, ...).
        self.extern_objects: set[str] = set()
        self.extern_functions: set[str] = set()
        self.packages: dict[str, A.PackageDecl] = {}
        self.parser_types: dict[str, A.ParserTypeDecl] = {}
        self.control_types: dict[str, A.ControlTypeDecl] = {}
        # Per-control context while lowering
        self._current_control: N.IrControl | None = None
        self._current_parser: N.IrParser | None = None
        self._current_prefix = ""

    # ==================================================================
    # Entry point
    # ==================================================================

    def run(self) -> N.IrProgram:
        self._collect_types()
        self._collect_callables()
        self._lower_blocks()
        self._lower_main()
        return self.ir

    # ==================================================================
    # Pass 1: types, constants, errors
    # ==================================================================

    def _collect_types(self) -> None:
        ir = self.ir
        for decl in self.ast.declarations:
            if isinstance(decl, A.ErrorDecl):
                for member in decl.members:
                    if member not in ir.errors:
                        ir.errors.append(member)
            elif isinstance(decl, A.MatchKindDecl):
                ir.match_kinds.update(decl.members)
            elif isinstance(decl, A.EnumDecl):
                width = None
                if decl.underlying is not None:
                    width = self._const_width(decl.underlying)
                ir.enums[decl.name] = EnumType(
                    decl.name, decl.members, width, decl.member_values or None
                )
            elif isinstance(decl, A.TypedefDecl):
                self.typedefs[decl.name] = self.resolve_type(decl.target)
            elif isinstance(decl, A.HeaderDecl):
                fields = [
                    (f.name, self.resolve_type(f.field_type)) for f in decl.fields
                ]
                ir.headers[decl.name] = HeaderType(decl.name, fields)
            elif isinstance(decl, (A.StructDecl, A.HeaderUnionDecl)):
                fields = [
                    (f.name, self.resolve_type(f.field_type)) for f in decl.fields
                ]
                ir.structs[decl.name] = StructType(decl.name, fields)
            elif isinstance(decl, A.ConstDecl):
                ctype = self.resolve_type(decl.const_type)
                value = self._fold_const(decl.value, ctype)
                self.consts[decl.name] = N.IrConst(p4_type=ctype, value=value)
                self.ir.consts[decl.name] = value
            elif isinstance(decl, A.ExternDecl):
                self.extern_objects.add(decl.name)
            elif isinstance(decl, A.FunctionDecl):
                self.extern_functions.add(decl.name)
            elif isinstance(decl, A.PackageDecl):
                self.packages[decl.name] = decl
            elif isinstance(decl, A.ParserTypeDecl):
                self.parser_types[decl.name] = decl
            elif isinstance(decl, A.ControlTypeDecl):
                self.control_types[decl.name] = decl

    def _const_width(self, type_ast) -> int:
        t = self.resolve_type(type_ast)
        return t.bit_width()

    def resolve_type(self, type_ast) -> P4Type:
        if isinstance(type_ast, A.BitTypeAst):
            return BitsType(self._width_value(type_ast.width), signed=False)
        if isinstance(type_ast, A.IntTypeAst):
            return BitsType(self._width_value(type_ast.width), signed=True)
        if isinstance(type_ast, A.VarbitTypeAst):
            return VarbitType(type_ast.max_width)
        if isinstance(type_ast, A.BoolTypeAst):
            return BoolType()
        if isinstance(type_ast, A.ErrorTypeAst):
            return ErrorType()
        if isinstance(type_ast, A.StackTypeAst):
            element = self.resolve_type(type_ast.element)
            if not isinstance(element, HeaderType):
                raise TypeError_("header stacks must have header elements")
            return StackType(element, type_ast.size)
        if isinstance(type_ast, A.SpecializedTypeAst):
            # Extern object types keep their base name; type args are
            # resolved by the instantiation lowering.
            return self._resolve_named(type_ast.base, type_ast)
        if isinstance(type_ast, A.TypeName):
            return self._resolve_named(type_ast.name, type_ast)
        if isinstance(type_ast, A.TupleTypeAst):
            fields = [
                (f"_{i}", self.resolve_type(e)) for i, e in enumerate(type_ast.elements)
            ]
            return StructType("tuple", fields)
        if isinstance(type_ast, A.VoidTypeAst):
            return None  # type: ignore[return-value]
        raise TypeError_(f"cannot resolve type {type_ast!r}")

    def _resolve_named(self, name: str, type_ast) -> P4Type:
        if name in self.typedefs:
            return self.typedefs[name]
        if name in self.ir.headers:
            return self.ir.headers[name]
        if name in self.ir.structs:
            return self.ir.structs[name]
        if name in self.ir.enums:
            return self.ir.enums[name]
        if name == "string":
            return StringType()
        # Extern object types, package types, and unresolved generics
        # are opaque: represent with a zero-field struct carrying the
        # name so instantiation lowering can recognize it.
        return StructType(name, [])

    def _width_value(self, width) -> int:
        if isinstance(width, int):
            return width
        value = self._fold_const(width, None)
        if not isinstance(value, int) or value <= 0:
            raise TypeError_(f"invalid bit width {value!r}")
        return value

    # ------------------------------------------------------------------
    # Constant folding for compile-time contexts
    # ------------------------------------------------------------------

    def _fold_const(self, expr, expected: P4Type | None):
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.BoolLit):
            return expr.value
        if isinstance(expr, A.Ident):
            if expr.name in self.consts:
                return self.consts[expr.name].value
            raise TypeError_(f"not a compile-time constant: {expr.name}")
        if isinstance(expr, A.Member):
            base = expr.expr
            if isinstance(base, A.Ident):
                if base.name == "error":
                    return self.ir.error_code(expr.member)
                if base.name in self.ir.enums:
                    return self.ir.enums[base.name].value_of(expr.member)
            raise TypeError_(f"not a compile-time constant: {expr!r}")
        if isinstance(expr, A.Binop):
            left = self._fold_const(expr.left, expected)
            right = self._fold_const(expr.right, expected)
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a // b,
                "%": lambda a, b: a % b,
                "<<": lambda a, b: a << b,
                ">>": lambda a, b: a >> b,
                "&": lambda a, b: a & b,
                "|": lambda a, b: a | b,
                "^": lambda a, b: a ^ b,
            }
            if expr.op in ops:
                return ops[expr.op](left, right)
            raise TypeError_(f"operator {expr.op} not allowed in constants")
        if isinstance(expr, A.Unop):
            value = self._fold_const(expr.operand, expected)
            if expr.op == "-":
                return -value
            if expr.op == "~":
                return ~value
            if expr.op == "!":
                return not value
        if isinstance(expr, A.Cast):
            inner = self._fold_const(expr.expr, None)
            target = self.resolve_type(expr.target)
            if isinstance(target, BitsType):
                return inner & ((1 << target.width) - 1)
            return inner
        raise TypeError_(f"not a compile-time constant: {expr!r}")

    # ==================================================================
    # Pass 2: global callables (actions)
    # ==================================================================

    def _collect_callables(self) -> None:
        for decl in self.ast.declarations:
            if isinstance(decl, A.ActionDecl):
                action = self._lower_action(decl, prefix="")
                self.ir.actions[action.full_name] = action

    # ==================================================================
    # Pass 3: parsers and controls
    # ==================================================================

    def _lower_blocks(self) -> None:
        for decl in self.ast.declarations:
            if isinstance(decl, A.ParserDecl):
                self.ir.parsers[decl.name] = self._lower_parser(decl)
            elif isinstance(decl, A.ControlDecl):
                self.ir.controls[decl.name] = self._lower_control(decl)
            elif isinstance(decl, A.Annotation):
                self.ir.annotations.append(decl)

    def _lower_params(self, params, scope: _Scope) -> list:
        out = []
        for p in params:
            ptype = self.resolve_type(p.param_type)
            out.append(N.IrParam(name=p.name, direction=p.direction, p4_type=ptype))
            if ptype is not None:
                scope.define(p.name, ptype)
        return out

    def _lower_parser(self, decl: A.ParserDecl) -> N.IrParser:
        scope = _Scope()
        parser = N.IrParser(name=decl.name)
        self._current_parser = parser
        self._current_prefix = decl.name
        parser.params = self._lower_params(decl.params, scope)
        for local in decl.locals:
            if isinstance(local, A.ValueSetDecl):
                width = self.resolve_type(local.element_type).bit_width()
                vs = N.IrValueSet(
                    name=local.name,
                    full_name=f"{decl.name}.{local.name}",
                    width=width,
                    size=local.size,
                )
                parser.value_sets[local.name] = vs
            elif isinstance(local, A.VarDeclStmt):
                vtype = self.resolve_type(local.var_type)
                scope.define(local.name, vtype)
                init = (
                    self.lower_expr(local.init, scope, vtype)
                    if local.init is not None
                    else None
                )
                parser.locals.append(
                    N.IrVarDecl(name=local.name, p4_type=vtype, init=init)
                )
            elif isinstance(local, A.ConstDecl):
                ctype = self.resolve_type(local.const_type)
                self.consts[local.name] = N.IrConst(
                    p4_type=ctype, value=self._fold_const(local.value, ctype)
                )
            elif isinstance(local, A.Instantiation):
                inst = self._lower_instance(local, decl.name)
                parser.instances[inst.name] = inst
        for state in decl.states:
            parser.states[state.name] = self._lower_parser_state(state, scope, parser)
        self._current_parser = None
        return parser

    def _lower_parser_state(self, state: A.ParserState, scope, parser) -> N.IrParserState:
        body_scope = scope.child()
        statements = []
        for stmt in state.statements:
            statements.extend(self.lower_stmt(stmt, body_scope))
        transition = self._lower_transition(state.transition, body_scope, parser)
        return N.IrParserState(
            name=state.name, statements=statements, transition=transition
        )

    def _lower_transition(self, tr: A.Transition | None, scope, parser) -> N.IrTransition:
        if tr is None:
            # P4 requires a transition; missing means implicit reject.
            return N.IrTransition(direct="reject")
        if tr.direct is not None:
            return N.IrTransition(direct=tr.direct)
        exprs = [self.lower_expr(e, scope, None) for e in tr.select_exprs]
        cases = []
        for case in tr.cases:
            keysets = self._lower_keyset(case.keyset, exprs, parser)
            cases.append(N.IrSelectCase(keysets=keysets, state=case.state))
        return N.IrTransition(select_exprs=exprs, cases=cases)

    def _lower_keyset(self, keyset, select_exprs, parser) -> list:
        """Lower a keyset to one IR keyset per select expression."""
        def one(ks, expr_type: P4Type):
            if isinstance(ks, (A.DefaultKeyset, A.DontCareKeyset)):
                return N.KsDefault()
            if isinstance(ks, A.ExprKeyset):
                if isinstance(ks.expr, A.Ident) and parser is not None \
                        and ks.expr.name in parser.value_sets:
                    return N.KsValueSet(name=ks.expr.name)
                value = self.lower_expr(ks.expr, _Scope(), expr_type)
                return value
            if isinstance(ks, A.MaskKeyset):
                return N.KsMask(
                    value=self.lower_expr(ks.value, _Scope(), expr_type),
                    mask=self.lower_expr(ks.mask, _Scope(), expr_type),
                )
            if isinstance(ks, A.RangeKeyset):
                return N.KsRange(
                    lo=self.lower_expr(ks.lo, _Scope(), expr_type),
                    hi=self.lower_expr(ks.hi, _Scope(), expr_type),
                )
            raise TypeError_(f"unsupported keyset {ks!r}")

        types = [e.p4_type for e in select_exprs]
        if isinstance(keyset, A.TupleKeyset):
            if len(keyset.elements) != len(select_exprs):
                raise TypeError_("keyset arity does not match select expressions")
            return [one(k, t) for k, t in zip(keyset.elements, types)]
        if isinstance(keyset, (A.DefaultKeyset, A.DontCareKeyset)):
            return [N.KsDefault() for _ in select_exprs]
        return [one(keyset, types[0])]

    def _lower_control(self, decl: A.ControlDecl) -> N.IrControl:
        scope = _Scope()
        control = N.IrControl(name=decl.name)
        self._current_control = control
        self._current_prefix = decl.name
        control.params = self._lower_params(decl.params, scope)
        # Two-phase: collect declarations first (actions may be referenced
        # by tables that appear earlier in the source).
        for local in decl.locals:
            if isinstance(local, A.ActionDecl):
                action = self._lower_action(local, prefix=decl.name, scope=scope)
                control.actions[action.full_name] = action
            elif isinstance(local, A.VarDeclStmt):
                vtype = self.resolve_type(local.var_type)
                scope.define(local.name, vtype)
                init = (
                    self.lower_expr(local.init, scope, vtype)
                    if local.init is not None
                    else None
                )
                control.locals.append(
                    N.IrVarDecl(name=local.name, p4_type=vtype, init=init)
                )
            elif isinstance(local, A.ConstDecl):
                ctype = self.resolve_type(local.const_type)
                self.consts[local.name] = N.IrConst(
                    p4_type=ctype, value=self._fold_const(local.value, ctype)
                )
            elif isinstance(local, A.Instantiation):
                inst = self._lower_instance(local, decl.name)
                control.instances[inst.name] = inst
        for local in decl.locals:
            if isinstance(local, A.TableDecl):
                table = self._lower_table(local, decl.name, scope, control)
                control.tables[table.full_name] = table
        body_scope = scope.child()
        for stmt in decl.apply_body.statements:
            control.apply_stmts.extend(self.lower_stmt(stmt, body_scope))
        self._current_control = None
        return control

    def _lower_instance(self, inst: A.Instantiation, prefix: str) -> N.IrInstance:
        type_ast = inst.type_ast
        if isinstance(type_ast, A.SpecializedTypeAst):
            extern_type = type_ast.base
            type_args = [self.resolve_type(a) for a in type_ast.args]
        elif isinstance(type_ast, A.TypeName):
            extern_type = type_ast.name
            type_args = []
        else:
            raise TypeError_(f"unsupported instantiation type {type_ast!r}")
        ctor_args = []
        for arg in inst.args:
            try:
                value = self._fold_const(arg, None)
                ctor_args.append(N.IrConst(p4_type=None, value=value))
            except TypeError_:
                ctor_args.append(self.lower_expr(arg, _Scope(), None))
        return N.IrInstance(
            name=inst.name,
            full_name=f"{prefix}.{inst.name}" if prefix else inst.name,
            extern_type=extern_type,
            type_args=type_args,
            ctor_args=ctor_args,
        )

    def _lower_action(self, decl: A.ActionDecl, prefix: str, scope=None) -> N.IrAction:
        action_scope = (scope or _Scope()).child()
        params = self._lower_params(decl.params, action_scope)
        body = []
        for stmt in decl.body.statements:
            body.extend(self.lower_stmt(stmt, action_scope))
        full_name = f"{prefix}.{decl.name}" if prefix else decl.name
        cp_name = ""
        for ann in decl.annotations:
            if ann.name == "name":
                cp_name = ann.single_string() or ""
        return N.IrAction(
            name=decl.name,
            full_name=full_name,
            cp_name=cp_name or full_name,
            params=params,
            body=body,
            annotations=decl.annotations,
        )

    def _resolve_action_name(self, name: str, control: N.IrControl | None) -> str:
        name = name.lstrip(".")
        if control is not None:
            full = f"{control.name}.{name}"
            if full in control.actions:
                return full
        if name in self.ir.actions:
            return name
        # Global NoAction from core.p4
        if name == "NoAction" and "NoAction" in self.ir.actions:
            return "NoAction"
        raise TypeError_(f"unknown action {name!r}")

    def _lower_table(self, decl: A.TableDecl, prefix: str, scope, control) -> N.IrTable:
        table = N.IrTable(
            name=decl.name,
            full_name=f"{prefix}.{decl.name}" if prefix else decl.name,
            size=decl.size,
            annotations=decl.annotations,
        )
        for key in decl.keys:
            expr = self.lower_expr(key.expr, scope, None)
            if key.match_kind not in self.ir.match_kinds:
                raise TypeError_(f"unknown match kind {key.match_kind!r}")
            table.keys.append(
                N.IrTableKey(
                    expr=expr,
                    match_kind=key.match_kind,
                    name=key.control_plane_name or self._key_name(key.expr),
                )
            )
        for ref in decl.actions:
            action_name = self._resolve_action_name(ref.name, control)
            args = [self.lower_expr(a, scope, None) for a in ref.args]
            table.action_refs.append(
                N.IrActionRef(action=action_name, args=args, annotations=ref.annotations)
            )
        if decl.default_action is not None:
            action_name = self._resolve_action_name(decl.default_action.name, control)
            action = self._find_action(action_name, control)
            args = [
                self.lower_expr(a, scope, p.p4_type)
                for a, p in zip(decl.default_action.args, action.control_plane_params)
            ]
            table.default_action = N.IrActionRef(action=action_name, args=args)
        else:
            # The implicit default is NoAction when available.
            if "NoAction" in self.ir.actions:
                table.default_action = N.IrActionRef(action="NoAction", args=[])
        for entry in decl.entries:
            action_name = self._resolve_action_name(entry.action.name, control)
            action = self._find_action(action_name, control)
            args = [
                self.lower_expr(a, scope, p.p4_type)
                for a, p in zip(entry.action.args, action.control_plane_params)
            ]
            key_types = [k.expr.p4_type for k in table.keys]
            keysets = self._lower_entry_keyset(entry.keyset, key_types)
            table.const_entries.append(
                N.IrTableEntry(
                    keysets=keysets,
                    action_ref=N.IrActionRef(action=action_name, args=args),
                    priority=entry.priority,
                )
            )
        for prop in decl.properties:
            table.properties[prop.name] = prop.value
        for ann in decl.annotations:
            if ann.name in ("entry_restriction", "p4constraint"):
                text = ann.single_string()
                if text:
                    self.ir.p4constraints[table.full_name] = text
        return table

    def _find_action(self, full_name: str, control) -> N.IrAction:
        if control is not None and full_name in control.actions:
            return control.actions[full_name]
        return self.ir.actions[full_name]

    def _lower_entry_keyset(self, keyset, key_types) -> list:
        def one(ks, ktype):
            if isinstance(ks, (A.DefaultKeyset, A.DontCareKeyset)):
                return N.KsDefault()
            if isinstance(ks, A.ExprKeyset):
                return self.lower_expr(ks.expr, _Scope(), ktype)
            if isinstance(ks, A.MaskKeyset):
                return N.KsMask(
                    value=self.lower_expr(ks.value, _Scope(), ktype),
                    mask=self.lower_expr(ks.mask, _Scope(), ktype),
                )
            if isinstance(ks, A.RangeKeyset):
                return N.KsRange(
                    lo=self.lower_expr(ks.lo, _Scope(), ktype),
                    hi=self.lower_expr(ks.hi, _Scope(), ktype),
                )
            raise TypeError_(f"unsupported entry keyset {ks!r}")

        if isinstance(keyset, A.TupleKeyset):
            return [one(k, t) for k, t in zip(keyset.elements, key_types)]
        return [one(keyset, key_types[0] if key_types else None)]

    def _key_name(self, expr) -> str:
        """Best-effort control-plane name for an unannotated key."""
        if isinstance(expr, A.Member):
            return f"{self._key_name(expr.expr)}.{expr.member}"
        if isinstance(expr, A.Ident):
            return expr.name
        if isinstance(expr, A.Index):
            return f"{self._key_name(expr.expr)}[]"
        return "key"

    # ==================================================================
    # Statements
    # ==================================================================

    def lower_stmt(self, stmt, scope: _Scope) -> list:
        if isinstance(stmt, A.BlockStmt):
            inner = scope.child()
            out = []
            for s in stmt.statements:
                out.extend(self.lower_stmt(s, inner))
            return out
        if isinstance(stmt, A.EmptyStmt):
            return []
        if isinstance(stmt, A.VarDeclStmt):
            vtype = self.resolve_type(stmt.var_type)
            scope.define(stmt.name, vtype)
            init = (
                self.lower_expr(stmt.init, scope, vtype) if stmt.init is not None else None
            )
            return [
                N.IrVarDecl(
                    location=stmt.location, name=stmt.name, p4_type=vtype, init=init
                )
            ]
        if isinstance(stmt, A.AssignStmt):
            target = self.lower_lvalue(stmt.target, scope)
            value = self.lower_expr(stmt.value, scope, target.p4_type)
            return [N.IrAssign(location=stmt.location, target=target, value=value)]
        if isinstance(stmt, A.IfStmt):
            cond = self.lower_expr(stmt.condition, scope, BoolType())
            then_stmts = self.lower_stmt(stmt.then_branch, scope.child())
            else_stmts = (
                self.lower_stmt(stmt.else_branch, scope.child())
                if stmt.else_branch is not None
                else []
            )
            return [
                N.IrIf(
                    location=stmt.location,
                    cond=cond,
                    then_stmts=then_stmts,
                    else_stmts=else_stmts,
                )
            ]
        if isinstance(stmt, A.ExitStmt):
            return [N.IrExit(location=stmt.location)]
        if isinstance(stmt, A.ReturnStmt):
            value = (
                self.lower_expr(stmt.value, scope, None) if stmt.value is not None else None
            )
            return [N.IrReturn(location=stmt.location, value=value)]
        if isinstance(stmt, A.SwitchStmt):
            return [self._lower_switch(stmt, scope)]
        if isinstance(stmt, A.MethodCallStmt):
            return self._lower_call_stmt(stmt, scope)
        raise TypeError_(f"unsupported statement {stmt!r}")

    def _lower_switch(self, stmt: A.SwitchStmt, scope) -> N.IrSwitch:
        expr = stmt.expression
        table_name = None
        if (
            isinstance(expr, A.Member)
            and expr.member == "action_run"
            and isinstance(expr.expr, A.Call)
            and isinstance(expr.expr.func, A.Member)
            and expr.expr.func.member == "apply"
        ):
            table_name = self._table_full_name(expr.expr.func.expr)
        if table_name is None:
            raise TypeError_("switch is only supported on table.apply().action_run")
        control = self._current_control
        cases = []
        pending_labels: list[str] = []
        for case in stmt.cases:
            if case.label == "default":
                label = "default"
            elif isinstance(case.label, A.Ident):
                label = self._resolve_action_name(case.label.name, control)
            elif isinstance(case.label, A.Member):
                # Control-qualified action name: C.a
                label = self._resolve_action_name(case.label.member, control)
            else:
                raise TypeError_(f"unsupported switch label {case.label!r}")
            pending_labels.append(label)
            if case.body is not None:
                body = self.lower_stmt(case.body, scope.child())
                cases.append((pending_labels, body))
                pending_labels = []
        if pending_labels:
            cases.append((pending_labels, []))
        return N.IrSwitch(location=stmt.location, table=table_name, cases=cases)

    def _table_full_name(self, expr) -> str | None:
        control = self._current_control
        if isinstance(expr, A.Ident) and control is not None:
            full = f"{control.name}.{expr.name}"
            if full in control.tables:
                return full
        return None

    def _lower_call_stmt(self, stmt: A.MethodCallStmt, scope) -> list:
        call = stmt.call
        func = call.func
        control = self._current_control
        # table.apply();
        if isinstance(func, A.Member) and func.member == "apply":
            table_name = self._table_full_name(func.expr)
            if table_name is not None:
                return [N.IrApplyTable(location=stmt.location, table=table_name)]
        ir_call = self._lower_call_expr(call, scope, statement=True)
        return [N.IrMethodCall(location=stmt.location, call=ir_call)]

    # ==================================================================
    # L-values
    # ==================================================================

    def lower_lvalue(self, expr, scope: _Scope) -> N.LValue:
        if isinstance(expr, A.Ident):
            vtype = scope.lookup(expr.name)
            if vtype is None:
                raise TypeError_(f"unknown variable {expr.name!r}", expr.location)
            return N.VarLV(p4_type=vtype, name=expr.name)
        if isinstance(expr, A.Member):
            base = self.lower_lvalue(expr.expr, scope)
            btype = base.p4_type
            if isinstance(btype, (StructType, HeaderType)):
                ftype = btype.field_types.get(expr.member)
                if ftype is None:
                    raise TypeError_(
                        f"{btype!r} has no field {expr.member!r}", expr.location
                    )
                return N.FieldLV(p4_type=ftype, base=base, field=expr.member)
            if isinstance(btype, StackType):
                if expr.member in ("next", "last"):
                    return N.FieldLV(
                        p4_type=btype.element, base=base, field=expr.member
                    )
                if expr.member == "lastIndex":
                    return N.FieldLV(
                        p4_type=BitsType(32), base=base, field="lastIndex"
                    )
            raise TypeError_(
                f"cannot access member {expr.member!r} of {btype!r}", expr.location
            )
        if isinstance(expr, A.Index):
            base = self.lower_lvalue(expr.expr, scope)
            btype = base.p4_type
            if not isinstance(btype, StackType):
                raise TypeError_("indexing requires a header stack", expr.location)
            index = self.lower_expr(expr.index, scope, BitsType(32))
            return N.IndexLV(p4_type=btype.element, base=base, index=index)
        if isinstance(expr, A.Slice):
            base = self.lower_lvalue(expr.expr, scope)
            hi = self._fold_const(expr.hi, None)
            lo = self._fold_const(expr.lo, None)
            return N.SliceLV(p4_type=BitsType(hi - lo + 1), base=base, hi=hi, lo=lo)
        raise TypeError_(f"invalid l-value {expr!r}", getattr(expr, "location", None))

    # ==================================================================
    # Expressions
    # ==================================================================

    def lower_expr(self, expr, scope: _Scope, expected: P4Type | None) -> N.IrExpr:
        result = self._lower_expr_inner(expr, scope, expected)
        return self._coerce(result, expected, expr)

    def _coerce(self, e: N.IrExpr, expected: P4Type | None, src) -> N.IrExpr:
        if expected is None or e.p4_type is expected:
            return e
        if e.p4_type is None:
            # Infinite-precision literal: give it the expected width.
            if isinstance(e, N.IrConst):
                if isinstance(expected, BoolType):
                    return N.IrConst(p4_type=expected, value=bool(e.value))
                if isinstance(expected, (BitsType, EnumType, ErrorType)):
                    mask = (1 << expected.bit_width()) - 1
                    return N.IrConst(p4_type=expected, value=int(e.value) & mask)
            raise TypeError_(
                f"cannot coerce {e!r} to {expected!r}", getattr(src, "location", None)
            )
        have_w = e.p4_type.bit_width() if e.p4_type.is_scalar() else None
        want_w = expected.bit_width() if expected.is_scalar() else None
        if have_w is not None and want_w is not None:
            if have_w == want_w:
                return e
            # Implicit width adaptation only via explicit casts in P4;
            # we tolerate enum/bits interchange of equal widths above
            # and otherwise insert a cast to keep lowering permissive.
            return N.IrCast(p4_type=expected, expr=e)
        return e

    def _lower_expr_inner(self, expr, scope: _Scope, expected) -> N.IrExpr:
        if isinstance(expr, A.IntLit):
            if expr.width is not None:
                t = BitsType(expr.width, expr.signed)
                return N.IrConst(p4_type=t, value=expr.value & ((1 << expr.width) - 1))
            return N.IrConst(p4_type=None, value=expr.value)
        if isinstance(expr, A.BoolLit):
            return N.IrConst(p4_type=BoolType(), value=expr.value)
        if isinstance(expr, A.StringLit):
            return N.IrConst(p4_type=StringType(), value=expr.value)
        if isinstance(expr, A.Ident):
            if expr.name in self.consts:
                return self.consts[expr.name]
            vtype = scope.lookup(expr.name)
            if vtype is not None:
                return N.IrLValExpr(p4_type=vtype, lval=N.VarLV(p4_type=vtype, name=expr.name))
            if expr.name in self.ir.enums:
                raise TypeError_(f"enum {expr.name} used without member", expr.location)
            raise TypeError_(f"unknown identifier {expr.name!r}", expr.location)
        if isinstance(expr, A.Member):
            return self._lower_member(expr, scope)
        if isinstance(expr, A.Index):
            lval = self.lower_lvalue(expr, scope)
            return N.IrLValExpr(p4_type=lval.p4_type, lval=lval)
        if isinstance(expr, A.Slice):
            inner = self.lower_expr(expr.expr, scope, None)
            hi = self._fold_const(expr.hi, None)
            lo = self._fold_const(expr.lo, None)
            if inner.p4_type is None or not inner.p4_type.is_scalar():
                raise TypeError_("slice requires a bit-typed operand", expr.location)
            if not (0 <= lo <= hi < inner.p4_type.bit_width()):
                raise TypeError_(
                    f"slice [{hi}:{lo}] out of range for {inner.p4_type!r}",
                    expr.location,
                )
            return N.IrSliceExpr(
                p4_type=BitsType(hi - lo + 1), expr=inner, hi=hi, lo=lo
            )
        if isinstance(expr, A.Unop):
            operand = self.lower_expr(
                expr.operand, scope, BoolType() if expr.op == "!" else expected
            )
            if expr.op == "!":
                return N.IrUnop(p4_type=BoolType(), op="!", operand=operand)
            if operand.p4_type is None and isinstance(operand, N.IrConst):
                value = -operand.value if expr.op == "-" else ~operand.value
                return N.IrConst(p4_type=None, value=value)
            return N.IrUnop(p4_type=operand.p4_type, op=expr.op, operand=operand)
        if isinstance(expr, A.Binop):
            return self._lower_binop(expr, scope, expected)
        if isinstance(expr, A.Ternary):
            cond = self.lower_expr(expr.cond, scope, BoolType())
            then = self.lower_expr(expr.then, scope, expected)
            other = self.lower_expr(expr.other, scope, expected or then.p4_type)
            if then.p4_type is None:
                then = self._coerce(then, other.p4_type, expr)
            return N.IrTernary(p4_type=then.p4_type, cond=cond, then=then, other=other)
        if isinstance(expr, A.Cast):
            target = self.resolve_type(expr.target)
            inner = self.lower_expr(expr.expr, scope, None)
            if inner.p4_type is None and isinstance(inner, N.IrConst):
                return self._coerce(inner, target, expr)
            return N.IrCast(p4_type=target, expr=inner)
        if isinstance(expr, A.Call):
            return self._lower_call_expr(expr, scope, statement=False)
        if isinstance(expr, A.TupleExpr):
            elements = tuple(self.lower_expr(e, scope, None) for e in expr.elements)
            return N.IrTupleExpr(p4_type=None, elements=elements)
        raise TypeError_(f"unsupported expression {expr!r}", getattr(expr, "location", None))

    def _lower_member(self, expr: A.Member, scope) -> N.IrExpr:
        base = expr.expr
        if isinstance(base, A.Ident):
            if base.name == "error":
                return N.IrConst(
                    p4_type=ErrorType(), value=self.ir.error_code(expr.member)
                )
            if base.name in self.ir.enums:
                enum = self.ir.enums[base.name]
                return N.IrConst(p4_type=enum, value=enum.value_of(expr.member))
        # t.apply().hit / .miss
        if (
            isinstance(base, A.Call)
            and isinstance(base.func, A.Member)
            and base.func.member == "apply"
        ):
            table_name = self._table_full_name(base.func.expr)
            if table_name is not None and expr.member in ("hit", "miss"):
                return N.IrApplyExpr(
                    p4_type=BoolType(), table=table_name, member=expr.member
                )
        # hdr.x.isValid() handled in Call; here: plain field access.
        lval = self.lower_lvalue(expr, scope)
        return N.IrLValExpr(p4_type=lval.p4_type, lval=lval)

    _CMP_OPS = {"==", "!=", "<", ">", "<=", ">="}
    _BOOL_OPS = {"&&", "||"}

    def _lower_binop(self, expr: A.Binop, scope, expected) -> N.IrExpr:
        op = expr.op
        if op in self._BOOL_OPS:
            left = self.lower_expr(expr.left, scope, BoolType())
            right = self.lower_expr(expr.right, scope, BoolType())
            return N.IrBinop(p4_type=BoolType(), op=op, left=left, right=right)
        if op in self._CMP_OPS:
            left = self._lower_expr_inner(expr.left, scope, None)
            right = self._lower_expr_inner(expr.right, scope, None)
            left, right = self._unify(left, right, expr)
            return N.IrBinop(p4_type=BoolType(), op=op, left=left, right=right)
        if op == "++":
            left = self.lower_expr(expr.left, scope, None)
            right = self.lower_expr(expr.right, scope, None)
            if left.p4_type is None or right.p4_type is None:
                raise TypeError_("concat operands need explicit widths", expr.location)
            width = left.p4_type.bit_width() + right.p4_type.bit_width()
            return N.IrConcat(p4_type=BitsType(width), parts=(left, right))
        if op in ("<<", ">>"):
            left = self.lower_expr(expr.left, scope, expected)
            right = self._lower_expr_inner(expr.right, scope, None)
            if right.p4_type is None and isinstance(right, N.IrConst):
                right = N.IrConst(p4_type=BitsType(32), value=right.value)
            if left.p4_type is None:
                left = self._coerce(left, expected, expr)
            if left.p4_type is None:
                raise TypeError_("shift of untyped literal", expr.location)
            return N.IrBinop(p4_type=left.p4_type, op=op, left=left, right=right)
        # Arithmetic / bitwise.
        left = self._lower_expr_inner(expr.left, scope, expected)
        right = self._lower_expr_inner(expr.right, scope, expected)
        left, right = self._unify(left, right, expr)
        if left.p4_type is None and isinstance(left, N.IrConst) and isinstance(right, N.IrConst):
            # Fold untyped constant arithmetic.
            folded = self._fold_pyop(op, left.value, right.value)
            return N.IrConst(p4_type=None, value=folded)
        return N.IrBinop(p4_type=left.p4_type, op=op, left=left, right=right)

    @staticmethod
    def _fold_pyop(op, a, b):
        return {
            "+": a + b, "-": a - b, "*": a * b,
            "/": a // b if b else 0, "%": a % b if b else 0,
            "&": a & b, "|": a | b, "^": a ^ b,
        }[op]

    def _unify(self, left: N.IrExpr, right: N.IrExpr, src):
        if left.p4_type is None and right.p4_type is not None:
            left = self._coerce(left, right.p4_type, src)
        elif right.p4_type is None and left.p4_type is not None:
            right = self._coerce(right, left.p4_type, src)
        elif (
            left.p4_type is not None
            and right.p4_type is not None
            and left.p4_type.is_scalar()
            and right.p4_type.is_scalar()
            and left.p4_type.bit_width() != right.p4_type.bit_width()
        ):
            raise TypeError_(
                f"width mismatch {left.p4_type!r} vs {right.p4_type!r}",
                getattr(src, "location", None),
            )
        return left, right

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    _HEADER_METHODS = {"isValid", "setValid", "setInvalid", "minSizeInBits"}
    _PACKET_IN_METHODS = {"extract", "lookahead", "advance", "length"}
    _STACK_METHODS = {"push_front", "pop_front"}

    def _lower_call_expr(self, call: A.Call, scope, statement: bool) -> N.IrExpr:
        func = call.func
        type_args = tuple(self.resolve_type(t) for t in call.type_args)
        if isinstance(func, A.Ident):
            name = func.name
            # Direct action invocation.
            try:
                action_name = self._resolve_action_name(name, self._current_control)
            except TypeError_:
                action_name = None
            if action_name is not None and statement:
                action = self._find_action(action_name, self._current_control)
                args = tuple(
                    self.lower_expr(a, scope, p.p4_type)
                    for a, p in zip(call.args, action.params)
                )
                return N.IrCall(
                    p4_type=None, func="__action__", obj=action_name, args=args
                )
            if name in self.extern_functions or name in ("verify",):
                args = tuple(
                    self._default_width(self.lower_expr(a, scope, None))
                    for a in call.args
                )
                return N.IrCall(p4_type=self._extern_return_type(name),
                                func=name, obj=None, args=args, type_args=type_args)
            raise TypeError_(f"unknown function {name!r}", call.location)
        if isinstance(func, A.Member):
            method = func.member
            recv = func.expr
            # Header validity methods.
            if method in self._HEADER_METHODS:
                lval = self.lower_lvalue(recv, scope)
                if method == "isValid":
                    return N.IrValidExpr(p4_type=BoolType(), header=lval)
                if method == "minSizeInBits":
                    return N.IrConst(p4_type=None, value=lval.p4_type.bit_width())
                return N.IrCall(p4_type=None, func=method, obj=lval, args=())
            if method in self._STACK_METHODS:
                lval = self.lower_lvalue(recv, scope)
                args = tuple(self.lower_expr(a, scope, None) for a in call.args)
                return N.IrCall(p4_type=None, func=method, obj=lval, args=args)
            # Receiver variable: packet_in/out or an extern instance.
            if isinstance(recv, A.Ident):
                recv_name = recv.name
                recv_type = scope.lookup(recv_name)
                if isinstance(recv_type, StructType) and recv_type.name in (
                    "packet_in",
                    "packet_out",
                ):
                    args = []
                    if method in ("extract", "emit"):
                        target_lv = self.lower_lvalue(call.args[0], scope)
                        args.append(target_lv)
                        for extra in call.args[1:]:
                            args.append(self.lower_expr(extra, scope, BitsType(32)))
                    elif method == "advance":
                        args.append(self.lower_expr(call.args[0], scope, BitsType(32)))
                    rtype = None
                    if method == "lookahead":
                        rtype = type_args[0] if type_args else None
                    elif method == "length":
                        rtype = BitsType(32)
                    return N.IrCall(
                        p4_type=rtype,
                        func=method,
                        obj=recv_name,
                        args=tuple(args),
                        type_args=type_args,
                    )
                # Extern instance method (register.read etc.).
                inst = self._find_instance(recv_name)
                if inst is not None:
                    args = tuple(
                        self._default_width(self.lower_expr(a, scope, None))
                        for a in call.args
                    )
                    rtype = self._instance_method_type(inst, method)
                    return N.IrCall(
                        p4_type=rtype,
                        func=f"{inst.extern_type}.{method}",
                        obj=inst.full_name,
                        args=args,
                        type_args=type_args,
                    )
            raise TypeError_(
                f"unsupported method call {method!r} on {recv!r}", call.location
            )
        raise TypeError_(f"unsupported call {func!r}", call.location)

    def _default_width(self, e: N.IrExpr) -> N.IrExpr:
        """Extern call arguments whose width the callee doesn't pin
        (untyped literals) default to bit<32>, matching P4C."""
        if isinstance(e, N.IrConst) and e.p4_type is None \
                and not isinstance(e.value, str):
            return self._coerce(e, BitsType(32), None)
        return e

    def _find_instance(self, name: str):
        if self._current_control is not None and name in self._current_control.instances:
            return self._current_control.instances[name]
        if self._current_parser is not None and name in self._current_parser.instances:
            return self._current_parser.instances[name]
        return None

    def _instance_method_type(self, inst: N.IrInstance, method: str):
        """Return type of extern-instance methods that produce values."""
        if method in ("read", "execute", "get", "update"):
            if inst.type_args:
                first = inst.type_args[0]
                if first is not None and first.is_scalar():
                    return first
            if method in ("execute",):
                return BitsType(8)
            if method in ("get", "update"):
                return BitsType(16)
        if method == "verify":
            return BoolType()
        return None

    def _extern_return_type(self, name: str):
        for decl in self.ast.declarations:
            if isinstance(decl, A.FunctionDecl) and decl.name == name:
                if isinstance(decl.return_type, A.VoidTypeAst):
                    return None
                return self.resolve_type(decl.return_type)
        return None

    # ==================================================================
    # Main package
    # ==================================================================

    def _lower_main(self) -> None:
        main = None
        instantiations: dict[str, A.Instantiation] = {}
        for decl in self.ast.declarations:
            if isinstance(decl, A.Instantiation):
                instantiations[decl.name] = decl
                if decl.name == "main":
                    main = decl
        if main is None:
            return  # library-style program without a main; allowed in tests

        def binding_of(arg) -> list[N.BlockBinding]:
            if isinstance(arg, A.Call) and isinstance(arg.func, A.Ident):
                name = arg.func.name
                if name in self.ir.parsers:
                    return [N.BlockBinding(kind="parser", decl_name=name)]
                if name in self.ir.controls:
                    return [N.BlockBinding(kind="control", decl_name=name)]
                if name in self.packages or name in instantiations:
                    return [b for a in arg.args for b in binding_of(a)]
                raise TypeError_(f"unknown block {name!r} in package instantiation")
            if isinstance(arg, A.Ident) and arg.name in instantiations:
                inner = instantiations[arg.name]
                out = []
                for a in inner.args:
                    out.extend(binding_of(a))
                return out
            raise TypeError_(f"unsupported package argument {arg!r}")

        type_ast = main.type_ast
        if isinstance(type_ast, A.SpecializedTypeAst):
            self.ir.package_name = type_ast.base
        elif isinstance(type_ast, A.TypeName):
            self.ir.package_name = type_ast.name
        bindings = []
        for arg in main.args:
            bindings.extend(binding_of(arg))
        # Attach package parameter slots when the declaration is known.
        pkg = self.packages.get(self.ir.package_name)
        if pkg is not None and len(pkg.params) == len(main.args):
            for slot_param, b in zip(pkg.params, bindings[: len(pkg.params)]):
                b.slot = slot_param.name
        self.ir.bindings = bindings


def lower(program: A.Program) -> N.IrProgram:
    """Lower a parsed program (prelude declarations must be included)."""
    return Lowerer(program).run()


def lower_source(text: str, source: str = "<input>") -> N.IrProgram:
    """Parse and lower P4 source, automatically prepending the built-in
    prelude selected by the program's #include lines."""
    from ..frontend.lexer import tokenize

    _tokens, includes = tokenize(text, source)
    prelude_text = prelude_for_includes(includes)
    prelude_ast = parse_program(prelude_text, "<prelude>")
    user_ast = parse_program(
        text, source, type_names=prelude_ast.declared_type_names
    )
    merged = A.Program(
        declarations=prelude_ast.declarations + user_ast.declarations,
        includes=user_ast.includes,
        source=source,
    )
    return lower(merged)
