"""Mid-end transforms over the IR.

Mirrors the P4C passes the paper relies on (§4, step 1):

- constant folding;
- dead-code elimination (constant if-branches, statements after
  exit/return, unreachable parser states) — statement coverage is
  computed *after* this pass, matching §7;
- replacement of run-time header-stack indices with conditionals and
  constant indices;
- bounded parser-loop unrolling (cyclic parser states are cloned up to
  a bound; exceeding the bound transitions to ``reject``).
"""

from __future__ import annotations

from ..frontend.types import BitsType, BoolType, StackType
from . import nodes as N

__all__ = [
    "run_midend",
    "fold_constants",
    "eliminate_dead_code",
    "expand_dynamic_stack_indices",
    "unroll_parsers",
    "DEFAULT_UNROLL_BOUND",
]

DEFAULT_UNROLL_BOUND = 4


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------

_PY_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if b else 0,
    "%": lambda a, b: a % b if b else 0,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
}

_PY_CMPOPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


def _mask_for(p4_type) -> int | None:
    if p4_type is None:
        return None
    try:
        return (1 << p4_type.bit_width()) - 1
    except Exception:
        return None


def fold_expr(e: N.IrExpr) -> N.IrExpr:
    """Bottom-up constant folding of one expression tree."""
    if e is None or isinstance(e, (N.IrConst,)):
        return e
    if isinstance(e, N.IrLValExpr):
        return e
    if isinstance(e, N.IrUnop):
        operand = fold_expr(e.operand)
        if isinstance(operand, N.IrConst):
            mask = _mask_for(e.p4_type)
            if e.op == "!":
                return N.IrConst(p4_type=BoolType(), value=not operand.value)
            if e.op == "-":
                v = -operand.value
                return N.IrConst(p4_type=e.p4_type, value=v & mask if mask else v)
            if e.op == "~":
                v = ~operand.value
                return N.IrConst(p4_type=e.p4_type, value=v & mask if mask else v)
        if operand is e.operand:
            return e
        return N.IrUnop(p4_type=e.p4_type, op=e.op, operand=operand)
    if isinstance(e, N.IrBinop):
        left = fold_expr(e.left)
        right = fold_expr(e.right)
        if isinstance(left, N.IrConst) and isinstance(right, N.IrConst):
            if e.op in _PY_CMPOPS:
                return N.IrConst(
                    p4_type=BoolType(), value=_PY_CMPOPS[e.op](left.value, right.value)
                )
            if e.op in _PY_BINOPS:
                v = _PY_BINOPS[e.op](int(left.value), int(right.value))
                mask = _mask_for(e.p4_type)
                return N.IrConst(p4_type=e.p4_type, value=v & mask if mask else v)
            if e.op == "&&":
                return N.IrConst(p4_type=BoolType(), value=bool(left.value and right.value))
            if e.op == "||":
                return N.IrConst(p4_type=BoolType(), value=bool(left.value or right.value))
        # Short-circuit identities.
        if e.op == "&&":
            if isinstance(left, N.IrConst):
                return right if left.value else N.IrConst(p4_type=BoolType(), value=False)
            if isinstance(right, N.IrConst) and right.value:
                return left
        if e.op == "||":
            if isinstance(left, N.IrConst):
                return N.IrConst(p4_type=BoolType(), value=True) if left.value else right
            if isinstance(right, N.IrConst) and not right.value:
                return left
        if left is e.left and right is e.right:
            return e
        return N.IrBinop(p4_type=e.p4_type, op=e.op, left=left, right=right)
    if isinstance(e, N.IrConcat):
        parts = tuple(fold_expr(p) for p in e.parts)
        if all(isinstance(p, N.IrConst) for p in parts):
            value = 0
            for p in parts:
                value = (value << p.p4_type.bit_width()) | int(p.value)
            return N.IrConst(p4_type=e.p4_type, value=value)
        return N.IrConcat(p4_type=e.p4_type, parts=parts)
    if isinstance(e, N.IrSliceExpr):
        inner = fold_expr(e.expr)
        if isinstance(inner, N.IrConst):
            value = (int(inner.value) >> e.lo) & ((1 << (e.hi - e.lo + 1)) - 1)
            return N.IrConst(p4_type=e.p4_type, value=value)
        return N.IrSliceExpr(p4_type=e.p4_type, expr=inner, hi=e.hi, lo=e.lo)
    if isinstance(e, N.IrTernary):
        cond = fold_expr(e.cond)
        then = fold_expr(e.then)
        other = fold_expr(e.other)
        if isinstance(cond, N.IrConst):
            return then if cond.value else other
        return N.IrTernary(p4_type=e.p4_type, cond=cond, then=then, other=other)
    if isinstance(e, N.IrCast):
        inner = fold_expr(e.expr)
        if isinstance(inner, N.IrConst) and not isinstance(inner.value, bool):
            mask = _mask_for(e.p4_type)
            if mask is not None:
                return N.IrConst(p4_type=e.p4_type, value=int(inner.value) & mask)
        if isinstance(inner, N.IrConst) and isinstance(inner.value, bool):
            mask = _mask_for(e.p4_type)
            if mask is not None:
                return N.IrConst(p4_type=e.p4_type, value=int(inner.value))
        return N.IrCast(p4_type=e.p4_type, expr=inner)
    if isinstance(e, N.IrCall):
        args = tuple(
            fold_expr(a) if isinstance(a, N.IrExpr) else a for a in e.args
        )
        return N.IrCall(
            p4_type=e.p4_type, func=e.func, obj=e.obj, args=args, type_args=e.type_args
        )
    if isinstance(e, N.IrTupleExpr):
        return N.IrTupleExpr(
            p4_type=e.p4_type, elements=tuple(fold_expr(x) for x in e.elements)
        )
    return e


def _fold_stmts(stmts: list) -> None:
    for s in stmts:
        if isinstance(s, N.IrAssign):
            s.value = fold_expr(s.value)
        elif isinstance(s, N.IrVarDecl) and s.init is not None:
            s.init = fold_expr(s.init)
        elif isinstance(s, N.IrIf):
            s.cond = fold_expr(s.cond)
            _fold_stmts(s.then_stmts)
            _fold_stmts(s.else_stmts)
        elif isinstance(s, N.IrMethodCall):
            s.call = fold_expr(s.call)
        elif isinstance(s, N.IrSwitch):
            for _labels, body in s.cases:
                _fold_stmts(body)
        elif isinstance(s, N.IrReturn) and s.value is not None:
            s.value = fold_expr(s.value)


def fold_constants(program: N.IrProgram) -> N.IrProgram:
    for parser in program.parsers.values():
        for state in parser.states.values():
            _fold_stmts(state.statements)
            tr = state.transition
            if tr is not None and tr.direct is None:
                tr.select_exprs = [fold_expr(e) for e in tr.select_exprs]
    for control in program.controls.values():
        _fold_stmts(control.apply_stmts)
        for action in control.actions.values():
            _fold_stmts(action.body)
        for table in control.tables.values():
            for key in table.keys:
                key.expr = fold_expr(key.expr)
    for action in program.actions.values():
        _fold_stmts(action.body)
    return program


# ---------------------------------------------------------------------------
# Dead-code elimination
# ---------------------------------------------------------------------------

def _dce_stmts(stmts: list) -> list:
    out = []
    for s in stmts:
        if isinstance(s, N.IrIf):
            if isinstance(s.cond, N.IrConst):
                out.extend(_dce_stmts(s.then_stmts if s.cond.value else s.else_stmts))
                continue
            s.then_stmts = _dce_stmts(s.then_stmts)
            s.else_stmts = _dce_stmts(s.else_stmts)
            out.append(s)
        elif isinstance(s, N.IrSwitch):
            s.cases = [(labels, _dce_stmts(body)) for labels, body in s.cases]
            out.append(s)
        else:
            out.append(s)
        if isinstance(s, (N.IrExit, N.IrReturn)):
            break  # everything after is unreachable
    return out


def eliminate_dead_code(program: N.IrProgram) -> N.IrProgram:
    for parser in program.parsers.values():
        for state in parser.states.values():
            state.statements = _dce_stmts(state.statements)
        # Remove states unreachable from start.
        reachable = set()
        stack = ["start"]
        while stack:
            name = stack.pop()
            if name in reachable or name in ("accept", "reject"):
                continue
            reachable.add(name)
            state = parser.states.get(name)
            if state is None or state.transition is None:
                continue
            tr = state.transition
            if tr.direct is not None:
                stack.append(tr.direct)
            else:
                for case in tr.cases:
                    stack.append(case.state)
        parser.states = {
            n: s for n, s in parser.states.items() if n in reachable
        }
    for control in program.controls.values():
        control.apply_stmts = _dce_stmts(control.apply_stmts)
        for action in control.actions.values():
            action.body = _dce_stmts(action.body)
    for action in program.actions.values():
        action.body = _dce_stmts(action.body)
    return program


# ---------------------------------------------------------------------------
# Dynamic header-stack index expansion
# ---------------------------------------------------------------------------

def _has_dynamic_index(lv) -> bool:
    if isinstance(lv, N.IndexLV):
        if not isinstance(lv.index, N.IrConst):
            return True
        return _has_dynamic_index(lv.base)
    if isinstance(lv, (N.FieldLV, N.SliceLV)):
        return _has_dynamic_index(lv.base)
    return False


def _index_cases(lv):
    """Find the innermost dynamic IndexLV and its stack size; returns
    (index_expr, size, rebuild) where rebuild(i) produces the lvalue
    with the dynamic index replaced by constant ``i``."""
    if isinstance(lv, N.IndexLV) and not isinstance(lv.index, N.IrConst):
        stack_type = lv.base.p4_type
        size = stack_type.size if isinstance(stack_type, StackType) else 1

        def rebuild(i):
            return N.IndexLV(
                p4_type=lv.p4_type,
                base=lv.base,
                index=N.IrConst(p4_type=BitsType(32), value=i),
            )

        return lv.index, size, rebuild
    if isinstance(lv, N.FieldLV):
        inner = _index_cases(lv.base)
        if inner is None:
            return None
        idx, size, rebuild_base = inner

        def rebuild(i):
            return N.FieldLV(p4_type=lv.p4_type, base=rebuild_base(i), field=lv.field)

        return idx, size, rebuild
    if isinstance(lv, N.SliceLV):
        inner = _index_cases(lv.base)
        if inner is None:
            return None
        idx, size, rebuild_base = inner

        def rebuild(i):
            return N.SliceLV(
                p4_type=lv.p4_type, base=rebuild_base(i), hi=lv.hi, lo=lv.lo
            )

        return idx, size, rebuild
    return None


def _expand_expr(e: N.IrExpr) -> N.IrExpr:
    """Rewrite dynamic-index reads into chains of ternaries."""
    if isinstance(e, N.IrLValExpr) and _has_dynamic_index(e.lval):
        info = _index_cases(e.lval)
        if info is None:
            return e
        idx_expr, size, rebuild = info
        result = N.IrLValExpr(p4_type=e.p4_type, lval=rebuild(size - 1))
        for i in range(size - 2, -1, -1):
            cond = N.IrBinop(
                p4_type=BoolType(),
                op="==",
                left=idx_expr,
                right=N.IrConst(p4_type=idx_expr.p4_type, value=i),
            )
            result = N.IrTernary(
                p4_type=e.p4_type,
                cond=cond,
                then=N.IrLValExpr(p4_type=e.p4_type, lval=rebuild(i)),
                other=result,
            )
        return result
    if isinstance(e, N.IrBinop):
        return N.IrBinop(
            p4_type=e.p4_type, op=e.op, left=_expand_expr(e.left), right=_expand_expr(e.right)
        )
    if isinstance(e, N.IrUnop):
        return N.IrUnop(p4_type=e.p4_type, op=e.op, operand=_expand_expr(e.operand))
    if isinstance(e, N.IrTernary):
        return N.IrTernary(
            p4_type=e.p4_type,
            cond=_expand_expr(e.cond),
            then=_expand_expr(e.then),
            other=_expand_expr(e.other),
        )
    if isinstance(e, N.IrCast):
        return N.IrCast(p4_type=e.p4_type, expr=_expand_expr(e.expr))
    if isinstance(e, N.IrConcat):
        return N.IrConcat(p4_type=e.p4_type, parts=tuple(_expand_expr(p) for p in e.parts))
    if isinstance(e, N.IrSliceExpr):
        return N.IrSliceExpr(p4_type=e.p4_type, expr=_expand_expr(e.expr), hi=e.hi, lo=e.lo)
    return e


def _expand_stmt(s) -> list:
    if isinstance(s, N.IrAssign):
        s.value = _expand_expr(s.value)
        if _has_dynamic_index(s.target):
            info = _index_cases(s.target)
            if info is not None:
                idx_expr, size, rebuild = info
                # if (idx == 0) t[0] = v else if (idx == 1) ...
                chain = None
                for i in range(size - 1, -1, -1):
                    assign = N.IrAssign(
                        location=s.location, target=rebuild(i), value=s.value
                    )
                    cond = N.IrBinop(
                        p4_type=BoolType(),
                        op="==",
                        left=idx_expr,
                        right=N.IrConst(p4_type=idx_expr.p4_type, value=i),
                    )
                    chain = N.IrIf(
                        location=s.location,
                        cond=cond,
                        then_stmts=[assign],
                        else_stmts=[chain] if chain is not None else [],
                    )
                return [chain]
        return [s]
    if isinstance(s, N.IrVarDecl):
        if s.init is not None:
            s.init = _expand_expr(s.init)
        return [s]
    if isinstance(s, N.IrIf):
        s.cond = _expand_expr(s.cond)
        s.then_stmts = _expand_stmts(s.then_stmts)
        s.else_stmts = _expand_stmts(s.else_stmts)
        return [s]
    if isinstance(s, N.IrSwitch):
        s.cases = [(labels, _expand_stmts(body)) for labels, body in s.cases]
        return [s]
    return [s]


def _expand_stmts(stmts: list) -> list:
    out = []
    for s in stmts:
        out.extend(_expand_stmt(s))
    return out


def expand_dynamic_stack_indices(program: N.IrProgram) -> N.IrProgram:
    for parser in program.parsers.values():
        for state in parser.states.values():
            state.statements = _expand_stmts(state.statements)
    for control in program.controls.values():
        control.apply_stmts = _expand_stmts(control.apply_stmts)
        for action in control.actions.values():
            action.body = _expand_stmts(action.body)
    for action in program.actions.values():
        action.body = _expand_stmts(action.body)
    return program


# ---------------------------------------------------------------------------
# Parser-loop unrolling
# ---------------------------------------------------------------------------

def _parser_cycles(parser: N.IrParser) -> set[str]:
    """Names of states that sit on a cycle (Tarjan-free approximation:
    a state is cyclic if it can reach itself)."""
    succ: dict[str, set[str]] = {}
    for name, state in parser.states.items():
        targets = set()
        tr = state.transition
        if tr is not None:
            if tr.direct is not None:
                targets.add(tr.direct)
            else:
                targets.update(c.state for c in tr.cases)
        succ[name] = {t for t in targets if t not in ("accept", "reject")}
    cyclic = set()
    for start in succ:
        seen = set()
        stack = list(succ.get(start, ()))
        while stack:
            cur = stack.pop()
            if cur == start:
                cyclic.add(start)
                break
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(succ.get(cur, ()))
    return cyclic


def _clone_transition(tr: N.IrTransition, rename) -> N.IrTransition:
    if tr is None:
        return N.IrTransition(direct="reject")
    if tr.direct is not None:
        return N.IrTransition(direct=rename(tr.direct))
    cases = [
        N.IrSelectCase(keysets=c.keysets, state=rename(c.state)) for c in tr.cases
    ]
    return N.IrTransition(select_exprs=tr.select_exprs, cases=cases)


def unroll_parsers(program: N.IrProgram, bound: int = DEFAULT_UNROLL_BOUND) -> N.IrProgram:
    """Clone cyclic parser states ``bound`` times; the final copy's
    back-edges go to ``reject`` (paper §4: "unrolls parser loops up to a
    bound")."""
    for parser in program.parsers.values():
        cyclic = _parser_cycles(parser)
        if not cyclic:
            continue
        new_states: dict[str, N.IrParserState] = {}
        for name, state in parser.states.items():
            if name not in cyclic:
                def rename_plain(target, _cyclic=cyclic):
                    return f"{target}#0" if target in _cyclic else target

                state.transition = _clone_transition(state.transition, rename_plain)
                new_states[name] = state
                continue
            for k in range(bound):
                def rename_k(target, _k=k, _cyclic=cyclic):
                    if target not in _cyclic:
                        return target
                    if _k + 1 >= bound:
                        return "reject"
                    return f"{target}#{_k + 1}"

                clone = N.IrParserState(
                    name=f"{name}#{k}",
                    statements=state.statements if k == 0 else _clone_stmts(state.statements),
                    transition=_clone_transition(state.transition, rename_k),
                )
                new_states[clone.name] = clone
        if "start" in cyclic and "start" not in new_states:
            # keep the canonical entry name
            new_states["start"] = N.IrParserState(
                name="start",
                statements=[],
                transition=N.IrTransition(direct="start#0"),
            )
        parser.states = new_states
    return program


def _clone_stmts(stmts: list) -> list:
    """Deep-clone statements so clones get fresh stmt_ids (each unrolled
    copy is a distinct coverage point, as in P4C's unrolled IR)."""
    out = []
    for s in stmts:
        if isinstance(s, N.IrAssign):
            out.append(N.IrAssign(location=s.location, target=s.target, value=s.value))
        elif isinstance(s, N.IrVarDecl):
            out.append(
                N.IrVarDecl(
                    location=s.location, name=s.name, p4_type=s.p4_type, init=s.init
                )
            )
        elif isinstance(s, N.IrIf):
            out.append(
                N.IrIf(
                    location=s.location,
                    cond=s.cond,
                    then_stmts=_clone_stmts(s.then_stmts),
                    else_stmts=_clone_stmts(s.else_stmts),
                )
            )
        elif isinstance(s, N.IrMethodCall):
            out.append(N.IrMethodCall(location=s.location, call=s.call))
        elif isinstance(s, N.IrExit):
            out.append(N.IrExit(location=s.location))
        elif isinstance(s, N.IrReturn):
            out.append(N.IrReturn(location=s.location, value=s.value))
        else:
            out.append(s)
    return out


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def run_midend(program: N.IrProgram, unroll_bound: int = DEFAULT_UNROLL_BOUND) -> N.IrProgram:
    """The standard transform pipeline applied before symbolic execution."""
    fold_constants(program)
    expand_dynamic_stack_indices(program)
    unroll_parsers(program, unroll_bound)
    eliminate_dead_code(program)
    return program
