"""Typed IR, lowering, and mid-end transforms (the P4C stand-in).

Typical use::

    from repro.ir import load_ir
    program = load_ir(p4_source_text)   # parse + lower + midend
"""

from . import nodes
from .builtins import PRELUDES, prelude_for_includes
from .lower import lower, lower_source
from .transforms import run_midend

__all__ = ["nodes", "lower", "lower_source", "run_midend", "load_ir",
           "PRELUDES", "prelude_for_includes"]


def load_ir(text: str, source: str = "<input>", unroll_bound: int | None = None):
    """Parse, lower, and normalize P4 source into executable IR."""
    program = lower_source(text, source)
    from .transforms import DEFAULT_UNROLL_BOUND

    bound = unroll_bound if unroll_bound is not None else DEFAULT_UNROLL_BOUND
    return run_midend(program, bound)
