// switch.p4 analogue for tna (paper §7, Tbl. 4a): an L2/L3 switch
// profile with port/VLAN admission, L2 learning shape, L3 routing with
// ECMP hashing, an ingress ACL, and egress VLAN rewriting.  Deliberate
// "branchy" structure: exhaustive path enumeration is intractable, so
// coverage stays partial at any test cap (the paper reports 41% after
// one million tests on the real switch.p4).
#include <core.p4>
#include <tna.p4>

const bit<16> ETHERTYPE_IPV4 = 0x0800;
const bit<16> ETHERTYPE_VLAN = 0x8100;

header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header vlan_t {
    bit<3>  pcp;
    bit<1>  cfi;
    bit<12> vid;
    bit<16> ether_type;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  dscp;
    bit<16> total_len;
    bit<16> identification;
    bit<3>  flags;
    bit<13> frag_offset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> header_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header tcp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq_no;
    bit<32> ack_no;
    bit<4>  data_offset;
    bit<4>  res;
    bit<8>  flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent_ptr;
}

struct headers_t {
    ethernet_t ethernet;
    vlan_t     vlan;
    ipv4_t     ipv4;
    tcp_t      tcp;
}

struct switch_ig_md_t {
    bit<12> vid;
    bit<16> bd;
    bit<16> nexthop;
    bit<16> ecmp_hash;
    bit<1>  routed;
    bit<1>  acl_deny;
}

struct switch_eg_md_t {
    bit<12> vid;
}

parser SwitchIngressParser(packet_in pkt,
        out headers_t hdr,
        out switch_ig_md_t ig_md,
        out ingress_intrinsic_metadata_t ig_intr_md) {
    state start {
        pkt.extract(ig_intr_md);
        pkt.advance(64);
        transition parse_ethernet;
    }
    state parse_ethernet {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            ETHERTYPE_VLAN: parse_vlan;
            ETHERTYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_vlan {
        pkt.extract(hdr.vlan);
        transition select(hdr.vlan.ether_type) {
            ETHERTYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            6: parse_tcp;
            default: accept;
        }
    }
    state parse_tcp {
        pkt.extract(hdr.tcp);
        transition accept;
    }
}

control SwitchIngress(inout headers_t hdr,
        inout switch_ig_md_t ig_md,
        in ingress_intrinsic_metadata_t ig_intr_md,
        in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
        inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
        inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {

    Hash<bit<16>>(HashAlgorithm_t.CRC16) ecmp_hasher;

    action set_bd(bit<16> bd) {
        ig_md.bd = bd;
    }
    action port_deny() {
        ig_dprsr_md.drop_ctl = 1;
    }
    table port_vlan_table {
        key = {
            ig_intr_md.ingress_port: exact @name("port");
            hdr.vlan.vid: ternary @name("vid");
        }
        actions = { set_bd; port_deny; NoAction; }
        default_action = NoAction();
    }

    action l2_hit(PortId_t port) {
        ig_tm_md.ucast_egress_port = port;
    }
    table dmac_table {
        key = {
            ig_md.bd: exact @name("bd");
            hdr.ethernet.dst_addr: exact @name("dmac");
        }
        actions = { l2_hit; NoAction; }
        default_action = NoAction();
    }

    action set_nexthop(bit<16> nexthop) {
        ig_md.nexthop = nexthop;
        ig_md.routed = 1;
    }
    table ipv4_lpm_table {
        key = { hdr.ipv4.dst_addr: lpm @name("dst"); }
        actions = { set_nexthop; NoAction; }
        default_action = NoAction();
    }

    action nexthop_port(PortId_t port, bit<48> dmac) {
        ig_tm_md.ucast_egress_port = port;
        hdr.ethernet.dst_addr = dmac;
    }
    table nexthop_table {
        key = {
            ig_md.nexthop: exact @name("nexthop");
            ig_md.ecmp_hash: ternary @name("hash");
        }
        actions = { nexthop_port; NoAction; }
        default_action = NoAction();
    }

    action acl_deny() {
        ig_md.acl_deny = 1;
        ig_dprsr_md.drop_ctl = 1;
    }
    action acl_permit() { }
    table acl_table {
        key = {
            hdr.ipv4.src_addr: ternary @name("src");
            hdr.ipv4.dst_addr: ternary @name("dst");
            hdr.tcp.dst_port: range @name("dport");
        }
        actions = { acl_deny; acl_permit; NoAction; }
        default_action = NoAction();
    }

    apply {
        port_vlan_table.apply();
        if (ig_dprsr_md.drop_ctl == 0) {
            dmac_table.apply();
            if (hdr.ipv4.isValid()) {
                if (hdr.ipv4.ttl > 1) {
                    ipv4_lpm_table.apply();
                    if (ig_md.routed == 1) {
                        ig_md.ecmp_hash = ecmp_hasher.get(
                            { hdr.ipv4.src_addr, hdr.ipv4.dst_addr });
                        nexthop_table.apply();
                        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
                    }
                } else {
                    ig_dprsr_md.drop_ctl = 1;
                }
                if (hdr.tcp.isValid()) {
                    acl_table.apply();
                }
            }
        }
    }
}

control SwitchIngressDeparser(packet_out pkt,
        inout headers_t hdr,
        in switch_ig_md_t ig_md,
        in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.vlan);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.tcp);
    }
}

parser SwitchEgressParser(packet_in pkt,
        out headers_t hdr,
        out switch_eg_md_t eg_md,
        out egress_intrinsic_metadata_t eg_intr_md) {
    state start {
        pkt.extract(eg_intr_md);
        transition parse_ethernet;
    }
    state parse_ethernet {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            ETHERTYPE_VLAN: parse_vlan;
            default: accept;
        }
    }
    state parse_vlan {
        pkt.extract(hdr.vlan);
        transition accept;
    }
}

control SwitchEgress(inout headers_t hdr,
        inout switch_eg_md_t eg_md,
        in egress_intrinsic_metadata_t eg_intr_md,
        in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
        inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
        inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
    action strip_vlan() {
        hdr.ethernet.ether_type = hdr.vlan.ether_type;
        hdr.vlan.setInvalid();
    }
    action keep_vlan(bit<12> vid) {
        hdr.vlan.vid = vid;
    }
    table vlan_rewrite_table {
        key = { eg_intr_md.egress_port: exact @name("port"); }
        actions = { strip_vlan; keep_vlan; NoAction; }
        default_action = NoAction();
    }
    apply {
        if (hdr.vlan.isValid()) {
            vlan_rewrite_table.apply();
        }
    }
}

control SwitchEgressDeparser(packet_out pkt,
        inout headers_t hdr,
        in switch_eg_md_t eg_md,
        in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.vlan);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.tcp);
    }
}

Pipeline(SwitchIngressParser(), SwitchIngress(), SwitchIngressDeparser(),
         SwitchEgressParser(), SwitchEgress(), SwitchEgressDeparser()) pipe;

Switch(pipe) main;
