// middleblock.p4 analogue (paper §6.1.1/§7, Tbl. 4): a SONiC-PINS-style
// fixed-function data-center switch model for v1model, with L3 admit,
// IPv4/IPv6 routing, a nexthop table, an ACL with an entry restriction
// (P4-constraints), and TTL handling.
#include <core.p4>
#include <v1model.p4>

const bit<16> ETHERTYPE_IPV4 = 0x0800;
const bit<16> ETHERTYPE_IPV6 = 0x86DD;
const bit<16> ETHERTYPE_ARP  = 0x0806;

header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  dscp;
    bit<16> total_len;
    bit<16> identification;
    bit<3>  flags;
    bit<13> frag_offset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> header_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header ipv6_t {
    bit<4>   version;
    bit<8>   traffic_class;
    bit<20>  flow_label;
    bit<16>  payload_length;
    bit<8>   next_header;
    bit<8>   hop_limit;
    bit<128> src_addr;
    bit<128> dst_addr;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t     ipv4;
    ipv6_t     ipv6;
}

struct local_metadata_t {
    bit<1>  admit_to_l3;
    bit<10> nexthop_id;
    bit<1>  punt;
}

parser packet_parser(packet_in pkt, out headers_t hdr,
                     inout local_metadata_t meta,
                     inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            ETHERTYPE_IPV4: parse_ipv4;
            ETHERTYPE_IPV6: parse_ipv6;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
    state parse_ipv6 {
        pkt.extract(hdr.ipv6);
        transition accept;
    }
}

control verify_ipv4_checksum(inout headers_t hdr,
                             inout local_metadata_t meta) {
    apply { }
}

control ingress(inout headers_t hdr, inout local_metadata_t meta,
                inout standard_metadata_t sm) {
    action l3_admit() {
        meta.admit_to_l3 = 1;
    }
    table l3_admit_table {
        key = {
            hdr.ethernet.dst_addr: ternary @name("dst_mac");
        }
        actions = { l3_admit; NoAction; }
        default_action = NoAction();
    }

    action set_nexthop(bit<10> nexthop_id) {
        meta.nexthop_id = nexthop_id;
    }
    action drop_route() {
        mark_to_drop(sm);
    }
    table ipv4_table {
        key = { hdr.ipv4.dst_addr: lpm @name("ipv4_dst"); }
        actions = { set_nexthop; drop_route; NoAction; }
        default_action = NoAction();
    }
    table ipv6_table {
        key = { hdr.ipv6.dst_addr: lpm @name("ipv6_dst"); }
        actions = { set_nexthop; drop_route; NoAction; }
        default_action = NoAction();
    }

    action set_port_and_mac(bit<9> port, bit<48> src_mac, bit<48> dst_mac) {
        sm.egress_spec = port;
        hdr.ethernet.src_addr = src_mac;
        hdr.ethernet.dst_addr = dst_mac;
    }
    table nexthop_table {
        key = { meta.nexthop_id: exact @name("nexthop_id"); }
        actions = { set_port_and_mac; NoAction; }
        default_action = NoAction();
    }

    action acl_drop() {
        mark_to_drop(sm);
    }
    action acl_trap() {
        meta.punt = 1;
        sm.egress_spec = 510;  // CPU port
    }
    @entry_restriction("ether_type != 0x0800 && ether_type != 0x86DD")
    table acl_ingress_table {
        key = {
            hdr.ethernet.ether_type: ternary @name("ether_type");
            sm.ingress_port: ternary @name("in_port");
        }
        actions = { acl_drop; acl_trap; NoAction; }
        default_action = NoAction();
    }

    apply {
        l3_admit_table.apply();
        if (meta.admit_to_l3 == 1) {
            if (hdr.ipv4.isValid()) {
                if (hdr.ipv4.ttl <= 1) {
                    mark_to_drop(sm);
                } else {
                    hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
                    ipv4_table.apply();
                    nexthop_table.apply();
                }
            } else if (hdr.ipv6.isValid()) {
                if (hdr.ipv6.hop_limit <= 1) {
                    mark_to_drop(sm);
                } else {
                    hdr.ipv6.hop_limit = hdr.ipv6.hop_limit - 1;
                    ipv6_table.apply();
                    nexthop_table.apply();
                }
            }
        }
        acl_ingress_table.apply();
    }
}

control egress(inout headers_t hdr, inout local_metadata_t meta,
               inout standard_metadata_t sm) {
    apply { }
}

control compute_ipv4_checksum(inout headers_t hdr,
                              inout local_metadata_t meta) {
    apply {
        update_checksum(hdr.ipv4.isValid(),
            { hdr.ipv4.version, hdr.ipv4.ihl, hdr.ipv4.dscp,
              hdr.ipv4.total_len, hdr.ipv4.identification,
              hdr.ipv4.flags, hdr.ipv4.frag_offset, hdr.ipv4.ttl,
              hdr.ipv4.protocol, hdr.ipv4.src_addr, hdr.ipv4.dst_addr },
            hdr.ipv4.header_checksum, HashAlgorithm.csum16);
    }
}

control deparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.ipv6);
    }
}

V1Switch(packet_parser(), verify_ipv4_checksum(), ingress(), egress(),
         compute_ipv4_checksum(), deparser()) main;
