// Paper Fig. 1a: forward Ethernet packets by a table matching the
// EtherType (which the program itself overwrites with 0xBEEF).
#include <core.p4>
#include <v1model.p4>

header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}

struct headers_t {
    ethernet_t eth;
}

struct meta_t {
    bit<9> output_port;
}

parser MyParser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.eth);
        transition accept;
    }
}

control MyVerify(inout headers_t hdr, inout meta_t meta) {
    apply { }
}

control MyIngress(inout headers_t h, inout meta_t meta,
                  inout standard_metadata_t sm) {
    action noop() { }
    action set_out(bit<9> port) {
        meta.output_port = port;
        sm.egress_spec = port;
    }
    table forward_table {
        key = { h.eth.type: exact @name("type"); }
        actions = { noop; set_out; }
        default_action = noop();
    }
    apply {
        h.eth.type = 0xBEEF;
        forward_table.apply();
    }
}

control MyEgress(inout headers_t h, inout meta_t meta,
                 inout standard_metadata_t sm) {
    apply { }
}

control MyCompute(inout headers_t hdr, inout meta_t meta) {
    apply { }
}

control MyDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.eth);
    }
}

V1Switch(MyParser(), MyVerify(), MyIngress(), MyEgress(),
         MyCompute(), MyDeparser()) main;
