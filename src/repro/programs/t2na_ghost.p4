// Tofino 2 program: GhostPipeline with the ghost thread (§6.1.2 /
// App. A.1 — "t2na adds a programmable block, the ghost thread") and
// the wider 192-bit port-metadata prepend.
#include <core.p4>
#include <t2na.p4>

header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> etype;
}

struct headers_t {
    ethernet_t eth;
}

struct ig_md_t {
    bit<16> bucket;
}

struct eg_md_t {
    bit<8> unused;
}

parser GIngressParser(packet_in pkt,
        out headers_t hdr,
        out ig_md_t ig_md,
        out ingress_intrinsic_metadata_t ig_intr_md) {
    state start {
        pkt.extract(ig_intr_md);
        pkt.advance(192);  // Tofino 2 PORT_METADATA_SIZE
        transition parse_ethernet;
    }
    state parse_ethernet {
        pkt.extract(hdr.eth);
        transition accept;
    }
}

control GIngress(inout headers_t hdr,
        inout ig_md_t ig_md,
        in ingress_intrinsic_metadata_t ig_intr_md,
        in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
        inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
        inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
    action forward(PortId_t port) {
        ig_tm_md.ucast_egress_port = port;
    }
    action toss() {
        ig_dprsr_md.drop_ctl = 1;
    }
    table route {
        key = { hdr.eth.etype: exact @name("etype"); }
        actions = { forward; toss; }
        default_action = toss();
    }
    apply {
        route.apply();
    }
}

control GIngressDeparser(packet_out pkt,
        inout headers_t hdr,
        in ig_md_t ig_md,
        in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
    apply {
        pkt.emit(hdr.eth);
    }
}

parser GEgressParser(packet_in pkt,
        out headers_t hdr,
        out eg_md_t eg_md,
        out egress_intrinsic_metadata_t eg_intr_md) {
    state start {
        pkt.extract(eg_intr_md);
        transition accept;
    }
}

control GEgress(inout headers_t hdr,
        inout eg_md_t eg_md,
        in egress_intrinsic_metadata_t eg_intr_md,
        in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
        inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
        inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
    apply { }
}

control GEgressDeparser(packet_out pkt,
        inout headers_t hdr,
        in eg_md_t eg_md,
        in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
    apply { }
}

control GhostThread(in ghost_intrinsic_metadata_t g_intr_md) {
    apply {
        // The ghost thread runs concurrently with packet processing;
        // its inputs (queue state) are unpredictable, so anything it
        // computes is tainted by construction.
    }
}

GhostPipeline(GIngressParser(), GIngress(), GIngressDeparser(),
              GEgressParser(), GEgress(), GEgressDeparser(),
              GhostThread()) pipe;

Switch(pipe) main;
