// Taint-spread demonstration program: a random value feeds a ternary
// table key.  With the wildcard mitigation (§5.3 item 2), P4Testgen can
// still synthesize always-matching entries; without it, only the
// default action is reachable through the control plane.
#include <core.p4>
#include <v1model.p4>

header data_t {
    bit<16> value;
}

struct headers_t {
    data_t data;
}

struct meta_t {
    bit<16> nonce;
    bit<4>  class;
}

parser tk_parser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                 inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.data);
        transition accept;
    }
}

control tk_verify(inout headers_t hdr, inout meta_t meta) { apply { } }

control tk_ingress(inout headers_t hdr, inout meta_t meta,
                   inout standard_metadata_t sm) {
    action classify(bit<4> class, bit<9> port) {
        meta.class = class;
        sm.egress_spec = port;
    }
    table classifier {
        key = {
            meta.nonce: ternary @name("nonce");
            hdr.data.value: exact @name("value");
        }
        actions = { classify; NoAction; }
        default_action = NoAction();
    }
    apply {
        random(meta.nonce, 16w0, 16w0xFFFF);
        classifier.apply();
    }
}

control tk_egress(inout headers_t hdr, inout meta_t meta,
                  inout standard_metadata_t sm) { apply { } }

control tk_compute(inout headers_t hdr, inout meta_t meta) { apply { } }

control tk_deparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.data);
    }
}

V1Switch(tk_parser(), tk_verify(), tk_ingress(), tk_egress(),
         tk_compute(), tk_deparser()) main;
