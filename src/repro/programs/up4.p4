// up4.p4 analogue (paper §7, Tbl. 4a): the ONF 5G user-plane function
// data plane for v1model — GTP-U tunnel termination (PDR lookup),
// forwarding-action rules (FAR), downlink encapsulation, and a meter
// whose RED outcome cannot be covered without meter configuration
// (the paper's stated reason up4 stops at 95%).
#include <core.p4>
#include <v1model.p4>

const bit<16> ETHERTYPE_IPV4 = 0x0800;
const bit<8>  PROTO_UDP = 17;
const bit<16> GTPU_PORT = 2152;

header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  dscp;
    bit<16> total_len;
    bit<16> identification;
    bit<3>  flags;
    bit<13> frag_offset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> header_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

header gtpu_t {
    bit<3>  version;
    bit<1>  pt;
    bit<1>  spare;
    bit<1>  ex_flag;
    bit<1>  seq_flag;
    bit<1>  npdu_flag;
    bit<8>  msgtype;
    bit<16> msglen;
    bit<32> teid;
}

header inner_ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  dscp;
    bit<16> total_len;
    bit<16> identification;
    bit<3>  flags;
    bit<13> frag_offset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> header_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

struct headers_t {
    ethernet_t   ethernet;
    ipv4_t       ipv4;
    udp_t        udp;
    gtpu_t       gtpu;
    inner_ipv4_t inner_ipv4;
}

struct local_metadata_t {
    bit<32> teid;
    bit<32> far_id;
    bit<1>  needs_tunneling;
    bit<1>  uplink;
    bit<32> tunnel_peer;
    bit<2>  meter_color;
}

parser upf_parser(packet_in pkt, out headers_t hdr,
                  inout local_metadata_t meta,
                  inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            ETHERTYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            PROTO_UDP: parse_udp;
            default: accept;
        }
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dst_port) {
            GTPU_PORT: parse_gtpu;
            default: accept;
        }
    }
    state parse_gtpu {
        pkt.extract(hdr.gtpu);
        transition parse_inner;
    }
    state parse_inner {
        pkt.extract(hdr.inner_ipv4);
        transition accept;
    }
}

control upf_verify(inout headers_t hdr, inout local_metadata_t meta) {
    apply { }
}

control upf_ingress(inout headers_t hdr, inout local_metadata_t meta,
                    inout standard_metadata_t sm) {
    meter(1024, MeterType.packets) session_meter;

    action set_uplink_pdr(bit<32> far_id) {
        meta.uplink = 1;
        meta.far_id = far_id;
        meta.teid = hdr.gtpu.teid;
    }
    action set_downlink_pdr(bit<32> far_id, bit<32> teid) {
        meta.uplink = 0;
        meta.far_id = far_id;
        meta.teid = teid;
        meta.needs_tunneling = 1;
    }
    action pdr_drop() {
        mark_to_drop(sm);
    }
    table pdr_table {
        key = {
            hdr.inner_ipv4.src_addr: ternary @name("ue_addr");
            hdr.gtpu.teid: ternary @name("teid");
        }
        actions = { set_uplink_pdr; set_downlink_pdr; pdr_drop; NoAction; }
        default_action = NoAction();
    }

    action far_forward(bit<9> port) {
        sm.egress_spec = port;
    }
    action far_tunnel(bit<9> port, bit<32> peer) {
        sm.egress_spec = port;
        meta.tunnel_peer = peer;
    }
    action far_drop() {
        mark_to_drop(sm);
    }
    table far_table {
        key = { meta.far_id: exact @name("far_id"); }
        actions = { far_forward; far_tunnel; far_drop; NoAction; }
        default_action = far_drop();
    }

    apply {
        if (hdr.gtpu.isValid()) {
            pdr_table.apply();
            far_table.apply();
            session_meter.execute_meter(meta.far_id, meta.meter_color);
            if (meta.meter_color == 2) {
                // RED: not coverable without meter configuration
                // support in the test framework (paper §7).
                mark_to_drop(sm);
            }
            if (meta.uplink == 1) {
                // Decap: strip outer IP/UDP/GTP-U.
                hdr.ipv4.setInvalid();
                hdr.udp.setInvalid();
                hdr.gtpu.setInvalid();
            }
        } else {
            if (hdr.ipv4.isValid()) {
                pdr_table.apply();
                far_table.apply();
                if (meta.needs_tunneling == 1) {
                    // Encap: synthesize outer GTP-U headers.
                    hdr.gtpu.setValid();
                    hdr.gtpu.version = 1;
                    hdr.gtpu.pt = 1;
                    hdr.gtpu.msgtype = 0xFF;
                    hdr.gtpu.teid = meta.teid;
                    hdr.udp.setValid();
                    hdr.udp.dst_port = GTPU_PORT;
                    hdr.udp.src_port = GTPU_PORT;
                }
            }
        }
    }
}

control upf_egress(inout headers_t hdr, inout local_metadata_t meta,
                   inout standard_metadata_t sm) {
    apply {
        if (meta.uplink == 1) {
            if (hdr.inner_ipv4.isValid()) {
                hdr.inner_ipv4.ttl = hdr.inner_ipv4.ttl - 1;
            }
        }
    }
}

control upf_compute(inout headers_t hdr, inout local_metadata_t meta) {
    apply { }
}

control upf_deparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.gtpu);
        pkt.emit(hdr.inner_ipv4);
    }
}

V1Switch(upf_parser(), upf_verify(), upf_ingress(), upf_egress(),
         upf_compute(), upf_deparser()) main;
