// clone (paper §6.1.1): "requires P4Testgen's entire toolbox" — the
// pipeline control flow for the duplicate, plus session configuration.
// Packets tagged for monitoring are cloned to the mirror session while
// the original is forwarded.
#include <core.p4>
#include <v1model.p4>

header frame_t {
    bit<8>  flags;
    bit<32> payload;
}

struct headers_t {
    frame_t frame;
}

struct meta_t {
    bit<1> mirrored;
}

parser cl_parser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                 inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.frame);
        transition accept;
    }
}

control cl_verify(inout headers_t hdr, inout meta_t meta) { apply { } }

control cl_ingress(inout headers_t hdr, inout meta_t meta,
                   inout standard_metadata_t sm) {
    apply {
        if (hdr.frame.flags == 1) {
            clone(CloneType.I2E, 32w5);
            meta.mirrored = 1;
        }
        sm.egress_spec = 2;
    }
}

control cl_egress(inout headers_t hdr, inout meta_t meta,
                  inout standard_metadata_t sm) { apply { } }

control cl_compute(inout headers_t hdr, inout meta_t meta) { apply { } }

control cl_deparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.frame);
    }
}

V1Switch(cl_parser(), cl_verify(), cl_ingress(), cl_egress(),
         cl_compute(), cl_deparser()) main;
