// lookahead() peeks at packet content without consuming it; the parser
// uses it to pick a header format before extracting (a classic TLV
// pattern).  Exercises the lookahead packet method's size branching.
#include <core.p4>
#include <v1model.p4>

header short_t {
    bit<8>  kind;
    bit<8>  value;
}

header long_t {
    bit<8>  kind;
    bit<24> value;
}

struct headers_t {
    short_t s;
    long_t  l;
}

struct meta_t {
    bit<8> kind;
}

parser la_parser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                 inout standard_metadata_t sm) {
    state start {
        bit<8> kind = pkt.lookahead<bit<8>>();
        meta.kind = kind;
        transition select(kind) {
            1: parse_short;
            2: parse_long;
            default: accept;
        }
    }
    state parse_short {
        pkt.extract(hdr.s);
        transition accept;
    }
    state parse_long {
        pkt.extract(hdr.l);
        transition accept;
    }
}

control la_verify(inout headers_t hdr, inout meta_t meta) { apply { } }

control la_ingress(inout headers_t hdr, inout meta_t meta,
                   inout standard_metadata_t sm) {
    apply {
        if (hdr.s.isValid()) {
            sm.egress_spec = 1;
        } else if (hdr.l.isValid()) {
            sm.egress_spec = 2;
        } else {
            sm.egress_spec = 3;
        }
    }
}

control la_egress(inout headers_t hdr, inout meta_t meta,
                  inout standard_metadata_t sm) { apply { } }

control la_compute(inout headers_t hdr, inout meta_t meta) { apply { } }

control la_deparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.s);
        pkt.emit(hdr.l);
    }
}

V1Switch(la_parser(), la_verify(), la_ingress(), la_egress(),
         la_compute(), la_deparser()) main;
