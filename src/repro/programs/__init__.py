"""The P4 program corpus shipped with the reproduction.

Stand-ins for the paper's evaluation programs (P4C test suite, Tofino
SDE programs, middleblock.p4, up4.p4, switch.p4) written in our P4-16
subset.  Access by short name::

    from repro.programs import get_program_source, list_programs
    src = get_program_source("fig1a")
"""

from __future__ import annotations

import pathlib

__all__ = ["get_program_source", "list_programs", "program_path"]

_HERE = pathlib.Path(__file__).parent


def list_programs() -> list[str]:
    return sorted(p.stem for p in _HERE.glob("*.p4"))


def program_path(name: str) -> pathlib.Path:
    path = _HERE / f"{name}.p4"
    if not path.exists():
        raise KeyError(
            f"unknown program {name!r}; available: {', '.join(list_programs())}"
        )
    return path


def get_program_source(name: str) -> str:
    return program_path(name).read_text()
