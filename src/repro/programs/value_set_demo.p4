// Parser value sets (P4-16 §12.11): select cases configurable from the
// control plane, plus range/mask select cases.
#include <core.p4>
#include <v1model.p4>

header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> ether_type;
}

header trailer_t {
    bit<16> kind;
    bit<16> body;
}

struct headers_t {
    ethernet_t eth;
    trailer_t  trailer;
}

struct meta_t {
    bit<2> class;
}

parser vs_parser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                 inout standard_metadata_t sm) {
    value_set<bit<16>>(4) tunnel_types;

    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.ether_type) {
            tunnel_types: parse_trailer;
            0x9000 &&& 0xF000: masked_state;
            16w100 .. 16w200: range_state;
            default: accept;
        }
    }
    state parse_trailer {
        pkt.extract(hdr.trailer);
        transition accept;
    }
    state masked_state {
        transition accept;
    }
    state range_state {
        transition accept;
    }
}

control vs_verify(inout headers_t hdr, inout meta_t meta) { apply { } }

control vs_ingress(inout headers_t hdr, inout meta_t meta,
                   inout standard_metadata_t sm) {
    apply {
        if (hdr.trailer.isValid()) {
            meta.class = 1;
            sm.egress_spec = 5;
        } else {
            meta.class = 0;
        }
    }
}

control vs_egress(inout headers_t hdr, inout meta_t meta,
                  inout standard_metadata_t sm) { apply { } }

control vs_compute(inout headers_t hdr, inout meta_t meta) { apply { } }

control vs_deparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.eth);
        pkt.emit(hdr.trailer);
    }
}

V1Switch(vs_parser(), vs_verify(), vs_ingress(), vs_egress(),
         vs_compute(), vs_deparser()) main;
