// Paper Fig. 1b: validate an Ethernet "checksum": the EtherType field
// must equal the checksum of (dst, src); otherwise the packet drops.
#include <core.p4>
#include <v1model.p4>

header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}

struct headers_t {
    ethernet_t eth;
}

struct meta_t {
    bit<1> checksum_err;
}

parser MyParser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.eth);
        transition accept;
    }
}

control MyVerify(inout headers_t hdr, inout meta_t meta) {
    apply {
        verify_checksum(hdr.eth.isValid(),
                        { hdr.eth.dst, hdr.eth.src },
                        hdr.eth.type,
                        HashAlgorithm.csum16);
    }
}

control MyIngress(inout headers_t h, inout meta_t meta,
                  inout standard_metadata_t sm) {
    apply {
        if (sm.checksum_error == 1) {
            mark_to_drop(sm);  // Drop packet.
        }
    }
}

control MyEgress(inout headers_t h, inout meta_t meta,
                 inout standard_metadata_t sm) {
    apply { }
}

control MyCompute(inout headers_t hdr, inout meta_t meta) {
    apply { }
}

control MyDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.eth);
    }
}

V1Switch(MyParser(), MyVerify(), MyIngress(), MyEgress(),
         MyCompute(), MyDeparser()) main;
