// One table per match kind (exact/lpm/ternary/range/optional) plus
// const entries with priorities — the control-plane surface of §6.
#include <core.p4>
#include <v1model.p4>

header probe_t {
    bit<16> a;
    bit<16> b;
    bit<32> c;
}

struct headers_t {
    probe_t probe;
}

struct meta_t {
    bit<4> matched;
}

parser mk_parser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                 inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.probe);
        transition accept;
    }
}

control mk_verify(inout headers_t hdr, inout meta_t meta) { apply { } }

control mk_ingress(inout headers_t hdr, inout meta_t meta,
                   inout standard_metadata_t sm) {
    action tag(bit<4> value) {
        meta.matched = value;
    }
    table exact_table {
        key = { hdr.probe.a: exact @name("a"); }
        actions = { tag; NoAction; }
        default_action = NoAction();
    }
    table lpm_table {
        key = { hdr.probe.c: lpm @name("c"); }
        actions = { tag; NoAction; }
        default_action = NoAction();
    }
    table ternary_table {
        key = { hdr.probe.b: ternary @name("b"); }
        actions = { tag; NoAction; }
        default_action = NoAction();
        const entries = {
            @priority(1) 0x00FF &&& 0x00FF : tag(1);
            @priority(2) 0xFF00 &&& 0xFF00 : tag(2);
        }
    }
    table range_table {
        key = { hdr.probe.a: range @name("a_range"); }
        actions = { tag; NoAction; }
        default_action = NoAction();
    }
    table optional_table {
        key = { hdr.probe.b: optional @name("b_opt"); }
        actions = { tag; NoAction; }
        default_action = NoAction();
    }
    apply {
        exact_table.apply();
        lpm_table.apply();
        ternary_table.apply();
        range_table.apply();
        optional_table.apply();
        sm.egress_spec = (bit<9>) meta.matched;
    }
}

control mk_egress(inout headers_t hdr, inout meta_t meta,
                  inout standard_metadata_t sm) { apply { } }

control mk_compute(inout headers_t hdr, inout meta_t meta) { apply { } }

control mk_deparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.probe);
    }
}

V1Switch(mk_parser(), mk_verify(), mk_ingress(), mk_egress(),
         mk_compute(), mk_deparser()) main;
