// Paper Fig. 4: the ingress sets per-packet metadata that the
// target-defined pipeline control flow (Fig. 5) interprets — TTL 0
// drops in the traffic manager, TTL 1 resubmits, anything else
// forwards.  Also reads parser_err, which flips Tofino's short-packet
// policy from "drop" to "continue with unspecified header" (App. A.1).
#include <core.p4>
#include <tna.p4>

header ipish_t {
    bit<8>  ttl;
    bit<56> rest;
}

struct headers_t {
    ipish_t ip;
}

struct ig_md_t {
    bit<8> rounds;
}

struct eg_md_t {
    bit<8> unused;
}

parser F4IngressParser(packet_in pkt,
        out headers_t hdr,
        out ig_md_t ig_md,
        out ingress_intrinsic_metadata_t ig_intr_md) {
    state start {
        pkt.extract(ig_intr_md);
        pkt.advance(64);
        transition parse_ip;
    }
    state parse_ip {
        pkt.extract(hdr.ip);
        transition accept;
    }
}

control F4Ingress(inout headers_t hdr,
        inout ig_md_t ig_md,
        in ingress_intrinsic_metadata_t ig_intr_md,
        in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
        inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
        inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
    apply {
        if (ig_prsr_md.parser_err != 0) {
            // Short packet observed: send to a diagnostics port.
            ig_tm_md.ucast_egress_port = 64;
        } else {
            if (hdr.ip.ttl == 0) {
                ig_dprsr_md.drop_ctl = 1;      // Drop packet (Fig. 4)
            } else if (hdr.ip.ttl == 1) {
                hdr.ip.ttl = 0;
                ig_dprsr_md.resubmit_type = 1; // Resubmit packet (Fig. 4)
                ig_tm_md.ucast_egress_port = 1;
            } else {
                ig_tm_md.ucast_egress_port = 1;
            }
        }
    }
}

control F4IngressDeparser(packet_out pkt,
        inout headers_t hdr,
        in ig_md_t ig_md,
        in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
    apply {
        pkt.emit(hdr.ip);
    }
}

parser F4EgressParser(packet_in pkt,
        out headers_t hdr,
        out eg_md_t eg_md,
        out egress_intrinsic_metadata_t eg_intr_md) {
    state start {
        pkt.extract(eg_intr_md);
        transition accept;
    }
}

control F4Egress(inout headers_t hdr,
        inout eg_md_t eg_md,
        in egress_intrinsic_metadata_t eg_intr_md,
        in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
        inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
        inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
    apply { }
}

control F4EgressDeparser(packet_out pkt,
        inout headers_t hdr,
        in eg_md_t eg_md,
        in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
    apply { }
}

Pipeline(F4IngressParser(), F4Ingress(), F4IngressDeparser(),
         F4EgressParser(), F4Egress(), F4EgressDeparser()) pipe;

Switch(pipe) main;
