// Recirculation (paper §5.1.2 / Fig. 4-5): a TTL-like field drives the
// pipeline control flow — 0 drops, 1 recirculates, otherwise forward.
#include <core.p4>
#include <v1model.p4>

header hop_t {
    bit<8> hops;
    bit<8> tag;
}

struct headers_t {
    hop_t hop;
}

struct meta_t {
    bit<8> rounds;
}

parser rc_parser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                 inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.hop);
        transition accept;
    }
}

control rc_verify(inout headers_t hdr, inout meta_t meta) { apply { } }

control rc_ingress(inout headers_t hdr, inout meta_t meta,
                   inout standard_metadata_t sm) {
    apply {
        if (hdr.hop.hops == 0) {
            mark_to_drop(sm);
        } else if (hdr.hop.hops == 1) {
            hdr.hop.hops = 0;
            hdr.hop.tag = hdr.hop.tag + 1;
            recirculate_preserving_field_list(0);
            sm.egress_spec = 7;
        } else {
            sm.egress_spec = 7;
        }
    }
}

control rc_egress(inout headers_t hdr, inout meta_t meta,
                  inout standard_metadata_t sm) { apply { } }

control rc_compute(inout headers_t hdr, inout meta_t meta) { apply { } }

control rc_deparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.hop);
    }
}

V1Switch(rc_parser(), rc_verify(), rc_ingress(), rc_egress(),
         rc_compute(), rc_deparser()) main;
