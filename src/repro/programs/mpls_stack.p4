// MPLS label-stack program (v1model): exercises header stacks, parser
// loops (unrolled by the mid-end), .next/.last accessors, and
// push/pop — the constructs behind several Tbl. 3 bug flavors
// (BMV2-1, P4C-3, P4C-5).
#include <core.p4>
#include <v1model.p4>

const bit<16> ETHERTYPE_MPLS = 0x8847;

header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> ether_type;
}

header mpls_t {
    bit<20> label;
    bit<3>  tc;
    bit<1>  bos;
    bit<8>  ttl;
}

struct headers_t {
    ethernet_t eth;
    mpls_t[3]  mpls;
}

struct meta_t {
    bit<20> top_label;
}

parser mpls_parser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                   inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.ether_type) {
            ETHERTYPE_MPLS: parse_mpls;
            default: accept;
        }
    }
    state parse_mpls {
        pkt.extract(hdr.mpls.next);
        transition select(hdr.mpls.last.bos) {
            1: accept;
            default: parse_mpls;
        }
    }
}

control mpls_verify(inout headers_t hdr, inout meta_t meta) { apply { } }

control mpls_ingress(inout headers_t hdr, inout meta_t meta,
                     inout standard_metadata_t sm) {
    action pop_and_forward(bit<9> port) {
        hdr.mpls.pop_front(1);
        sm.egress_spec = port;
    }
    action swap_label(bit<20> label, bit<9> port) {
        hdr.mpls[0].label = label;
        sm.egress_spec = port;
    }
    table mpls_fib {
        key = { hdr.mpls[0].label: exact @name("label"); }
        actions = { pop_and_forward; swap_label; NoAction; }
        default_action = NoAction();
    }
    apply {
        if (hdr.mpls[0].isValid()) {
            meta.top_label = hdr.mpls[0].label;
            mpls_fib.apply();
        }
    }
}

control mpls_egress(inout headers_t hdr, inout meta_t meta,
                    inout standard_metadata_t sm) { apply { } }

control mpls_compute(inout headers_t hdr, inout meta_t meta) { apply { } }

control mpls_deparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.eth);
        pkt.emit(hdr.mpls);
    }
}

V1Switch(mpls_parser(), mpls_verify(), mpls_ingress(), mpls_egress(),
         mpls_compute(), mpls_deparser()) main;
