// Stateful tna program: Register read/write, CRC hash, and a range ACL
// — the extern surface of §6.1.2 on the Tofino pipeline.
#include <core.p4>
#include <tna.p4>

header probe_t {
    bit<8>  opcode;
    bit<32> key;
    bit<32> value;
    bit<16> port_hint;
}

struct headers_t {
    probe_t probe;
}

struct ig_md_t {
    bit<32> stored;
    bit<16> digest;
}

struct eg_md_t {
    bit<8> unused;
}

parser StatefulIngressParser(packet_in pkt,
        out headers_t hdr,
        out ig_md_t ig_md,
        out ingress_intrinsic_metadata_t ig_intr_md) {
    state start {
        pkt.extract(ig_intr_md);
        pkt.advance(64);
        transition parse_probe;
    }
    state parse_probe {
        pkt.extract(hdr.probe);
        transition accept;
    }
}

control StatefulIngress(inout headers_t hdr,
        inout ig_md_t ig_md,
        in ingress_intrinsic_metadata_t ig_intr_md,
        in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
        inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
        inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {

    Register<bit<32>, bit<32>>(256) flow_state;
    Hash<bit<16>>(HashAlgorithm_t.CRC16) flow_hash;

    action allow(PortId_t port) {
        ig_tm_md.ucast_egress_port = port;
    }
    action deny() {
        ig_dprsr_md.drop_ctl = 1;
    }
    table gate {
        key = { hdr.probe.port_hint: range @name("hint"); }
        actions = { allow; deny; }
        default_action = deny();
    }

    apply {
        ig_md.stored = flow_state.read(0);
        ig_md.digest = flow_hash.get({ hdr.probe.key, hdr.probe.value });
        if (hdr.probe.opcode == 1) {
            flow_state.write(0, hdr.probe.value);
            hdr.probe.value = ig_md.stored;
        } else if (hdr.probe.opcode == 2) {
            hdr.probe.value = (bit<32>) ig_md.digest;
        }
        gate.apply();
    }
}

control StatefulIngressDeparser(packet_out pkt,
        inout headers_t hdr,
        in ig_md_t ig_md,
        in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
    apply {
        pkt.emit(hdr.probe);
    }
}

parser StatefulEgressParser(packet_in pkt,
        out headers_t hdr,
        out eg_md_t eg_md,
        out egress_intrinsic_metadata_t eg_intr_md) {
    state start {
        pkt.extract(eg_intr_md);
        transition accept;
    }
}

control StatefulEgress(inout headers_t hdr,
        inout eg_md_t eg_md,
        in egress_intrinsic_metadata_t eg_intr_md,
        in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
        inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
        inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
    apply { }
}

control StatefulEgressDeparser(packet_out pkt,
        inout headers_t hdr,
        in eg_md_t eg_md,
        in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
    apply { }
}

Pipeline(StatefulIngressParser(), StatefulIngress(), StatefulIngressDeparser(),
         StatefulEgressParser(), StatefulEgress(), StatefulEgressDeparser()) pipe;

Switch(pipe) main;
