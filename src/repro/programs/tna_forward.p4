// A basic tna program: L2 forwarding with a drop action, exercising
// the Tofino pipeline shape (metadata prepend, port metadata skip,
// TM egress-port semantics).
#include <core.p4>
#include <tna.p4>

header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> etype;
}

struct headers_t {
    ethernet_t eth;
}

struct ig_metadata_t {
    bit<16> l2_hash;
}

struct eg_metadata_t {
    bit<8> unused;
}

parser SwitchIngressParser(packet_in pkt,
        out headers_t hdr,
        out ig_metadata_t ig_md,
        out ingress_intrinsic_metadata_t ig_intr_md) {
    state start {
        pkt.extract(ig_intr_md);
        pkt.advance(64);  // PORT_METADATA_SIZE
        transition parse_ethernet;
    }
    state parse_ethernet {
        pkt.extract(hdr.eth);
        transition accept;
    }
}

control SwitchIngress(inout headers_t hdr,
        inout ig_metadata_t ig_md,
        in ingress_intrinsic_metadata_t ig_intr_md,
        in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
        inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
        inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
    action set_port(PortId_t port) {
        ig_tm_md.ucast_egress_port = port;
    }
    action drop() {
        ig_dprsr_md.drop_ctl = 1;
    }
    table l2_forward {
        key = { hdr.eth.dst: exact @name("dmac"); }
        actions = { set_port; drop; }
        default_action = drop();
    }
    apply {
        l2_forward.apply();
    }
}

control SwitchIngressDeparser(packet_out pkt,
        inout headers_t hdr,
        in ig_metadata_t ig_md,
        in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
    apply {
        pkt.emit(hdr.eth);
    }
}

parser SwitchEgressParser(packet_in pkt,
        out headers_t hdr,
        out eg_metadata_t eg_md,
        out egress_intrinsic_metadata_t eg_intr_md) {
    state start {
        pkt.extract(eg_intr_md);
        transition parse_ethernet;
    }
    state parse_ethernet {
        pkt.extract(hdr.eth);
        transition accept;
    }
}

control SwitchEgress(inout headers_t hdr,
        inout eg_metadata_t eg_md,
        in egress_intrinsic_metadata_t eg_intr_md,
        in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
        inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
        inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
    apply { }
}

control SwitchEgressDeparser(packet_out pkt,
        inout headers_t hdr,
        in eg_metadata_t eg_md,
        in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
    apply {
        pkt.emit(hdr.eth);
    }
}

Pipeline(SwitchIngressParser(), SwitchIngress(), SwitchIngressDeparser(),
         SwitchEgressParser(), SwitchEgress(), SwitchEgressDeparser()) pipe;

Switch(pipe) main;
