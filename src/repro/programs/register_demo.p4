// Stateful processing: a register read/write pair whose initial value
// is chosen by the control plane (paper §6: "initialize externs such
// as registers ... with the appropriate value").
#include <core.p4>
#include <v1model.p4>

header probe_t {
    bit<8>  opcode;
    bit<32> operand;
}

struct headers_t {
    probe_t probe;
}

struct meta_t {
    bit<32> reg_value;
}

parser reg_parser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                  inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.probe);
        transition accept;
    }
}

control reg_verify(inout headers_t hdr, inout meta_t meta) { apply { } }

control reg_ingress(inout headers_t hdr, inout meta_t meta,
                    inout standard_metadata_t sm) {
    register<bit<32>>(16) state_reg;

    apply {
        state_reg.read(meta.reg_value, 0);
        if (hdr.probe.opcode == 1) {
            // Write-through: remember the operand.
            state_reg.write(0, hdr.probe.operand);
            hdr.probe.operand = meta.reg_value;
            sm.egress_spec = 1;
        } else if (hdr.probe.opcode == 2) {
            // Gate on the stored value.
            if (meta.reg_value == 0xDEADBEEF) {
                sm.egress_spec = 2;
            } else {
                mark_to_drop(sm);
            }
        } else {
            sm.egress_spec = 3;
        }
    }
}

control reg_egress(inout headers_t hdr, inout meta_t meta,
                   inout standard_metadata_t sm) { apply { } }

control reg_compute(inout headers_t hdr, inout meta_t meta) { apply { } }

control reg_deparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.probe);
    }
}

V1Switch(reg_parser(), reg_verify(), reg_ingress(), reg_egress(),
         reg_compute(), reg_deparser()) main;
