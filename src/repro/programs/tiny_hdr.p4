// A program whose first header is a single byte: the too-short branch
// of the very first extract yields a zero-length input packet,
// exercising BMv2's empty-packet handling (issue #977 flavor).
#include <core.p4>
#include <v1model.p4>

header tag_t {
    bit<8> kind;
}

header body_t {
    bit<32> value;
}

struct headers_t {
    tag_t  tag;
    body_t body;
}

struct meta_t {
    bit<8> kind_copy;
}

parser tiny_parser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                   inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.tag);
        transition select(hdr.tag.kind) {
            1: parse_body;
            default: accept;
        }
    }
    state parse_body {
        pkt.extract(hdr.body);
        transition accept;
    }
}

control tiny_verify(inout headers_t hdr, inout meta_t meta) { apply { } }

control tiny_ingress(inout headers_t hdr, inout meta_t meta,
                     inout standard_metadata_t sm) {
    apply {
        if (hdr.body.isValid()) {
            sm.egress_spec = (bit<9>) hdr.body.value[8:0];
        }
        meta.kind_copy = hdr.tag.kind;
    }
}

control tiny_egress(inout headers_t hdr, inout meta_t meta,
                    inout standard_metadata_t sm) { apply { } }

control tiny_compute(inout headers_t hdr, inout meta_t meta) { apply { } }

control tiny_deparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.tag);
        pkt.emit(hdr.body);
    }
}

V1Switch(tiny_parser(), tiny_verify(), tiny_ingress(), tiny_egress(),
         tiny_compute(), tiny_deparser()) main;
