// A minimal eBPF filter: accept IPv4 packets with a TTL above 1,
// reject everything else (paper §6.1.3 proof-of-concept shape).
#include <core.p4>
#include <ebpf_model.p4>

header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> etype;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<3>  flags;
    bit<13> frag_offset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

struct headers_t {
    ethernet_t eth;
    ipv4_t     ip;
}

parser prs(packet_in pkt, out headers_t hdr) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.etype) {
            0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ip);
        transition accept;
    }
}

control flt(inout headers_t hdr, out bool accept) {
    apply {
        accept = false;
        if (hdr.ip.isValid()) {
            if (hdr.ip.ttl > 1) {
                accept = true;
            }
        }
    }
}

ebpfFilter(prs(), flt()) main;
