"""repro: a Python reproduction of "P4Testgen: An Extensible Test
Oracle for P4-16" (SIGCOMM 2023).

Quickstart::

    from repro import TestGen, TestGenConfig, load_program
    from repro.targets import V1Model

    cfg = TestGenConfig(seed=1, max_tests=10)
    gen = TestGen(load_program("fig1a"), target=V1Model(), config=cfg)
    result = gen.run()
    print(result.coverage_report())
    print(result.emit("stf"))

Stream tests as they are found, or shard the search across worker
processes (byte-identical output for any ``jobs``)::

    for test in gen.iter_tests(config=cfg.replace(jobs=4)):
        ...

Batch many programs through the parallel engine::

    from repro import generate_suite
    results = generate_suite(
        [("fig1a", "v1model"), ("tunnel", "v1model")], jobs=4
    )

Custom test back ends plug into the open registry::

    from repro.testback import register_backend
    register_backend("mybackend", MyBackend)
"""

from .config import TestGenConfig
from .engine import Engine, EngineResult, generate_suite
from .oracle import TestGen, TestGenResult, load_program

__version__ = "1.0.0"
__all__ = [
    "TestGen",
    "TestGenConfig",
    "TestGenResult",
    "Engine",
    "EngineResult",
    "generate_suite",
    "load_program",
    "__version__",
]
