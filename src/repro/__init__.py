"""repro: a Python reproduction of "P4Testgen: An Extensible Test
Oracle for P4-16" (SIGCOMM 2023).

Quickstart::

    from repro import TestGen, load_program
    from repro.targets import V1Model

    gen = TestGen(load_program("fig1a"), target=V1Model(), seed=1)
    result = gen.run(max_tests=10)
    print(result.coverage_report())
    print(result.emit("stf"))
"""

from .oracle import TestGen, TestGenResult, load_program

__version__ = "1.0.0"
__all__ = ["TestGen", "TestGenResult", "load_program", "__version__"]
