"""Lane-packed batch execution engine for concrete replay.

The scalar interpreters (:mod:`repro.interp.core` and the per-family
simulators) step one packet at a time through recursive AST dispatch.
This module executes *k* packets per pass instead: every scalar
register of the compiled program (see :mod:`repro.interp.compile`) is
one Python big int holding k lanes of ``LANE_STRIDE`` bits each, and
straight-line bit-vector operations run once per *op* instead of once
per *packet* — classic SWAR, with Python's arbitrary-precision ints as
the vector unit.

Control flow is handled with divergence masks: every compiled op is a
closure ``m' = op(state, m)`` over a spread lane mask (bit ``i*STRIDE``
set when lane *i* is active).  ``if`` splits the mask by the packed
condition and re-merges; table application groups lanes by matched
action and runs each group under its own mask; parsers run a worklist
sweep that executes each reachable state once per sweep for all lanes
currently in it.

Anything the compiler cannot prove safe falls back to the scalar
interpreter at one of two levels, keeping classifications byte-exact:

- **whole program** — ``CompileUnsupported`` during the one-time
  compile (stateful externs, stacks, varbits, ...) routes the whole
  suite through the ordinary per-test simulators;
- **single lane** — runtime ejection (unknown runtime action name,
  parser sweep cap) re-runs just that packet on a fresh scalar
  simulator.

Lane geometry: ``LANE_STRIDE = 66`` = the 64-bit scalar width cap the
compiler enforces plus two guard bits, so per-lane add/subtract
carries (width ``w+1``) and the borrowed-bit comparison trick (bit
``w`` of ``(a | hm) - b``) stay inside their own lane.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dc_fields

from .core import Config, InterpResult

__all__ = [
    "LANE_STRIDE", "MAX_SCALAR_WIDTH", "DEFAULT_LANES", "ACCEPT", "REJECT",
    "Lanes", "LanePacket", "LaneState", "ReplayStats", "BatchSimulator",
    "pack_lanes", "unpack_lanes", "lane_splat", "iter_lanes",
    "lane_eq", "lane_ne", "lane_lt", "lane_select",
    "run_ops", "run_control_ops", "run_parser_plan", "drain_pending",
]

MAX_SCALAR_WIDTH = 64
LANE_STRIDE = MAX_SCALAR_WIDTH + 2  # value bits + carry guard + spare
# Packed ops cost the same for every lane in the register, so wider
# batches amortize the op-chain traversal; 32 lanes (~2k-bit ints) is
# where the big-int constant factor starts eating the gain.
DEFAULT_LANES = 32

# Parser lane-state sentinels (non-negative values index compiled states).
ACCEPT = -1
REJECT = -2

# One parser "sweep" runs every pending state once; the scalar
# interpreter errors out at 10k *steps per packet*, so 10k sweeps is
# strictly later — any lane still pending is ejected to the scalar
# path, which reproduces the scalar nontermination error exactly.
PARSER_SWEEP_CAP = 10_000


class Lanes:
    """Geometry for a batch of ``k`` lanes (masks are cached per width)."""

    __slots__ = ("k", "stride", "ones", "all", "_fm", "_hm")

    def __init__(self, k: int, stride: int = LANE_STRIDE):
        self.k = k
        self.stride = stride
        ones = 0
        for i in range(k):
            ones |= 1 << (i * stride)
        #: spread constant 1 — bit set at every lane origin.
        self.ones = ones
        #: spread mask with every lane active (alias of ``ones``).
        self.all = ones
        self._fm: dict[int, int] = {}
        self._hm: dict[int, int] = {}

    def fm(self, width: int) -> int:
        """Field mask: ``width`` low bits set in every lane."""
        m = self._fm.get(width)
        if m is None:
            m = self._fm[width] = self.ones * ((1 << width) - 1)
        return m

    def hm(self, width: int) -> int:
        """Guard mask: bit ``width`` (the carry/borrow bit) per lane."""
        m = self._hm.get(width)
        if m is None:
            m = self._hm[width] = self.ones << width
        return m


_LANE_MEMO: dict = {}


def iter_lanes(mask: int, stride: int = LANE_STRIDE):
    """``(lane_index, bit_position)`` for every set lane bit.

    Returns a (memoized — callers must not mutate) list rather than a
    generator: lane loops are the hot path of the whole engine, masks
    repeat across consecutive ops, and hashing a packed int is far
    cheaper than a Python-level bit scan per call."""
    key = (mask, stride)
    out = _LANE_MEMO.get(key)
    if out is None:
        out = []
        while mask:
            low = mask & -mask
            pos = low.bit_length() - 1
            out.append((pos // stride, pos))
            mask ^= low
        if len(_LANE_MEMO) >= 8192:
            _LANE_MEMO.clear()
        _LANE_MEMO[key] = out
    return out


def pack_lanes(values, width: int, g: Lanes) -> int:
    """Pack per-lane ints into one register (values truncated to width)."""
    mask = (1 << width) - 1
    out = 0
    for i, v in enumerate(values):
        out |= (v & mask) << (i * g.stride)
    return out


def unpack_lanes(packed: int, width: int, g: Lanes) -> list[int]:
    """Inverse of :func:`pack_lanes` for all ``g.k`` lanes."""
    mask = (1 << width) - 1
    return [(packed >> (i * g.stride)) & mask for i in range(g.k)]


def lane_splat(value: int, width: int, g: Lanes) -> int:
    """Broadcast one constant into every lane."""
    return g.ones * (value & ((1 << width) - 1))


# -- SWAR comparison primitives -----------------------------------------
#
# All operands must be *clean*: only the low ``width`` bits of each lane
# may be set.  Results are spread masks (bit at each lane origin).

def lane_eq(a: int, b: int, width: int, g: Lanes) -> int:
    """Per-lane ``a == b`` as a spread mask (over all k lanes)."""
    x = a ^ b
    t = (x | g.hm(width)) - g.ones
    # Bit `width` of each lane survives iff the lane's diff was zero.
    return (~t >> width) & g.ones


def lane_ne(a: int, b: int, width: int, g: Lanes) -> int:
    return lane_eq(a, b, width, g) ^ g.ones


def lane_lt(a: int, b: int, width: int, g: Lanes) -> int:
    """Per-lane unsigned ``a < b`` as a spread mask."""
    t = (a | g.hm(width)) - b
    # Lane value 2^w + a - b drops below 2^w exactly when a < b.
    return (~t >> width) & g.ones


def lane_select(cond: int, t: int, e: int, width: int, g: Lanes) -> int:
    """Per-lane ``cond ? t : e`` for value registers (cond spread)."""
    lm = cond * ((1 << width) - 1)
    return (t & lm) | (e & ~lm)


class LanePacket:
    """Per-lane packet cursor (mirror of ``ConcretePacket``, no raises)."""

    __slots__ = ("bits", "width", "pos")

    def __init__(self, bits: int, width: int):
        self.bits = bits
        self.width = width
        self.pos = 0

    def prepend(self, bits: int, width: int) -> None:
        self.bits |= (bits & ((1 << width) - 1)) << self.width
        # NB: prepend puts bits *in front of* the existing packet, i.e.
        # at the MSB end — same layout as ConcretePacket.prepend.
        self.width += width

    def remaining(self) -> int:
        return self.width - self.pos

    def take(self, width: int) -> int:
        """Consume ``width`` bits from the front (caller checked room)."""
        v = (self.bits >> (self.width - self.pos - width)) \
            & ((1 << width) - 1)
        self.pos += width
        return v

    def tail(self):
        w = self.width - self.pos
        return (self.bits & ((1 << w) - 1)) if w else 0, w


class LaneState:
    """All mutable state for one batch of lanes."""

    __slots__ = (
        "g", "regs", "valid", "configs", "pkt", "emit", "outputs",
        "live", "ejected", "pstate", "reject_name", "pending_reject",
        "exited", "returned", "port_written",
    )

    def __init__(self, g: Lanes, num_regs: int, num_valids: int, configs):
        self.g = g
        self.regs = [0] * num_regs
        self.valid = [0] * num_valids
        self.configs = list(configs)
        self.pkt: list = [None] * g.k
        self.emit: list = [[] for _ in range(g.k)]
        self.outputs: list = [[] for _ in range(g.k)]
        self.live = g.all
        self.ejected = 0
        self.pstate = [ACCEPT] * g.k
        self.reject_name: list = [None] * g.k
        self.pending_reject = 0
        self.exited = 0
        self.returned = 0
        self.port_written = 0

    def eject(self, mask: int) -> int:
        """Remove lanes from batch execution; they replay scalar."""
        mask &= self.live
        self.ejected |= mask
        self.live &= ~mask
        return mask

    def parser_reject(self, mask: int, name: str) -> None:
        for i, _pos in iter_lanes(mask, self.g.stride):
            self.pstate[i] = REJECT
            self.reject_name[i] = name

    def write(self, reg: int, width: int, value: int, m: int) -> None:
        """Masked register write (``width`` bits per active lane)."""
        lm = m * ((1 << width) - 1)
        self.regs[reg] = (self.regs[reg] & ~lm) | (value & lm)

    def write_bool(self, reg: int, value: int, m: int) -> None:
        self.regs[reg] = (self.regs[reg] & ~m) | (value & m)

    def deparsed(self, i: int):
        """(bits, width) of lane ``i``'s emit buffer + packet tail."""
        bits = 0
        width = 0
        for v, w in self.emit[i]:
            bits = (bits << w) | (v & ((1 << w) - 1))
            width += w
        tail, tw = self.pkt[i].tail()
        return (bits << tw) | tail, width + tw


def run_ops(ops, st: LaneState, m: int) -> int:
    """Run an op chain; ops shrink the mask, empty mask short-circuits."""
    for op in ops:
        m = op(st, m)
        if not m:
            return 0
    return m


def run_control_ops(ops, st: LaneState, m: int) -> int:
    """Run one pipeline stage: ``exit`` ends the stage, not the lane."""
    entry = m & st.live
    if not entry:
        return 0
    st.exited = 0
    run_ops(ops, st, entry)
    out = entry & st.live
    st.exited = 0
    return out


def drain_pending(st: LaneState, m: int) -> int:
    """Turn pending lookahead shortfalls into PacketTooShort rejects."""
    pr = st.pending_reject
    if pr:
        st.pending_reject = 0
        prm = pr & m
        if prm:
            st.parser_reject(prm, "PacketTooShort")
            m &= ~prm
    return m


def run_parser_plan(plan, st: LaneState, m: int):
    """Run lanes through a compiled parser; returns ``(accept, reject)``
    spread masks.  Lanes stuck past the sweep cap are ejected."""
    entry = m & st.live
    if not entry:
        return 0, 0
    stride = st.g.stride
    for i, _pos in iter_lanes(entry, stride):
        st.pstate[i] = plan.start
        st.reject_name[i] = None
    m = entry
    if plan.pre_ops:
        m = run_ops(plan.pre_ops, st, m)
    sweeps = 0
    while True:
        pending: dict[int, int] = {}
        for i, pos in iter_lanes(m & st.live, stride):
            s = st.pstate[i]
            if s >= 0:
                pending[s] = pending.get(s, 0) | (1 << pos)
        if not pending:
            break
        sweeps += 1
        if sweeps > PARSER_SWEEP_CAP:
            stuck = 0
            for sm in pending.values():
                stuck |= sm
            st.eject(stuck)
            break
        for s in sorted(pending):
            sm = pending[s] & st.live
            if not sm:
                continue
            ops, transition = plan.states[s]
            sm = run_ops(ops, st, sm)
            sm &= st.live
            if sm:
                transition(st, sm)
    acc = rej = 0
    for i, pos in iter_lanes(entry & st.live, stride):
        if st.pstate[i] == ACCEPT:
            acc |= 1 << pos
        else:
            rej |= 1 << pos
    return acc, rej


# -- family pipeline runners --------------------------------------------

_BMV2_DROP_PORT = 511


def _run_bmv2(cp, st: LaneState, ports) -> None:
    g = st.g
    m = g.all & st.live
    ipack = 0
    lpack = 0
    for i, pos in iter_lanes(m, g.stride):
        ipack |= (ports[i] & 0x1FF) << pos
        lpack |= ((st.pkt[i].width // 8) & 0xFFFFFFFF) << pos
    st.write(cp.r_ingress_port, cp.w_port, ipack, m)
    st.write(cp.r_packet_length, 32, lpack, m)
    acc, rej = run_parser_plan(cp.parser, st, m)
    if rej:
        epack = 0
        for i, pos in iter_lanes(rej, g.stride):
            epack |= cp.error_codes.get(st.reject_name[i], 0) << pos
        st.write(cp.r_parser_error, 32, epack, rej)
    # Rejected lanes rejoin the pipeline with whatever parsed so far.
    m = (acc | rej) & st.live
    m = run_control_ops(cp.verify_ops, st, m)
    m = run_control_ops(cp.ingress_ops, st, m)
    spec = st.regs[cp.r_egress_spec]
    dropm = lane_eq(spec, lane_splat(_BMV2_DROP_PORT, cp.w_port, g),
                    cp.w_port, g) & m
    m &= ~dropm
    st.write(cp.r_egress_port, cp.w_port, spec, m)
    m = run_control_ops(cp.egress_ops, st, m)
    m = run_control_ops(cp.compute_ops, st, m)
    m = run_control_ops(cp.deparser_ops, st, m)
    eport = st.regs[cp.r_egress_port]
    pmask = (1 << cp.w_port) - 1
    for i, pos in iter_lanes(m, g.stride):
        bits, width = st.deparsed(i)
        st.outputs[i].append(((eport >> pos) & pmask, bits, width))


def _run_ebpf(cp, st: LaneState, ports) -> None:
    g = st.g
    m = g.all & st.live
    acc, _rej = run_parser_plan(cp.parser, st, m)
    # Parser rejects are silent drops on ebpf.
    m = acc & st.live
    m = run_control_ops(cp.filter_ops, st, m)
    m &= st.regs[cp.r_accept]
    m = run_ops(cp.emit_ops, st, m) if m else 0
    for i, pos in iter_lanes(m & st.live, g.stride):
        bits, width = st.deparsed(i)
        st.outputs[i].append((ports[i], bits, width))


def _run_tofino(cp, st: LaneState, ports) -> None:
    g = st.g
    m = g.all & st.live
    shortm = 0
    for i, pos in iter_lanes(m, g.stride):
        if st.pkt[i].width < cp.min_packet_bits:
            shortm |= 1 << pos
    m &= ~shortm  # short frames dropped before the MAC
    for i, pos in iter_lanes(m, g.stride):
        p = st.pkt[i]
        p.prepend(0, cp.port_metadata_bits)
        p.prepend((ports[i] & 0x1FF) << 48, 64)
    st.port_written = 0
    acc, rej = run_parser_plan(cp.ig_parser, st, m)
    if rej and cp.reads_parser_err:
        st.write(cp.r_ig_parser_err, cp.w_parser_err,
                 lane_splat(2, cp.w_parser_err, g), rej)
        m = (acc | rej) & st.live
    else:
        m = acc & st.live
    m = run_control_ops(cp.ingress_ops, st, m)
    for i, _pos in iter_lanes(m, g.stride):
        st.emit[i] = []
    m = run_control_ops(cp.ig_deparser_ops, st, m)
    tm_pkts = {}
    for i, pos in iter_lanes(m, g.stride):
        tm_pkts[i] = st.deparsed(i)
    dc = st.regs[cp.r_ig_drop_ctl]
    m &= ~(lane_ne(dc, 0, cp.w_drop_ctl, g) & m)
    # Scalar reruns ingress on resubmit; lanes asking for that replay
    # scalar rather than modelling the loop here.
    resub = lane_ne(st.regs[cp.r_resubmit_type], 0, cp.w_resubmit, g) & m
    if resub:
        st.eject(resub)
        m &= ~resub
    m &= st.port_written  # TM drops lanes that never chose a port
    eport = st.regs[cp.r_ucast]
    pmask = (1 << cp.w_ucast) - 1
    eports = {i: (eport >> pos) & pmask for i, pos in iter_lanes(m, g.stride)}
    bypass = lane_eq(st.regs[cp.r_bypass], lane_splat(1, cp.w_bypass, g),
                     cp.w_bypass, g) & m
    for i, pos in iter_lanes(bypass, g.stride):
        bits, width = tm_pkts[i]
        st.outputs[i].append((eports[i], bits, width))
    m &= ~bypass
    for i, pos in iter_lanes(m, g.stride):
        bits, width = tm_pkts[i]
        p = LanePacket(bits, width)
        p.prepend(0, 128)
        p.prepend(eports[i], 16)
        st.pkt[i] = p
    acc, rej = run_parser_plan(cp.eg_parser, st, m)
    if rej:
        st.write(cp.r_eg_parser_err, cp.w_parser_err,
                 lane_splat(2, cp.w_parser_err, g), rej)
    m = (acc | rej) & st.live
    m = run_control_ops(cp.egress_ops, st, m)
    for i, _pos in iter_lanes(m, g.stride):
        st.emit[i] = []
    m = run_control_ops(cp.eg_deparser_ops, st, m)
    egdc = st.regs[cp.r_eg_drop_ctl]
    m &= ~(lane_ne(egdc, 0, cp.w_drop_ctl, g) & m)
    for i, pos in iter_lanes(m & st.live, g.stride):
        bits, width = st.deparsed(i)
        st.outputs[i].append((eports[i], bits, width))


RUNNERS = {
    "bmv2": _run_bmv2,
    "ebpf": _run_ebpf,
    "tofino": _run_tofino,
}


# -- the batch simulator ------------------------------------------------

@dataclass
class ReplayStats:
    """Replay-side counters (merged into per-case ``stats`` dicts and
    campaign reports; all values deterministic for a fixed workload)."""

    replay_packets: int = 0
    replay_lanes: int = 0
    replay_batches: int = 0
    replay_scalar_packets: int = 0
    replay_ejected_lanes: int = 0
    replay_compiled_programs: int = 0
    replay_fallback_programs: int = 0

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in dc_fields(self)}

    def merge(self, other: "ReplayStats") -> None:
        for f in dc_fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))

    def fill_rate(self) -> float:
        """Fraction of batch-executed lanes that stayed on the fast
        path (1.0 = no runtime ejections)."""
        if not self.replay_lanes:
            return 0.0
        return (self.replay_lanes - self.replay_ejected_lanes) \
            / self.replay_lanes


class BatchSimulator:
    """Replays suites of concrete cases through the lane engine.

    ``run_cases`` takes ``(port, bits, width, Config)`` tuples and
    returns one :class:`InterpResult` per case, in order, with the
    same outputs/dropped/error observables as the scalar simulator
    (traces are not produced — mismatch classification never reads
    them).  Falls back to scalar execution per the module docstring.
    """

    def __init__(self, target_name: str, program, seed: int = 0, *,
                 max_lanes: int = DEFAULT_LANES,
                 stats: ReplayStats | None = None):
        from .compile import CompileUnsupported, compile_cached

        from ..testback.runner import is_stock_simulator

        self.target_name = target_name
        self.program = program
        self.seed = seed
        self.max_lanes = max(1, max_lanes)
        self.stats = stats if stats is not None else ReplayStats()
        try:
            # The lane engine mirrors the *stock* simulators.  When a
            # custom factory is registered for this target (fault
            # injection, user extensions), every case must go through
            # it — the fast path would silently bypass the override.
            if not is_stock_simulator(target_name):
                raise CompileUnsupported("custom simulator registered")
            self.compiled = compile_cached(program, target_name)
            self.stats.replay_compiled_programs += 1
        except CompileUnsupported:
            self.compiled = None
            self.stats.replay_fallback_programs += 1

    def run_cases(self, cases) -> list[InterpResult]:
        cases = list(cases)
        self.stats.replay_packets += len(cases)
        if self.compiled is None:
            self.stats.replay_scalar_packets += len(cases)
            return [self._scalar(case) for case in cases]
        results: list[InterpResult] = []
        for start in range(0, len(cases), self.max_lanes):
            results.extend(self._run_batch(cases[start:start + self.max_lanes]))
        return results

    def _scalar(self, case) -> InterpResult:
        from ..testback.runner import make_simulator

        port, bits, width, config = case
        sim = make_simulator(self.target_name, self.program, seed=self.seed)
        return sim.process(port, bits, width, config)

    def _run_batch(self, chunk) -> list[InterpResult]:
        cp = self.compiled
        k = len(chunk)
        g = Lanes(k)
        st = LaneState(g, cp.num_regs, cp.num_valids,
                       [case[3] if case[3] is not None else Config()
                        for case in chunk])
        ports = [case[0] for case in chunk]
        for i, (_port, bits, width, _config) in enumerate(chunk):
            st.pkt[i] = LanePacket(bits, width)
        self.stats.replay_batches += 1
        self.stats.replay_lanes += k
        RUNNERS[cp.family](cp, st, ports)
        out: list[InterpResult] = []
        for i, case in enumerate(chunk):
            if st.ejected & (1 << (i * g.stride)):
                self.stats.replay_ejected_lanes += 1
                self.stats.replay_scalar_packets += 1
                out.append(self._scalar(case))
                continue
            result = InterpResult()
            result.outputs = list(st.outputs[i])
            if not result.outputs:
                result.dropped = True
            out.append(result)
        return out
