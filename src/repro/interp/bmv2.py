"""BMv2 simple_switch simulator (the v1model target under test).

Plays the role of the paper's BMv2 software model: executes a v1model
program concretely on a packet + control-plane config.  Implements the
App. A.1 quirks: zero-initialized variables, drop port 511, parser
errors continuing to ingress, priority-ordered const entries,
field-list-preserving recirculation, clone semantics, and concrete
checksum externs (shared with the oracle's concolic layer — which is
precisely why oracle-generated tests pass here).
"""

from __future__ import annotations

from ..externs.checksum import CHECKSUM_ALGORITHMS, ones_complement16
from ..frontend.types import BoolType, HeaderType, StructType
from ..ir import nodes as N
from .core import (
    BlockExecutor,
    ConcretePacket,
    Config,
    ExitControl,
    InterpError,
    InterpResult,
    ParserReject,
)

__all__ = ["Bmv2Simulator"]

DROP_PORT = 511

HDR = "*hdr"
META = "*meta"
SM = "*sm"


class Bmv2Simulator:
    """Concrete v1model pipeline: parser -> verify -> ingress -> TM ->
    egress -> compute -> deparser."""

    local_init_mode = "zero"
    MAX_RECIRCULATIONS = 2

    def __init__(self, program: N.IrProgram, seed: int = 0):
        if program.package_name != "V1Switch" or len(program.bindings) != 6:
            raise InterpError("Bmv2Simulator requires a V1Switch program")
        self.program = program
        self.seed = seed

    # ==================================================================
    # Top-level packet processing
    # ==================================================================

    def process(self, port: int, bits: int, width: int,
                config: Config) -> InterpResult:
        result = InterpResult()
        ex = BlockExecutor(self.program, config, self, seed=self.seed)
        self._ex = ex
        self._result = result
        self._clone_outputs: list[tuple[int, int, int]] = []
        try:
            self._run_pipeline(ex, port, bits, width, recirc_depth=0)
        except InterpError as exc:
            result.error = str(exc)
        except (ParserReject, ExitControl) as exc:
            result.error = f"unhandled control flow: {exc!r}"
        result.trace = ex.trace
        for out in self._clone_outputs:
            result.outputs.append(out)
        if not result.outputs:
            result.dropped = True
        return result

    def _run_pipeline(self, ex: BlockExecutor, port: int, bits: int, width: int,
                      recirc_depth: int) -> None:
        program = self.program
        b = program.bindings
        parser = program.parsers[b[0].decl_name]
        hdr_type = parser.params[1].p4_type
        meta_type = parser.params[2].p4_type
        sm_type = program.structs["standard_metadata_t"]

        ex.packet = ConcretePacket(bits, width)
        ex.emit_buffer = []
        ex.init_type(HDR, hdr_type, "invalid")
        if recirc_depth == 0:
            ex.init_type(META, meta_type, "zero")
        ex.init_type(SM, sm_type, "zero")
        ex.write(f"{SM}.ingress_port", port)
        ex.write(f"{SM}.packet_length", width // 8)

        # Parser (BMv2: errors continue to ingress with header invalid).
        aliases = {}
        names = [p.name for p in parser.params]
        for pname, path in zip(names, [None, HDR, META, SM]):
            if path is not None:
                aliases[pname] = path
        try:
            ex.run_parser(parser, aliases)
        except ParserReject as reject:
            code = program.error_code(reject.error_name) \
                if reject.error_name in program.errors else 0
            ex.write(f"{SM}.parser_error", code)
            ex.trace.append(f"parser reject: {reject.error_name}")

        self._run_control(ex, b[1].decl_name, [HDR, META])          # verify
        self._run_control(ex, b[2].decl_name, [HDR, META, SM])      # ingress

        # Traffic manager.
        if self._pop_flag(ex, "resubmit") and recirc_depth < self.MAX_RECIRCULATIONS:
            ex.trace.append("TM: resubmit")
            self._run_control(ex, b[2].decl_name, [HDR, META, SM])
        egress_spec = ex.read(f"{SM}.egress_spec", None)
        if egress_spec == DROP_PORT:
            ex.trace.append("TM: drop")
            return
        ex.write(f"{SM}.egress_port", egress_spec)

        self._run_control(ex, b[3].decl_name, [HDR, META, SM])      # egress
        self._run_control(ex, b[4].decl_name, [HDR, META])          # compute

        # Deparser.
        deparser = self.program.controls[b[5].decl_name]
        dep_aliases = {}
        dep_names = [p.name for p in deparser.params]
        for pname, path in zip(dep_names, [None, HDR]):
            if path is not None:
                dep_aliases[pname] = path
        ex.run_control(deparser, dep_aliases)
        out_bits, out_width = ex.deparsed_packet()
        if ex.env.get("$truncate_bits") is not None:
            limit = ex.env["$truncate_bits"]
            if out_width > limit:
                out_bits >>= out_width - limit
                out_width = limit

        if self._pop_flag(ex, "recirculate") and recirc_depth < self.MAX_RECIRCULATIONS:
            ex.trace.append("recirculate")
            self._run_pipeline(ex, port, out_bits, out_width, recirc_depth + 1)
            return
        self._result.add_output(ex.read(f"{SM}.egress_port", None), out_bits, out_width)

    def _run_control(self, ex: BlockExecutor, name: str, paths: list) -> None:
        control = self.program.controls[name]
        aliases = {}
        for param, path in zip(control.params, paths):
            aliases[param.name] = path
        ex.run_control(control, aliases)

    @staticmethod
    def _pop_flag(ex: BlockExecutor, name: str) -> bool:
        flag = ex.env.pop(f"$flag${name}", False)
        return bool(flag)

    # ==================================================================
    # Target-model hooks for BlockExecutor
    # ==================================================================

    def uninitialized_read(self, ex, path, p4_type):
        # BMv2: everything is zero-initialized (App. A.1).
        if p4_type is not None and isinstance(p4_type, BoolType):
            return False
        return 0

    def invalid_header_read(self, ex, path, p4_type):
        # The oracle marks these bits don't-care; return zero here.
        return False if isinstance(p4_type, BoolType) else 0

    def order_const_entries(self, table: N.IrTable) -> list:
        entries = list(table.const_entries)
        if any(e.priority is not None for e in entries):
            entries.sort(key=lambda e: e.priority if e.priority is not None else 1 << 30)
        return entries

    def pick_entry(self, matching):
        return matching[0]

    # -- packet ops -------------------------------------------------------

    def packet_op(self, ex: BlockExecutor, call: N.IrCall) -> None:
        func = call.func
        if func == "extract":
            lv = call.args[0]
            path, header_type = ex.resolve_lvalue(lv)
            width = header_type.bit_width()
            if len(call.args) > 1:
                width += ex.eval(call.args[1])
            ex.extract_into(path, header_type, width)
        elif func == "emit":
            lv = call.args[0]
            path, p4_type = ex.resolve_lvalue(lv)
            ex.emit_lvalue(path, p4_type)
        elif func == "advance":
            ex.packet.advance(ex.eval(call.args[0]))
        elif func in ("lookahead", "length"):
            pass

    # -- externs -----------------------------------------------------------

    def extern(self, ex: BlockExecutor, call: N.IrCall) -> None:
        func = call.func
        if func == "mark_to_drop":
            ex.env[f"{SM}.egress_spec"] = DROP_PORT
            ex.env[f"{SM}.mcast_grp"] = 0
            return
        if func in ("verify_checksum", "verify_checksum_with_payload"):
            self._verify_checksum(ex, call)
            return
        if func in ("update_checksum", "update_checksum_with_payload"):
            self._update_checksum(ex, call)
            return
        if func == "random":
            lv = call.args[0]
            if isinstance(lv, N.IrLValExpr):
                lv = lv.lval
            path, p4_type = ex.resolve_lvalue(lv)
            ex.env[path] = ex.rng.getrandbits(p4_type.bit_width())
            return
        if func == "hash":
            self._hash(ex, call)
            return
        if func == "truncate":
            ex.env["$truncate_bits"] = ex.eval(call.args[0]) * 8
            return
        if func in ("resubmit_preserving_field_list",):
            ex.env["$flag$resubmit"] = True
            return
        if func in ("recirculate_preserving_field_list",):
            ex.env["$flag$recirculate"] = True
            return
        if func in ("clone", "clone_preserving_field_list"):
            # The cloned copy goes to the session's configured port;
            # mirror the oracle's model: port 0 fallback, packet = the
            # current (pre-deparse) view = original parsed content.
            bits, width = ex.deparsed_packet()
            self._clone_outputs.append((0, bits, width))
            return
        if func in ("digest", "log_msg", "counter.count", "direct_counter.count"):
            return
        if func == "register.read":
            lv = call.args[0]
            if isinstance(lv, N.IrLValExpr):
                lv = lv.lval
            path, p4_type = ex.resolve_lvalue(lv)
            index = ex.eval(call.args[1])
            regs = ex.registers.setdefault(call.obj, {})
            if index in regs:
                ex.env[path] = regs[index]
            else:
                configured = ex.config.register_value(call.obj, index)
                ex.env[path] = configured if configured is not None else 0
            return
        if func == "register.write":
            index = ex.eval(call.args[0])
            value = ex.eval(call.args[1])
            ex.registers.setdefault(call.obj, {})[index] = value
            return
        if func == "meter.execute_meter":
            lv = call.args[1]
            if isinstance(lv, N.IrLValExpr):
                lv = lv.lval
            path, p4_type = ex.resolve_lvalue(lv)
            ex.env[path] = 0  # GREEN; oracle taints this anyway
            return
        if func == "direct_meter.read":
            lv = call.args[0]
            if isinstance(lv, N.IrLValExpr):
                lv = lv.lval
            path, p4_type = ex.resolve_lvalue(lv)
            ex.env[path] = 0
            return
        if func == "assert" or func == "assume":
            if not ex.eval(call.args[0]):
                raise InterpError("assert/assume failed: BMv2 aborts")
            return
        if func == "verify":
            if not ex.eval(call.args[0]):
                err = ex.eval(call.args[1])
                name = self.program.errors[err] \
                    if err < len(self.program.errors) else "NoMatch"
                raise ParserReject(name)
            return
        raise InterpError(f"BMv2: unknown extern {func!r}")

    def extern_value(self, ex: BlockExecutor, call: N.IrCall):
        raise InterpError(f"BMv2: unknown value extern {call.func!r}")

    # -- checksum helpers ----------------------------------------------------

    def _field_values(self, ex: BlockExecutor, data_arg):
        fields = []
        elements = (
            data_arg.elements if isinstance(data_arg, N.IrTupleExpr) else (data_arg,)
        )
        for e in elements:
            if isinstance(e, N.IrTupleExpr):
                fields.extend(self._field_values(ex, e))
                continue
            if isinstance(e, N.IrLValExpr) and isinstance(
                e.p4_type, (HeaderType, StructType)
            ):
                path, t = ex.resolve_lvalue(e.lval)
                for fname, ftype in t.fields:
                    fields.append(
                        (ftype.bit_width(), ex.read(f"{path}.{fname}", ftype))
                    )
                continue
            fields.append((e.p4_type.bit_width(), ex.eval(e)))
        return fields

    def _algo(self, ex, algo_arg) -> str:
        value = ex.eval(algo_arg)
        enum = self.program.enums.get("HashAlgorithm")
        if enum is not None:
            for member, v in enum.values.items():
                if v == value:
                    return member
        return "csum16"

    def _verify_checksum(self, ex: BlockExecutor, call: N.IrCall) -> None:
        cond = ex.eval(call.args[0])
        if not cond:
            return
        fields = self._field_values(ex, call.args[1])
        expected = ex.eval(call.args[2])
        algo = self._algo(ex, call.args[3]) if len(call.args) > 3 else "csum16"
        fn = CHECKSUM_ALGORITHMS.get(algo, ones_complement16)
        width = call.args[2].p4_type.bit_width()
        computed = fn(fields, width)
        if computed != expected:
            ex.env[f"{SM}.checksum_error"] = 1
            ex.trace.append("verify_checksum: mismatch")

    def _update_checksum(self, ex: BlockExecutor, call: N.IrCall) -> None:
        cond = ex.eval(call.args[0])
        if not cond:
            return
        fields = self._field_values(ex, call.args[1])
        dest = call.args[2]
        if isinstance(dest, N.IrLValExpr):
            dest = dest.lval
        path, p4_type = ex.resolve_lvalue(dest)
        algo = self._algo(ex, call.args[3]) if len(call.args) > 3 else "csum16"
        fn = CHECKSUM_ALGORITHMS.get(algo, ones_complement16)
        ex.env[path] = fn(fields, p4_type.bit_width())

    def _hash(self, ex: BlockExecutor, call: N.IrCall) -> None:
        lv = call.args[0]
        if isinstance(lv, N.IrLValExpr):
            lv = lv.lval
        path, p4_type = ex.resolve_lvalue(lv)
        algo = self._algo(ex, call.args[1])
        base = ex.eval(call.args[2])
        fields = self._field_values(ex, call.args[3])
        max_val = ex.eval(call.args[4])
        fn = CHECKSUM_ALGORITHMS.get(algo, ones_complement16)
        width = p4_type.bit_width()
        h = fn(fields, width)
        mask = (1 << width) - 1
        value = (base + (h % max_val if max_val else h)) & mask
        ex.env[path] = value
