"""Concrete IR interpreter core.

This is the reproduction's stand-in for the *targets under test*
(BMv2, the Tofino software model, the eBPF kernel): an independent,
fully concrete executor over the same IR.  The test runner feeds it a
generated test's input packet and control-plane configuration and
compares outputs against the oracle's expectation — exactly the
evaluation loop of the paper's §7.

It deliberately shares no code with the symbolic stepper (beyond the IR
and the concrete extern functions), so a bug in either side shows up as
a failing test rather than a shared blind spot.
"""

from __future__ import annotations

import random

from ..frontend.types import (
    BitsType,
    BoolType,
    EnumType,
    ErrorType,
    HeaderType,
    P4Type,
    StackType,
    StructType,
)
from ..ir import nodes as N
from ..testback.spec import RegisterSpec, TableEntrySpec, ValueSetSpec

__all__ = [
    "Config",
    "ConcretePacket",
    "InterpResult",
    "InterpError",
    "ParserReject",
    "ExitControl",
    "ReturnAction",
    "BlockExecutor",
    "spec_matches",
]


class InterpError(Exception):
    """The interpreter crashed (the 'exception' bug class of Tbl. 2)."""


class ParserReject(Exception):
    def __init__(self, error_name: str):
        self.error_name = error_name
        super().__init__(error_name)


class ExitControl(Exception):
    pass


class ReturnAction(Exception):
    pass


_NO_ENTRIES: list = []  # shared empty result; callers only iterate


class Config:
    """Concrete control-plane configuration for one test."""

    def __init__(self, entries=None, value_sets=None, registers=None):
        self.entries: list[TableEntrySpec] = list(entries or [])
        self.value_sets: list[ValueSetSpec] = list(value_sets or [])
        self.registers: list[RegisterSpec] = list(registers or [])
        # Lazy per-table / per-set indexes; the lane engine queries
        # these once per lane, so a linear scan per call is the single
        # hottest allocation in batch replay.  A length check rebuilds
        # after append-style mutation (the only kind the repo does).
        self._entry_index: dict | None = None
        self._vs_index: dict | None = None

    @classmethod
    def from_test(cls, test) -> "Config":
        return cls(test.entries, test.value_sets, test.registers)

    def entries_for(self, table: str) -> list[TableEntrySpec]:
        idx = self._entry_index
        if idx is None or idx[None] != len(self.entries):
            idx = {None: len(self.entries)}
            for e in self.entries:
                idx.setdefault(e.table, []).append(e)
            self._entry_index = idx
        return idx.get(table, _NO_ENTRIES)

    def value_set_members(self, name: str) -> list[int]:
        idx = self._vs_index
        if idx is None or idx[None] != len(self.value_sets):
            idx = {None: len(self.value_sets)}
            for v in self.value_sets:
                idx.setdefault(v.value_set, []).append(v.member)
            self._vs_index = idx
        return idx.get(name, _NO_ENTRIES)

    def register_value(self, instance: str, index: int) -> int | None:
        for r in self.registers:
            if r.instance == instance and r.index == index:
                return r.value
        return None


class ConcretePacket:
    """A concrete bit string with a read cursor (front = MSB)."""

    def __init__(self, bits: int, width: int):
        self.bits = bits & ((1 << width) - 1) if width else 0
        self.width = width
        self.pos = 0  # bits consumed from the front

    @property
    def remaining(self) -> int:
        return self.width - self.pos

    def extract(self, width: int) -> int:
        if width > self.remaining:
            raise ParserReject("PacketTooShort")
        shift = self.width - self.pos - width
        value = (self.bits >> shift) & ((1 << width) - 1)
        self.pos += width
        return value

    def lookahead(self, width: int) -> int:
        if width > self.remaining:
            raise ParserReject("PacketTooShort")
        shift = self.width - self.pos - width
        return (self.bits >> shift) & ((1 << width) - 1)

    def advance(self, width: int) -> None:
        if width > self.remaining:
            raise ParserReject("PacketTooShort")
        self.pos += width

    def remainder(self) -> tuple[int, int]:
        """(bits, width) of the unconsumed tail."""
        width = self.remaining
        value = self.bits & ((1 << width) - 1) if width else 0
        return value, width

    def prepend(self, value: int, width: int) -> None:
        tail, tail_w = self.remainder()
        self.bits = (value << tail_w) | tail
        self.width = width + tail_w
        self.pos = 0


class InterpResult:
    def __init__(self):
        self.outputs: list[tuple[int, int, int]] = []  # (port, bits, width)
        self.dropped = False
        self.error: str | None = None
        self.trace: list[str] = []

    def add_output(self, port: int, bits: int, width: int) -> None:
        self.outputs.append((port, bits & ((1 << width) - 1) if width else 0, width))

    def __repr__(self):
        if self.error:
            return f"InterpResult(error={self.error!r})"
        if self.dropped and not self.outputs:
            return "InterpResult(dropped)"
        return f"InterpResult(outputs={self.outputs})"


def _mask(width: int) -> int:
    return (1 << width) - 1


def _to_signed(v: int, width: int) -> int:
    return v - (1 << width) if v >= 1 << (width - 1) else v


def _spec_match_prog(spec: TableEntrySpec, table) -> list:
    """Compile a spec's keysets into tuple-coded match ops.

    Cached on the spec instance by :func:`spec_matches`; plain tuples
    (no closures) so cached specs stay picklable."""
    prog = []
    for (_name, kind, roles), key in zip(spec.keys, table.keys):
        width = key.expr.p4_type.bit_width()
        if kind in ("ternary", "optional"):
            mask = roles.get("mask", _mask(width))
            prog.append(("t", mask, roles.get("value", 0) & mask))
        elif kind == "lpm":
            shift = width - roles.get("prefix_len", width)
            prog.append(("l", shift, roles.get("value", 0) >> shift))
        elif kind == "range":
            prog.append(("r", roles.get("lo", 0),
                         roles.get("hi", _mask(width))))
        else:  # exact and unknown kinds compare raw values
            prog.append(("e", roles.get("value", 0), 0))
    return prog


def spec_matches(spec: TableEntrySpec, key_values, table) -> bool:
    """Whether a runtime table entry spec matches concrete key values.

    Shared between the scalar executor and the batch engine so both
    sides apply the exact same match-kind semantics.  The spec's
    keysets are compiled once (first call) and cached on the instance;
    replay matches each entry against every test and every lane, so
    the per-call work is just the comparisons."""
    prog = getattr(spec, "_match_prog", None)
    if prog is None:
        prog = _spec_match_prog(spec, table)
        spec._match_prog = prog
    for (op, a, b), kv in zip(prog, key_values):
        if op == "e":
            if kv != a:
                return False
        elif op == "t":
            if (kv & a) != b:
                return False
        elif op == "l":
            if (kv >> a) != b:
                return False
        elif not (a <= kv <= b):
            return False
    return True


class BlockExecutor:
    """Executes parser/control blocks concretely.

    ``target_model`` supplies extern implementations and policies via
    duck-typed hooks (see :mod:`repro.interp.bmv2` etc.).
    """

    def __init__(self, program: N.IrProgram, config: Config, target_model,
                 seed: int = 0):
        self.program = program
        self.config = config
        self.target = target_model
        self.rng = random.Random(seed)
        self.env: dict[str, int | bool] = {}
        self.valid: dict[str, bool] = {}
        self.frames: list[dict[str, str]] = [{}]
        self.next_index: dict[str, int] = {}
        self.packet: ConcretePacket | None = None
        self.emit_buffer: list[tuple[int, int]] = []  # (bits, width)
        self.registers: dict[str, dict[int, int]] = {}
        self.trace: list[str] = []
        self._scratch = 0

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------

    def resolve_root(self, name: str) -> str:
        for frame in reversed(self.frames):
            if name in frame:
                return frame[name]
        return name

    def read(self, path: str, p4_type: P4Type):
        if path in self.env:
            return self.env[path]
        value = self.target.uninitialized_read(self, path, p4_type)
        self.env[path] = value
        return value

    def write(self, path: str, value) -> None:
        self.env[path] = value

    def init_type(self, prefix: str, p4_type: P4Type, mode: str) -> None:
        if isinstance(p4_type, HeaderType):
            self.valid[prefix] = False
            for fname, ftype in p4_type.fields:
                self._init_scalar(f"{prefix}.{fname}", ftype, mode)
        elif isinstance(p4_type, StructType):
            for fname, ftype in p4_type.fields:
                self.init_type(f"{prefix}.{fname}", ftype, mode)
        elif isinstance(p4_type, StackType):
            for i in range(p4_type.size):
                self.init_type(f"{prefix}[{i}]", p4_type.element, mode)
            self.next_index[prefix] = 0
        else:
            self._init_scalar(prefix, p4_type, mode)

    def _init_scalar(self, path: str, p4_type: P4Type, mode: str) -> None:
        if mode == "zero":
            self.env[path] = False if isinstance(p4_type, BoolType) else 0
        elif mode == "random":
            width = p4_type.bit_width()
            self.env[path] = (
                bool(self.rng.getrandbits(1))
                if isinstance(p4_type, BoolType)
                else self.rng.getrandbits(width)
            )
        elif mode == "invalid":
            self.env.pop(path, None)

    def copy_value(self, src: str, dst: str, p4_type: P4Type) -> None:
        if isinstance(p4_type, HeaderType):
            self.valid[dst] = self.valid.get(src, False)
            for fname, ftype in p4_type.fields:
                self.env[dst + "." + fname] = self.read(src + "." + fname, ftype)
        elif isinstance(p4_type, StructType):
            for fname, ftype in p4_type.fields:
                self.copy_value(f"{src}.{fname}", f"{dst}.{fname}", ftype)
        elif isinstance(p4_type, StackType):
            for i in range(p4_type.size):
                self.copy_value(f"{src}[{i}]", f"{dst}[{i}]", p4_type.element)
            self.next_index[dst] = self.next_index.get(src, 0)
        else:
            self.env[dst] = self.read(src, p4_type)

    # ------------------------------------------------------------------
    # L-values
    # ------------------------------------------------------------------

    def resolve_lvalue(self, lv: N.LValue) -> tuple[str, P4Type]:
        if isinstance(lv, N.VarLV):
            return self.resolve_root(lv.name), lv.p4_type
        if isinstance(lv, N.FieldLV):
            base_path, base_type = self.resolve_lvalue(lv.base)
            if isinstance(base_type, StackType):
                nxt = self.next_index.get(base_path, 0)
                if lv.field == "next":
                    if nxt >= base_type.size:
                        # P4-16 §8.18: full stack -> StackOutOfBounds.
                        raise ParserReject("StackOutOfBounds")
                    return f"{base_path}[{nxt}]", base_type.element
                if lv.field == "last":
                    return f"{base_path}[{max(nxt - 1, 0)}]", base_type.element
                if lv.field == "lastIndex":
                    return f"{base_path}.$lastIndex", BitsType(32)
            return f"{base_path}.{lv.field}", lv.p4_type
        if isinstance(lv, N.IndexLV):
            base_path, base_type = self.resolve_lvalue(lv.base)
            idx = self.eval(lv.index)
            if isinstance(base_type, StackType) and idx >= base_type.size:
                # Out-of-bounds const access: the spec leaves reads
                # undefined and writes ignored; clamp like the oracle.
                # (BMv2's crash here is the seeded BMV2-1 fault.)
                idx = base_type.size - 1
            return f"{base_path}[{idx}]", lv.p4_type
        raise InterpError(f"unsupported lvalue {lv!r}")

    def enclosing_header(self, lv: N.LValue) -> str | None:
        if isinstance(lv, N.FieldLV):
            if isinstance(lv.base.p4_type, HeaderType):
                path, _t = self.resolve_lvalue(lv.base)
                return path
            return self.enclosing_header(lv.base)
        if isinstance(lv, N.SliceLV):
            return self.enclosing_header(lv.base)
        return None

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def eval(self, e: N.IrExpr):
        if isinstance(e, N.IrConst):
            return e.value
        if isinstance(e, N.IrLValExpr):
            path, p4_type = self.resolve_lvalue(e.lval)
            hdr = self.enclosing_header(e.lval)
            if hdr is not None and not self.valid.get(hdr, False):
                # Undefined read; target policy decides the garbage.
                return self.target.invalid_header_read(self, path, p4_type)
            return self.read(path, p4_type)
        if isinstance(e, N.IrValidExpr):
            path, _t = self.resolve_lvalue(e.header)
            return self.valid.get(path, False)
        if isinstance(e, N.IrUnop):
            v = self.eval(e.operand)
            if e.op == "!":
                return not v
            width = e.p4_type.bit_width()
            if e.op == "~":
                return ~v & _mask(width)
            if e.op == "-":
                return -v & _mask(width)
            raise InterpError(f"unop {e.op}")
        if isinstance(e, N.IrBinop):
            return self._eval_binop(e)
        if isinstance(e, N.IrConcat):
            out = 0
            for part in e.parts:
                out = (out << part.p4_type.bit_width()) | self.eval(part)
            return out
        if isinstance(e, N.IrSliceExpr):
            v = self.eval(e.expr)
            return (v >> e.lo) & _mask(e.hi - e.lo + 1)
        if isinstance(e, N.IrTernary):
            return self.eval(e.then) if self.eval(e.cond) else self.eval(e.other)
        if isinstance(e, N.IrCast):
            v = self.eval(e.expr)
            target = e.p4_type
            if isinstance(target, BoolType):
                return bool(v)
            width = target.bit_width()
            if isinstance(v, bool):
                return int(v) & _mask(width)
            src = e.expr.p4_type
            if isinstance(src, BitsType) and src.signed and width > src.width:
                return _to_signed(v, src.width) & _mask(width)
            return v & _mask(width)
        if isinstance(e, N.IrCall):
            if e.func == "lookahead" and e.p4_type is not None:
                return self.packet.lookahead(e.p4_type.bit_width())
            if e.func == "length":
                return self.packet.width // 8
            return self.target.extern_value(self, e)
        if isinstance(e, N.IrApplyExpr):
            hit, _action = self.apply_table(self.program.find_table(e.table))
            return hit if e.member == "hit" else not hit
        raise InterpError(f"cannot evaluate {e!r}")

    def _eval_binop(self, e: N.IrBinop):
        op = e.op
        if op == "&&":
            return bool(self.eval(e.left)) and bool(self.eval(e.right))
        if op == "||":
            return bool(self.eval(e.left)) or bool(self.eval(e.right))
        a = self.eval(e.left)
        b = self.eval(e.right)
        if op in ("==", "!="):
            return (a == b) if op == "==" else (a != b)
        if op in ("<", ">", "<=", ">="):
            lt = e.left.p4_type
            if isinstance(lt, BitsType) and lt.signed:
                a = _to_signed(a, lt.width)
                b = _to_signed(b, lt.width)
            return {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b}[op]
        width = e.p4_type.bit_width()
        m = _mask(width)
        if op == "+":
            return (a + b) & m
        if op == "-":
            return (a - b) & m
        if op == "*":
            return (a * b) & m
        if op == "/":
            return (a // b) & m if b else m
        if op == "%":
            return (a % b) & m if b else a
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<":
            return (a << b) & m if b < width else 0
        if op == ">>":
            lt = e.p4_type
            if isinstance(lt, BitsType) and lt.signed:
                return (_to_signed(a, width) >> min(b, width - 1)) & m
            return a >> b if b < width else 0
        raise InterpError(f"binop {op}")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def exec_stmts(self, stmts: list) -> None:
        for s in stmts:
            self.exec_stmt(s)

    def exec_stmt(self, s: N.IrStmt) -> None:
        if isinstance(s, N.IrAssign):
            self._exec_assign(s)
        elif isinstance(s, N.IrVarDecl):
            self._scratch += 1
            scratch = f"$local${self._scratch}${s.name}"
            self.frames[-1][s.name] = scratch
            if s.init is not None:
                if isinstance(s.p4_type, (HeaderType, StructType, StackType)):
                    src_path, _t = self.resolve_lvalue(s.init.lval)
                    self.copy_value(src_path, scratch, s.p4_type)
                else:
                    self.env[scratch] = self.eval(s.init)
            else:
                self.init_type(scratch, s.p4_type, self.target.local_init_mode)
        elif isinstance(s, N.IrIf):
            if self.eval(s.cond):
                self.exec_stmts(s.then_stmts)
            else:
                self.exec_stmts(s.else_stmts)
        elif isinstance(s, N.IrApplyTable):
            self.apply_table(self.program.find_table(s.table))
        elif isinstance(s, N.IrSwitch):
            _hit, action = self.apply_table(self.program.find_table(s.table))
            chosen = None
            default_body = None
            for labels, body in s.cases:
                if "default" in labels:
                    default_body = body
                if action is not None and action in labels:
                    chosen = body
                    break
            self.exec_stmts(chosen if chosen is not None else (default_body or []))
        elif isinstance(s, N.IrExit):
            raise ExitControl()
        elif isinstance(s, N.IrReturn):
            raise ReturnAction()
        elif isinstance(s, N.IrMethodCall):
            self._exec_call(s.call)
        else:
            raise InterpError(f"unknown statement {s!r}")

    def _exec_assign(self, s: N.IrAssign) -> None:
        target = s.target
        if isinstance(target, N.SliceLV):
            base_path, base_type = self.resolve_lvalue(target.base)
            width = base_type.bit_width()
            old = self.read(base_path, base_type)
            new = self.eval(s.value)
            keep = ~(_mask(target.hi - target.lo + 1) << target.lo) & _mask(width)
            self.env[base_path] = (old & keep) | (
                (new & _mask(target.hi - target.lo + 1)) << target.lo
            )
            return
        path, p4_type = self.resolve_lvalue(target)
        if isinstance(p4_type, (HeaderType, StructType, StackType)):
            src_path, _t = self.resolve_lvalue(s.value.lval)
            self.copy_value(src_path, path, p4_type)
            return
        self.env[path] = self.eval(s.value)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _exec_call(self, call: N.IrCall) -> None:
        func = call.func
        if func == "__action__":
            action = self._lookup_action(call.obj)
            self.invoke_action(action, [self.eval(a) if not isinstance(
                a, N.IrLValExpr) else a for a in call.args], direct_args=call.args)
            return
        if func == "setValid":
            path, _t = self.resolve_lvalue(call.obj)
            self.valid[path] = True
            return
        if func == "setInvalid":
            path, _t = self.resolve_lvalue(call.obj)
            self.valid[path] = False
            return
        if func in ("push_front", "pop_front"):
            self._stack_push_pop(call)
            return
        if func in ("extract", "emit", "advance", "lookahead", "length"):
            self.target.packet_op(self, call)
            return
        self.target.extern(self, call)

    def _stack_push_pop(self, call: N.IrCall) -> None:
        path, stack_type = self.resolve_lvalue(call.obj)
        count = self.eval(call.args[0]) if call.args else 1
        size = stack_type.size
        elem = stack_type.element
        if call.func == "push_front":
            for i in range(size - 1, count - 1, -1):
                self.copy_value(f"{path}[{i - count}]", f"{path}[{i}]", elem)
            for i in range(min(count, size)):
                self.valid[f"{path}[{i}]"] = False
            self.next_index[path] = min(self.next_index.get(path, 0) + count, size)
        else:
            for i in range(0, size - count):
                self.copy_value(f"{path}[{i + count}]", f"{path}[{i}]", elem)
            for i in range(max(size - count, 0), size):
                self.valid[f"{path}[{i}]"] = False
            self.next_index[path] = max(self.next_index.get(path, 0) - count, 0)

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def _lookup_action(self, name: str) -> N.IrAction:
        return self.program.find_action(name)

    def apply_table(self, table: N.IrTable) -> tuple[bool, str | None]:
        key_values = [self.eval(k.expr) for k in table.keys]
        # Const entries first, in target order.
        for entry in self.target.order_const_entries(table):
            if self._const_entry_matches(entry, key_values, table):
                self.trace.append(f"{table.full_name}: const entry -> "
                                  f"{entry.action_ref.action}")
                self._run_action_ref(table, entry.action_ref)
                return True, entry.action_ref.action
        # Runtime entries from the configuration.
        matching = []
        for spec in self.config.entries_for(table.full_name):
            if self._spec_matches(spec, key_values, table):
                matching.append(spec)
        if matching:
            spec = self.target.pick_entry(matching)
            self.trace.append(f"{table.full_name}: hit -> {spec.action}")
            action = self._lookup_action(spec.action)
            self._run_action_with_values(
                action, [v for _n, v in spec.action_args]
            )
            return True, spec.action
        # Miss: default action.
        self.trace.append(f"{table.full_name}: miss")
        if table.default_action is not None:
            self._run_action_ref(table, table.default_action)
            return False, table.default_action.action
        return False, None

    def _const_entry_matches(self, entry: N.IrTableEntry, key_values, table) -> bool:
        for keyset, key_value, key in zip(entry.keysets, key_values, table.keys):
            if isinstance(keyset, N.KsDefault):
                continue
            if isinstance(keyset, N.KsMask):
                mask = self.eval(keyset.mask)
                if (key_value & mask) != (self.eval(keyset.value) & mask):
                    return False
            elif isinstance(keyset, N.KsRange):
                if not (self.eval(keyset.lo) <= key_value <= self.eval(keyset.hi)):
                    return False
            else:
                if key_value != self.eval(keyset):
                    return False
        return True

    def _spec_matches(self, spec: TableEntrySpec, key_values, table) -> bool:
        return spec_matches(spec, key_values, table)

    def _run_action_ref(self, table, ref: N.IrActionRef) -> None:
        action = self._lookup_action(ref.action)
        values = [self.eval(a) for a in ref.args]
        # Unbound control-plane params of the default action read as 0.
        while len(values) < len(action.control_plane_params):
            values.append(0)
        self._run_action_with_values(action, values)

    def _run_action_with_values(self, action: N.IrAction, values: list) -> None:
        frame: dict[str, str] = {}
        self._scratch += 1
        scratch = f"$act${self._scratch}"
        idx = 0
        for param in action.params:
            if param.direction == "":
                path = f"{scratch}.{param.name}"
                frame[param.name] = path
                self.env[path] = values[idx] if idx < len(values) else 0
                idx += 1
        self.frames.append(frame)
        try:
            self.exec_stmts(action.body)
        except ReturnAction:
            pass
        finally:
            self.frames.pop()

    def invoke_action(self, action: N.IrAction, values, direct_args=None) -> None:
        """Direct invocation from an apply block (all args bound)."""
        frame: dict[str, str] = {}
        self._scratch += 1
        scratch = f"$act${self._scratch}"
        args = direct_args or []
        for i, param in enumerate(action.params):
            arg = args[i] if i < len(args) else None
            if param.direction in ("in", "out", "inout") and isinstance(
                arg, N.IrLValExpr
            ):
                path, _t = self.resolve_lvalue(arg.lval)
                frame[param.name] = path
            else:
                path = f"{scratch}.{param.name}"
                frame[param.name] = path
                self.env[path] = self.eval(arg) if arg is not None else 0
        self.frames.append(frame)
        try:
            self.exec_stmts(action.body)
        except ReturnAction:
            pass
        finally:
            self.frames.pop()

    # ------------------------------------------------------------------
    # Parser execution
    # ------------------------------------------------------------------

    def run_parser(self, parser: N.IrParser, aliases: dict[str, str]) -> None:
        """Run a parser to accept/reject.  Raises ParserReject."""
        self.frames.append(dict(aliases))
        try:
            for decl in parser.locals:
                self.exec_stmt(decl)
            state_name = "start"
            steps = 0
            while state_name not in ("accept", "reject"):
                steps += 1
                if steps > 10_000:
                    raise InterpError("parser did not terminate")
                state = parser.states.get(state_name)
                if state is None:
                    raise ParserReject("NoMatch")
                self.exec_stmts(state.statements)
                state_name = self._transition(parser, state.transition)
            if state_name == "reject":
                raise ParserReject("NoMatch")
        finally:
            self.frames.pop()

    def _transition(self, parser: N.IrParser, tr: N.IrTransition) -> str:
        if tr is None:
            return "reject"
        if tr.direct is not None:
            return tr.direct
        values = [self.eval(e) for e in tr.select_exprs]
        for case in tr.cases:
            if self._keysets_match(parser, case.keysets, values):
                return case.state
        return "reject"

    def _keysets_match(self, parser, keysets, values) -> bool:
        for keyset, value in zip(keysets, values):
            if isinstance(keyset, N.KsDefault):
                continue
            if isinstance(keyset, N.KsValueSet):
                vs = parser.value_sets[keyset.name]
                members = self.config.value_set_members(vs.full_name)
                if value not in members:
                    return False
            elif isinstance(keyset, N.KsMask):
                mask = self.eval(keyset.mask)
                if (value & mask) != (self.eval(keyset.value) & mask):
                    return False
            elif isinstance(keyset, N.KsRange):
                if not (self.eval(keyset.lo) <= value <= self.eval(keyset.hi)):
                    return False
            else:
                if value != self.eval(keyset):
                    return False
        return True

    # ------------------------------------------------------------------
    # Control execution
    # ------------------------------------------------------------------

    def run_control(self, control: N.IrControl, aliases: dict[str, str]) -> None:
        self.frames.append(dict(aliases))
        try:
            for decl in control.locals:
                self.exec_stmt(decl)
            self.exec_stmts(control.apply_stmts)
        except ExitControl:
            pass
        finally:
            self.frames.pop()

    # ------------------------------------------------------------------
    # Packet helpers shared by target models
    # ------------------------------------------------------------------

    def extract_into(self, path: str, header_type, width: int) -> None:
        value = self.packet.extract(width)
        if isinstance(header_type, HeaderType):
            self.valid[path] = True
            self.write_fields(path, header_type, value, width)
            if path.endswith("]"):
                base = path[: path.rindex("[")]
                if base in self.next_index:
                    self.next_index[base] += 1
        elif isinstance(header_type, StructType):
            self.write_fields(path, header_type, value, width)
        else:
            self.env[path] = value

    def write_fields(self, path: str, composite, value: int, total: int) -> None:
        offset = 0
        for fname, ftype in composite.fields:
            fwidth = ftype.bit_width()
            shift = total - offset - fwidth
            self.env[f"{path}.{fname}"] = (value >> shift) & _mask(fwidth)
            offset += fwidth

    def pack_fields(self, path: str, composite) -> tuple[int, int]:
        value = 0
        total = 0
        for fname, ftype in composite.fields:
            fwidth = ftype.bit_width()
            value = (value << fwidth) | self.read(f"{path}.{fname}", ftype)
            total += fwidth
        return value, total

    def emit_lvalue(self, path: str, p4_type: P4Type) -> None:
        if isinstance(p4_type, HeaderType):
            if not self.valid.get(path, False):
                return
            value, width = self.pack_fields(path, p4_type)
            self.emit_buffer.append((value, width))
        elif isinstance(p4_type, StructType):
            for fname, ftype in p4_type.fields:
                self.emit_lvalue(f"{path}.{fname}", ftype)
        elif isinstance(p4_type, StackType):
            for i in range(p4_type.size):
                self.emit_lvalue(f"{path}[{i}]", p4_type.element)
        else:
            self.emit_buffer.append((self.read(path, p4_type), p4_type.bit_width()))

    def deparsed_packet(self) -> tuple[int, int]:
        """Emit buffer followed by the unparsed remainder of the packet."""
        bits = 0
        width = 0
        for value, w in self.emit_buffer:
            bits = (bits << w) | value
            width += w
        tail, tail_w = self.packet.remainder()
        bits = (bits << tail_w) | tail
        width += tail_w
        return bits, width
