"""eBPF kernel-filter simulator (the ebpf_model target under test).

Parser + filter; accepted packets are re-emitted via the implicit
deparser (valid headers in declaration order + unparsed payload),
rejected or error-ing packets are dropped by the kernel.
"""

from __future__ import annotations

from ..frontend.types import BoolType
from ..ir import nodes as N
from .core import (
    BlockExecutor,
    ConcretePacket,
    Config,
    InterpError,
    InterpResult,
    ParserReject,
)

__all__ = ["EbpfSimulator"]

HDR = "*hdr"
ACCEPT = "*accept"


class EbpfSimulator:
    local_init_mode = "zero"

    def __init__(self, program: N.IrProgram, seed: int = 0):
        if program.package_name != "ebpfFilter" or len(program.bindings) != 2:
            raise InterpError("EbpfSimulator requires an ebpfFilter program")
        self.program = program
        self.seed = seed

    def process(self, port: int, bits: int, width: int,
                config: Config) -> InterpResult:
        result = InterpResult()
        ex = BlockExecutor(self.program, config, self, seed=self.seed)
        program = self.program
        parser = program.parsers[program.bindings[0].decl_name]
        hdr_type = parser.params[1].p4_type

        ex.packet = ConcretePacket(bits, width)
        ex.init_type(HDR, hdr_type, "invalid")
        ex.env[ACCEPT] = False

        try:
            aliases = {}
            for param, path in zip(parser.params, [None, HDR]):
                if path is not None:
                    aliases[param.name] = path
            try:
                ex.run_parser(parser, aliases)
            except ParserReject:
                # A failing extract drops the packet in the kernel.
                result.dropped = True
                result.trace = ex.trace
                return result

            flt = program.controls[program.bindings[1].decl_name]
            aliases = {}
            for param, path in zip(flt.params, [HDR, ACCEPT]):
                aliases[param.name] = path
            ex.run_control(flt, aliases)
        except InterpError as exc:
            result.error = str(exc)
            result.trace = ex.trace
            return result

        if not ex.env.get(ACCEPT):
            result.dropped = True
            result.trace = ex.trace
            return result

        # Implicit deparser: emit valid headers + payload.
        ex.emit_buffer = []
        ex.emit_lvalue(HDR, hdr_type)
        out_bits, out_width = ex.deparsed_packet()
        result.add_output(port, out_bits, out_width)
        result.trace = ex.trace
        return result

    # -- target-model hooks --------------------------------------------------

    def uninitialized_read(self, ex, path, p4_type):
        return False if isinstance(p4_type, BoolType) else 0

    def invalid_header_read(self, ex, path, p4_type):
        return False if isinstance(p4_type, BoolType) else 0

    def order_const_entries(self, table):
        return list(table.const_entries)

    def pick_entry(self, matching):
        return matching[0]

    def packet_op(self, ex: BlockExecutor, call: N.IrCall) -> None:
        func = call.func
        if func == "extract":
            lv = call.args[0]
            path, header_type = ex.resolve_lvalue(lv)
            width = header_type.bit_width()
            if len(call.args) > 1:
                width += ex.eval(call.args[1])
            ex.extract_into(path, header_type, width)
        elif func == "advance":
            ex.packet.advance(ex.eval(call.args[0]))
        elif func in ("emit", "lookahead", "length"):
            pass

    def extern(self, ex: BlockExecutor, call: N.IrCall) -> None:
        func = call.func
        if func in ("CounterArray.increment", "CounterArray.add", "log_msg"):
            return
        if func == "verify":
            if not ex.eval(call.args[0]):
                raise ParserReject("NoMatch")
            return
        raise InterpError(f"eBPF: unknown extern {func!r}")

    def extern_value(self, ex: BlockExecutor, call: N.IrCall):
        raise InterpError(f"eBPF: unknown value extern {call.func!r}")
