"""Tofino software-model simulator (the tna/t2na target under test).

Mirrors the documented Tofino behaviors the oracle models (App. A.1):
intrinsic-metadata prepends, the 64-byte minimum, parser-error
semantics differing between Tofino 1 and 2 and between ingress and
egress parsers, traffic-manager drop/bypass, and the unwritten-egress-
port drop rule.  Bits the oracle cannot predict (timestamps, port
metadata, queue state) are zero here and masked don't-care in tests.
"""

from __future__ import annotations

from ..externs.checksum import CHECKSUM_ALGORITHMS, crc16, ones_complement16
from ..frontend.types import BoolType, HeaderType, StructType
from ..ir import nodes as N
from .core import (
    BlockExecutor,
    ConcretePacket,
    Config,
    InterpError,
    InterpResult,
    ParserReject,
)

__all__ = ["TofinoSimulator"]

HDR_I = "*ihdr"
IG_MD = "*ig_md"
IG_INTR = "*ig_intr_md"
IG_PRSR = "*ig_prsr_md"
IG_DPRSR = "*ig_dprsr_md"
IG_TM = "*ig_tm_md"
HDR_E = "*ehdr"
EG_MD = "*eg_md"
EG_INTR = "*eg_intr_md"
EG_PRSR = "*eg_prsr_md"
EG_DPRSR = "*eg_dprsr_md"
EG_OPORT = "*eg_oport_md"

MIN_PACKET_BITS = 64 * 8


class _Unwritten(int):
    """Sentinel stored in ucast_egress_port until the program writes it.

    It behaves as 0 in arithmetic (matching the zeroed model memory) but
    is identity-distinguishable, which lets the traffic manager apply
    the "egress port never written -> dropped" rule (App. A.1)."""


_EgressPortUnwritten = _Unwritten(0)


class TofinoSimulator:
    local_init_mode = "zero"   # model runs deterministic garbage as zero
    MAX_RECIRCULATIONS = 2

    def __init__(self, program: N.IrProgram, seed: int = 0, version: int = 1):
        if len(program.bindings) < 6:
            raise InterpError("TofinoSimulator requires a Pipeline program")
        self.program = program
        self.seed = seed
        self.version = version
        self.port_metadata_bits = 64 if version == 1 else 192

    # ==================================================================

    def process(self, port: int, bits: int, width: int,
                config: Config) -> InterpResult:
        result = InterpResult()
        ex = BlockExecutor(self.program, config, self, seed=self.seed)
        self._result = result
        self._mirror_outputs: list[tuple[int, int, int]] = []
        try:
            self._run(ex, port, bits, width, resubmits=0)
        except InterpError as exc:
            result.error = str(exc)
        result.trace = ex.trace
        for out in self._mirror_outputs:
            result.outputs.append(out)
        if not result.outputs:
            result.dropped = True
        return result

    # ------------------------------------------------------------------

    def _ingress_reads_parser_err(self) -> bool:
        # The oracle precomputes the same property; here we check the
        # simple way: textual scan over ingress statements.
        from ..targets.tna import Tna

        return Tna._reads_parser_err(
            Tna.__new__(Tna), self.program, self.program.bindings[1].decl_name
        )

    def _run(self, ex: BlockExecutor, port: int, bits: int, width: int,
             resubmits: int) -> None:
        program = self.program
        b = program.bindings
        structs = program.structs

        if width < MIN_PACKET_BITS:
            ex.trace.append("packet below 64 bytes: dropped in ingress parser")
            return

        ig_parser = program.parsers[b[0].decl_name]
        ihdr_type = ig_parser.params[1].p4_type
        ig_md_type = ig_parser.params[2].p4_type

        # Wire view: intrinsic metadata + port metadata + packet.
        intr = (0 << 63) | (port << 48)  # flags/version zero, port, tstamp 0
        wire = ConcretePacket(bits, width)
        wire.prepend(0, self.port_metadata_bits)
        wire.prepend(intr, 64)
        ex.packet = wire
        ex.emit_buffer = []

        ex.init_type(HDR_I, ihdr_type, "invalid")
        ex.init_type(IG_MD, ig_md_type, "zero")
        ex.init_type(IG_INTR, structs["ingress_intrinsic_metadata_t"], "zero")
        ex.init_type(IG_PRSR, structs["ingress_intrinsic_metadata_from_parser_t"], "zero")
        ex.init_type(IG_DPRSR, structs["ingress_intrinsic_metadata_for_deparser_t"], "zero")
        ex.init_type(IG_TM, structs["ingress_intrinsic_metadata_for_tm_t"], "zero")
        ex.env[f"{IG_TM}.ucast_egress_port"] = _EgressPortUnwritten

        aliases = {}
        for param, path in zip(ig_parser.params, [None, HDR_I, IG_MD, IG_INTR]):
            if path is not None:
                aliases[param.name] = path
        try:
            ex.run_parser(ig_parser, aliases)
        except ParserReject as reject:
            if not self._ingress_reads_parser_err():
                ex.trace.append("ingress parser error: packet dropped")
                return
            ex.env[f"{IG_PRSR}.parser_err"] = 1 << 1
            ex.trace.append("ingress parser error: parser_err visible")

        self._run_control(ex, b[1].decl_name,
                          [HDR_I, IG_MD, IG_INTR, IG_PRSR, IG_DPRSR, IG_TM])

        # Ingress deparser.
        self._run_deparser(ex, b[2].decl_name, [None, HDR_I, IG_MD, IG_DPRSR])
        tm_bits, tm_width = ex.deparsed_packet()

        # Traffic manager.
        if ex.read(f"{IG_DPRSR}.drop_ctl", None) != 0:
            ex.trace.append("TM: drop_ctl, dropped")
            return
        if ex.read(f"{IG_DPRSR}.resubmit_type", None) != 0 and \
                resubmits < self.MAX_RECIRCULATIONS:
            ex.env[f"{IG_DPRSR}.resubmit_type"] = 0
            ex.trace.append("TM: resubmit")
            self._run_control(ex, b[1].decl_name,
                              [HDR_I, IG_MD, IG_INTR, IG_PRSR, IG_DPRSR, IG_TM])
            self._run_deparser(ex, b[2].decl_name, [None, HDR_I, IG_MD, IG_DPRSR])
            tm_bits, tm_width = ex.deparsed_packet()
            # The resubmitted pass may itself decide to drop.
            if ex.read(f"{IG_DPRSR}.drop_ctl", None) != 0:
                ex.trace.append("TM: drop_ctl after resubmit, dropped")
                return
        egress_port = ex.read(f"{IG_TM}.ucast_egress_port", None)
        if egress_port is _EgressPortUnwritten:
            ex.trace.append("TM: egress port unwritten, dropped")
            return
        if ex.read(f"{IG_TM}.bypass_egress", None) == 1:
            ex.trace.append("TM: bypass_egress")
            self._result.add_output(egress_port, tm_bits, tm_width)
            return

        # Egress pipe.
        eg_parser = program.parsers[b[3].decl_name]
        ehdr_type = eg_parser.params[1].p4_type
        eg_md_type = eg_parser.params[2].p4_type
        ex.packet = ConcretePacket(tm_bits, tm_width)
        ex.emit_buffer = []
        ex.init_type(HDR_E, ehdr_type, "invalid")
        ex.init_type(EG_MD, eg_md_type, "zero")
        ex.init_type(EG_INTR, structs["egress_intrinsic_metadata_t"], "zero")
        ex.init_type(EG_PRSR, structs["egress_intrinsic_metadata_from_parser_t"], "zero")
        ex.init_type(EG_DPRSR, structs["egress_intrinsic_metadata_for_deparser_t"], "zero")
        ex.init_type(EG_OPORT, structs["egress_intrinsic_metadata_for_output_port_t"], "zero")
        # egress intrinsic metadata prepend: pad(7) port(9) + queue data.
        ex.packet.prepend(0, 128)
        ex.packet.prepend(egress_port, 16)

        aliases = {}
        for param, path in zip(eg_parser.params, [None, HDR_E, EG_MD, EG_INTR]):
            if path is not None:
                aliases[param.name] = path
        try:
            ex.run_parser(eg_parser, aliases)
        except ParserReject:
            # Egress parser does not drop; header unspecified (zeros).
            ex.env[f"{EG_PRSR}.parser_err"] = 1 << 1
            ex.trace.append("egress parser error: continuing")

        self._run_control(ex, b[4].decl_name,
                          [HDR_E, EG_MD, EG_INTR, EG_PRSR, EG_DPRSR, EG_OPORT])
        self._run_deparser(ex, b[5].decl_name, [None, HDR_E, EG_MD, EG_DPRSR])
        if ex.read(f"{EG_DPRSR}.drop_ctl", None) != 0:
            ex.trace.append("egress deparser: drop_ctl, dropped")
            return
        out_bits, out_width = ex.deparsed_packet()
        self._result.add_output(egress_port, out_bits, out_width)

    def _run_control(self, ex: BlockExecutor, name: str, paths: list) -> None:
        control = self.program.controls[name]
        aliases = {}
        for param, path in zip(control.params, paths):
            if path is not None:
                aliases[param.name] = path
        ex.run_control(control, aliases)

    def _run_deparser(self, ex: BlockExecutor, name: str, paths: list) -> None:
        ex.emit_buffer = []
        self._run_control(ex, name, paths)

    # ==================================================================
    # Target-model hooks
    # ==================================================================

    def uninitialized_read(self, ex, path, p4_type):
        return False if isinstance(p4_type, BoolType) else 0

    def invalid_header_read(self, ex, path, p4_type):
        return False if isinstance(p4_type, BoolType) else 0

    def order_const_entries(self, table):
        return list(table.const_entries)

    def pick_entry(self, matching):
        return matching[0]

    def packet_op(self, ex: BlockExecutor, call: N.IrCall) -> None:
        func = call.func
        if func == "extract":
            lv = call.args[0]
            path, header_type = ex.resolve_lvalue(lv)
            width = header_type.bit_width()
            if len(call.args) > 1:
                width += ex.eval(call.args[1])
            if self.version == 2 and width > ex.packet.remaining:
                # Tofino 2 does not execute the extract (App. A.1).
                raise ParserReject("PacketTooShort")
            ex.extract_into(path, header_type, width)
        elif func == "emit":
            lv = call.args[0]
            path, p4_type = ex.resolve_lvalue(lv)
            ex.emit_lvalue(path, p4_type)
        elif func == "advance":
            ex.packet.advance(ex.eval(call.args[0]))
        elif func in ("lookahead", "length"):
            pass

    def extern(self, ex: BlockExecutor, call: N.IrCall) -> None:
        func = call.func
        if func in ("Counter.count", "DirectCounter.count", "Digest.pack",
                    "log_msg"):
            return
        if func == "Register.write":
            index = ex.eval(call.args[0])
            value = ex.eval(call.args[1])
            ex.registers.setdefault(call.obj, {})[index] = value
            return
        if func == "Mirror.emit":
            tail, tail_w = ex.packet.remainder()
            self._mirror_outputs.append((0, tail, tail_w))
            return
        if func == "Resubmit.emit":
            ex.env[f"{IG_DPRSR}.resubmit_type"] = 1
            return
        if func in ("Checksum.add", "Checksum.subtract"):
            acc = ex.env.setdefault(f"$csum${call.obj}", [])
            acc.extend(self._field_values(ex, call.args[0]))
            return
        if func == "Checksum.subtract_all_and_deposit":
            lv = call.args[0]
            if isinstance(lv, N.IrLValExpr):
                lv = lv.lval
            path, p4_type = ex.resolve_lvalue(lv)
            acc = ex.env.get(f"$csum${call.obj}", [])
            ex.env[path] = ones_complement16(acc, p4_type.bit_width())
            return
        if func == "verify":
            if not ex.eval(call.args[0]):
                raise ParserReject("NoMatch")
            return
        raise InterpError(f"Tofino: unknown extern {func!r}")

    def extern_value(self, ex: BlockExecutor, call: N.IrCall):
        func = call.func
        width = call.p4_type.bit_width() if call.p4_type is not None else 16
        if func == "Register.read":
            index = ex.eval(call.args[0])
            regs = ex.registers.setdefault(call.obj, {})
            if index in regs:
                return regs[index]
            configured = ex.config.register_value(call.obj, index)
            return configured if configured is not None else 0
        if func == "Hash.get":
            algo = self._instance_algo(call.obj)
            fn = CHECKSUM_ALGORITHMS.get(algo, crc16)
            return fn(self._field_values(ex, call.args[0]), width)
        if func == "Random.get":
            return ex.rng.getrandbits(width)
        if func in ("Meter.execute", "DirectMeter.execute"):
            return 0
        if func in ("Checksum.get", "Checksum.update"):
            if call.args:
                acc = ex.env.setdefault(f"$csum${call.obj}", [])
                acc.extend(self._field_values(ex, call.args[0]))
            acc = ex.env.get(f"$csum${call.obj}", [])
            return ones_complement16(acc, width)
        if func == "Checksum.verify":
            acc = ex.env.get(f"$csum${call.obj}", [])
            return ones_complement16(acc, 16) == 0
        raise InterpError(f"Tofino: unknown value extern {func!r}")

    def _instance_algo(self, instance_name: str) -> str:
        for block in list(self.program.parsers.values()) + list(
            self.program.controls.values()
        ):
            inst = block.instances.get(instance_name.rsplit(".", 1)[-1])
            if inst is not None and inst.full_name == instance_name:
                for arg in inst.ctor_args:
                    if isinstance(arg, N.IrConst):
                        enum = self.program.enums.get("HashAlgorithm_t")
                        if enum is not None:
                            for member, value in enum.values.items():
                                if value == arg.value:
                                    return member
        return "CRC16"

    def _field_values(self, ex: BlockExecutor, data_arg):
        fields = []
        elements = (
            data_arg.elements if isinstance(data_arg, N.IrTupleExpr) else (data_arg,)
        )
        for e in elements:
            if isinstance(e, N.IrTupleExpr):
                fields.extend(self._field_values(ex, e))
                continue
            if isinstance(e, N.IrLValExpr) and isinstance(
                e.p4_type, (HeaderType, StructType)
            ):
                path, t = ex.resolve_lvalue(e.lval)
                for fname, ftype in t.fields:
                    fields.append((ftype.bit_width(), ex.read(f"{path}.{fname}", ftype)))
                continue
            fields.append((e.p4_type.bit_width(), ex.eval(e)))
        return fields
