"""Concrete reference interpreters ("software models" under test)."""

from .bmv2 import Bmv2Simulator
from .core import BlockExecutor, ConcretePacket, Config, InterpError, InterpResult
from .ebpf_vm import EbpfSimulator
from .tofino_model import TofinoSimulator

__all__ = [
    "Config", "InterpResult", "InterpError", "BlockExecutor",
    "ConcretePacket", "Bmv2Simulator", "TofinoSimulator", "EbpfSimulator",
]
