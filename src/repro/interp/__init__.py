"""Concrete reference interpreters ("software models" under test).

Two execution paths share one set of semantics: the scalar simulators
(:mod:`bmv2`, :mod:`tofino_model`, :mod:`ebpf_vm` over :mod:`core`)
step one packet at a time, and the lane engine (:mod:`batch` fed by
:mod:`compile`) replays whole suites with Python-int bitwise
parallelism, falling back to the scalar path whenever exactness is in
doubt.
"""

from .batch import BatchSimulator, ReplayStats
from .bmv2 import Bmv2Simulator
from .core import BlockExecutor, ConcretePacket, Config, InterpError, InterpResult
from .ebpf_vm import EbpfSimulator
from .tofino_model import TofinoSimulator

__all__ = [
    "Config", "InterpResult", "InterpError", "BlockExecutor",
    "ConcretePacket", "Bmv2Simulator", "TofinoSimulator", "EbpfSimulator",
    "BatchSimulator", "ReplayStats",
]
