"""One-time compilation of lowered IR programs into lane-engine ops.

The batch engine (:mod:`repro.interp.batch`) executes *k* packets per
pass over flat register files; this module is the translator that gets
a program there.  Compilation happens once per ``(program, target)``
pair and produces a :class:`CompiledProgram`: per-family pipeline
metadata plus chains of closure *ops* ``m' = op(state, mask)`` over
packed lane registers.

Exactness beats coverage here.  The compiler refuses — by raising
:class:`CompileUnsupported` — anything whose lane semantics it cannot
prove identical to the scalar interpreter (stateful externs, header
stacks, varbits, ``switch``, cross-state parser locals, 65-bit-plus
scalars, ...).  A refusal is not an error: the batch simulator routes
the whole suite through the ordinary scalar simulators, so
classifications stay byte-identical either way.

Layout of a compiled value:

- every scalar env path gets one *register* — a Python big int with
  lane *i*'s value in bits ``[i*STRIDE, i*STRIDE + width)``, always
  "clean" (no bits above the width);
- ``bool`` paths get a *bool register* holding a spread mask (bit at
  each lane origin iff true) — the same shape divergence masks use;
- every header path gets a *validity id* indexing ``state.valid``.
"""

from __future__ import annotations

import dataclasses
import weakref

from ..frontend.types import (
    BitsType,
    BoolType,
    EnumType,
    ErrorType,
    HeaderType,
    StackType,
    StructType,
)
from ..ir import nodes as N
from .batch import (
    ACCEPT,
    MAX_SCALAR_WIDTH,
    REJECT,
    drain_pending,
    iter_lanes,
    lane_eq,
    lane_lt,
    lane_ne,
    lane_select,
    lane_splat,
    run_ops,
)
from .core import spec_matches

__all__ = [
    "CompileUnsupported", "CompiledProgram", "ParserPlan", "FAMILY",
    "compile_program", "compile_cached", "const_eval",
]


class CompileUnsupported(Exception):
    """The program (or this corner of it) has no proven lane semantics."""


#: Oracle target name -> interpreter family.
FAMILY = {
    "v1model": "bmv2",
    "spec-only": "bmv2",
    "tna": "tofino",
    "t2na": "tofino",
    "ebpf_model": "ebpf",
}


class ParserPlan:
    """A compiled parser: local-decl ops plus indexed states."""

    __slots__ = ("start", "pre_ops", "states")

    def __init__(self, start, pre_ops, states):
        self.start = start
        self.pre_ops = pre_ops
        self.states = states  # list of (ops, transition_fn)


class CompiledProgram:
    """Attribute bag consumed by the family runners in ``batch``."""

    def __init__(self, **kw):
        self.__dict__.update(kw)


def const_eval(e) -> int:
    """Evaluate a compile-time-constant expression exactly as the
    scalar ``BlockExecutor.eval`` would; raises CompileUnsupported on
    anything state-dependent."""
    if isinstance(e, N.IrConst):
        return e.value
    if isinstance(e, N.IrUnop):
        v = const_eval(e.operand)
        if e.op == "!":
            return not v
        w = e.p4_type.bit_width()
        if e.op == "~":
            return ~v & ((1 << w) - 1)
        if e.op == "-":
            return -v & ((1 << w) - 1)
        raise CompileUnsupported(f"const unop {e.op}")
    if isinstance(e, N.IrBinop):
        op = e.op
        if op == "&&":
            return bool(const_eval(e.left)) and bool(const_eval(e.right))
        if op == "||":
            return bool(const_eval(e.left)) or bool(const_eval(e.right))
        a = const_eval(e.left)
        b = const_eval(e.right)
        if op == "==":
            return a == b
        if op == "!=":
            return a != b
        if op in ("<", ">", "<=", ">="):
            lt = e.left.p4_type
            if isinstance(lt, BitsType) and lt.signed:
                a = a - (1 << lt.width) if a >= 1 << (lt.width - 1) else a
                b = b - (1 << lt.width) if b >= 1 << (lt.width - 1) else b
            return {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b}[op]
        w = e.p4_type.bit_width()
        m = (1 << w) - 1
        if op == "+":
            return (a + b) & m
        if op == "-":
            return (a - b) & m
        if op == "*":
            return (a * b) & m
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<":
            return (a << b) & m if b < w else 0
        if op == ">>":
            return a >> b if b < w else 0
        raise CompileUnsupported(f"const binop {op}")
    if isinstance(e, N.IrConcat):
        out = 0
        for part in e.parts:
            out = (out << part.p4_type.bit_width()) | const_eval(part)
        return out
    if isinstance(e, N.IrSliceExpr):
        v = const_eval(e.expr)
        return (v >> e.lo) & ((1 << (e.hi - e.lo + 1)) - 1)
    if isinstance(e, N.IrTernary):
        return const_eval(e.then) if const_eval(e.cond) else const_eval(e.other)
    if isinstance(e, N.IrCast):
        v = const_eval(e.expr)
        if isinstance(e.p4_type, BoolType):
            return bool(v)
        w = e.p4_type.bit_width()
        if isinstance(v, bool):
            return int(v) & ((1 << w) - 1)
        src = e.expr.p4_type
        if isinstance(src, BitsType) and src.signed and w > src.width:
            sv = v - (1 << src.width) if v >= 1 << (src.width - 1) else v
            return sv & ((1 << w) - 1)
        return v & ((1 << w) - 1)
    raise CompileUnsupported(f"not a constant: {e!r}")


def _collect_roots(obj, out: set) -> None:
    """Every ``VarLV`` root name reachable under ``obj`` (statements,
    transitions, keysets...)."""
    if isinstance(obj, N.VarLV):
        out.add(obj.name)
        return
    if isinstance(obj, (list, tuple)):
        for item in obj:
            _collect_roots(item, out)
        return
    if isinstance(obj, dict):
        for item in obj.values():
            _collect_roots(item, out)
        return
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for f in dataclasses.fields(obj):
            _collect_roots(getattr(obj, f.name), out)


def _run_instance_ops(st, ops, m) -> None:
    """Run an action body under its own ``return`` scope."""
    saved = st.returned
    st.returned = 0
    run_ops(ops, st, m)
    st.returned = saved


_SCALAR_TYPES = (BitsType, BoolType, EnumType, ErrorType)


class _Compiler:
    def __init__(self, program: N.IrProgram, target_name: str):
        self.program = program
        self.target_name = target_name
        self.family = FAMILY[target_name]
        self.regs: dict[str, int] = {}          # env path -> register
        self.reg_width: dict[int, int] = {}
        self.bool_regs: set[int] = set()
        self.valids: dict[str, int] = {}        # header path -> valid id
        self.frames: list[dict[str, str]] = [{}]
        self.scratch = 0
        self.in_parser = False
        self.in_action = 0
        self.branch_depth = 0
        self.parser: N.IrParser | None = None
        self.forbidden_read: set[int] = set()   # regs a compiled read may not touch
        self.port_regs: set[int] = set()        # writes set st.port_written
        self._sm_type = None                    # bmv2 standard_metadata_t

    # -- storage allocation --------------------------------------------

    def reg(self, path: str, p4_type) -> int:
        r = self.regs.get(path)
        if r is not None:
            return r
        if not isinstance(p4_type, _SCALAR_TYPES):
            raise CompileUnsupported(f"non-scalar register for {path!r}: "
                                     f"{p4_type!r}")
        width = p4_type.bit_width()
        if width < 1 or width > MAX_SCALAR_WIDTH:
            raise CompileUnsupported(f"width {width} out of lane range")
        r = len(self.reg_width)
        self.regs[path] = r
        self.reg_width[r] = width
        if isinstance(p4_type, BoolType):
            self.bool_regs.add(r)
        return r

    def valid_id(self, path: str) -> int:
        vid = self.valids.get(path)
        if vid is None:
            vid = self.valids[path] = len(self.valids)
        return vid

    # -- name resolution (mirrors BlockExecutor.resolve_root) ----------

    def resolve_root(self, name: str) -> str:
        for frame in reversed(self.frames):
            if name in frame:
                return frame[name]
        return name

    def resolve_lval(self, lv: N.LValue):
        if isinstance(lv, N.VarLV):
            return self.resolve_root(lv.name), lv.p4_type
        if isinstance(lv, N.FieldLV):
            base_path, base_type = self.resolve_lval(lv.base)
            if isinstance(base_type, StackType):
                raise CompileUnsupported("header stacks")
            return f"{base_path}.{lv.field}", lv.p4_type
        raise CompileUnsupported(f"lvalue {lv!r}")

    def enclosing_header(self, lv: N.LValue):
        if isinstance(lv, N.FieldLV):
            if isinstance(lv.base.p4_type, HeaderType):
                path, _t = self.resolve_lval(lv.base)
                return path
            return self.enclosing_header(lv.base)
        if isinstance(lv, N.SliceLV):
            return self.enclosing_header(lv.base)
        return None

    # -- expressions ----------------------------------------------------
    #
    # compile_expr returns (fn, is_bool, la): fn(st, m) yields a clean
    # packed value (or a spread mask for bool), la marks lookahead
    # inside — the enclosing statement must drain_pending after calling.

    def compile_expr(self, e: N.IrExpr):
        if isinstance(e, N.IrConst):
            if isinstance(e.p4_type, BoolType):
                if e.value:
                    return (lambda st, m: st.g.all), True, False
                return (lambda st, m: 0), True, False
            w = e.p4_type.bit_width()
            if w > MAX_SCALAR_WIDTH:
                raise CompileUnsupported(f"constant width {w}")
            value = int(e.value) & ((1 << w) - 1)
            return (lambda st, m, v=value, w=w:
                    lane_splat(v, w, st.g)), False, False
        if isinstance(e, N.IrLValExpr):
            return self._compile_lval_read(e.lval)
        if isinstance(e, N.IrValidExpr):
            path, _t = self.resolve_lval(e.header)
            vid = self.valid_id(path)
            return (lambda st, m, vid=vid: st.valid[vid]), True, False
        if isinstance(e, N.IrUnop):
            fn, isb, la = self.compile_expr(e.operand)
            if e.op == "!":
                if not isb:
                    raise CompileUnsupported("! on non-bool")
                return (lambda st, m, f=fn: f(st, m) ^ st.g.all), True, la
            w = e.p4_type.bit_width()
            if e.op == "~":
                return (lambda st, m, f=fn, w=w:
                        f(st, m) ^ st.g.fm(w)), False, la
            if e.op == "-":
                return (lambda st, m, f=fn, w=w:
                        (st.g.hm(w) - f(st, m)) & st.g.fm(w)), False, la
            raise CompileUnsupported(f"unop {e.op}")
        if isinstance(e, N.IrBinop):
            return self._compile_binop(e)
        if isinstance(e, N.IrConcat):
            total = 0
            parts = []
            for part in e.parts:
                pw = part.p4_type.bit_width()
                parts.append((self.compile_expr(part), pw))
                total += pw
            if total > MAX_SCALAR_WIDTH:
                raise CompileUnsupported(f"concat width {total}")
            la = any(p[0][2] for p in parts)
            offs = []
            off = total
            for (fn, _isb, _la), pw in parts:
                off -= pw
                offs.append((fn, off))

            def concat_fn(st, m, offs=offs):
                out = 0
                for fn, off in offs:
                    out |= fn(st, m) << off
                return out
            return concat_fn, False, la
        if isinstance(e, N.IrSliceExpr):
            fn, isb, la = self.compile_expr(e.expr)
            w = e.hi - e.lo + 1
            return (lambda st, m, f=fn, lo=e.lo, w=w:
                    (f(st, m) >> lo) & st.g.fm(w)), False, la
        if isinstance(e, N.IrTernary):
            cfn, cisb, cla = self.compile_expr(e.cond)
            if not cisb:
                raise CompileUnsupported("ternary cond not bool")
            tfn, tisb, tla = self.compile_expr(e.then)
            efn, eisb, ela = self.compile_expr(e.other)
            if tla or ela:
                raise CompileUnsupported("lookahead in ternary branch")
            if tisb and eisb:
                def tern_b(st, m, c=cfn, t=tfn, o=efn):
                    cm = c(st, m)
                    return (t(st, m) & cm) | (o(st, m) & (cm ^ st.g.all))
                return tern_b, True, cla
            if tisb or eisb:
                raise CompileUnsupported("mixed bool/value ternary")
            w = e.p4_type.bit_width()
            if w > MAX_SCALAR_WIDTH:
                raise CompileUnsupported(f"ternary width {w}")

            def tern_v(st, m, c=cfn, t=tfn, o=efn, w=w):
                return lane_select(c(st, m), t(st, m), o(st, m), w, st.g)
            return tern_v, False, cla
        if isinstance(e, N.IrCast):
            return self._compile_cast(e)
        if isinstance(e, N.IrCall):
            return self._compile_call_expr(e)
        raise CompileUnsupported(f"expression {type(e).__name__}")

    def _compile_lval_read(self, lv: N.LValue):
        path, p4_type = self.resolve_lval(lv)
        if not isinstance(p4_type, _SCALAR_TYPES):
            raise CompileUnsupported(f"composite read {path!r}")
        r = self.reg(path, p4_type)
        if r in self.forbidden_read:
            raise CompileUnsupported(f"read of sentinel register {path!r}")
        hdr = self.enclosing_header(lv)
        isb = isinstance(p4_type, BoolType)
        if hdr is None:
            if isb:
                return (lambda st, m, r=r: st.regs[r]), True, False
            return (lambda st, m, r=r: st.regs[r]), False, False
        vid = self.valid_id(hdr)
        if isb:
            return (lambda st, m, r=r, vid=vid:
                    st.regs[r] & st.valid[vid]), True, False
        w = p4_type.bit_width()
        return (lambda st, m, r=r, vid=vid, w=w:
                st.regs[r] & (st.valid[vid] * ((1 << w) - 1))), False, False

    def _compile_binop(self, e: N.IrBinop):
        op = e.op
        if op in ("&&", "||"):
            lfn, lisb, lla = self.compile_expr(e.left)
            rfn, risb, rla = self.compile_expr(e.right)
            if not (lisb and risb):
                raise CompileUnsupported(f"{op} on non-bool")
            if rla:
                # The scalar side would skip the lookahead entirely
                # when the left side short-circuits.
                raise CompileUnsupported(f"lookahead in {op} right operand")
            if op == "&&":
                return (lambda st, m, a=lfn, b=rfn:
                        a(st, m) & b(st, m)), True, lla
            return (lambda st, m, a=lfn, b=rfn:
                    a(st, m) | b(st, m)), True, lla
        lfn, lisb, lla = self.compile_expr(e.left)
        rfn, risb, rla = self.compile_expr(e.right)
        la = lla or rla
        if op in ("==", "!="):
            if lisb != risb:
                raise CompileUnsupported("mixed bool/value equality")
            if lisb:
                if op == "==":
                    return (lambda st, m, a=lfn, b=rfn:
                            (a(st, m) ^ b(st, m)) ^ st.g.all), True, la
                return (lambda st, m, a=lfn, b=rfn:
                        a(st, m) ^ b(st, m)), True, la
            w = max(e.left.p4_type.bit_width(), e.right.p4_type.bit_width())
            if w > MAX_SCALAR_WIDTH:
                raise CompileUnsupported(f"comparison width {w}")
            if op == "==":
                return (lambda st, m, a=lfn, b=rfn, w=w:
                        lane_eq(a(st, m), b(st, m), w, st.g)), True, la
            return (lambda st, m, a=lfn, b=rfn, w=w:
                    lane_ne(a(st, m), b(st, m), w, st.g)), True, la
        if op in ("<", ">", "<=", ">="):
            if lisb or risb:
                raise CompileUnsupported("ordered compare on bool")
            lt = e.left.p4_type
            signed = isinstance(lt, BitsType) and lt.signed
            w = lt.bit_width() if isinstance(lt, _SCALAR_TYPES) else max(
                e.left.p4_type.bit_width(), e.right.p4_type.bit_width())
            if w > MAX_SCALAR_WIDTH:
                raise CompileUnsupported(f"comparison width {w}")

            def cmp_fn(st, m, a=lfn, b=rfn, w=w, op=op, signed=signed):
                av = a(st, m)
                bv = b(st, m)
                if signed:
                    flip = lane_splat(1 << (w - 1), w, st.g)
                    av ^= flip
                    bv ^= flip
                if op == "<":
                    return lane_lt(av, bv, w, st.g)
                if op == ">":
                    return lane_lt(bv, av, w, st.g)
                if op == "<=":
                    return lane_lt(bv, av, w, st.g) ^ st.g.all
                return lane_lt(av, bv, w, st.g) ^ st.g.all
            return cmp_fn, True, la
        if lisb or risb:
            raise CompileUnsupported(f"arithmetic {op} on bool")
        w = e.p4_type.bit_width()
        if w > MAX_SCALAR_WIDTH:
            raise CompileUnsupported(f"arithmetic width {w}")
        if op == "+":
            return (lambda st, m, a=lfn, b=rfn, w=w:
                    (a(st, m) + b(st, m)) & st.g.fm(w)), False, la
        if op == "-":
            return (lambda st, m, a=lfn, b=rfn, w=w:
                    ((a(st, m) | st.g.hm(w)) - b(st, m)) & st.g.fm(w)), \
                False, la
        if op == "&":
            return (lambda st, m, a=lfn, b=rfn:
                    a(st, m) & b(st, m)), False, la
        if op == "|":
            return (lambda st, m, a=lfn, b=rfn:
                    a(st, m) | b(st, m)), False, la
        if op == "^":
            return (lambda st, m, a=lfn, b=rfn:
                    a(st, m) ^ b(st, m)), False, la
        if op == "<<" and isinstance(e.right, N.IrConst):
            c = int(e.right.value)
            if c >= w:
                return (lambda st, m: 0), False, lla
            keep = ((1 << w) - 1) >> c
            return (lambda st, m, a=lfn, c=c, keep=keep:
                    (a(st, m) & (st.g.ones * keep)) << c), False, lla
        signed_shr = (op == ">>" and isinstance(e.p4_type, BitsType)
                      and e.p4_type.signed)
        if op == ">>" and not signed_shr and isinstance(e.right, N.IrConst):
            c = int(e.right.value)
            if c >= w:
                return (lambda st, m: 0), False, lla
            keep = ((1 << w) - 1) >> c
            return (lambda st, m, a=lfn, c=c, keep=keep:
                    (a(st, m) >> c) & (st.g.ones * keep)), False, lla
        # Remaining ops run per lane, replicating scalar edge semantics.
        mask = (1 << w) - 1

        def perlane(st, m, a=lfn, b=rfn, op=op, w=w, mask=mask,
                    signed_shr=signed_shr):
            av = a(st, m)
            bv = b(st, m)
            out = 0
            for i, pos in iter_lanes(m, st.g.stride):
                x = (av >> pos) & mask
                y = (bv >> pos) & mask
                if op == "*":
                    v = (x * y) & mask
                elif op == "/":
                    v = (x // y) & mask if y else mask
                elif op == "%":
                    v = (x % y) & mask if y else x
                elif op == "<<":
                    v = (x << y) & mask if y < w else 0
                else:  # ">>"
                    if signed_shr:
                        sx = x - (1 << w) if x >= 1 << (w - 1) else x
                        v = (sx >> min(y, w - 1)) & mask
                    else:
                        v = x >> y if y < w else 0
                out |= v << pos
            return out
        if op in ("*", "/", "%", "<<", ">>"):
            return perlane, False, la
        raise CompileUnsupported(f"binop {op}")

    def _compile_cast(self, e: N.IrCast):
        fn, isb, la = self.compile_expr(e.expr)
        target = e.p4_type
        if isinstance(target, BoolType):
            if isb:
                return fn, True, la
            sw = e.expr.p4_type.bit_width()
            if sw > MAX_SCALAR_WIDTH:
                raise CompileUnsupported(f"cast source width {sw}")
            return (lambda st, m, f=fn, sw=sw:
                    lane_ne(f(st, m), 0, sw, st.g)), True, la
        w = target.bit_width()
        if w > MAX_SCALAR_WIDTH:
            raise CompileUnsupported(f"cast width {w}")
        if isb:
            # A spread bool is already a clean 1-bit value per lane.
            return fn, False, la
        src = e.expr.p4_type
        if isinstance(src, BitsType) and src.signed and w > src.width:
            sw = src.width

            def sext(st, m, f=fn, sw=sw, w=w):
                v = f(st, m)
                sm = (v >> (sw - 1)) & st.g.ones
                return v | (sm * ((((1 << (w - sw)) - 1)) << sw))
            return sext, False, la
        return (lambda st, m, f=fn, w=w:
                f(st, m) & st.g.fm(w)), False, la

    def _compile_call_expr(self, e: N.IrCall):
        if e.func == "lookahead" and e.p4_type is not None:
            if not self.in_parser:
                raise CompileUnsupported("lookahead outside parser")
            w = e.p4_type.bit_width()
            if w > MAX_SCALAR_WIDTH:
                raise CompileUnsupported(f"lookahead width {w}")

            def look(st, m, w=w):
                out = 0
                mask = (1 << w) - 1
                for i, pos in iter_lanes(m, st.g.stride):
                    p = st.pkt[i]
                    if w > p.width - p.pos:
                        st.pending_reject |= 1 << pos
                    else:
                        out |= ((p.bits >> (p.width - p.pos - w)) & mask) \
                            << pos
                return out
            return look, False, True
        if e.func == "length":
            if e.p4_type is None:
                raise CompileUnsupported("untyped length()")
            w = e.p4_type.bit_width()
            if w > MAX_SCALAR_WIDTH:
                raise CompileUnsupported(f"length width {w}")

            def length(st, m, w=w):
                out = 0
                mask = (1 << w) - 1
                for i, pos in iter_lanes(m, st.g.stride):
                    out |= ((st.pkt[i].width // 8) & mask) << pos
                return out
            return length, False, False
        raise CompileUnsupported(f"value extern {e.func!r}")

    # -- statements -----------------------------------------------------

    def compile_stmts(self, stmts) -> list:
        ops = []
        for s in stmts:
            ops.extend(self.compile_stmt(s))
        return ops

    def compile_stmt(self, s) -> list:
        if isinstance(s, N.IrAssign):
            return self._compile_assign(s)
        if isinstance(s, N.IrVarDecl):
            return self._compile_vardecl(s)
        if isinstance(s, N.IrIf):
            cfn, cisb, _la = self.compile_expr(s.cond)
            if not cisb:
                raise CompileUnsupported("if condition not bool")
            self.branch_depth += 1
            try:
                t_ops = self.compile_stmts(s.then_stmts)
                e_ops = self.compile_stmts(s.else_stmts)
            finally:
                self.branch_depth -= 1

            def if_op(st, m, c=cfn, t_ops=t_ops, e_ops=e_ops):
                cond = c(st, m)
                m = drain_pending(st, m)
                cm = cond & m
                em = m & ~cond
                out = 0
                if cm:
                    out |= run_ops(t_ops, st, cm)
                if em:
                    out |= run_ops(e_ops, st, em)
                return out
            return [if_op]
        if isinstance(s, N.IrApplyTable):
            return [self._compile_table_op(self.program.find_table(s.table))]
        if isinstance(s, N.IrExit):
            if self.in_parser:
                raise CompileUnsupported("exit in parser")

            def exit_op(st, m):
                st.exited |= m
                return 0
            return [exit_op]
        if isinstance(s, N.IrReturn):
            if not self.in_action:
                raise CompileUnsupported("return outside action")

            def ret_op(st, m):
                st.returned |= m
                return 0
            return [ret_op]
        if isinstance(s, N.IrMethodCall):
            return self._compile_call_stmt(s.call)
        if isinstance(s, N.IrSwitch):
            raise CompileUnsupported("switch statement")
        raise CompileUnsupported(f"statement {type(s).__name__}")

    def _compile_assign(self, s: N.IrAssign) -> list:
        target = s.target
        if isinstance(target, N.SliceLV):
            base_path, base_type = self.resolve_lval(target.base)
            if not isinstance(base_type, _SCALAR_TYPES):
                raise CompileUnsupported("slice of composite")
            w = base_type.bit_width()
            r = self.reg(base_path, base_type)
            if r in self.forbidden_read:
                raise CompileUnsupported("slice-assign reads sentinel")
            vfn, visb, _la = self.compile_expr(s.value)
            if visb:
                raise CompileUnsupported("bool into slice")
            sw = target.hi - target.lo + 1
            smask = (1 << sw) - 1
            keep = ~(smask << target.lo) & ((1 << w) - 1)

            def slice_op(st, m, f=vfn, r=r, w=w, lo=target.lo,
                         smask=smask, keep=keep):
                new = f(st, m)
                m = drain_pending(st, m)
                if not m:
                    return 0
                old = st.regs[r]
                merged = (old & (st.g.ones * keep)) | \
                    ((new & (st.g.ones * smask)) << lo)
                st.write(r, w, merged, m)
                return m
            ops = [slice_op]
            if r in self.port_regs:
                ops.append(self._port_written_op())
            return ops
        path, p4_type = self.resolve_lval(target)
        if isinstance(p4_type, (HeaderType, StructType, StackType)):
            if not isinstance(s.value, N.IrLValExpr):
                raise CompileUnsupported("composite assign from expression")
            src_path, _t = self.resolve_lval(s.value.lval)
            return [self._copy_op(src_path, path, p4_type)]
        r = self.reg(path, p4_type)
        vfn, visb, _la = self.compile_expr(s.value)
        isb = r in self.bool_regs
        if isb != visb:
            raise CompileUnsupported("bool/value representation mismatch")
        if isb:
            def wb_op(st, m, f=vfn, r=r):
                v = f(st, m)
                m = drain_pending(st, m)
                if not m:
                    return 0
                st.write_bool(r, v, m)
                return m
            return [wb_op]
        w = self.reg_width[r]

        def w_op(st, m, f=vfn, r=r, w=w):
            v = f(st, m)
            m = drain_pending(st, m)
            if not m:
                return 0
            st.write(r, w, v, m)
            return m
        ops = [w_op]
        if r in self.port_regs:
            ops.append(self._port_written_op())
        return ops

    @staticmethod
    def _port_written_op():
        def port_op(st, m):
            st.port_written |= m
            return m
        return port_op

    def _copy_op(self, src: str, dst: str, p4_type):
        """Masked deep copy mirroring BlockExecutor.copy_value (raw
        field reads, valid-bit copy for headers)."""
        vpairs: list = []
        rpairs: list = []

        def walk(src, dst, t):
            if isinstance(t, HeaderType):
                vpairs.append((self.valid_id(src), self.valid_id(dst)))
                for fname, ftype in t.fields:
                    walk_scalar(f"{src}.{fname}", f"{dst}.{fname}", ftype)
            elif isinstance(t, StructType):
                for fname, ftype in t.fields:
                    walk(f"{src}.{fname}", f"{dst}.{fname}", ftype)
            elif isinstance(t, StackType):
                raise CompileUnsupported("stack copy")
            else:
                walk_scalar(src, dst, t)

        def walk_scalar(src, dst, t):
            sr = self.reg(src, t)
            if sr in self.forbidden_read:
                raise CompileUnsupported("copy reads sentinel register")
            dr = self.reg(dst, t)
            if dr in self.port_regs:
                raise CompileUnsupported("copy into port register")
            rpairs.append((sr, dr, self.reg_width[dr],
                           dr in self.bool_regs))

        walk(src, dst, p4_type)

        def copy_op(st, m, vpairs=vpairs, rpairs=rpairs):
            for sv, dv in vpairs:
                st.valid[dv] = (st.valid[dv] & ~m) | (st.valid[sv] & m)
            for sr, dr, w, isb in rpairs:
                if isb:
                    st.write_bool(dr, st.regs[sr], m)
                else:
                    st.write(dr, w, st.regs[sr], m)
            return m
        return copy_op

    def _compile_vardecl(self, s: N.IrVarDecl) -> list:
        if self.branch_depth:
            # Scalar declarations leak into the enclosing frame across
            # branch joins; mask-world has no per-lane frames.
            raise CompileUnsupported("declaration inside branch")
        self.scratch += 1
        scratch = f"$c${self.scratch}${s.name}"
        self.frames[-1][s.name] = scratch
        if s.init is not None:
            if isinstance(s.p4_type, (HeaderType, StructType, StackType)):
                if not isinstance(s.init, N.IrLValExpr):
                    raise CompileUnsupported("composite init from expression")
                src_path, _t = self.resolve_lval(s.init.lval)
                return [self._copy_op(src_path, scratch, s.p4_type)]
            r = self.reg(scratch, s.p4_type)
            vfn, visb, _la = self.compile_expr(s.init)
            if (r in self.bool_regs) != visb:
                raise CompileUnsupported("bool/value init mismatch")
            if visb:
                def ib_op(st, m, f=vfn, r=r):
                    v = f(st, m)
                    m = drain_pending(st, m)
                    if not m:
                        return 0
                    st.write_bool(r, v, m)
                    return m
                return [ib_op]
            w = self.reg_width[r]

            def iv_op(st, m, f=vfn, r=r, w=w):
                v = f(st, m)
                m = drain_pending(st, m)
                if not m:
                    return 0
                st.write(r, w, v, m)
                return m
            return [iv_op]
        # Zero init (every family's local_init_mode is "zero"; headers
        # additionally start invalid — exactly init_type's behavior).
        vids: list = []
        fregs: list = []

        def zwalk(path, t):
            if isinstance(t, HeaderType):
                vids.append(self.valid_id(path))
                for fname, ftype in t.fields:
                    zscalar(f"{path}.{fname}", ftype)
            elif isinstance(t, StructType):
                for fname, ftype in t.fields:
                    zwalk(f"{path}.{fname}", ftype)
            elif isinstance(t, StackType):
                raise CompileUnsupported("stack declaration")
            else:
                zscalar(path, t)

        def zscalar(path, t):
            r = self.reg(path, t)
            fregs.append((r, self.reg_width[r], r in self.bool_regs))

        zwalk(scratch, s.p4_type)

        def zero_op(st, m, vids=vids, fregs=fregs):
            for vid in vids:
                st.valid[vid] &= ~m
            for r, w, isb in fregs:
                if isb:
                    st.write_bool(r, 0, m)
                else:
                    st.write(r, w, 0, m)
            return m
        return [zero_op]

    # -- calls and externs ----------------------------------------------

    def _compile_call_stmt(self, call: N.IrCall) -> list:
        func = call.func
        if func == "__action__":
            return [self._compile_direct_action(call)]
        if func == "setValid":
            path, _t = self.resolve_lval(call.obj)
            vid = self.valid_id(path)

            def sv_op(st, m, vid=vid):
                st.valid[vid] |= m
                return m
            return [sv_op]
        if func == "setInvalid":
            path, _t = self.resolve_lval(call.obj)
            vid = self.valid_id(path)

            def si_op(st, m, vid=vid):
                st.valid[vid] &= ~m
                return m
            return [si_op]
        if func == "extract":
            return [self._compile_extract(call)]
        if func == "emit":
            if self.family == "ebpf":
                # EbpfSimulator.packet_op treats explicit emit as a
                # no-op; output comes from the implicit deparser only.
                return []
            return [self._compile_emit(call)]
        if func == "advance":
            return [self._compile_advance(call)]
        if func in ("lookahead", "length"):
            return []
        if func in ("push_front", "pop_front"):
            raise CompileUnsupported(f"{func} (header stacks)")
        return self._compile_extern(call)

    def _compile_extern(self, call: N.IrCall) -> list:
        func = call.func
        if self.family == "bmv2":
            if func == "mark_to_drop":
                sm = self._sm_type
                spec_r = self.reg("*sm.egress_spec",
                                  sm.field_types["egress_spec"])
                spec_w = self.reg_width[spec_r]
                mc_r = self.reg("*sm.mcast_grp",
                                sm.field_types["mcast_grp"])
                mc_w = self.reg_width[mc_r]

                def drop_op(st, m, spec_r=spec_r, spec_w=spec_w,
                            mc_r=mc_r, mc_w=mc_w):
                    st.write(spec_r, spec_w,
                             lane_splat(511, spec_w, st.g), m)
                    st.write(mc_r, mc_w, 0, m)
                    return m
                return [drop_op]
            if func in ("verify_checksum", "verify_checksum_with_payload"):
                return [self._compile_checksum(call, verify=True)]
            if func in ("update_checksum", "update_checksum_with_payload"):
                return [self._compile_checksum(call, verify=False)]
            if func in ("digest", "log_msg", "counter.count",
                        "direct_counter.count"):
                return []
        elif self.family == "ebpf":
            if func in ("CounterArray.increment", "CounterArray.add",
                        "log_msg"):
                return []
        elif self.family == "tofino":
            if func in ("Counter.count", "DirectCounter.count",
                        "Digest.pack", "log_msg"):
                return []
        raise CompileUnsupported(f"extern {func!r}")

    def _compile_direct_action(self, call: N.IrCall):
        if self.in_parser:
            raise CompileUnsupported("action call in parser")
        action = self.program.find_action(call.obj)
        frame: dict[str, str] = {}
        self.scratch += 1
        scratch = f"$a${self.scratch}"
        init_ops = []
        for i, param in enumerate(action.params):
            arg = call.args[i] if i < len(call.args) else None
            if param.direction in ("in", "out", "inout") and isinstance(
                arg, N.IrLValExpr
            ):
                path, _t = self.resolve_lval(arg.lval)
                frame[param.name] = path
                continue
            path = f"{scratch}.{param.name}"
            frame[param.name] = path
            r = self.reg(path, param.p4_type)
            isb = r in self.bool_regs
            if arg is None:
                if isb:
                    init_ops.append(
                        lambda st, m, r=r: (st.write_bool(r, 0, m), m)[1])
                else:
                    w = self.reg_width[r]
                    init_ops.append(
                        lambda st, m, r=r, w=w: (st.write(r, w, 0, m), m)[1])
                continue
            vfn, visb, _la = self.compile_expr(arg)
            if visb != isb:
                raise CompileUnsupported("action arg representation mismatch")
            if isb:
                def ab_op(st, m, f=vfn, r=r):
                    st.write_bool(r, f(st, m), m)
                    return m
                init_ops.append(ab_op)
            else:
                w = self.reg_width[r]

                def av_op(st, m, f=vfn, r=r, w=w):
                    st.write(r, w, f(st, m), m)
                    return m
                init_ops.append(av_op)
        self.frames.append(frame)
        self.in_action += 1
        try:
            body_ops = self.compile_stmts(action.body)
        finally:
            self.in_action -= 1
            self.frames.pop()
        chain = init_ops + body_ops

        def action_op(st, m, chain=chain):
            _run_instance_ops(st, chain, m)
            return m & st.live & ~st.exited
        return action_op

    # -- packet operations ----------------------------------------------

    def _compile_extract(self, call: N.IrCall):
        if not self.in_parser:
            raise CompileUnsupported("extract outside parser")
        if len(call.args) > 1:
            raise CompileUnsupported("varbit extract")
        path, header_type = self.resolve_lval(call.args[0])
        layout: list = []
        vid = None
        if isinstance(header_type, (HeaderType, StructType)):
            total = header_type.bit_width()
            offset = 0
            for fname, ftype in header_type.fields:
                fw = ftype.bit_width()
                if isinstance(ftype, BoolType):
                    raise CompileUnsupported("bool field in extract")
                r = self.reg(f"{path}.{fname}", ftype)
                if r in self.port_regs:
                    raise CompileUnsupported("extract into port register")
                layout.append((r, fw, total - offset - fw))
                offset += fw
            if isinstance(header_type, HeaderType):
                vid = self.valid_id(path)
        else:
            total = header_type.bit_width()
            r = self.reg(path, header_type)
            if r in self.port_regs:
                raise CompileUnsupported("extract into port register")
            layout.append((r, total, 0))

        fields = [(r, fw, shift, (1 << fw) - 1) for r, fw, shift in layout]

        def extract_op(st, m, fields=fields, vid=vid, total=total):
            stride = st.g.stride
            rej = 0
            lanes = []
            for i, pos in iter_lanes(m, stride):
                p = st.pkt[i]
                if total > p.width - p.pos:
                    rej |= 1 << pos
                else:
                    lanes.append((pos, p.take(total)))
            if rej:
                st.parser_reject(rej, "PacketTooShort")
                m &= ~rej
                if not m:
                    return 0
            # One pass over the lanes, accumulating every field's packed
            # register at once (fields x lanes, not lanes per field).
            pks = [0] * len(fields)
            for pos, v in lanes:
                for j, (_r, _fw, shift, fmask) in enumerate(fields):
                    pks[j] |= ((v >> shift) & fmask) << pos
            for (r, fw, _shift, _fmask), pk in zip(fields, pks):
                st.write(r, fw, pk, m)
            if vid is not None:
                st.valid[vid] |= m
            return m
        return extract_op

    def _compile_emit(self, call: N.IrCall):
        path, p4_type = self.resolve_lval(call.args[0])
        segs: list = []

        def walk(path, t):
            if isinstance(t, HeaderType):
                fields = []
                for fname, ftype in t.fields:
                    fields.append(self._emit_field(f"{path}.{fname}", ftype))
                segs.append((self.valid_id(path), fields))
            elif isinstance(t, StructType):
                for fname, ftype in t.fields:
                    walk(f"{path}.{fname}", ftype)
            elif isinstance(t, StackType):
                raise CompileUnsupported("stack emit")
            else:
                segs.append((None, [self._emit_field(path, t)]))

        walk(path, p4_type)

        def emit_op(st, m, segs=segs):
            for i, pos in iter_lanes(m, st.g.stride):
                buf = st.emit[i]
                for vid, fields in segs:
                    if vid is not None and not (st.valid[vid] >> pos) & 1:
                        continue
                    for r, w in fields:
                        buf.append(((st.regs[r] >> pos) & ((1 << w) - 1), w))
            return m
        return emit_op

    def _emit_field(self, path, t):
        r = self.reg(path, t)
        if r in self.forbidden_read:
            raise CompileUnsupported("emit reads sentinel register")
        return (r, self.reg_width[r])

    def _compile_advance(self, call: N.IrCall):
        if not self.in_parser:
            raise CompileUnsupported("advance outside parser")
        vfn, visb, _la = self.compile_expr(call.args[0])
        if visb:
            raise CompileUnsupported("bool advance width")
        aw = call.args[0].p4_type.bit_width()

        def advance_op(st, m, f=vfn, aw=aw):
            v = f(st, m)
            m = drain_pending(st, m)
            mask = (1 << aw) - 1
            rej = 0
            for i, pos in iter_lanes(m, st.g.stride):
                w = (v >> pos) & mask
                p = st.pkt[i]
                if w > p.width - p.pos:
                    rej |= 1 << pos
                else:
                    p.pos += w
            if rej:
                st.parser_reject(rej, "PacketTooShort")
                m &= ~rej
            return m
        return advance_op

    # -- checksums (bmv2 family) ----------------------------------------

    def _checksum_fields(self, data_arg) -> list:
        descs: list = []
        elements = (data_arg.elements
                    if isinstance(data_arg, N.IrTupleExpr) else (data_arg,))
        for e in elements:
            if isinstance(e, N.IrTupleExpr):
                descs.extend(self._checksum_fields(e))
                continue
            if isinstance(e, N.IrLValExpr) and isinstance(
                e.p4_type, (HeaderType, StructType)
            ):
                path, t = self.resolve_lval(e.lval)
                for fname, ftype in t.fields:
                    r = self.reg(f"{path}.{fname}", ftype)
                    if r in self.forbidden_read:
                        raise CompileUnsupported("checksum reads sentinel")
                    descs.append(("raw", r, ftype.bit_width()))
                continue
            fn, isb, la = self.compile_expr(e)
            if la:
                raise CompileUnsupported("lookahead in checksum data")
            descs.append(("expr", fn, e.p4_type.bit_width()))
        return descs

    def _checksum_algo(self, call: N.IrCall):
        from ..externs.checksum import CHECKSUM_ALGORITHMS, ones_complement16

        name = "csum16"
        if len(call.args) > 3:
            value = const_eval(call.args[3])
            enum = self.program.enums.get("HashAlgorithm")
            if enum is not None:
                for member, v in enum.values.items():
                    if v == value:
                        name = member
                        break
        return CHECKSUM_ALGORITHMS.get(name, ones_complement16)

    def _compile_checksum(self, call: N.IrCall, *, verify: bool):
        cfn, cisb, _la = self.compile_expr(call.args[0])
        if not cisb:
            raise CompileUnsupported("checksum condition not bool")
        descs = self._checksum_fields(call.args[1])
        algo = self._checksum_algo(call)
        if verify:
            efn, eisb, _ela = self.compile_expr(call.args[2])
            if eisb:
                raise CompileUnsupported("bool checksum expectation")
            width = call.args[2].p4_type.bit_width()
            sm = self._sm_type
            err_r = self.reg("*sm.checksum_error",
                             sm.field_types["checksum_error"])
            err_w = self.reg_width[err_r]

            def verify_op(st, m, c=cfn, descs=descs, algo=algo, e=efn,
                          width=width, err_r=err_r, err_w=err_w):
                cm = c(st, m) & m
                if not cm:
                    return m
                evals = [d[1](st, cm) if d[0] == "expr" else None
                         for d in descs]
                expected = e(st, cm)
                emask = (1 << width) - 1
                mism = 0
                for i, pos in iter_lanes(cm, st.g.stride):
                    fields = []
                    for d, ev in zip(descs, evals):
                        fw = d[2]
                        if d[0] == "raw":
                            fields.append(
                                (fw, (st.regs[d[1]] >> pos) & ((1 << fw) - 1)))
                        else:
                            fields.append((fw, (ev >> pos) & ((1 << fw) - 1)))
                    if algo(fields, width) != (expected >> pos) & emask:
                        mism |= 1 << pos
                if mism:
                    st.write(err_r, err_w, lane_splat(1, err_w, st.g), mism)
                return m
            return verify_op
        dest = call.args[2]
        if isinstance(dest, N.IrLValExpr):
            dest = dest.lval
        dpath, dtype = self.resolve_lval(dest)
        dr = self.reg(dpath, dtype)
        if dr in self.bool_regs:
            raise CompileUnsupported("bool checksum destination")
        if dr in self.port_regs:
            raise CompileUnsupported("checksum into port register")
        dw = self.reg_width[dr]

        def update_op(st, m, c=cfn, descs=descs, algo=algo, dr=dr, dw=dw):
            cm = c(st, m) & m
            if not cm:
                return m
            evals = [d[1](st, cm) if d[0] == "expr" else None for d in descs]
            pk = 0
            for i, pos in iter_lanes(cm, st.g.stride):
                fields = []
                for d, ev in zip(descs, evals):
                    fw = d[2]
                    if d[0] == "raw":
                        fields.append(
                            (fw, (st.regs[d[1]] >> pos) & ((1 << fw) - 1)))
                    else:
                        fields.append((fw, (ev >> pos) & ((1 << fw) - 1)))
                pk |= (algo(fields, dw) & ((1 << dw) - 1)) << pos
            st.write(dr, dw, pk, cm)
            return m
        return update_op

    # -- tables ----------------------------------------------------------

    def _compile_action_instance(self, action: N.IrAction):
        """Compile an action for table invocation: control-plane params
        become registers, directional params resolve through the table
        site's frames (exactly ``_run_action_with_values``)."""
        frame: dict[str, str] = {}
        self.scratch += 1
        scratch = f"$act${self.scratch}"
        slots: list[tuple[int, int]] = []
        for param in action.params:
            if param.direction != "":
                continue
            if isinstance(param.p4_type, BoolType):
                raise CompileUnsupported("bool control-plane param")
            path = f"{scratch}.{param.name}"
            frame[param.name] = path
            r = self.reg(path, param.p4_type)
            slots.append((r, self.reg_width[r]))
        self.frames.append(frame)
        self.in_action += 1
        try:
            ops = self.compile_stmts(action.body)
        finally:
            self.in_action -= 1
            self.frames.pop()
        return (slots, ops)

    @staticmethod
    def _entry_matcher(ks):
        """Matcher for one const-entry keyset: ``(key_value) -> bool``."""
        if isinstance(ks, N.KsDefault):
            return lambda kv: True
        if isinstance(ks, N.KsMask):
            mask = const_eval(ks.mask)
            vm = const_eval(ks.value) & mask
            return lambda kv, mask=mask, vm=vm: (kv & mask) == vm
        if isinstance(ks, N.KsRange):
            lo = const_eval(ks.lo)
            hi = const_eval(ks.hi)
            return lambda kv, lo=lo, hi=hi: lo <= kv <= hi
        if isinstance(ks, N.KsConst):
            return lambda kv, v=ks.value: kv == v
        if isinstance(ks, N.KsValueSet):
            raise CompileUnsupported("value set in table entry")
        v = const_eval(ks)
        return lambda kv, v=v: kv == v

    def _compile_table_op(self, table: N.IrTable):
        if self.in_parser:
            raise CompileUnsupported("table apply in parser")
        keys = []
        for k in table.keys:
            fn, isb, _la = self.compile_expr(k.expr)
            w = 1 if isb else k.expr.p4_type.bit_width()
            keys.append((fn, isb, (1 << w) - 1))

        insts: dict[int, tuple] = {}

        def instance_for(ref: N.IrActionRef):
            action = self.program.find_action(ref.action)
            inst = insts.get(id(action))
            if inst is None:
                inst = self._compile_action_instance(action)
                insts[id(action)] = (inst, action)
            else:
                inst, action = inst
            args = [const_eval(a) for a in ref.args]
            while len(args) < len(inst[0]):
                args.append(0)
            return inst, tuple(args[: len(inst[0])])

        for ref in table.action_refs:
            instance_for(ref)
        entries = list(table.const_entries)
        if self.family == "bmv2" and any(
            e.priority is not None for e in entries
        ):
            entries.sort(
                key=lambda e: e.priority if e.priority is not None else 1 << 30)
        centries = []
        for entry in entries:
            matchers = [self._entry_matcher(ks) for ks in entry.keysets]
            inst, args = instance_for(entry.action_ref)
            centries.append((matchers, inst, args))
        default = (instance_for(table.default_action)
                   if table.default_action is not None else None)
        amap = {}
        byid = {}
        for inst, action in insts.values():
            amap[action.full_name] = inst
            byid[id(action)] = inst
        rcache: dict[str, tuple | None] = {}
        program = self.program
        full_name = table.full_name

        def resolve_runtime(name):
            if name in rcache:
                return rcache[name]
            inst = amap.get(name)
            if inst is None:
                try:
                    obj = program.find_action(name)
                except Exception:
                    obj = None
                if obj is not None:
                    inst = byid.get(id(obj))
            rcache[name] = inst
            return inst

        def table_op(st, m, keys=keys, centries=centries, default=default,
                     table=table, full_name=full_name,
                     resolve=resolve_runtime):
            g = st.g
            stride = g.stride
            live = m & st.live
            if not live:
                return 0
            configs = st.configs
            # Key registers are only materialized once some lane can
            # actually match an entry; a batch of entry-less configs
            # (the common campaign case) never touches the keys.
            kvals = None
            groups: dict[tuple, list] = {}
            eject = 0
            for i, pos in iter_lanes(live, stride):
                specs = configs[i].entries_for(full_name)
                chosen = None
                if centries or specs:
                    if kvals is None:
                        kvals = [fn(st, m) for fn, _isb, _km in keys]
                    kv = [(v >> pos) & km
                          for v, (_f, _isb, km) in zip(kvals, keys)]
                    for matchers, inst, args in centries:
                        if all(mt(x) for mt, x in zip(matchers, kv)):
                            chosen = (inst, args)
                            break
                    if chosen is None and specs:
                        spec = None
                        for cand in specs:
                            if spec_matches(cand, kv, table):
                                spec = cand
                                break
                        if spec is not None:
                            inst = resolve(spec.action)
                            if inst is None:
                                eject |= 1 << pos
                                continue
                            vals = [v for _n, v in spec.action_args]
                            slots = inst[0]
                            vals = vals[: len(slots)]
                            vals += [0] * (len(slots) - len(vals))
                            # Scalar writes runtime args to the env raw;
                            # the lane engine always masks.  Out-of-width
                            # args replay scalar to stay exact.
                            if any(
                                not isinstance(v, int) or isinstance(v, bool)
                                or v < 0 or v >> w
                                for v, (_r, w) in zip(vals, slots)
                            ):
                                eject |= 1 << pos
                                continue
                            chosen = (inst, tuple(vals))
                if chosen is None:
                    chosen = default
                    if chosen is None:
                        continue
                inst, args = chosen
                slot = groups.setdefault((id(inst), args), [inst, args, 0])
                slot[2] |= 1 << pos
            if eject:
                st.eject(eject)
            for inst, args, gm in groups.values():
                gm &= st.live
                if not gm:
                    continue
                slots, ops = inst
                for (r, w), v in zip(slots, args):
                    st.write(r, w, lane_splat(v, w, g), gm)
                _run_instance_ops(st, ops, gm)
            return m & st.live & ~st.exited
        return table_op

    # -- parsers ---------------------------------------------------------

    def _select_matcher(self, parser: N.IrParser, ks):
        """Matcher for one select keyset: ``(st, lane, value) -> bool``."""
        if isinstance(ks, N.KsDefault):
            return lambda st, i, v: True
        if isinstance(ks, N.KsValueSet):
            full = parser.value_sets[ks.name].full_name
            return (lambda st, i, v, full=full:
                    v in st.configs[i].value_set_members(full))
        if isinstance(ks, N.KsMask):
            mask = const_eval(ks.mask)
            vm = const_eval(ks.value) & mask
            return lambda st, i, v, mask=mask, vm=vm: (v & mask) == vm
        if isinstance(ks, N.KsRange):
            lo = const_eval(ks.lo)
            hi = const_eval(ks.hi)
            return lambda st, i, v, lo=lo, hi=hi: lo <= v <= hi
        if isinstance(ks, N.KsConst):
            return lambda st, i, v, c=ks.value: v == c
        c = const_eval(ks)
        return lambda st, i, v, c=c: v == c

    def _state_code(self, name: str, index: dict[str, int]):
        """Encode a transition target; None means reject-with-NoMatch
        (covers explicit ``reject`` and unknown states, as scalar
        ``run_parser`` raises ``ParserReject("NoMatch")`` for both)."""
        if name == "accept":
            return ACCEPT
        if name == "reject" or name not in index:
            return None
        return index[name]

    def _compile_transition(self, parser, tr, index):
        if tr is None or tr.direct is not None:
            code = (self._state_code(tr.direct, index)
                    if tr is not None else None)

            def direct_tr(st, m, code=code):
                if code is None:
                    st.parser_reject(m, "NoMatch")
                else:
                    for i, _pos in iter_lanes(m, st.g.stride):
                        st.pstate[i] = code
            return direct_tr
        efns = []
        for e in tr.select_exprs:
            fn, isb, _la = self.compile_expr(e)
            if isb:
                raise CompileUnsupported("bool select expression")
            efns.append((fn, (1 << e.p4_type.bit_width()) - 1))
        cases = []
        for case in tr.cases:
            matchers = [self._select_matcher(parser, ks)
                        for ks in case.keysets]
            cases.append((matchers, self._state_code(case.state, index)))

        def select_tr(st, m, efns=efns, cases=cases):
            stride = st.g.stride
            vals = []
            for fn, _km in efns:
                vals.append(fn(st, m))
                m = drain_pending(st, m)
                if not m:
                    return
            for i, pos in iter_lanes(m, stride):
                kv = [(v >> pos) & km for v, (_f, km) in zip(vals, efns)]
                code = None
                hit = False
                for matchers, tcode in cases:
                    if all(mt(st, i, x) for mt, x in zip(matchers, kv)):
                        code = tcode
                        hit = True
                        break
                if not hit or code is None:
                    st.pstate[i] = REJECT
                    st.reject_name[i] = "NoMatch"
                else:
                    st.pstate[i] = code
        return select_tr

    def compile_parser(self, parser: N.IrParser, aliases) -> ParserPlan:
        if "start" not in parser.states:
            raise CompileUnsupported("parser has no start state")
        # Scalar parser states share one frame, so a local declared in
        # one state is readable from another; the lane engine compiles
        # states independently and must refuse that aliasing.
        decls_by_state: dict[str, set] = {}

        def collect_decls(stmts, out):
            for s in stmts:
                if isinstance(s, N.IrVarDecl):
                    out.add(s.name)
                elif isinstance(s, N.IrIf):
                    collect_decls(s.then_stmts, out)
                    collect_decls(s.else_stmts, out)
        for name, state in parser.states.items():
            declared: set = set()
            collect_decls(state.statements, declared)
            decls_by_state[name] = declared
        for name, state in parser.states.items():
            used: set = set()
            _collect_roots(state.statements, used)
            _collect_roots(state.transition, used)
            for other, declared in decls_by_state.items():
                if other != name and used & declared:
                    raise CompileUnsupported("cross-state parser local")

        self.parser = parser
        self.in_parser = True
        self.frames.append(dict(aliases))
        try:
            pre_ops = []
            for decl in parser.locals:
                pre_ops.extend(self.compile_stmt(decl))
            names = list(parser.states)
            index = {name: i for i, name in enumerate(names)}
            states = []
            for name in names:
                state = parser.states[name]
                self.frames.append({})
                try:
                    ops = self.compile_stmts(state.statements)
                    tr_fn = self._compile_transition(
                        parser, state.transition, index)
                finally:
                    self.frames.pop()
                states.append((ops, tr_fn))
            return ParserPlan(index["start"], pre_ops, states)
        finally:
            self.frames.pop()
            self.in_parser = False
            self.parser = None

    # -- controls --------------------------------------------------------

    def compile_control(self, control: N.IrControl, paths) -> list:
        frame = {
            p.name: path
            for p, path in zip(control.params, paths)
            if path is not None
        }
        self.frames.append(frame)
        try:
            ops = []
            for decl in control.locals:
                ops.extend(self.compile_stmt(decl))
            ops.extend(self.compile_stmts(control.apply_stmts))
            return ops
        finally:
            self.frames.pop()

    # -- family builders -------------------------------------------------

    def _emit_ops_for(self, path: str, p4_type) -> list:
        """Emit ops for a path outside any frame (the ebpf implicit
        deparser)."""
        segs: list = []

        def walk(path, t):
            if isinstance(t, HeaderType):
                fields = [self._emit_field(f"{path}.{fn}", ft)
                          for fn, ft in t.fields]
                segs.append((self.valid_id(path), fields))
            elif isinstance(t, StructType):
                for fn, ft in t.fields:
                    walk(f"{path}.{fn}", ft)
            elif isinstance(t, StackType):
                raise CompileUnsupported("stack emit")
            else:
                segs.append((None, [self._emit_field(path, t)]))

        walk(path, p4_type)

        def emit_op(st, m, segs=segs):
            for i, pos in iter_lanes(m, st.g.stride):
                buf = st.emit[i]
                for vid, fields in segs:
                    if vid is not None and not (st.valid[vid] >> pos) & 1:
                        continue
                    for r, w in fields:
                        buf.append(((st.regs[r] >> pos) & ((1 << w) - 1), w))
            return m
        return [emit_op]

    def _build_bmv2(self) -> CompiledProgram:
        program = self.program
        if program.package_name != "V1Switch" or len(program.bindings) != 6:
            raise CompileUnsupported("not a V1Switch program")
        b = program.bindings
        parser = program.parsers[b[0].decl_name]
        if len(parser.params) < 3:
            raise CompileUnsupported("malformed V1Switch parser")
        sm_type = program.structs["standard_metadata_t"]
        self._sm_type = sm_type
        ft = sm_type.field_types
        r_ingress_port = self.reg("*sm.ingress_port", ft["ingress_port"])
        w_port = self.reg_width[r_ingress_port]
        r_packet_length = self.reg("*sm.packet_length", ft["packet_length"])
        r_parser_error = self.reg("*sm.parser_error", ft["parser_error"])
        r_egress_spec = self.reg("*sm.egress_spec", ft["egress_spec"])
        r_egress_port = self.reg("*sm.egress_port", ft["egress_port"])
        if (self.reg_width[r_packet_length] != 32
                or self.reg_width[r_parser_error] != 32
                or self.reg_width[r_egress_spec] != w_port
                or self.reg_width[r_egress_port] != w_port):
            raise CompileUnsupported("nonstandard standard_metadata widths")
        aliases = {
            p.name: path
            for p, path in zip(parser.params, [None, "*hdr", "*meta", "*sm"])
            if path is not None
        }
        plan = self.compile_parser(parser, aliases)
        controls = program.controls
        verify_ops = self.compile_control(
            controls[b[1].decl_name], ["*hdr", "*meta"])
        ingress_ops = self.compile_control(
            controls[b[2].decl_name], ["*hdr", "*meta", "*sm"])
        egress_ops = self.compile_control(
            controls[b[3].decl_name], ["*hdr", "*meta", "*sm"])
        compute_ops = self.compile_control(
            controls[b[4].decl_name], ["*hdr", "*meta"])
        deparser_ops = self.compile_control(
            controls[b[5].decl_name], [None, "*hdr"])
        return CompiledProgram(
            family="bmv2",
            num_regs=len(self.reg_width),
            num_valids=len(self.valids),
            parser=plan,
            verify_ops=verify_ops,
            ingress_ops=ingress_ops,
            egress_ops=egress_ops,
            compute_ops=compute_ops,
            deparser_ops=deparser_ops,
            r_ingress_port=r_ingress_port,
            r_packet_length=r_packet_length,
            r_parser_error=r_parser_error,
            r_egress_spec=r_egress_spec,
            r_egress_port=r_egress_port,
            w_port=w_port,
            error_codes={name: i for i, name in enumerate(program.errors)},
        )

    def _build_ebpf(self) -> CompiledProgram:
        program = self.program
        if program.package_name != "ebpfFilter" or len(program.bindings) != 2:
            raise CompileUnsupported("not an ebpfFilter program")
        parser = program.parsers[program.bindings[0].decl_name]
        if len(parser.params) < 2:
            raise CompileUnsupported("malformed ebpfFilter parser")
        hdr_type = parser.params[1].p4_type
        r_accept = self.reg("*accept", BoolType())
        aliases = {
            p.name: path
            for p, path in zip(parser.params, [None, "*hdr"])
            if path is not None
        }
        plan = self.compile_parser(parser, aliases)
        flt = program.controls[program.bindings[1].decl_name]
        filter_ops = self.compile_control(flt, ["*hdr", "*accept"])
        emit_ops = self._emit_ops_for("*hdr", hdr_type)
        return CompiledProgram(
            family="ebpf",
            num_regs=len(self.reg_width),
            num_valids=len(self.valids),
            parser=plan,
            filter_ops=filter_ops,
            r_accept=r_accept,
            emit_ops=emit_ops,
        )

    def _build_tofino(self) -> CompiledProgram:
        from ..targets.tna import Tna

        program = self.program
        if len(program.bindings) < 6:
            raise CompileUnsupported("not a Tofino Pipeline program")
        b = program.bindings
        structs = program.structs
        ig_tm_t = structs["ingress_intrinsic_metadata_for_tm_t"]
        ig_dprsr_t = structs["ingress_intrinsic_metadata_for_deparser_t"]
        eg_dprsr_t = structs["egress_intrinsic_metadata_for_deparser_t"]
        ig_prsr_t = structs["ingress_intrinsic_metadata_from_parser_t"]
        eg_prsr_t = structs["egress_intrinsic_metadata_from_parser_t"]
        r_ucast = self.reg("*ig_tm_md.ucast_egress_port",
                           ig_tm_t.field_types["ucast_egress_port"])
        w_ucast = self.reg_width[r_ucast]
        # Scalar keeps an identity sentinel in ucast_egress_port to
        # implement "never written -> dropped"; the lane engine tracks
        # writes in st.port_written instead, so compiled *reads* of the
        # register (which could launder the sentinel through a copy)
        # are refused.
        self.forbidden_read.add(r_ucast)
        self.port_regs.add(r_ucast)
        r_bypass = self.reg("*ig_tm_md.bypass_egress",
                            ig_tm_t.field_types["bypass_egress"])
        r_ig_drop_ctl = self.reg("*ig_dprsr_md.drop_ctl",
                                 ig_dprsr_t.field_types["drop_ctl"])
        r_eg_drop_ctl = self.reg("*eg_dprsr_md.drop_ctl",
                                 eg_dprsr_t.field_types["drop_ctl"])
        r_resubmit_type = self.reg("*ig_dprsr_md.resubmit_type",
                                   ig_dprsr_t.field_types["resubmit_type"])
        r_ig_parser_err = self.reg("*ig_prsr_md.parser_err",
                                   ig_prsr_t.field_types["parser_err"])
        r_eg_parser_err = self.reg("*eg_prsr_md.parser_err",
                                   eg_prsr_t.field_types["parser_err"])
        w_drop_ctl = self.reg_width[r_ig_drop_ctl]
        w_parser_err = self.reg_width[r_ig_parser_err]
        if (self.reg_width[r_eg_drop_ctl] != w_drop_ctl
                or self.reg_width[r_eg_parser_err] != w_parser_err):
            raise CompileUnsupported("asymmetric intrinsic widths")
        for r in (r_ucast, r_bypass, r_ig_drop_ctl, r_eg_drop_ctl,
                  r_resubmit_type, r_ig_parser_err, r_eg_parser_err):
            if r in self.bool_regs:
                raise CompileUnsupported("bool intrinsic field")
        reads_parser_err = Tna._reads_parser_err(
            Tna.__new__(Tna), program, b[1].decl_name)
        ig_parser = program.parsers[b[0].decl_name]
        ig_aliases = {
            p.name: path
            for p, path in zip(
                ig_parser.params,
                [None, "*ihdr", "*ig_md", "*ig_intr_md"])
            if path is not None
        }
        ig_plan = self.compile_parser(ig_parser, ig_aliases)
        controls = program.controls
        ingress_ops = self.compile_control(
            controls[b[1].decl_name],
            ["*ihdr", "*ig_md", "*ig_intr_md", "*ig_prsr_md",
             "*ig_dprsr_md", "*ig_tm_md"])
        ig_deparser_ops = self.compile_control(
            controls[b[2].decl_name],
            [None, "*ihdr", "*ig_md", "*ig_dprsr_md"])
        eg_parser = program.parsers[b[3].decl_name]
        eg_aliases = {
            p.name: path
            for p, path in zip(
                eg_parser.params,
                [None, "*ehdr", "*eg_md", "*eg_intr_md"])
            if path is not None
        }
        eg_plan = self.compile_parser(eg_parser, eg_aliases)
        egress_ops = self.compile_control(
            controls[b[4].decl_name],
            ["*ehdr", "*eg_md", "*eg_intr_md", "*eg_prsr_md",
             "*eg_dprsr_md", "*eg_oport_md"])
        eg_deparser_ops = self.compile_control(
            controls[b[5].decl_name],
            [None, "*ehdr", "*eg_md", "*eg_dprsr_md"])
        version = 2 if self.target_name == "t2na" else 1
        return CompiledProgram(
            family="tofino",
            num_regs=len(self.reg_width),
            num_valids=len(self.valids),
            min_packet_bits=512,
            port_metadata_bits=64 if version == 1 else 192,
            ig_parser=ig_plan,
            eg_parser=eg_plan,
            reads_parser_err=reads_parser_err,
            r_ig_parser_err=r_ig_parser_err,
            r_eg_parser_err=r_eg_parser_err,
            w_parser_err=w_parser_err,
            ingress_ops=ingress_ops,
            egress_ops=egress_ops,
            ig_deparser_ops=ig_deparser_ops,
            eg_deparser_ops=eg_deparser_ops,
            r_ig_drop_ctl=r_ig_drop_ctl,
            r_eg_drop_ctl=r_eg_drop_ctl,
            w_drop_ctl=w_drop_ctl,
            r_resubmit_type=r_resubmit_type,
            w_resubmit=self.reg_width[r_resubmit_type],
            r_ucast=r_ucast,
            w_ucast=w_ucast,
            r_bypass=r_bypass,
            w_bypass=self.reg_width[r_bypass],
        )


_BUILDERS = {
    "bmv2": _Compiler._build_bmv2,
    "ebpf": _Compiler._build_ebpf,
    "tofino": _Compiler._build_tofino,
}


def compile_program(program: N.IrProgram, target_name: str) -> CompiledProgram:
    """Compile ``program`` for ``target_name``; raises
    :class:`CompileUnsupported` when no exact lane semantics exist."""
    family = FAMILY.get(target_name)
    if family is None:
        raise CompileUnsupported(f"unknown target {target_name!r}")
    compiler = _Compiler(program, target_name)
    try:
        return _BUILDERS[family](compiler)
    except CompileUnsupported:
        raise
    except Exception as exc:  # defensive: refusal, never a crash
        raise CompileUnsupported(f"compile error: {exc!r}") from exc


#: id(program) -> (weakref, {target_name: CompiledProgram | CompileUnsupported})
_CACHE: dict[int, tuple] = {}


def compile_cached(program: N.IrProgram, target_name: str) -> CompiledProgram:
    """Per-``(program, target)`` memoized :func:`compile_program`.

    Keyed by object identity (programs are compared nowhere else and
    may be unpicklable to hash structurally); a weakref callback evicts
    entries when the program dies so ids cannot be recycled into stale
    hits.  Refusals are cached too — re-raised on every hit."""
    key = id(program)
    entry = _CACHE.get(key)
    if entry is not None and entry[0]() is not program:
        _CACHE.pop(key, None)
        entry = None
    if entry is None:
        try:
            # Bind the dict itself: at interpreter shutdown the module
            # global may already be cleared when the callback fires.
            ref = weakref.ref(
                program,
                lambda _r, key=key, cache=_CACHE: cache.pop(key, None))
        except TypeError:
            def ref(program=program):
                return program
        entry = (ref, {})
        _CACHE[key] = entry
    per_target = entry[1]
    hit = per_target.get(target_name)
    if hit is not None:
        if isinstance(hit, CompileUnsupported):
            raise hit
        return hit
    try:
        compiled = compile_program(program, target_name)
    except CompileUnsupported as exc:
        per_target[target_name] = exc
        raise
    per_target[target_name] = compiled
    return compiled
