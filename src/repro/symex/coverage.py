"""Statement-coverage tracking and reporting (paper §2.4, §7).

The coverage universe is every executable IR statement after dead-code
elimination.  Each generated test records the statements its path
visited; the tracker accumulates them and can emit a report like the
one P4Testgen prints after generation (total percentage + the list of
statements not covered).
"""

from __future__ import annotations

from ..ir import nodes as N

__all__ = ["CoverageTracker"]


class CoverageTracker:
    def __init__(self, program: N.IrProgram):
        self.program = program
        self._universe: dict[int, N.IrStmt] = {
            s.stmt_id: s for s in program.all_statements()
        }
        self.covered: set[int] = set()
        self.per_test: list[frozenset] = []

    @property
    def universe_size(self) -> int:
        return len(self._universe)

    def newly_covered(self, stmt_ids) -> frozenset:
        """The subset of ``stmt_ids`` that is in the universe and not
        yet covered.  Pure query — does not record anything, so calling
        it twice with the same ids reports the same set."""
        return frozenset(
            i for i in stmt_ids if i in self._universe and i not in self.covered
        )

    def record(self, stmt_ids) -> int:
        """Record one test's covered statements; returns how many were
        newly covered (used by coverage-greedy exploration)."""
        ids = {i for i in stmt_ids if i in self._universe}
        new = len(self.newly_covered(ids))
        self.covered |= ids
        self.per_test.append(frozenset(ids))
        return new

    @property
    def statement_percent(self) -> float:
        if not self._universe:
            return 100.0
        return 100.0 * len(self.covered) / len(self._universe)

    def curve(self) -> list:
        """The coverage curve: one ``[tests_recorded, covered, percent]``
        point per recorded test, cumulative in record order.  This is
        the raw material for run reports and the BENCH trajectory —
        strategies are compared by how fast this curve climbs, not by
        where it ends."""
        points = []
        seen: set = set()
        total = len(self._universe)
        for n, ids in enumerate(self.per_test, start=1):
            seen |= ids
            percent = 100.0 * len(seen) / total if total else 100.0
            points.append([n, len(seen), round(percent, 4)])
        return points

    @property
    def fully_covered(self) -> bool:
        return self.covered >= set(self._universe)

    def uncovered(self) -> list[N.IrStmt]:
        return [
            stmt for sid, stmt in sorted(self._universe.items())
            if sid not in self.covered
        ]

    def report(self) -> str:
        lines = [
            f"statement coverage: {self.statement_percent:.1f}% "
            f"({len(self.covered)}/{len(self._universe)})"
        ]
        missing = self.uncovered()
        if missing:
            lines.append("uncovered statements:")
            for stmt in missing:
                loc = stmt.location or "?"
                lines.append(f"  [{stmt.stmt_id}] {type(stmt).__name__} at {loc}")
        return "\n".join(lines)
