"""Concolic resolution of complex externs (paper §5.4).

Checksum/hash externs cannot be encoded in QF_BV at reasonable cost, so
during symbolic execution their results are *placeholder variables*
(:class:`ConcolicBinding` records the placeholder, the argument terms,
and a Python implementation of the real function).  At test
finalization:

1. solve the path constraints and pull concrete argument values from
   the model;
2. run the concrete extern implementation on them;
3. bind arguments and result with equality constraints and re-solve;
4. if unsatisfiable, try the binding's domain-specific fallback (e.g.
   "force the reference checksum equal to the computed one"); give up
   and discard the path only if that also fails.
"""

from __future__ import annotations

from ..smt import Solver, evaluate, terms as T
from ..smt.evaluate import EvaluationError
from .state import ConcolicBinding, ExecutionState

__all__ = ["resolve_concolics", "ConcolicFailure"]

MAX_ROUNDS = 4


class ConcolicFailure(Exception):
    """The path's concolic bindings could not be satisfied."""


def _model_eval(term: T.Term, model) -> int:
    assignment = {var: model[var] for var in T.free_vars(term)}
    return evaluate(term, assignment)


def resolve_concolics(state: ExecutionState, solver: Solver,
                      base_assumptions: list[T.Term],
                      max_rounds: int = MAX_ROUNDS,
                      allow_fallback: bool = True):
    """Returns (extra_constraints, model) with all concolic placeholders
    bound to concrete values consistent with the path condition.

    ``solver`` is the shared incremental solver; ``base_assumptions``
    is the path condition.  Raises :class:`ConcolicFailure` if no
    consistent assignment can be found.
    """
    if not state.concolics:
        status = solver.check(*base_assumptions)
        if status != "sat":
            raise ConcolicFailure("path constraints unsatisfiable")
        return [], solver.model()

    extra: list[T.Term] = []
    for round_no in range(max_rounds):
        status = solver.check(*base_assumptions, *extra)
        if status != "sat":
            if round_no == 0:
                raise ConcolicFailure("path constraints unsatisfiable")
            # The concrete bindings contradicted the path: try fallbacks.
            extra = _apply_fallbacks(state, extra) if allow_fallback else None
            if extra is None:
                raise ConcolicFailure("concolic bindings unsatisfiable")
            status = solver.check(*base_assumptions, *extra)
            if status != "sat":
                raise ConcolicFailure("concolic fallback unsatisfiable")
            return extra, solver.model()
        model = solver.model()
        new_bindings: list[T.Term] = []
        consistent = True
        for binding in state.concolics:
            try:
                arg_values = [_model_eval(a, model) for a in binding.arg_terms]
            except EvaluationError as exc:
                raise ConcolicFailure(f"cannot evaluate concolic args: {exc}")
            concrete = binding.concrete_fn(arg_values)
            width = binding.var.width
            mask = (1 << width) - 1
            concrete &= mask
            model_value = model.get(binding.var, 0)
            if model_value != concrete:
                consistent = False
            # Pin arguments and result.
            for arg_term, arg_value in zip(binding.arg_terms, arg_values):
                new_bindings.append(
                    T.eq(arg_term, T.bv_const(arg_value, arg_term.width))
                )
            new_bindings.append(
                T.eq(binding.var, T.bv_const(concrete, width))
            )
        extra = new_bindings
        if consistent:
            return extra, model
    # One final check with the last bindings.
    status = solver.check(*base_assumptions, *extra)
    if status == "sat":
        return extra, solver.model()
    extra = _apply_fallbacks(state, extra) if allow_fallback else None
    if extra is not None:
        status = solver.check(*base_assumptions, *extra)
        if status == "sat":
            return extra, solver.model()
    raise ConcolicFailure("concolic resolution did not converge")


def _apply_fallbacks(state: ExecutionState, previous: list[T.Term]):
    """Ask each binding's fallback hook for replacement constraints."""
    replaced = []
    any_fallback = False
    for binding in state.concolics:
        if binding.fallback is not None:
            constraints = binding.fallback(binding)
            if constraints:
                replaced.extend(constraints)
                any_fallback = True
    return replaced if any_fallback else None
