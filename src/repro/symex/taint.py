"""Taint propagation rules (paper §5.3).

Taint is an int bitmask carried next to each term.  The rules are
conservative (may over-taint, never under-taint) with the mitigations
the paper describes:

1. Simplifier-based elimination: e.g. ``tainted * 0`` folds to the
   constant 0 in the term layer, and the rules below clear taint when
   the resulting term is a constant.
2. Specification freedom (wildcard ternary entries) is applied at the
   table-apply level in the stepper.
3. Target determinism (e.g. ``@auto_init_metadata``) is applied by the
   target extensions when initializing state.
"""

from __future__ import annotations

from ..smt import terms as T
from .value import SymVal

__all__ = [
    "binop_taint",
    "unop_taint",
    "concat_taint",
    "slice_taint",
    "ite_taint",
    "cast_taint",
    "clear_if_const",
]


def _full(width: int) -> int:
    return 1 if width == 0 else (1 << width) - 1


def clear_if_const(term: T.Term, taint: int) -> int:
    """Mitigation 1: if simplification produced a constant, the value is
    fully determined regardless of operand taint."""
    if term.is_const:
        return 0
    return taint


def _carry_spread(mask: int, width: int) -> int:
    """Arithmetic carries propagate taint from the lowest tainted bit
    upward; bits below it stay clean."""
    if mask == 0:
        return 0
    lowest = (mask & -mask).bit_length() - 1
    return _full(width) & ~((1 << lowest) - 1)


def binop_taint(op: str, left: SymVal, right: SymVal, result: T.Term) -> int:
    width = result.width
    lt, rt = left.taint, right.taint
    if lt == 0 and rt == 0:
        return 0
    if op in ("&", "|", "^"):
        # Bitwise ops keep taint positional.  For & and |, a controlling
        # constant operand masks taint out (0 & tainted == 0, 1 | tainted == 1).
        if op == "&":
            out = _and_refine(left, right)
        elif op == "|":
            out = _or_refine(left, right)
        else:
            out = lt | rt
        return clear_if_const(result, out)
    if op in ("+", "-"):
        return clear_if_const(result, _carry_spread(lt | rt, width))
    if op in ("*", "/", "%"):
        return clear_if_const(result, _full(width) if (lt | rt) else 0)
    if op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
        return clear_if_const(result, 1 if (lt or rt) else 0)
    if op in ("<<", ">>"):
        if rt:
            return clear_if_const(result, _full(width))
        if right.term.is_const:
            sh = right.term.value
            if op == "<<":
                return clear_if_const(result, (lt << sh) & _full(width))
            return clear_if_const(result, lt >> sh)
        return clear_if_const(result, _full(width) if lt else 0)
    # Unknown op: be conservative.
    return _full(width)


def _and_refine(left: SymVal, right: SymVal) -> int:
    """Bit i of (a & b) is clean if either side has a clean 0 there."""
    out = left.taint | right.taint
    for a, b in ((left, right), (right, left)):
        if a.term.is_const:
            # bits where a is 0 force result 0 regardless of b's taint
            clean_zero = ~a.term.value
            out &= ~(clean_zero & ~a.taint)
    return out


def _or_refine(left: SymVal, right: SymVal) -> int:
    """Bit i of (a | b) is clean if either side has a clean 1 there."""
    out = left.taint | right.taint
    for a, b in ((left, right), (right, left)):
        if a.term.is_const:
            clean_one = a.term.value
            out &= ~(clean_one & ~a.taint)
    return out


def unop_taint(op: str, operand: SymVal, result: T.Term) -> int:
    if operand.taint == 0:
        return 0
    if op in ("~", "!"):
        return clear_if_const(result, operand.taint)
    if op == "-":
        return clear_if_const(result, _carry_spread(operand.taint, result.width))
    return _full(result.width)


def concat_taint(parts: list[SymVal]) -> int:
    out = 0
    for p in parts:
        out = (out << p.width) | p.taint
    return out


def slice_taint(value: SymVal, hi: int, lo: int) -> int:
    return (value.taint >> lo) & _full(hi - lo + 1)


def ite_taint(cond: SymVal, then: SymVal, other: SymVal, result: T.Term) -> int:
    if cond.taint:
        # Unpredictable branch: every bit that differs (or might) is dirty.
        return clear_if_const(result, _full(result.width))
    return clear_if_const(result, then.taint | other.taint)


def cast_taint(value: SymVal, new_width: int) -> int:
    if new_width >= value.width:
        return value.taint
    return value.taint & _full(new_width)
