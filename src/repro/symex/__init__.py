"""Symbolic-execution core: states, packet model, taint, concolic,
stepper, and path exploration."""

from .coverage import CoverageTracker
from .explorer import Explorer
from .packet import PacketModel
from .state import ExecutionState
from .value import SymVal

__all__ = [
    "Explorer",
    "ExecutionState",
    "PacketModel",
    "SymVal",
    "CoverageTracker",
]
