"""Small-step symbolic semantics for the IR (paper §4, step 2).

``step(state)`` pops one work item and returns the successor states.
Every function here can be overridden by a target extension: the
stepper consults ``state.target`` for extern implementations, parser
error policy, uninitialized-value policy, and table semantics, which is
how target-specific behaviors (App. A.1) are modeled without touching
this core.
"""

from __future__ import annotations

from ..frontend.types import (
    BitsType,
    BoolType,
    EnumType,
    ErrorType,
    HeaderType,
    P4Type,
    StackType,
    StructType,
)
from ..ir import nodes as N
from ..smt import terms as T
from . import taint as TT
from .state import (
    ConcolicBinding,
    ExecutionState,
    ExitMarker,
    ParserStateItem,
    PopFrame,
    ReturnMarker,
    TableEntryDecision,
    ValueSetDecision,
)
from .value import SymVal, fresh_tainted, fresh_var, sym_bool, sym_const

__all__ = ["step", "eval_expr", "resolve_lvalue", "apply_table", "SymexError"]


class SymexError(Exception):
    """Internal invariant violation during symbolic execution."""


class StackOverflowSignal(Exception):
    """``stack.next`` accessed with the stack full: the program must
    transition to reject with error.StackOutOfBounds (P4-16 §8.18)."""


# ===========================================================================
# L-value resolution: IR lvalue -> (flattened path, P4Type)
# ===========================================================================

def resolve_lvalue(state: ExecutionState, lv: N.LValue) -> tuple[str, P4Type]:
    if isinstance(lv, N.VarLV):
        return state.resolve_root(lv.name), lv.p4_type
    if isinstance(lv, N.FieldLV):
        base_path, base_type = resolve_lvalue(state, lv.base)
        if isinstance(base_type, StackType):
            next_idx = state.next_index.get(base_path, 0)
            if lv.field == "next":
                if next_idx >= base_type.size:
                    raise StackOverflowSignal(base_path)
                return f"{base_path}[{next_idx}]", base_type.element
            if lv.field == "last":
                idx = max(next_idx - 1, 0)
                return f"{base_path}[{idx}]", base_type.element
            if lv.field == "lastIndex":
                return f"{base_path}.$lastIndex", BitsType(32)
        return f"{base_path}.{lv.field}", lv.p4_type
    if isinstance(lv, N.IndexLV):
        base_path, base_type = resolve_lvalue(state, lv.base)
        if not isinstance(lv.index, N.IrConst):
            raise SymexError(
                "dynamic stack index survived the mid-end "
                f"(path {base_path})"
            )
        idx = int(lv.index.value)
        if isinstance(base_type, StackType) and idx >= base_type.size:
            idx = base_type.size - 1  # clamped; targets may trap instead
        return f"{base_path}[{idx}]", lv.p4_type
    if isinstance(lv, N.SliceLV):
        # Slice lvalues are handled by the assignment logic.
        raise SymexError("slice lvalue must be handled by assignment")
    raise SymexError(f"unknown lvalue {lv!r}")


# ===========================================================================
# Expression evaluation
# ===========================================================================

_ARITH = {
    "+": T.bv_add, "-": T.bv_sub, "*": T.bv_mul,
    "/": T.bv_udiv, "%": T.bv_urem,
    "&": T.bv_and, "|": T.bv_or, "^": T.bv_xor,
}


def eval_expr(state: ExecutionState, e: N.IrExpr) -> SymVal:
    if isinstance(e, N.IrConst):
        t = e.p4_type
        if isinstance(t, BoolType):
            return sym_bool(bool(e.value))
        if t is None:
            raise SymexError(f"untyped constant {e!r} reached the stepper")
        return sym_const(int(e.value), t.bit_width())
    if isinstance(e, N.IrLValExpr):
        path, p4_type = resolve_lvalue(state, e.lval)
        if isinstance(p4_type, (HeaderType, StructType)):
            raise SymexError(f"cannot evaluate composite {path} as scalar")
        value = state.read(path, p4_type.bit_width())
        # Reading a field of an invalid header is undefined (P4 spec
        # §8.17): the result is tainted, which is what forces the
        # default action in Fig. 1c test 4.
        hdr_path = _enclosing_header(state, e.lval)
        if hdr_path is not None:
            valid = state.read_valid(hdr_path)
            if valid.term.is_const:
                if not valid.term.payload:
                    width = value.term.width
                    full = 1 if width == 0 else (1 << width) - 1
                    return value.with_taint(full)
            elif valid.is_tainted:
                width = value.term.width
                full = 1 if width == 0 else (1 << width) - 1
                return value.with_taint(full)
        return value
    if isinstance(e, N.IrValidExpr):
        path, p4_type = resolve_lvalue(state, e.header)
        return state.read_valid(path)
    if isinstance(e, N.IrUnop):
        operand = eval_expr(state, e.operand)
        if e.op == "!":
            term = T.not_(operand.term)
        elif e.op == "~":
            term = T.bv_not(operand.term)
        elif e.op == "-":
            term = T.bv_neg(operand.term)
        else:
            raise SymexError(f"unknown unop {e.op}")
        return SymVal(term, TT.unop_taint(e.op, operand, term))
    if isinstance(e, N.IrBinop):
        return _eval_binop(state, e)
    if isinstance(e, N.IrConcat):
        parts = [eval_expr(state, p) for p in e.parts]
        term = T.concat(*[p.term for p in parts])
        return SymVal(term, TT.concat_taint(parts))
    if isinstance(e, N.IrSliceExpr):
        inner = eval_expr(state, e.expr)
        term = T.extract(inner.term, e.hi, e.lo)
        return SymVal(term, TT.slice_taint(inner, e.hi, e.lo))
    if isinstance(e, N.IrTernary):
        cond = eval_expr(state, e.cond)
        then = eval_expr(state, e.then)
        other = eval_expr(state, e.other)
        term = T.ite_bv(cond.term, then.term, other.term) \
            if then.term.width else T.ite_bool(cond.term, then.term, other.term)
        return SymVal(term, TT.ite_taint(cond, then, other, term))
    if isinstance(e, N.IrCast):
        return _eval_cast(state, e)
    if isinstance(e, N.IrCall):
        return _eval_call_expr(state, e)
    if isinstance(e, N.IrApplyExpr):
        raise SymexError(
            "table.apply() in expression position must be handled by step()"
        )
    raise SymexError(f"cannot evaluate {e!r}")


def _taint_default_value(term: T.Term):
    """Evaluate a boolean term under 'every taint source reads 0'.

    Returns True/False when that substitution makes the term constant,
    or None if the result still depends on genuinely symbolic inputs
    (then neither branch can be soundly predicted)."""
    from ..smt.terms import free_vars, substitute
    from .value import active_taint_sources

    sources = active_taint_sources()
    mapping = {}
    for var in free_vars(term):
        if var in sources:
            mapping[var] = (
                T.bool_const(False) if var.width == 0 else T.bv_const(0, var.width)
            )
    if not mapping:
        return None
    result = substitute(term, mapping)
    if result.is_const:
        return bool(result.payload)
    return None


def _enclosing_header(state: ExecutionState, lv: N.LValue) -> str | None:
    """If ``lv`` is a field inside a header, the header's path."""
    if isinstance(lv, N.FieldLV):
        base_type = lv.base.p4_type
        if isinstance(base_type, HeaderType):
            path, _t = resolve_lvalue(state, lv.base)
            return path
        return _enclosing_header(state, lv.base)
    if isinstance(lv, N.SliceLV):
        return _enclosing_header(state, lv.base)
    return None


def _eval_binop(state: ExecutionState, e: N.IrBinop) -> SymVal:
    left = eval_expr(state, e.left)
    right = eval_expr(state, e.right)
    op = e.op
    if op in _ARITH:
        term = _ARITH[op](left.term, right.term)
    elif op == "==":
        term = T.eq(left.term, right.term)
    elif op == "!=":
        term = T.ne(left.term, right.term)
    elif op in ("<", ">", "<=", ">="):
        signed = isinstance(e.left.p4_type, BitsType) and e.left.p4_type.signed
        fn = {
            ("<", False): T.ult, ("<", True): T.slt,
            (">", False): T.ugt, (">", True): lambda a, b: T.slt(b, a),
            ("<=", False): T.ule, ("<=", True): T.sle,
            (">=", False): T.uge, (">=", True): lambda a, b: T.sle(b, a),
        }[(op, signed)]
        term = fn(left.term, right.term)
    elif op == "&&":
        term = T.and_(left.term, right.term)
    elif op == "||":
        term = T.or_(left.term, right.term)
    elif op in ("<<", ">>"):
        shift = right.term
        if shift.width != left.term.width:
            if shift.width < left.term.width:
                shift = T.zero_extend(shift, left.term.width - shift.width)
            else:
                shift = T.extract(shift, left.term.width - 1, 0)
        signed = isinstance(e.p4_type, BitsType) and e.p4_type.signed
        if op == "<<":
            term = T.bv_shl(left.term, shift)
        else:
            term = T.bv_ashr(left.term, shift) if signed else T.bv_lshr(left.term, shift)
    else:
        raise SymexError(f"unknown binop {op}")
    return SymVal(term, TT.binop_taint(op, left, right, term))


def _eval_cast(state: ExecutionState, e: N.IrCast) -> SymVal:
    inner = eval_expr(state, e.expr)
    target = e.p4_type
    if isinstance(target, BoolType):
        if inner.term.width == 0:
            return inner
        term = T.ne(inner.term, T.bv_const(0, inner.term.width))
        return SymVal(term, 1 if inner.taint else 0)
    new_width = target.bit_width()
    if inner.term.width == 0:
        # bool -> bit<1> (and wider)
        term = T.ite_bv(inner.term, T.bv_const(1, new_width), T.bv_const(0, new_width))
        return SymVal(term, inner.taint)
    old_width = inner.term.width
    if new_width == old_width:
        return inner
    if new_width < old_width:
        term = T.extract(inner.term, new_width - 1, 0)
        return SymVal(term, TT.cast_taint(inner, new_width))
    src_type = e.expr.p4_type
    signed = isinstance(src_type, BitsType) and src_type.signed
    term = (
        T.sign_extend(inner.term, new_width - old_width)
        if signed
        else T.zero_extend(inner.term, new_width - old_width)
    )
    taint = inner.taint
    if signed and (taint >> (old_width - 1)) & 1:
        taint |= ((1 << new_width) - 1) & ~((1 << old_width) - 1)
    return SymVal(term, taint)


def _eval_call_expr(state: ExecutionState, call: N.IrCall) -> SymVal:
    impl = state.target.extern_value_impl(call.func)
    if impl is None:
        raise SymexError(f"no value-extern implementation for {call.func!r}")
    return impl(state, call)


# ===========================================================================
# Assignment
# ===========================================================================

def assign(state: ExecutionState, target: N.LValue, value: N.IrExpr) -> None:
    if isinstance(target, N.SliceLV):
        base_path, base_type = resolve_lvalue(state, target.base)
        width = base_type.bit_width()
        old = state.read(base_path, width)
        new = eval_expr(state, value)
        hi, lo = target.hi, target.lo
        parts = []
        if hi < width - 1:
            parts.append(T.extract(old.term, width - 1, hi + 1))
        parts.append(new.term)
        if lo > 0:
            parts.append(T.extract(old.term, lo - 1, 0))
        term = T.concat(*parts) if len(parts) > 1 else parts[0]
        keep_mask = ~(((1 << (hi - lo + 1)) - 1) << lo)
        taint = (old.taint & keep_mask) | ((new.taint & ((1 << (hi - lo + 1)) - 1)) << lo)
        state.write(base_path, SymVal(term, taint))
        return
    path, p4_type = resolve_lvalue(state, target)
    if isinstance(p4_type, (HeaderType, StructType, StackType)):
        # Whole-composite assignment: the RHS must be an lvalue.
        if not isinstance(value, N.IrLValExpr):
            raise SymexError(f"composite assignment from non-lvalue {value!r}")
        src_path, _src_type = resolve_lvalue(state, value.lval)
        state.copy_value(src_path, path, p4_type)
        return
    state.write(path, eval_expr(state, value))


# ===========================================================================
# Keyset matching (select cases, const entries)
# ===========================================================================

def keyset_match(state: ExecutionState, keyset, key: SymVal) -> tuple[T.Term, bool]:
    """Returns (match term, involves_control_plane)."""
    if isinstance(keyset, N.KsDefault):
        return T.true(), False
    if isinstance(keyset, N.KsValueSet):
        raise SymexError("value-set keysets are handled by the select logic")
    if isinstance(keyset, N.KsMask):
        value = eval_expr(state, keyset.value)
        mask = eval_expr(state, keyset.mask)
        return (
            T.eq(T.bv_and(key.term, mask.term), T.bv_and(value.term, mask.term)),
            False,
        )
    if isinstance(keyset, N.KsRange):
        lo = eval_expr(state, keyset.lo)
        hi = eval_expr(state, keyset.hi)
        return T.and_(T.ule(lo.term, key.term), T.ule(key.term, hi.term)), False
    # Plain expression keyset.
    value = eval_expr(state, keyset)
    return T.eq(key.term, value.term), False


# ===========================================================================
# Table application (paper §3 example 1, §6 "Interacting with the CP")
# ===========================================================================

def apply_table(state: ExecutionState, table: N.IrTable,
                continuation_builder) -> list[ExecutionState]:
    """Branch over the table's possible behaviours.

    ``continuation_builder(branch_state, action_ref_or_None, hit)`` is
    called on each fork to enqueue whatever must run after the table
    (the chosen action body is enqueued here; the builder enqueues
    hit/miss- or action_run-dependent statements).
    """
    program = state.program
    successors: list[ExecutionState] = []

    keys = [(k, eval_expr(state, k.expr)) for k in table.keys]
    tainted_keys = [k for k, v in keys if v.is_tainted]

    # --- const entries (program-defined, highest precedence) -----------
    # Evaluated in program order; the "priority" annotation reorders
    # them via the target hook (v1model supports it).
    entries = state.target.order_const_entries(table)
    entry_match_terms = []
    entries_unpredictable = False
    for entry in entries:
        conds = []
        for (key, key_val), keyset in zip(keys, entry.keysets):
            if key_val.is_tainted and not isinstance(keyset, N.KsDefault):
                entries_unpredictable = True
            cond, _cp = keyset_match(state, keyset, key_val)
            conds.append(cond)
        entry_match_terms.append(T.and_(*conds) if conds else T.true())

    if not entries_unpredictable:
        for i, entry in enumerate(entries):
            branch = state.clone()
            ok = branch.add_constraint(entry_match_terms[i])
            for prev in entry_match_terms[:i]:
                ok = branch.add_constraint(T.not_(prev)) and ok
            if not ok:
                continue
            branch.log(f"table {table.full_name}: const entry {i}")
            _enter_action(branch, program, table, entry.action_ref, from_entry=True)
            continuation_builder(branch, entry.action_ref, True)
            successors.append(branch)

    no_const_hit = T.and_(*[T.not_(m) for m in entry_match_terms]) \
        if entry_match_terms else T.true()

    # --- synthesized entries (one per action) ---------------------------
    # Taint rule (§5.3 / §3 example 1 test 4): if any key is tainted and
    # the match kind cannot be wildcarded, we cannot insert an entry that
    # is *guaranteed* to match -> only the default action branch remains.
    wildcard_ok = getattr(state.target, "taint_wildcard_mitigation", True)
    caps = getattr(state.target, "backend_caps", None)
    can_synthesize = True
    for key, key_val in keys:
        if key_val.is_tainted and not (
            wildcard_ok and key.match_kind in ("ternary", "optional")
        ):
            can_synthesize = False
        # Test-framework capability limit (§6): if the chosen framework
        # cannot install this kind of entry, the hit paths are not
        # generated and P4Testgen covers fewer paths.
        if caps is not None and key.match_kind == "range" \
                and not caps.range_entries:
            can_synthesize = False
    if not table.keys:
        can_synthesize = False  # keyless tables only run the default action

    if can_synthesize:
        for ref in table.action_refs:
            action = _lookup_action(program, ref.action)
            if _ref_annotated(ref, "defaultonly"):
                continue
            branch = state.clone()
            key_fields = []
            conds = []
            for key, key_val in keys:
                roles: dict[str, T.Term] = {}
                kind = key.match_kind
                width = key_val.term.width
                if key_val.is_tainted and wildcard_ok and kind in ("ternary", "optional"):
                    # Wildcard entry: always matches, no constraint on
                    # the tainted key (taint mitigation 2).
                    roles["value"] = T.bv_const(0, width)
                    roles["mask"] = T.bv_const(0, width)
                    key_fields.append((key.name, kind, roles))
                    continue
                kv = fresh_var(f"{table.full_name}*{key.name}", width)
                roles["value"] = kv.term
                if kind == "exact":
                    conds.append(T.eq(kv.term, key_val.term))
                elif kind in ("ternary", "optional"):
                    # Synthesize an exact-style entry (mask all ones).
                    roles["mask"] = T.bv_const((1 << width) - 1, width)
                    conds.append(T.eq(kv.term, key_val.term))
                elif kind == "lpm":
                    roles["prefix_len"] = T.bv_const(width, 32)
                    conds.append(T.eq(kv.term, key_val.term))
                elif kind == "range":
                    hi = fresh_var(f"{table.full_name}*{key.name}*hi", width)
                    roles["lo"] = kv.term
                    roles["hi"] = hi.term
                    conds.append(T.ule(kv.term, key_val.term))
                    conds.append(T.ule(key_val.term, hi.term))
                else:
                    conds.append(T.eq(kv.term, key_val.term))
                key_fields.append((key.name, kind, roles))
            ok = branch.add_constraint(no_const_hit)
            for c in conds:
                ok = branch.add_constraint(c) and ok
            # P4-constraints: restrict the entries the control plane is
            # allowed to install for this table (§6.1.1, Tbl. 4b).
            for c in state.target.entry_constraints(state, table, key_fields):
                ok = branch.add_constraint(c) and ok
            if not ok:
                continue
            # Control-plane args: fresh symbolic variables.
            args = []
            arg_vals = list(ref.args)
            for pi, param in enumerate(action.control_plane_params):
                if pi < len(arg_vals) and arg_vals[pi] is not None:
                    val = eval_expr(branch, arg_vals[pi])
                else:
                    val = fresh_var(
                        f"{table.full_name}*{action.name}*{param.name}",
                        param.p4_type.bit_width(),
                    )
                args.append((param.name, val.term))
            decision = TableEntryDecision(
                table=table.full_name,
                action=ref.action,
                key_fields=key_fields,
                args=args,
            )
            branch.cp_decisions.append(decision)
            branch.log(f"table {table.full_name}: hit -> {ref.action}")
            _enter_action_with_args(branch, program, ref.action, args)
            continuation_builder(branch, ref, True)
            successors.append(branch)

    # --- default action (miss) ------------------------------------------
    default_ref = table.default_action
    branch = state.clone()
    ok = True
    if not entries_unpredictable:
        ok = branch.add_constraint(no_const_hit)
    if ok:
        branch.log(f"table {table.full_name}: miss -> default")
        if default_ref is not None:
            _enter_action(branch, program, table, default_ref, from_entry=False)
        continuation_builder(branch, default_ref, False)
        successors.append(branch)

    return successors


def _ref_annotated(ref: N.IrActionRef, name: str) -> bool:
    return any(a.name == name for a in ref.annotations)


def _lookup_action(program, full_name: str) -> N.IrAction:
    if full_name in program.actions:
        return program.actions[full_name]
    for control in program.controls.values():
        if full_name in control.actions:
            return control.actions[full_name]
    raise SymexError(f"unknown action {full_name!r}")


def _enter_action(state: ExecutionState, program, table, ref: N.IrActionRef,
                  from_entry: bool) -> None:
    """Queue an action body with bound (constant) arguments."""
    action = _lookup_action(program, ref.action)
    args = []
    for pi, param in enumerate(action.control_plane_params):
        if pi < len(ref.args):
            val = eval_expr(state, ref.args[pi])
        else:
            # Unbound default-action argument: control plane chooses.
            val = fresh_var(
                f"{table.full_name}*{action.name}*{param.name}",
                param.p4_type.bit_width(),
            )
        args.append((param.name, val.term))
    _enter_action_with_args(state, program, ref.action, args)


def _enter_action_with_args(state: ExecutionState, program, action_name: str,
                            args: list) -> None:
    action = _lookup_action(program, action_name)
    aliases: dict[str, str] = {}
    scratch = f"${action.full_name}${state.state_id}"
    arg_map = dict(args)
    for param in action.params:
        if param.direction == "":
            path = f"{scratch}.{param.name}"
            aliases[param.name] = path
            term = arg_map.get(param.name)
            if term is None:
                val = fresh_var(f"{action_name}*{param.name}",
                                param.p4_type.bit_width())
                term = val.term
            state.env[path] = SymVal(term, 0)
    state.push_work(ReturnMarker())
    state.push_frame(aliases)
    state.push_stmts(action.body)


def call_action_directly(state: ExecutionState, action_name: str,
                         arg_exprs: list) -> None:
    """Direct invocation from an apply block; all params are bound, and
    out/inout params are copied back (we alias them instead)."""
    program = state.program
    action = _lookup_action(program, action_name)
    aliases: dict[str, str] = {}
    scratch = f"${action.full_name}${state.state_id}"
    for param, arg in zip(action.params, arg_exprs):
        if param.direction in ("out", "inout", "in"):
            if isinstance(arg, N.IrLValExpr):
                src_path, _t = resolve_lvalue(state, arg.lval)
                aliases[param.name] = src_path
            else:
                path = f"{scratch}.{param.name}"
                aliases[param.name] = path
                state.env[path] = eval_expr(state, arg)
        else:
            path = f"{scratch}.{param.name}"
            aliases[param.name] = path
            state.env[path] = eval_expr(state, arg)
    state.push_work(ReturnMarker())
    state.push_frame(aliases)
    state.push_stmts(action.body)


# ===========================================================================
# Parser stepping
# ===========================================================================

def _run_parser_state(state: ExecutionState, item: ParserStateItem) -> list:
    parser = state.program.parsers[item.parser]
    if item.state == "accept":
        hook = state.target.on_parser_accept
        return hook(state, parser)
    if item.state == "reject":
        return state.target.on_parser_reject(state, parser)
    ps = parser.states.get(item.state)
    if ps is None:
        return state.target.on_parser_reject(state, parser)
    state.log(f"parser state {item.parser}.{item.state}")
    # Queue: statements, then the transition.
    state.push_work(("transition", item.parser, ps.transition))
    state.push_stmts(ps.statements)
    return [state]


def _run_transition(state: ExecutionState, parser_name: str,
                    tr: N.IrTransition) -> list:
    if tr.direct is not None:
        state.push_work(ParserStateItem(parser_name, tr.direct))
        return [state]
    parser = state.program.parsers[parser_name]
    select_vals = [eval_expr(state, e) for e in tr.select_exprs]
    any_tainted = any(v.is_tainted for v in select_vals)
    consistent_taken = False
    successors = []
    prior_matches: list[T.Term] = []
    for case in tr.cases:
        branch = state.clone()
        conds = []
        uses_value_set = False
        for keyset, key_val in zip(case.keysets, select_vals):
            if isinstance(keyset, N.KsValueSet):
                uses_value_set = True
                vs = parser.value_sets[keyset.name]
                member = fresh_var(f"{vs.full_name}*member", key_val.term.width)
                branch.cp_decisions.append(
                    ValueSetDecision(vs.full_name, member.term)
                )
                conds.append(T.eq(key_val.term, member.term))
            else:
                cond, _cp = keyset_match(branch, keyset, key_val)
                conds.append(cond)
        match_term = T.and_(*conds) if conds else T.true()
        ok = branch.add_constraint(match_term)
        for prev in prior_matches:
            ok = branch.add_constraint(T.not_(prev)) and ok
        if ok:
            if any_tainted:
                # A select on tainted bits is unpredictable: only the
                # branch consistent with taint-reads-as-zero may emit a
                # test (cf. the tainted-if policy).
                default_match = _taint_default_value(match_term)
                if default_match is True and not consistent_taken:
                    consistent_taken = True
                else:
                    branch.blocked_reason = "tainted select (unpredictable)"
            branch.log(f"select -> {case.state}")
            branch.push_work(ParserStateItem(parser_name, case.state))
            successors.append(branch)
        # Value-set matches are control-plane configurable, so the
        # negation for later cases must not assume a particular member;
        # conservatively skip adding it (later cases stay feasible).
        if not uses_value_set:
            prior_matches.append(match_term)
    if not successors:
        # No case can match: P4 semantics signal error.NoMatch.
        state.push_work(ParserStateItem(parser_name, "reject"))
        return [state]
    return successors


# ===========================================================================
# The step function
# ===========================================================================

def step(state: ExecutionState) -> list[ExecutionState]:
    item = state.pop_work()
    if item is None:
        state.finished = True
        return [state]

    # --- plain python continuation (target glue) -----------------------
    if callable(item) and not isinstance(item, type):
        result = item(state)
        return result if result is not None else [state]

    if isinstance(item, ParserStateItem):
        return _run_parser_state(state, item)

    if isinstance(item, tuple) and item and item[0] == "transition":
        return _run_transition(state, item[1], item[2])

    if isinstance(item, PopFrame):
        state.frames.pop()
        return [state]

    if isinstance(item, (ExitMarker, ReturnMarker)):
        return [state]

    if isinstance(item, N.IrStmt):
        return _step_stmt(state, item)

    raise SymexError(f"unknown work item {item!r}")


def _step_stmt(state: ExecutionState, stmt: N.IrStmt) -> list[ExecutionState]:
    state.cover(stmt)

    if isinstance(stmt, N.IrAssign):
        if isinstance(stmt.value, N.IrCall) and stmt.value.func == "lookahead":
            impl = state.target.packet_method("lookahead")
            successors = impl(state, stmt.value)
            for succ in successors:
                value = succ.props.pop("last_lookahead", None)
                if value is not None:
                    path, _t = resolve_lvalue(succ, stmt.target)
                    succ.write(path, value)
            return successors
        assign(state, stmt.target, stmt.value)
        return [state]

    if isinstance(stmt, N.IrVarDecl):
        scratch = f"$local${state.state_id}${stmt.name}"
        state.bind_local(stmt.name, scratch)
        # lookahead() in initializer position must branch on packet
        # length, so it routes through the target's packet method.
        if isinstance(stmt.init, N.IrCall) and stmt.init.func == "lookahead":
            impl = state.target.packet_method("lookahead")
            successors = impl(state, stmt.init)
            for succ in successors:
                value = succ.props.pop("last_lookahead", None)
                if value is not None:
                    succ.env[scratch] = value
            return successors
        if stmt.init is not None:
            if isinstance(stmt.p4_type, (HeaderType, StructType, StackType)):
                assign(
                    state,
                    N.VarLV(p4_type=stmt.p4_type, name=stmt.name),
                    stmt.init,
                )
            else:
                state.env[scratch] = eval_expr(state, stmt.init)
        else:
            state.init_type(scratch, stmt.p4_type, state.target.local_init_mode)
        return [state]

    if isinstance(stmt, N.IrIf):
        cond = stmt.cond
        # Table-result conditions branch through the table itself.
        if isinstance(cond, N.IrApplyExpr):
            table = state.program.find_table(cond.table)

            def build(branch, _ref, hit, _stmt=stmt, _member=cond.member):
                want = hit if _member == "hit" else not hit
                body = _stmt.then_stmts if want else _stmt.else_stmts
                branch.push_stmts(body)

            return apply_table(state, table, build)
        if isinstance(cond, N.IrUnop) and cond.op == "!" \
                and isinstance(cond.operand, N.IrApplyExpr):
            inner = cond.operand
            table = state.program.find_table(inner.table)

            def build_neg(branch, _ref, hit, _stmt=stmt, _member=inner.member):
                res = hit if _member == "hit" else not hit
                body = _stmt.then_stmts if not res else _stmt.else_stmts
                branch.push_stmts(body)

            return apply_table(state, table, build_neg)

        cond_val = eval_expr(state, cond)
        if cond_val.is_tainted:
            # Unpredictable branch (§5.3).  Both sides are explored, but
            # only the side consistent with the software model's
            # deterministic garbage (taint sources read as 0) may emit a
            # test — the other side's outcome cannot be predicted, so a
            # test from it would be flaky and is dropped.
            consistent = _taint_default_value(cond_val.term)
            then_branch = state.clone()
            then_branch.push_stmts(stmt.then_stmts)
            then_branch.log("tainted-if: then")
            else_branch = state
            else_branch.push_stmts(stmt.else_stmts)
            else_branch.log("tainted-if: else")
            if consistent is True:
                else_branch.blocked_reason = "tainted branch (unpredictable)"
            elif consistent is False:
                then_branch.blocked_reason = "tainted branch (unpredictable)"
            else:
                then_branch.blocked_reason = "tainted branch (unpredictable)"
                else_branch.blocked_reason = "tainted branch (unpredictable)"
            return [then_branch, else_branch]
        if cond_val.term.is_const:
            state.push_stmts(stmt.then_stmts if cond_val.term.payload else stmt.else_stmts)
            return [state]
        then_branch = state.clone()
        if then_branch.add_constraint(cond_val.term):
            then_branch.push_stmts(stmt.then_stmts)
            then_ok = True
        else:
            then_ok = False
        else_ok = state.add_constraint(T.not_(cond_val.term))
        if else_ok:
            state.push_stmts(stmt.else_stmts)
        out = []
        if then_ok:
            out.append(then_branch)
        if else_ok:
            out.append(state)
        return out

    if isinstance(stmt, N.IrApplyTable):
        table = state.program.find_table(stmt.table)

        def build_nothing(branch, _ref, _hit):
            return None

        return apply_table(state, table, build_nothing)

    if isinstance(stmt, N.IrSwitch):
        table = state.program.find_table(stmt.table)

        def build_switch(branch, ref, hit, _stmt=stmt):
            ran = ref.action if ref is not None else None
            chosen: list | None = None
            default_body: list | None = None
            for labels, body in _stmt.cases:
                if "default" in labels:
                    default_body = body
                if ran is not None and ran in labels:
                    chosen = body
                    break
            if chosen is None:
                chosen = default_body or []
            branch.push_stmts(chosen)

        return apply_table(state, table, build_switch)

    if isinstance(stmt, N.IrExit):
        while state.work:
            top = state.work.pop()
            if isinstance(top, PopFrame):
                state.frames.pop()
            if isinstance(top, ExitMarker):
                break
        return [state]

    if isinstance(stmt, N.IrReturn):
        while state.work:
            top = state.work.pop()
            if isinstance(top, PopFrame):
                state.frames.pop()
            if isinstance(top, ReturnMarker):
                break
        return [state]

    if isinstance(stmt, N.IrMethodCall):
        return _step_call(state, stmt.call)

    raise SymexError(f"unknown statement {stmt!r}")


# ===========================================================================
# Calls in statement position
# ===========================================================================

def _step_call(state: ExecutionState, call: N.IrCall) -> list[ExecutionState]:
    func = call.func

    if func == "__action__":
        call_action_directly(state, call.obj, list(call.args))
        return [state]

    if func == "setValid":
        path, _t = resolve_lvalue(state, call.obj)
        state.write_valid(path, sym_bool(True))
        return [state]
    if func == "setInvalid":
        path, _t = resolve_lvalue(state, call.obj)
        state.write_valid(path, sym_bool(False))
        return [state]

    if func in ("push_front", "pop_front"):
        return _stack_push_pop(state, call)

    if func in ("extract", "emit", "advance", "lookahead", "length"):
        impl = state.target.packet_method(func)
        return impl(state, call)

    impl = state.target.extern_impl(func)
    if impl is not None:
        result = impl(state, call)
        return result if result is not None else [state]
    raise SymexError(f"no extern implementation for {func!r}")


def _stack_push_pop(state: ExecutionState, call: N.IrCall) -> list:
    path, stack_type = resolve_lvalue(state, call.obj)
    if not isinstance(stack_type, StackType):
        raise SymexError("push_front/pop_front on non-stack")
    count_expr = call.args[0]
    count = int(count_expr.value) if isinstance(count_expr, N.IrConst) else 1
    size = stack_type.size
    elem = stack_type.element
    if call.func == "push_front":
        for i in range(size - 1, count - 1, -1):
            state.copy_value(f"{path}[{i - count}]", f"{path}[{i}]", elem)
        for i in range(min(count, size)):
            state.init_type(f"{path}[{i}]", elem, "invalid")
            state.write_valid(f"{path}[{i}]", sym_bool(False))
        state.next_index[path] = min(state.next_index.get(path, 0) + count, size)
    else:
        for i in range(0, size - count):
            state.copy_value(f"{path}[{i + count}]", f"{path}[{i}]", elem)
        for i in range(max(size - count, 0), size):
            state.write_valid(f"{path}[{i}]", sym_bool(False))
        state.next_index[path] = max(state.next_index.get(path, 0) - count, 0)
    return [state]
