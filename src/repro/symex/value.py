"""Symbolic values: an SMT term paired with a taint mask.

The paper (§5.3) tracks *bit-level* taint: a tainted bit may read 0 or
1 at run time (uninitialized variables, random externs, unspecified
target behavior).  We carry taint as a plain Python int bitmask
alongside every scalar term; propagation rules live in
:mod:`repro.symex.taint`.
"""

from __future__ import annotations

from ..smt import terms as T

__all__ = ["SymVal", "sym_const", "sym_bool", "fresh_var", "fresh_tainted"]

_fresh_counter = [0]


class SymVal:
    """A scalar symbolic value: (term, taint mask).

    For booleans the term is a boolean term and taint is 0 or 1.
    ``mask`` bit i set means bit i of the value is unpredictable.
    """

    __slots__ = ("term", "taint")

    def __init__(self, term: T.Term, taint: int = 0):
        self.term = term
        self.taint = taint

    @property
    def width(self) -> int:
        return self.term.width

    @property
    def is_tainted(self) -> bool:
        return self.taint != 0

    @property
    def fully_tainted(self) -> bool:
        if self.term.width == 0:
            return self.taint != 0
        return self.taint == (1 << self.term.width) - 1

    def with_taint(self, taint: int) -> "SymVal":
        return SymVal(self.term, taint)

    def __repr__(self) -> str:
        t = f" taint={self.taint:#x}" if self.taint else ""
        return f"SymVal({self.term!r}{t})"


def sym_const(value: int, width: int) -> SymVal:
    return SymVal(T.bv_const(value, width), 0)


def sym_bool(value: bool) -> SymVal:
    return SymVal(T.bool_const(value), 0)


def fresh_var(prefix: str, width: int) -> SymVal:
    """A fresh, untainted symbolic variable (e.g. control-plane args)."""
    _fresh_counter[0] += 1
    name = f"{prefix}~{_fresh_counter[0]}"
    if width == 0:
        return SymVal(T.bool_var(name), 0)
    return SymVal(T.bv_var(name, width), 0)


# Registry of variables created as taint *sources*.  Used by the
# stepper to decide which branch of a tainted condition is consistent
# with the software models' deterministic garbage (all-zeros).
TAINT_SOURCE_VARS: set = set()


def fresh_tainted(prefix: str, width: int) -> SymVal:
    """A fresh variable with every bit tainted (uninitialized reads,
    unpredictable extern output)."""
    v = fresh_var(prefix, width)
    TAINT_SOURCE_VARS.add(v.term)
    return v.with_taint(1 if width == 0 else (1 << width) - 1)
