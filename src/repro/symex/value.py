"""Symbolic values: an SMT term paired with a taint mask.

The paper (§5.3) tracks *bit-level* taint: a tainted bit may read 0 or
1 at run time (uninitialized variables, random externs, unspecified
target behavior).  We carry taint as a plain Python int bitmask
alongside every scalar term; propagation rules live in
:mod:`repro.symex.taint`.
"""

from __future__ import annotations

from ..smt import terms as T

__all__ = [
    "SymVal", "sym_const", "sym_bool", "fresh_var", "fresh_tainted",
    "MintScope", "active_scope", "active_taint_sources",
]

_fresh_counter = [0]


class MintScope:
    """Deterministic fresh-name minting for one exploration run.

    The legacy globals below make fresh-variable names depend on every
    path explored earlier in the process, which breaks cross-process
    reproducibility.  An explorer instead owns a ``MintScope``: while a
    state executes, the scope points at that state's *own* per-prefix
    counters (``ExecutionState.fresh_counts``, inherited along the
    lineage), so the names minted on a path depend only on the path —
    a worker replaying a branch prefix mints exactly the same names.
    Taint-source membership is scoped alongside, because the same name
    may be a taint source in one program and not in another.
    """

    __slots__ = ("counters", "taint_sources")

    def __init__(self):
        self.counters: dict[str, int] | None = None
        self.taint_sources: set = set()

    def minting(self, counters: dict[str, int]) -> "_Minting":
        """Context manager: activate this scope over ``counters``."""
        return _Minting(self, counters)

    def next_count(self, prefix: str) -> int:
        n = self.counters.get(prefix, 0) + 1
        self.counters[prefix] = n
        return n


class _Minting:
    __slots__ = ("scope", "counters")

    def __init__(self, scope: MintScope, counters: dict[str, int]):
        self.scope = scope
        self.counters = counters

    def __enter__(self):
        self.scope.counters = self.counters
        _SCOPES.append(self.scope)
        return self.scope

    def __exit__(self, *exc):
        _SCOPES.pop()
        self.scope.counters = None
        return False


_SCOPES: list[MintScope] = []


def active_scope() -> MintScope | None:
    """The innermost active :class:`MintScope`, if any."""
    return _SCOPES[-1] if _SCOPES else None


class SymVal:
    """A scalar symbolic value: (term, taint mask).

    For booleans the term is a boolean term and taint is 0 or 1.
    ``mask`` bit i set means bit i of the value is unpredictable.
    """

    __slots__ = ("term", "taint")

    def __init__(self, term: T.Term, taint: int = 0):
        self.term = term
        self.taint = taint

    @property
    def width(self) -> int:
        return self.term.width

    @property
    def is_tainted(self) -> bool:
        return self.taint != 0

    @property
    def fully_tainted(self) -> bool:
        if self.term.width == 0:
            return self.taint != 0
        return self.taint == (1 << self.term.width) - 1

    def with_taint(self, taint: int) -> "SymVal":
        return SymVal(self.term, taint)

    def __repr__(self) -> str:
        t = f" taint={self.taint:#x}" if self.taint else ""
        return f"SymVal({self.term!r}{t})"


def sym_const(value: int, width: int) -> SymVal:
    return SymVal(T.bv_const(value, width), 0)


def sym_bool(value: bool) -> SymVal:
    return SymVal(T.bool_const(value), 0)


def fresh_var(prefix: str, width: int) -> SymVal:
    """A fresh, untainted symbolic variable (e.g. control-plane args).

    Inside an active :class:`MintScope` the counter is per-prefix and
    travels with the execution state, making names a pure function of
    the path; outside any scope the legacy process-global counter is
    used.
    """
    scope = active_scope()
    if scope is not None:
        n = scope.next_count(prefix)
    else:
        _fresh_counter[0] += 1
        n = _fresh_counter[0]
    name = f"{prefix}~{n}"
    if width == 0:
        return SymVal(T.bool_var(name), 0)
    return SymVal(T.bv_var(name, width), 0)


# Registry of variables created as taint *sources*.  Used by the
# stepper to decide which branch of a tainted condition is consistent
# with the software models' deterministic garbage (all-zeros).
# Scoped runs keep their own registry on the MintScope instead.
TAINT_SOURCE_VARS: set = set()


def active_taint_sources() -> set:
    """The taint-source registry for the current context."""
    scope = active_scope()
    return scope.taint_sources if scope is not None else TAINT_SOURCE_VARS


def fresh_tainted(prefix: str, width: int) -> SymVal:
    """A fresh variable with every bit tainted (uninitialized reads,
    unpredictable extern output)."""
    scope = active_scope()
    v = fresh_var(prefix, width)
    if scope is not None:
        scope.taint_sources.add(v.term)
    else:
        TAINT_SOURCE_VARS.add(v.term)
    return v.with_taint(1 if width == 0 else (1 << width) - 1)
