"""Path exploration and test finalization (paper §4 / §6).

The explorer drives :func:`repro.symex.stepper.step` over a frontier of
execution states.  Depth-first search is the default (§6 "Path
traversal"); random-backtracking and coverage-greedy strategies are
selectable for the exploration-strategy ablation.

Two solvers cooperate per run:

- an *incremental* solver for feasibility pruning, where only the
  sat/unsat status matters and push/pop reuse pays off;
- a *canonical* solver backed by a :class:`repro.smt.cache.SolveCache`
  for every model-producing query (concolic resolution, packet-length
  search, final test materialization).  Canonical solves are pure
  functions of the constraint set, which both amortizes repeated
  queries across sibling paths and makes models — and therefore emitted
  tests — independent of exploration order and process boundaries.

The explorer also records a per-iteration event log (which finished
paths appeared at which branch, and whether they finished immediately
at the branch) — the raw material :mod:`repro.engine` uses to merge
parallel shards back into exact sequential order.
"""

from __future__ import annotations

import random
import time

from ..config import TestGenConfig, config_from_legacy
from ..smt import SolveCache, Solver, evaluate, terms as T
from ..smt.backends import CrossChecker, build_portfolio
from ..smt.evaluate import EvaluationError
from ..testback.spec import (
    AbstractTestCase,
    ExpectedPacket,
    PacketData,
    RegisterSpec,
    TableEntrySpec,
    ValueSetSpec,
)
from .concolic import ConcolicFailure, resolve_concolics
from .coverage import CoverageTracker
from .state import (
    ExecutionState,
    FrontierSnapshot,
    RegisterDecision,
    TableEntryDecision,
    ValueSetDecision,
    state_stats_snapshot,
)
from .stepper import step
from .value import MintScope

__all__ = ["Explorer", "ExplorationStats", "IterationRecord", "PathEvent"]


class ExplorationStats:
    def __init__(self):
        self.steps = 0
        self.paths_finished = 0
        self.paths_pruned = 0
        self.paths_infeasible = 0
        self.tests_emitted = 0
        self.tests_blocked = 0
        self.concolic_failures = 0
        self.step_time = 0.0
        self.finalize_time = 0.0
        # Wall time inside the solver substrate (both solvers; the
        # canonical cache's miss solves land in the model solver's
        # solve_time).  The Fig 7 CPU split in bench points reads these.
        self.solve_time_s = 0.0
        self.blast_time_s = 0.0
        self.solver_checks = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_time_saved_s = 0.0
        # Query elision (both solvers combined; see smt/elide.py).
        self.sat_solves = 0
        self.elide_hits_model = 0
        self.elide_hits_rewrite = 0
        self.elide_hits_subsume = 0
        self.elide_misses = 0
        self.rewrite_time_s = 0.0
        self.elide_model_evictions = 0
        self.elide_unsat_evictions = 0
        # Pruning-solver-only view, for the "fraction of incremental
        # feasibility checks answered without a SAT solve" headline.
        self.feasibility_checks = 0
        self.feasibility_elided = 0
        # Incremental status plane (smt/solver.py incremental=True):
        # feasibility checks settled by a canonical-cache peek, DFS
        # stack traffic mirrored into solver levels, trail reuse, and
        # the clause-database hygiene the long-lived solver needs.
        self.feasibility_cache_hits = 0
        self.inc_solves = 0
        self.inc_levels_pushed = 0
        self.inc_levels_popped = 0
        self.inc_levels_reused = 0
        self.inc_levels_assumed = 0
        self.inc_learned_retained = 0
        self.inc_learned_deleted = 0
        self.inc_clauses_gced = 0
        self.inc_db_reductions = 0
        self.inc_heap_rebuilds = 0
        self.inc_selectors_retired = 0
        # Hash-consing (smt/terms.py): pool activity attributable to
        # this run (process-global counters, delta'd per explorer).
        self.intern_hits = 0
        self.intern_misses = 0
        self.intern_pool_size = 0
        # Shared bit-blast cache (smt/bitblast.py), as seen by this
        # run's canonical cache-miss solves.
        self.blast_cache_hits = 0
        self.blast_cache_misses = 0
        self.blast_clauses_replayed = 0
        self.blast_time_saved_s = 0.0
        # Copy-on-write state (symex/state.py): clone() is O(1) iff
        # path_cond_copies stays zero while state_clones grows.
        self.state_clones = 0
        self.path_cond_copies = 0
        self.frame_cow_copies = 0
        # Solver back ends (smt/backends.py): per-backend counters from
        # both solvers plus the canonical cache's miss solves.
        self.backend_queries: dict[str, int] = {}
        self.backend_wins: dict[str, int] = {}
        self.backend_timeouts: dict[str, int] = {}
        self.backend_errors: dict[str, int] = {}
        self.portfolio_races = 0
        self.crosschecks = 0
        self.crosscheck_failures = 0

    def as_dict(self):
        return dict(self.__dict__)

    def absorb(self, other: dict) -> None:
        """Accumulate another run's stats (worker shards)."""
        for key, value in other.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                setattr(self, key, getattr(self, key, 0) + value)
            elif isinstance(value, dict):
                mine = getattr(self, key, None)
                if isinstance(mine, dict):
                    for sub, count in value.items():
                        mine[sub] = mine.get(sub, 0) + count


class PathEvent:
    """One finished path: where it finished, whether it finished as an
    immediate successor of a branch, and the test it produced (None for
    blocked/infeasible paths)."""

    __slots__ = ("choice_path", "immediate", "test")

    def __init__(self, choice_path: tuple[int, ...], immediate: bool, test):
        self.choice_path = choice_path
        self.immediate = immediate
        self.test = test


class IterationRecord:
    """The finished-path events of one exploration iteration.  Stop
    limits are checked at iteration boundaries, so the engine's merge
    replays truncation at the same granularity."""

    __slots__ = ("iter_id", "events")

    def __init__(self, iter_id: int):
        self.iter_id = iter_id
        self.events: list[PathEvent] = []


def _model_eval(term, model):
    assignment = {}
    for var in T.free_vars(term):
        assignment[var] = model[var]
    return evaluate(term, assignment)


class Explorer:
    def __init__(self, program, target, config: TestGenConfig | None = None,
                 **legacy):
        if legacy:
            config = config_from_legacy(config, legacy, "Explorer()")
        if config is None:
            config = TestGenConfig()
        self.config = config
        self.program = program
        self.target = target
        self.strategy = config.strategy
        self.rng = random.Random(config.seed)
        self.seed = config.seed
        self.prune_unsat = config.prune_unsat
        self.max_tests = config.max_tests
        self.max_paths = config.max_paths
        self.max_steps = config.max_steps
        self.stop_at_full_coverage = config.stop_at_full_coverage
        self.coverage_goal = config.coverage_goal
        self.concolic_max_rounds = config.concolic_max_rounds
        self.concolic_fallback = config.concolic_fallback
        self.concolic_enabled = config.concolic_enabled
        # §3: "the output port is chosen at random" — when enabled,
        # unconstrained control-plane values get random (seeded)
        # preferred assignments instead of the solver's defaults.
        self.randomize_values = config.randomize_values
        # Hash-consing is a process-global mode switch: every term this
        # run builds goes through (or around) the weak intern pool.
        # Equality stays structural either way, so flipping it cannot
        # change emitted tests (see smt/terms.py).
        T.set_interning(config.intern)
        # The pool counters are process-global; snapshot them so stats
        # report this run's activity, not the process's.
        self._intern_base = T.intern_stats()
        self._state_base = state_stats_snapshot()
        # Solver back ends: a portfolio (or non-native primary) binds
        # its models through the canonical cache's pure solves, so —
        # like elision and jobs>1 — it is gated on solve_cache: the
        # incremental solver's models are history-dependent and would
        # break the portfolio-on/off byte-identity contract.
        self.portfolio = build_portfolio(config)
        if self.portfolio is not None and not config.solve_cache:
            raise ValueError(
                "solver/portfolio configuration requires solve_cache=True "
                "(canonical solves are what keep portfolio runs "
                "deterministic)")
        self.crosschecker = None
        if config.solver_crosscheck:
            secondary = (self.portfolio.first_external()
                         if self.portfolio is not None else None)
            self.crosschecker = CrossChecker(secondary=secondary)
        # Incremental solver: feasibility pruning only — unless
        # solve_cache is off, in which case it doubles as the model
        # solver and full elision would let cached witnesses reach test
        # output; elision is therefore gated on solve_cache so the
        # elide-on and elide-off suites stay identical.
        #
        # The incremental status plane (selector levels mirroring the
        # DFS stack, trail/clause reuse across sibling checks) is gated
        # the same way: it makes the pruning solver's *models* history-
        # dependent, so it requires solve_cache (models then always come
        # from canonical solves) and steps aside when a portfolio is
        # configured (portfolio dispatch bypasses trail reuse, and the
        # portfolio-on/off byte-identity contract is pinned to the
        # one-shot plane).  Statuses are objective either way, so
        # incremental on/off suites are byte-identical at any jobs.
        self._incremental = (config.incremental and config.solve_cache
                             and self.portfolio is None)
        self.solver = Solver(elide=config.elide and config.solve_cache,
                             elide_models=config.elide_models,
                             elide_unsat=config.elide_unsat,
                             portfolio=self.portfolio,
                             incremental=self._incremental)
        if config.solve_cache:
            self.solve_cache = SolveCache(capacity=config.cache_capacity,
                                          portfolio=self.portfolio,
                                          crosscheck=self.crosschecker)
            self.model_solver = Solver(cache=self.solve_cache,
                                       elide=config.elide,
                                       elide_models=config.elide_models,
                                       elide_unsat=config.elide_unsat)
        else:
            self.solve_cache = None
            self.model_solver = self.solver
        self.scope = MintScope()
        self.coverage = CoverageTracker(program)
        self.stats = ExplorationStats()
        self.event_log: list[IterationRecord] = []
        self._iter_id = 0
        self._current_record: IterationRecord | None = None
        self._test_counter = 0

    # ------------------------------------------------------------------
    # Frontier policies
    # ------------------------------------------------------------------

    def _pick(self, frontier: list[ExecutionState]) -> ExecutionState:
        if self.strategy == "dfs":
            return frontier.pop()
        if self.strategy == "random":
            idx = self.rng.randrange(len(frontier))
            return frontier.pop(idx)
        if self.strategy == "greedy":
            # Prefer a state whose pending work contains uncovered
            # statements; fall back to random.
            best_idx, best_score = None, -1
            for idx, state in enumerate(frontier[-16:]):
                real_idx = len(frontier) - len(frontier[-16:]) + idx
                score = 0
                for item in state.work[-8:]:
                    sid = getattr(item, "stmt_id", None)
                    if sid is not None and sid not in self.coverage.covered:
                        score += 1
                if score > best_score:
                    best_idx, best_score = real_idx, score
            if best_idx is None or best_score == 0:
                best_idx = self.rng.randrange(len(frontier))
            return frontier.pop(best_idx)
        raise ValueError(f"unknown strategy {self.strategy!r}")

    # ------------------------------------------------------------------
    # Stepping under the mint scope
    # ------------------------------------------------------------------

    def _initial_state(self) -> ExecutionState:
        counts: dict[str, int] = {}
        with self.scope.minting(counts):
            initial = self.target.build_initial_state(self.program)
        initial.fresh_counts = counts
        return initial

    def _step_state(self, state: ExecutionState, *,
                    record: bool = True) -> list[ExecutionState]:
        """Step ``state`` with its own mint counters active; annotate
        branch successors with their choice index and hand every
        successor the end-of-step counters."""
        base_path = state.choice_path
        t0 = time.perf_counter()
        with self.scope.minting(state.fresh_counts):
            successors = step(state)
        dt = time.perf_counter() - t0
        if record:
            self.stats.step_time += dt
            self.stats.steps += 1
        if len(successors) > 1:
            for i, s in enumerate(successors):
                s.choice_path = base_path + (i,)
        final_counts = state.fresh_counts
        for s in successors:
            if s is not state:
                s.fresh_counts = dict(final_counts)
        return successors

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self):
        """Generate tests; yields AbstractTestCase objects."""
        yield from self._explore([self._initial_state()])

    def run_prefix(self, prefix: tuple[int, ...]):
        """Replay ``prefix`` branch choices from the initial state, then
        explore the subtree below it; yields AbstractTestCase objects.

        This is the worker-side half of parallel sharding: the prefix
        came from a :class:`FrontierSnapshot` taken in another process.
        Replay re-steps the lineage (cheap — no solver calls) so the
        subtree starts from bit-identical symbolic state.
        """
        state = self._initial_state()
        taken = 0
        while taken < len(prefix):
            if state.finished:
                raise RuntimeError(
                    f"prefix replay finished early at {state.choice_path}")
            successors = self._step_state(state, record=False)
            if not successors:
                raise RuntimeError(
                    f"prefix replay hit a dead end at {state.choice_path}")
            if len(successors) == 1:
                state = successors[0]
                continue
            choice = prefix[taken]
            if choice >= len(successors):
                raise RuntimeError(
                    f"prefix replay diverged: choice {choice} of "
                    f"{len(successors)} at {state.choice_path}")
            state = successors[choice]
            taken += 1
        yield from self._explore([state])

    def _explore(self, frontier: list[ExecutionState]):
        stats = self.stats
        while frontier:
            if self.max_tests is not None and stats.tests_emitted >= self.max_tests:
                break
            if self.max_paths is not None and stats.paths_finished >= self.max_paths:
                break
            if stats.steps >= self.max_steps:
                break
            if self.stop_at_full_coverage and self.coverage.fully_covered:
                break
            if (self.coverage_goal is not None
                    and self.coverage.statement_percent >= self.coverage_goal):
                break
            state = self._pick(frontier)
            self._begin_iteration()
            successors = self._step_state(state)
            multi = len(successors) > 1
            if multi and self.prune_unsat:
                successors = [s for s in successors if self._feasible(s)]
            for s in successors:
                if s.finished:
                    test = self._handle_finished(s, multi)
                    if test is not None:
                        yield test
                else:
                    frontier.append(s)
        self._sync_solver_stats()

    def split_frontier(self, min_states: int, max_iters: int):
        """Breadth-first expansion for parallel sharding.

        Expands the initial state until the frontier holds at least
        ``min_states`` entries (or ``max_iters`` iterations pass, or
        the program is exhausted).  Finished paths encountered on the
        way are finalized into the event log; the engine orders them
        against the shards afterwards, so no stop limits apply here.

        Returns ``(frontier_states, exhausted)``.
        """
        from collections import deque

        frontier = deque([self._initial_state()])
        iters = 0
        while frontier and len(frontier) < min_states and iters < max_iters:
            state = frontier.popleft()
            self._begin_iteration()
            successors = self._step_state(state)
            multi = len(successors) > 1
            if multi and self.prune_unsat:
                successors = [s for s in successors if self._feasible(s)]
            for s in successors:
                if s.finished:
                    self._handle_finished(s, multi)
                else:
                    frontier.append(s)
            iters += 1
        self._sync_solver_stats()
        return list(frontier), not frontier

    def frontier_snapshot(self, states) -> FrontierSnapshot:
        return FrontierSnapshot(
            program=self.program.source_name,
            target=self.target.name,
            prefixes=[s.choice_path for s in states],
        )

    def _begin_iteration(self) -> None:
        self._iter_id += 1
        self._current_record = None

    def _handle_finished(self, s: ExecutionState, immediate: bool):
        self.stats.paths_finished += 1
        test = self._finalize(s)
        if self._current_record is None:
            self._current_record = IterationRecord(self._iter_id)
            self.event_log.append(self._current_record)
        self._current_record.events.append(
            PathEvent(s.choice_path, immediate, test))
        if test is not None:
            self.stats.tests_emitted += 1
            self._sync_solver_stats()
        return test

    def _sync_solver_stats(self) -> None:
        st = self.stats
        ms = self.model_solver.stats
        ps = self.solver.stats
        distinct = ps is not ms
        st.solver_checks = ms.checks + (ps.checks if distinct else 0)
        st.cache_hits = ms.cache_hits
        st.cache_misses = ms.cache_misses
        st.cache_time_saved_s = ms.cache_time_saved
        for field in ("sat_solves", "elide_hits_model", "elide_hits_rewrite",
                      "elide_hits_subsume", "elide_misses", "rewrite_time_s",
                      "elide_model_evictions", "elide_unsat_evictions"):
            value = getattr(ms, field)
            if distinct:
                value += getattr(ps, field)
            setattr(st, field, value)
        # Headline metric: of the incremental feasibility-pruning
        # checks, how many never reached a SAT solve?  Only meaningful
        # when the pruning solver is its own instance.
        if distinct:
            st.feasibility_checks = ps.checks
            st.feasibility_elided = ps.elide_hits
        else:
            st.feasibility_checks = 0
            st.feasibility_elided = 0
        # Incremental-plane counters live on the pruning solver only
        # (the canonical solver never runs incrementally).
        for field in ("inc_solves", "inc_levels_pushed", "inc_levels_popped",
                      "inc_levels_reused", "inc_levels_assumed",
                      "inc_learned_retained", "inc_learned_deleted",
                      "inc_clauses_gced", "inc_db_reductions",
                      "inc_heap_rebuilds", "inc_selectors_retired"):
            setattr(st, field, getattr(ps, field))
        st.solve_time_s = ms.solve_time + (ps.solve_time if distinct else 0)
        st.blast_time_s = ms.blast_time + (ps.blast_time if distinct else 0)
        istats = T.intern_stats()
        st.intern_hits = istats["hits"] - self._intern_base["hits"]
        st.intern_misses = istats["misses"] - self._intern_base["misses"]
        st.intern_pool_size = istats["pool_size"]
        if self.solve_cache is not None:
            st.blast_cache_hits = self.solve_cache.blast_hits
            st.blast_cache_misses = self.solve_cache.blast_misses
            st.blast_clauses_replayed = self.solve_cache.blast_clauses_replayed
            st.blast_time_saved_s = self.solve_cache.blast_time_saved
        snap = state_stats_snapshot()
        for field in ("state_clones", "path_cond_copies", "frame_cow_copies"):
            setattr(st, field, snap[field] - self._state_base[field])
        # Per-backend counters: the incremental solvers count their own
        # dispatches; the canonical cache accumulates its miss solves'.
        sources = [ms] + ([ps] if distinct else [])
        if self.solve_cache is not None:
            sources.append(self.solve_cache)
        for field in ("backend_queries", "backend_wins",
                      "backend_timeouts", "backend_errors"):
            merged: dict[str, int] = {}
            for src in sources:
                for name, count in getattr(src, field).items():
                    merged[name] = merged.get(name, 0) + count
            setattr(st, field, merged)
        st.portfolio_races = sum(src.portfolio_races for src in sources)
        if self.crosschecker is not None:
            st.crosschecks = self.crosschecker.checks
            st.crosscheck_failures = self.crosschecker.failures

    def close(self) -> None:
        """Release external solver processes (no-op for pure native)."""
        if self.portfolio is not None:
            self.portfolio.close()

    def generate(self, n: int | None = None) -> list[AbstractTestCase]:
        """Convenience: collect up to ``n`` tests into a list."""
        out = []
        for test in self.run():
            out.append(test)
            if n is not None and len(out) >= n:
                break
        return out

    # ------------------------------------------------------------------
    # Feasibility pruning
    # ------------------------------------------------------------------

    def _feasible(self, state: ExecutionState) -> bool:
        if not state.path_cond:
            return True
        if self._incremental:
            status = self._feasible_incremental(state)
        else:
            status = self.solver.check(*state.path_cond)
        if status != "sat":
            self.stats.paths_pruned += 1
            return False
        return True

    def _feasible_incremental(self, state: ExecutionState) -> str:
        """Status-only feasibility along the exploration tree.

        Three tiers, cheapest first.  The elider answers from witness
        reuse or UNSAT subsumption without blasting anything; a
        canonical-cache peek catches constraint sets a sibling path's
        finalization already solved.  What remains rides the
        incremental database: the pruning solver's assertion stack is
        synced to the state's path condition (pop the stale suffix,
        retiring those selector levels; push one level per new
        conjunct), so the check re-propagates only the branch
        constraint that actually changed, on top of the whole retained
        clause database.  Only the *status* leaves this method; models
        always come from the canonical solver.
        """
        conjuncts = list(state.path_cond)
        solver = self.solver
        status = solver.try_elide_path(conjuncts)
        if status is not None:
            return status
        entry = self.solve_cache.peek(self.solve_cache.key_for(conjuncts))
        if entry is not None:
            self.stats.feasibility_cache_hits += 1
            return entry.status
        return solver.check_path(conjuncts)

    # ------------------------------------------------------------------
    # Finalization: path -> concrete test
    # ------------------------------------------------------------------

    def _finalize(self, state: ExecutionState) -> AbstractTestCase | None:
        t0 = time.perf_counter()
        try:
            return self._finalize_inner(state)
        finally:
            self.stats.finalize_time += time.perf_counter() - t0

    def _finalize_inner(self, state: ExecutionState) -> AbstractTestCase | None:
        if state.blocked_reason is not None:
            # E.g. tainted output port: the test would be flaky (§5.3).
            self.stats.tests_blocked += 1
            return None
        assumptions = list(state.path_cond)
        if not self.concolic_enabled:
            # Ablation mode: concolic placeholders stay unconstrained,
            # so extern results in the emitted test are arbitrary.
            status = self.model_solver.check(*assumptions)
            if status != "sat":
                self.stats.paths_infeasible += 1
                return None
            return self._build_test(state, assumptions, self.model_solver.model())
        try:
            extra, model = resolve_concolics(
                state, self.model_solver, assumptions,
                max_rounds=self.concolic_max_rounds,
                allow_fallback=self.concolic_fallback,
            )
        except ConcolicFailure:
            self.stats.concolic_failures += 1
            self.stats.paths_infeasible += 1
            return None
        assumptions = assumptions + extra
        return self._build_test(state, assumptions, model)

    def _build_test(self, state, assumptions, model) -> AbstractTestCase | None:
        # --- input packet length -------------------------------------
        pkt = state.packet
        pkt_len = self._choose_pkt_len(state, assumptions, model)
        if pkt_len is None:
            self.stats.paths_infeasible += 1
            return None
        # Re-solve with the length pinned so every value is consistent.
        pins = [T.eq(pkt.pkt_len, T.bv_const(pkt_len, 32))]
        status = self.model_solver.check(*assumptions, *pins)
        if status != "sat":
            self.stats.paths_infeasible += 1
            return None
        model = self.model_solver.model()

        if self.randomize_values:
            model, pins = self._randomize_model(state, assumptions, pins, model)

        # --- input packet content ------------------------------------
        content = 0
        for seg in pkt.input_segments:
            content = (content << seg.width) | _model_eval(seg.term, model)
        if pkt_len > pkt.input_bits:
            content <<= pkt_len - pkt.input_bits  # zero payload padding
        elif pkt_len < pkt.input_bits:
            content >>= pkt.input_bits - pkt_len  # truncated (too-short path)
        in_port = state.props.get("input_port_value")
        if in_port is None:
            term = state.props.get("input_port_term")
            in_port = _model_eval(term, model) if term is not None else 0
        input_packet = PacketData(bits=content, width=pkt_len, port=in_port)

        # --- expected outputs (target decides) -------------------------
        outputs, dropped = self.target.finalize_outputs(
            state, lambda term: _model_eval(term, model)
        )
        # Payload the parser never touched is forwarded verbatim by real
        # targets: append the (zero-chosen) tail beyond the parsed bits.
        extra_payload = pkt_len - pkt.input_bits
        if extra_payload > 0 and not state.props.get("truncated"):
            outputs = [
                (port, bits << extra_payload, width + extra_payload,
                 dont_care << extra_payload)
                for (port, bits, width, dont_care) in outputs
            ]
        expected = [
            ExpectedPacket(
                bits=bits, width=width, port=port, dont_care=dont_care
            )
            for (port, bits, width, dont_care) in outputs
        ]

        # --- control plane --------------------------------------------
        entries, value_sets, registers = self._concretize_cp(state, model)

        self._test_counter += 1
        test = AbstractTestCase(
            test_id=self._test_counter,
            target=self.target.name,
            program=self.program.source_name,
            seed=self.seed,
            input_packet=input_packet,
            entries=entries,
            value_sets=value_sets,
            registers=registers,
            expected=expected,
            dropped=dropped,
            covered_statements=frozenset(state.coverage),
            trace=list(state.trace),
        )
        self.coverage.record(state.coverage)
        return test

    def _choose_pkt_len(self, state, assumptions, model) -> int | None:
        """Minimum input length consistent with the path (the paper's
        "minimum header size required to exercise the path")."""
        pkt = state.packet
        want = pkt.input_bits
        # Fast path: exactly the consumed bits.
        if self.model_solver.check(
            *assumptions, T.eq(pkt.pkt_len, T.bv_const(want, 32))
        ) == "sat":
            return want
        # Otherwise binary-search the smallest feasible length in
        # [0, model value], reading the witness value from each SAT
        # model so the final answer is itself feasible.  (Too-short
        # branches and target minimum sizes land here.)
        best = _model_eval(pkt.pkt_len, model)
        lo = 0
        hi = best - 1
        for _ in range(34):
            if lo > hi:
                break
            mid = (lo + hi) // 2
            ok = self.model_solver.check(
                *assumptions,
                T.ule(pkt.pkt_len, T.bv_const(mid, 32)),
            ) == "sat"
            if ok:
                witness = _model_eval(pkt.pkt_len, self.model_solver.model())
                best = min(best, witness)
                hi = witness - 1
            else:
                lo = mid + 1
        return best

    def _path_rng(self, state) -> random.Random:
        """Randomization RNG derived from (seed, choice path) so random
        preferences are reproducible per path regardless of exploration
        order or process."""
        return random.Random(f"{self.seed}|{state.choice_path}")

    def _randomize_model(self, state, assumptions, pins, model):
        """Prefer random values for control-plane argument variables and
        the input port; keep whatever stays satisfiable."""
        candidates = []
        port_term = state.props.get("input_port_term")
        if port_term is not None and port_term.is_var:
            candidates.append(port_term)
        for decision in state.cp_decisions:
            if isinstance(decision, TableEntryDecision):
                for _name, term in decision.args:
                    if term.is_var:
                        candidates.append(term)
        rng = self._path_rng(state)
        for var in candidates:
            value = rng.getrandbits(var.width)
            attempt = T.eq(var, T.bv_const(value, var.width))
            if self.model_solver.check(*assumptions, *pins, attempt) == "sat":
                pins = pins + [attempt]
                model = self.model_solver.model()
        if candidates and pins:
            status = self.model_solver.check(*assumptions, *pins)
            if status == "sat":
                model = self.model_solver.model()
        return model, pins

    def _concretize_cp(self, state, model):
        entries = []
        value_sets = []
        registers = []
        for decision in state.cp_decisions:
            if isinstance(decision, TableEntryDecision):
                keys = []
                for name, kind, roles in decision.key_fields:
                    keys.append(
                        (name, kind, {r: _model_eval(t, model) for r, t in roles.items()})
                    )
                args = [(n, _model_eval(t, model)) for n, t in decision.args]
                entries.append(
                    TableEntrySpec(
                        table=decision.table,
                        action=decision.action,
                        keys=keys,
                        action_args=args,
                        priority=decision.priority,
                    )
                )
            elif isinstance(decision, ValueSetDecision):
                value_sets.append(
                    ValueSetSpec(
                        value_set=decision.value_set,
                        member=_model_eval(decision.member, model),
                    )
                )
            elif isinstance(decision, RegisterDecision):
                registers.append(
                    RegisterSpec(
                        instance=decision.instance,
                        index=decision.index,
                        value=_model_eval(decision.var, model),
                    )
                )
        return entries, value_sets, registers
